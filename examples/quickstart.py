#!/usr/bin/env python3
"""Quickstart: build a small COVIDKG system end to end.

Generates a synthetic CORD-19-style corpus, trains the embeddings and the
metadata classifier, ingests everything (storage + search indexes + KG
fusion), and runs one query against each surface.

Run:  python examples/quickstart.py
"""

from repro import CorpusGenerator, CovidKG, CovidKGConfig, GeneratorConfig


def main() -> None:
    print("=== COVIDKG quickstart ===\n")

    generator = CorpusGenerator(GeneratorConfig(
        seed=7, papers_per_week=25, tables_per_paper=(1, 2),
    ))
    corpus = generator.papers(75)
    print(f"generated {len(corpus)} CORD-19-style publications")

    system = CovidKG(CovidKGConfig(num_shards=4, vocabulary_size=20_000,
                                   wdc_training_tables=40, seed=7))
    print("training vocabulary, Word2Vec embeddings, metadata SVM ...")
    system.train(corpus[:30], word2vec_epochs=2)
    print(f"registered models: {system.registry.names()}")

    print("\ningesting the corpus (store + search indexes + KG fusion) ...")
    report = system.ingest(corpus)
    print(f"extracted {report.subtrees} subtrees; "
          f"fusion actions: {report.actions()}")

    print("\n--- all-fields search: 'vaccine efficacy' ---")
    results = system.search("vaccine efficacy")
    print(f"{results.total_matches} matches "
          f"({results.seconds * 1000:.1f} ms)")
    for result in list(results)[:3]:
        print(f"  [{result.score:6.2f}] {result.title}")

    print("\n--- table search: 'side effect' ---")
    table_hits = system.search_tables("side effect")
    print(f"{table_hits.total_matches} papers with matching tables")
    for result in list(table_hits)[:2]:
        print(f"  {result.title}")
        for table in result.extras["tables"][:1]:
            print(f"    table: {table['caption'][:70]}")

    print("\n--- knowledge-graph search: 'side effects' ---")
    for hit in system.search_graph("side effects", top_k=3):
        print(f"  {hit.rendered_path()}  "
              f"({len(hit.papers)} linked papers)")

    stats = system.statistics()
    print("\n--- system statistics ---")
    print(f"publications: {stats['publications']}, "
          f"shards: {stats['shard_sizes']}")
    print(f"KG: {stats['kg']}")
    print(f"storage: {stats['storage_bytes'] / 1024:.0f} KiB, "
          f"pending expert reviews: {stats['pending_reviews']}")


if __name__ == "__main__":
    main()

#!/usr/bin/env python3
"""Operating a live COVIDKG: freshness, bias, browsing, provenance.

The paper sells COVIDKG on *trustworthiness*: the graph is built from
vetted sources, kept fresh non-stop, and interrogated for bias.  This
walkthrough is the curator's day: ingest several weeks of publications,
audit freshness and bias, browse the graph interactively, drill into a
node's provenance, and persist the system for the next shift.

Run:  python examples/operations.py
"""

import tempfile
from pathlib import Path

from repro.api.persistence import load_system, save_system
from repro.api.system import CovidKG, CovidKGConfig
from repro.corpus.generator import CorpusGenerator, GeneratorConfig
from repro.kg.freshness import audit_freshness


def main() -> None:
    generator = CorpusGenerator(GeneratorConfig(
        seed=23, papers_per_week=20, tables_per_paper=(1, 2),
    ))
    system = CovidKG(CovidKGConfig(num_shards=3, vocabulary_size=20_000,
                                   wdc_training_tables=30, seed=23))
    print("training models on the first batch ...")
    warmup = generator.papers(20)
    system.train(warmup, word2vec_epochs=2)

    print("ingesting 6 weekly batches ...")
    all_papers = []
    for week, batch in enumerate(generator.weekly_batches(6), start=1):
        report = system.ingest(batch) if week > 1 else system.ingest(
            [paper for paper in batch if paper not in warmup]
        )
        all_papers.extend(batch)
        print(f"  week {week}: +{len(batch)} papers, "
              f"{report.subtrees} subtrees fused")

    print("\n--- freshness audit (35-day window) ---")
    freshness = audit_freshness(system.graph, all_papers, window_days=35)
    print(freshness.summary())
    for category, entry in sorted(freshness.by_category().items()):
        print(f"  {category}: {entry['nodes']} nodes, "
              f"{entry['stale']} stale, newest {entry['newest']}")

    print("\n--- bias interrogation ---")
    bias = system.interrogate_bias(num_clusters=6)
    print(f"topic balance {bias.topic_balance:.2f}, "
          f"source balance {bias.source_balance:.2f}")
    for flag in bias.worst(3):
        print(f"  {flag}")

    print("\n--- browsing the graph (№9/№10) ---")
    session = system.browse()
    view = session.enter("Vaccines")
    print(view.render()[:400])
    session.bookmark("vaccines")
    view = session.jump("side effects")
    print(f"jumped to: {' > '.join(view.breadcrumbs)}")

    print("\n--- provenance drill-down ---")
    node = session.current
    explanation = system.explain_node(node.node_id, max_papers=3)
    print(f"{explanation['total_papers']} papers support "
          f"{' > '.join(explanation['path'])}")
    for paper in explanation["papers"]:
        print(f"  {paper['paper_id']} ({paper['publish_time']}, "
              f"{paper['journal']}): {paper['title'][:60]}")

    with tempfile.TemporaryDirectory() as tmp:
        target = Path(tmp) / "covidkg"
        print(f"\nsaving the system to {target} ...")
        save_system(system, target)
        restored = load_system(target)
        print(f"restored: {restored.statistics()['publications']} "
              "publications, search still answers:")
        for result in list(restored.search("vaccine"))[:2]:
            print(f"  [{result.score:6.2f}] {result.title}")


if __name__ == "__main__":
    main()

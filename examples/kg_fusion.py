#!/usr/bin/env python3
"""Knowledge-graph enrichment and fusion scenarios (Section 4.2).

Walks through every fusion rule from the paper:

1. unsupervised leaf fusion under a term-matched node,
2. the NovoVac case — an unseen vaccine placed by embedding similarity,
3. a multi-layer subtree routed to the expert review queue,
4. the keep-separate rule for overlapping categorizations,
5. the fusion corrector learning expert decisions until fusion becomes
   minimally supervised.

Run:  python examples/kg_fusion.py
"""

from repro.corpus import vocabulary_data as vd
from repro.embeddings.word2vec import Word2Vec
from repro.kg.fusion import ExtractedSubtree, FusionEngine
from repro.kg.matching import NodeMatcher
from repro.kg.ontology import seed_covid_graph
from repro.kg.review import ExpertReviewQueue
from repro.kg.search import KGSearchEngine
from repro.text.vocabulary import Vocabulary


def train_embeddings() -> Word2Vec:
    sentences = [
        f"{vaccine} vaccine dose efficacy antibody trial"
        for vaccine in vd.KNOWN_VACCINES + vd.UNSEEN_VACCINES
    ] * 10
    vocabulary = Vocabulary.from_texts(sentences, drop_stopwords=False)
    return Word2Vec(vocabulary, dim=16, seed=3).fit(sentences, epochs=8)


def main() -> None:
    graph = seed_covid_graph()
    matcher = NodeMatcher(graph, word2vec=train_embeddings())
    queue = ExpertReviewQueue()
    engine = FusionEngine(graph, matcher, review_queue=queue)
    print(f"seed KG: {graph.statistics()}\n")

    # 1. Unsupervised leaf fusion: root term-matches "Vaccines".
    result = engine.fuse(ExtractedSubtree(
        "Vaccines", category="vaccines", provenance="paper-001",
        children=[ExtractedSubtree("Pfizer", category="vaccines"),
                  ExtractedSubtree("CureVac", category="vaccines")],
    ))
    print("1. leaf fusion under term-matched 'Vaccines':")
    print(f"   action={result.action} merged={result.merged_leaves} "
          f"added={result.added_leaves}\n")

    # 2. The NovoVac rule: unseen root AND unseen leaf; the leaf's
    #    embedding sits near the known vaccines, whose parent adopts it.
    result = engine.fuse(ExtractedSubtree(
        "Vaccine candidates", category="vaccines", provenance="paper-002",
        children=[ExtractedSubtree("NovoVac", category="vaccines")],
    ))
    novo = graph.find_by_label("NovoVac")[0]
    parent = graph.parent(novo.node_id)
    print("2. unseen entity (NovoVac) placed by embedding matching:")
    print(f"   action={result.action} method={result.match_method}; "
          f"NovoVac now lives under {parent.label!r}\n")

    # 3. Multi-layer subtree -> expert review queue.
    deep = ExtractedSubtree(
        "Side-effects", category="side_effects", provenance="paper-003",
        children=[ExtractedSubtree(
            "Children side-effects", category="side_effects",
            children=[ExtractedSubtree("Rash", category="side_effects")],
        )],
    )
    result = engine.fuse(deep)
    print("3. multi-layer subtree routed to the expert:")
    print(f"   action={result.action}, queue length="
          f"{len(queue.pending())}")
    queue.decide(result.review_id, True, engine)
    print("   expert approved; Rash attached under Children side-effects\n")

    # 4. Keep-separate: Rash also fused under general Side-effects stays a
    #    distinct node.
    engine.fuse(ExtractedSubtree(
        "Side-effects", category="side_effects", provenance="paper-004",
        children=[ExtractedSubtree("Rash", category="side_effects")],
    ))
    rashes = [n for n in graph.find_by_label("Rash")
              if n.category == "side_effects"]
    parents = sorted(graph.parent(n.node_id).label for n in rashes)
    print("4. keep-separate rule: 'Rash' exists as "
          f"{len(rashes)} nodes under {parents}\n")

    # 5. The corrector learns: approve 3 identical cases, the 4th
    #    auto-applies without reaching the queue.
    for index in range(3):
        duplicate = ExtractedSubtree(
            "Side-effects", category="side_effects",
            provenance=f"paper-10{index}",
            children=[ExtractedSubtree(
                "Children side-effects", category="side_effects",
                children=[ExtractedSubtree("Fever",
                                           category="side_effects")],
            )],
        )
        outcome = engine.fuse(duplicate)
        if outcome.action == "queued":
            queue.decide(outcome.review_id, True, engine)
        else:
            print(f"   (case {index + 1} already auto-approved: the "
                  "step-3 approval counted toward the history)")
    learned = engine.fuse(ExtractedSubtree(
        "Side-effects", category="side_effects", provenance="paper-200",
        children=[ExtractedSubtree(
            "Children side-effects", category="side_effects",
            children=[ExtractedSubtree("Chills",
                                       category="side_effects")],
        )],
    ))
    print("5. fusion corrector after 3 consistent expert approvals:")
    print(f"   next identical case -> action={learned.action} "
          "(no human in the loop)\n")

    print(f"final KG: {graph.statistics()}")
    print("\ninteractive search with path highlighting:")
    for hit in KGSearchEngine(graph).search("children side effects",
                                            top_k=2):
        print(f"  {hit.rendered_path()}")


if __name__ == "__main__":
    main()

#!/usr/bin/env python3
"""Multi-layered 3D Meta-Profiles for vaccine side effects (Figure 6).

Builds the vaccine x dosage x paper profile from the side-effect tables
of three generated papers — the exact shape of the paper's Figure 6,
which summarizes 9 sources (3 vaccines x doses x papers) in one view.

Run:  python examples/meta_profiles.py
"""

from repro.corpus.generator import CorpusGenerator, GeneratorConfig
from repro.kg.metaprofile import (
    build_side_effect_profile,
    extract_side_effect_records,
)


def main() -> None:
    generator = CorpusGenerator(GeneratorConfig(
        seed=17, tables_per_paper=(1, 3),
    ))
    # Pick the first three papers that actually carry side-effect tables
    # (Figure 6 uses three source papers).
    papers = []
    index = 0
    while len(papers) < 3 and index < 200:
        paper = generator.paper(index)
        if extract_side_effect_records(paper):
            papers.append(paper)
        index += 1

    profile = build_side_effect_profile(papers)
    print("=== Meta-Profile: COVID-19 vaccination side-effects ===")
    print(f"layers: {' x '.join(profile.layers)}")
    print(f"source papers: {profile.papers}")
    print(f"distinct (vaccine, dose, paper) sources summarized: "
          f"{profile.num_sources}\n")

    grouped = profile.group()
    for vaccine in profile.vaccines:
        print(f"{vaccine}")
        for dose in sorted(grouped[vaccine]):
            print(f"  dose {dose}")
            for paper_id, records in grouped[vaccine][dose].items():
                cells = ", ".join(
                    f"{r.effect}={r.rate:.1f}%" for r in records[:3]
                )
                more = "" if len(records) <= 3 else (
                    f" (+{len(records) - 3} more)"
                )
                print(f"    {paper_id}: {cells}{more}")

    print("\ntop effects per vaccine (mean reported rate):")
    for vaccine in profile.vaccines:
        top = ", ".join(
            f"{effect} {rate:.1f}%"
            for effect, rate in profile.top_effects(vaccine, top_k=3)
        )
        print(f"  {vaccine}: {top}")

    print("\nreading this one profile replaces reading "
          f"{len(profile.papers)} papers end to end.")


if __name__ == "__main__":
    main()

#!/usr/bin/env python3
"""Table-metadata classification: SVM vs BiGRU vs BiLSTM (Section 3).

Builds a labeled WDC+CORD-19-style tuple dataset, trains all three
classifiers, and reports 5-fold cross-validated precision/recall/F1 —
the Section 3.3 evaluation at example scale (the full 10-fold grid lives
in benchmarks/bench_e1_metadata_f1.py).

Run:  python examples/metadata_classification.py
"""

import time

from repro.classify.bigru_model import NeuralMetadataClassifier
from repro.classify.dataset import MetadataDataset
from repro.classify.evaluate import evaluate_classifier_cv
from repro.classify.svm_model import SvmMetadataClassifier
from repro.corpus.generator import CorpusGenerator, GeneratorConfig
from repro.text.vocabulary import Vocabulary


def build_dataset() -> MetadataDataset:
    wdc = MetadataDataset.from_wdc(50, seed=5)
    papers = CorpusGenerator(GeneratorConfig(
        seed=5, tables_per_paper=(1, 2),
    )).papers(30)
    cord = MetadataDataset.from_papers(papers)
    return wdc.merged_with(cord).shuffled(seed=5)


def main() -> None:
    dataset = build_dataset()
    print(f"dataset: {dataset.balance_summary()}")
    print(f"  horizontal tuples: {len(dataset.by_orientation('horizontal'))}")
    print(f"  vertical tuples:   {len(dataset.by_orientation('vertical'))}\n")

    vocabulary = Vocabulary.from_texts(dataset.texts(),
                                       drop_stopwords=False)

    print(f"{'model':10s} {'precision':>9s} {'recall':>8s} "
          f"{'f1':>8s} {'sec':>7s}")
    rows = []

    started = time.perf_counter()
    svm_report = evaluate_classifier_cv(
        lambda: SvmMetadataClassifier(epochs=10, seed=1),
        dataset, num_folds=5,
    )
    rows.append(("SVM", svm_report, time.perf_counter() - started))

    for cell in ("gru", "lstm"):
        started = time.perf_counter()
        report = evaluate_classifier_cv(
            lambda: NeuralMetadataClassifier(
                vocabulary, cell=cell, embed_dim=12, hidden=8,
                max_terms=12, max_cells=6, seed=2,
            ),
            dataset, num_folds=5,
            fit_kwargs={"epochs": 4, "batch_size": 32},
        )
        rows.append((f"Bi{cell.upper()}", report,
                     time.perf_counter() - started))

    for name, report, seconds in rows:
        print(f"{name:10s} {report.mean('precision'):9.3f} "
              f"{report.mean('recall'):8.3f} {report.mean('f1'):8.3f} "
              f"{seconds:7.1f}")

    print("\npaper band: 89-96% F-measure (10-fold CV); "
          "BiGRU ~= BiLSTM quality with faster training (Section 3.6)")


if __name__ == "__main__":
    main()

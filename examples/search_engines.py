#!/usr/bin/env python3
"""The three advanced search engines, demonstrated in depth (Section 2.1).

Covers: stemming match vs quoted exact match, the inclusive-field
semantics of the title/abstract/caption engine, table search with cell
highlighting, pagination, and the per-stage pipeline statistics that show
``$match`` running first.

Run:  python examples/search_engines.py
"""

from repro.corpus.generator import CorpusGenerator, GeneratorConfig
from repro.search.all_fields import AllFieldsEngine
from repro.search.table_search import TableSearchEngine
from repro.search.title_abstract import TitleAbstractCaptionEngine


def build_corpus():
    generator = CorpusGenerator(GeneratorConfig(
        seed=13, papers_per_week=30, tables_per_paper=(1, 2),
    ))
    return generator.papers(90)


def demo_all_fields(corpus) -> None:
    print("=== engine 2: search over all publication fields ===")
    engine = AllFieldsEngine()
    engine.add_papers(corpus)

    for query in ["ventilator", '"injection site pain"', "vaccine dose"]:
        results = engine.search(query)
        print(f"\nquery {query!r}: {results.total_matches} matches, "
              f"page 1 of {results.num_pages} "
              f"({results.seconds * 1000:.1f} ms)")
        for result in list(results)[:2]:
            print(f"  [{result.score:6.2f}] {result.title}")
            for field_name, excerpt in list(result.snippets.items())[:2]:
                print(f"      {field_name}: {excerpt[:90]}")

    # The paper's design: $match first shrinks the stream early.
    results = engine.search("ventilator")
    print("\npipeline stages for 'ventilator':")
    for stage in results.stage_stats:
        print(f"  {stage.stage:18s} in={stage.docs_in:4d} "
              f"out={stage.docs_out:4d} {stage.seconds * 1000:7.2f} ms")

    # Pagination: ten per page, disjoint pages.
    page1 = engine.search("covid", page=1)
    page2 = engine.search("covid", page=2)
    ids1 = {r.paper_id for r in page1}
    ids2 = {r.paper_id for r in page2}
    print(f"\npagination: page1={len(ids1)} results, page2={len(ids2)}, "
          f"overlap={len(ids1 & ids2)}")


def demo_title_abstract(corpus) -> None:
    print("\n=== engine 1: title / abstract / caption (inclusive) ===")
    engine = TitleAbstractCaptionEngine()
    engine.add_papers(corpus)

    title_only = engine.search(title="cohort")
    print(f"title='cohort': {title_only.total_matches} matches")
    both = engine.search(title="cohort", abstract="patients")
    print(f"title='cohort' AND abstract='patients': "
          f"{both.total_matches} matches (inclusive fields prune)")
    assert both.total_matches <= title_only.total_matches
    if both.results:
        top = both.results[0]
        print(f"  top hit: {top.snippets['title']}")
        print(f"  authors: {top.snippets['authors']}")


def demo_tables(corpus) -> None:
    print("\n=== engine 3: search over paper tables ===")
    engine = TableSearchEngine()
    engine.add_papers(corpus)

    results = engine.search("efficacy")
    print(f"query 'efficacy': {results.total_matches} papers with "
          "matching tables")
    for result in list(results)[:2]:
        print(f"  [{result.score:6.2f}] {result.title}")
        for table in result.extras["tables"][:1]:
            print(f"    caption: {table['caption'][:80]}")
            for row in table["rows"][:3]:
                print(f"      {' | '.join(cell[:20] for cell in row)}")


def main() -> None:
    corpus = build_corpus()
    print(f"corpus: {len(corpus)} synthetic publications\n")
    demo_all_fields(corpus)
    demo_title_abstract(corpus)
    demo_tables(corpus)


if __name__ == "__main__":
    main()

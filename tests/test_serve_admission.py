"""Unit tests for admission control: pool, deadlines, retry, RW-lock."""

import threading
import time

import pytest

from repro.errors import (
    DeadlineExceededError,
    ServiceClosedError,
    ServiceOverloadedError,
    ShardingError,
)
from repro.serve.admission import ReadWriteLock, WorkerPool, retry_call


class TestWorkerPool:
    def test_runs_submitted_work(self):
        pool = WorkerPool(num_workers=2, max_queue=32)
        try:
            futures = [pool.submit(lambda i=i: i * i) for i in range(10)]
            assert sorted(f.result(timeout=5) for f in futures) == \
                sorted(i * i for i in range(10))
        finally:
            pool.shutdown()

    def test_full_queue_sheds_with_typed_error(self):
        pool = WorkerPool(num_workers=1, max_queue=2)
        release = threading.Event()
        started = threading.Event()

        def occupy_worker():
            started.set()
            return release.wait()

        try:
            blocker = pool.submit(occupy_worker)
            assert started.wait(timeout=5)  # worker busy, queue empty
            admitted = [pool.submit(lambda: None) for _ in range(2)]
            with pytest.raises(ServiceOverloadedError):
                for _ in range(8):  # definitely beyond the bound
                    pool.submit(lambda: None)
        finally:
            release.set()
            pool.shutdown()
        assert blocker.result(timeout=5)
        for future in admitted:
            assert future.done()

    def test_deadline_enforced_at_dequeue(self):
        pool = WorkerPool(num_workers=1, max_queue=8)
        release = threading.Event()
        try:
            pool.submit(release.wait)
            doomed = pool.submit(lambda: "late",
                                 deadline=time.monotonic() + 0.02)
            time.sleep(0.1)  # deadline passes while queued
            release.set()
            with pytest.raises(DeadlineExceededError):
                doomed.result(timeout=5)
        finally:
            release.set()
            pool.shutdown()

    def test_submit_after_shutdown_rejected(self):
        pool = WorkerPool(num_workers=1, max_queue=2)
        pool.shutdown()
        with pytest.raises(ServiceClosedError):
            pool.submit(lambda: None)

    def test_bad_sizes_rejected(self):
        with pytest.raises(ValueError):
            WorkerPool(num_workers=0)
        with pytest.raises(ValueError):
            WorkerPool(max_queue=0)


class TestRetryCall:
    def test_transient_errors_retried_with_backoff(self):
        attempts = []
        sleeps = []

        def flaky():
            attempts.append(1)
            if len(attempts) < 3:
                raise ShardingError("transient")
            return "ok"

        result = retry_call(flaky, retries=3, backoff_seconds=0.01,
                            retry_on=(ShardingError,),
                            sleep=sleeps.append)
        assert result == "ok"
        assert len(attempts) == 3
        assert sleeps == [0.01, 0.02]  # exponential

    def test_retries_exhausted_raises_last_error(self):
        def always_fails():
            raise ShardingError("still down")

        with pytest.raises(ShardingError):
            retry_call(always_fails, retries=2, backoff_seconds=0.0,
                       retry_on=(ShardingError,), sleep=lambda _: None)

    def test_non_transient_errors_not_retried(self):
        attempts = []

        def boom():
            attempts.append(1)
            raise ValueError("logic bug")

        with pytest.raises(ValueError):
            retry_call(boom, retries=5, retry_on=(ShardingError,),
                       sleep=lambda _: None)
        assert len(attempts) == 1

    def test_no_retry_past_deadline(self):
        def always_fails():
            raise ShardingError("down")

        with pytest.raises(ShardingError):
            retry_call(always_fails, retries=10, backoff_seconds=60.0,
                       retry_on=(ShardingError,),
                       deadline=time.monotonic() + 0.01,
                       sleep=lambda _: None)


class TestReadWriteLock:
    def test_readers_share(self):
        lock = ReadWriteLock()
        inside = threading.Barrier(2, timeout=5)

        def reader():
            with lock.read_locked():
                inside.wait()  # both readers inside at once

        threads = [threading.Thread(target=reader) for _ in range(2)]
        for t in threads:
            t.start()
        for t in threads:
            t.join(timeout=5)
        assert not any(t.is_alive() for t in threads)

    def test_writer_excludes_readers(self):
        lock = ReadWriteLock()
        order = []
        writer_in = threading.Event()

        def writer():
            with lock.write_locked():
                writer_in.set()
                time.sleep(0.05)
                order.append("writer")

        def reader():
            writer_in.wait(timeout=5)
            with lock.read_locked():
                order.append("reader")

        threads = [threading.Thread(target=writer),
                   threading.Thread(target=reader)]
        for t in threads:
            t.start()
        for t in threads:
            t.join(timeout=5)
        assert order == ["writer", "reader"]

"""Tests for docstore extensions: new stages, upserts, sorted indexes."""

import pytest
from hypothesis import given
from hypothesis import strategies as st

from repro.docstore.aggregation import aggregate
from repro.docstore.collection import Collection
from repro.docstore.indexes import SortedFieldIndex
from repro.docstore.matching import range_constraints
from repro.errors import AggregationError

PAPERS = [
    {"_id": 1, "title": "masks", "journal": "JAMA", "year": 2020,
     "cites": 50},
    {"_id": 2, "title": "vaccines", "journal": "BMJ", "year": 2021,
     "cites": 120},
    {"_id": 3, "title": "variants", "journal": "JAMA", "year": 2021,
     "cites": 80},
    {"_id": 4, "title": "ventilators", "journal": "Cell", "year": 2020,
     "cites": 10},
]

JOURNALS = [
    {"name": "JAMA", "impact": 51.3},
    {"name": "BMJ", "impact": 30.2},
]


class TestLookup:
    def test_join_attaches_matches(self):
        result = aggregate(PAPERS, [
            {"$lookup": {"from": JOURNALS, "localField": "journal",
                         "foreignField": "name", "as": "journal_info"}},
            {"$sort": {"_id": 1}},
        ])
        assert result.documents[0]["journal_info"][0]["impact"] == 51.3
        assert result.documents[3]["journal_info"] == []  # Cell: no match

    def test_join_from_collection(self):
        coll = Collection("journals")
        coll.insert_many([dict(j) for j in JOURNALS])
        result = aggregate(PAPERS, [
            {"$lookup": {"from": coll, "localField": "journal",
                         "foreignField": "name", "as": "info"}},
        ])
        assert any(doc["info"] for doc in result.documents)

    def test_missing_args_rejected(self):
        with pytest.raises(AggregationError):
            aggregate(PAPERS, [{"$lookup": {"from": JOURNALS}}])


class TestFacet:
    def test_parallel_subpipelines(self):
        result = aggregate(PAPERS, [
            {"$facet": {
                "by_year": [{"$sortByCount": "$year"}],
                "top_cited": [{"$sort": {"cites": -1}}, {"$limit": 1},
                              {"$project": {"title": 1, "_id": 0}}],
            }},
        ])
        assert len(result.documents) == 1
        facets = result.documents[0]
        assert facets["top_cited"] == [{"title": "vaccines"}]
        assert {row["_id"]: row["count"] for row in facets["by_year"]} == {
            2020: 2, 2021: 2,
        }

    def test_facets_do_not_interfere(self):
        result = aggregate(PAPERS, [
            {"$facet": {
                "mutate": [{"$addFields": {"cites": 0}}],
                "original": [{"$sort": {"_id": 1}},
                             {"$project": {"cites": 1, "_id": 0}}],
            }},
        ])
        original = result.documents[0]["original"]
        assert original[0]["cites"] == 50  # untouched by the sibling facet


class TestSample:
    def test_sample_size(self):
        result = aggregate(PAPERS, [{"$sample": {"size": 2, "seed": 1}}])
        assert len(result.documents) == 2

    def test_sample_larger_than_input_returns_all(self):
        result = aggregate(PAPERS, [{"$sample": {"size": 99}}])
        assert len(result.documents) == 4

    def test_sample_deterministic_with_seed(self):
        a = aggregate(PAPERS, [{"$sample": {"size": 2, "seed": 7}}])
        b = aggregate(PAPERS, [{"$sample": {"size": 2, "seed": 7}}])
        assert a.documents == b.documents

    def test_invalid_size(self):
        with pytest.raises(AggregationError):
            aggregate(PAPERS, [{"$sample": {"size": 0}}])


class TestBucket:
    def test_histogram(self):
        result = aggregate(PAPERS, [
            {"$bucket": {"groupBy": "$cites",
                         "boundaries": [0, 50, 100, 200]}},
        ])
        assert result.documents == [
            {"_id": 0, "count": 1},
            {"_id": 50, "count": 2},
            {"_id": 100, "count": 1},
        ]

    def test_out_of_range_needs_default(self):
        with pytest.raises(AggregationError):
            aggregate(PAPERS, [
                {"$bucket": {"groupBy": "$cites", "boundaries": [0, 20]}},
            ])

    def test_default_bucket(self):
        result = aggregate(PAPERS, [
            {"$bucket": {"groupBy": "$cites", "boundaries": [0, 20],
                         "default": "other"}},
        ])
        by_id = {doc["_id"]: doc["count"] for doc in result.documents}
        assert by_id == {0: 1, "other": 3}

    def test_custom_output_accumulators(self):
        result = aggregate(PAPERS, [
            {"$bucket": {"groupBy": "$year", "boundaries": [2020, 2021, 2022],
                         "output": {"total": {"$sum": "$cites"},
                                    "titles": {"$push": "$title"}}}},
        ])
        first = result.documents[0]
        assert first["_id"] == 2020 and first["total"] == 60
        assert set(first["titles"]) == {"masks", "ventilators"}

    def test_unsorted_boundaries_rejected(self):
        with pytest.raises(AggregationError):
            aggregate(PAPERS, [
                {"$bucket": {"groupBy": "$cites", "boundaries": [10, 5]}},
            ])


class TestSortByCountAndReplaceRoot:
    def test_sort_by_count(self):
        result = aggregate(PAPERS, [{"$sortByCount": "$journal"}])
        assert result.documents[0] == {"_id": "JAMA", "count": 2}
        assert len(result.documents) == 3

    def test_replace_root(self):
        docs = [{"wrapper": {"inner": {"v": 1}}}]
        result = aggregate(docs, [
            {"$replaceRoot": {"newRoot": "$wrapper.inner"}},
        ])
        assert result.documents == [{"v": 1}]

    def test_replace_root_non_document_rejected(self):
        with pytest.raises(AggregationError):
            aggregate(PAPERS, [{"$replaceRoot": {"newRoot": "$title"}}])


class TestUpsert:
    def test_update_one_upsert_inserts(self):
        coll = Collection()
        modified = coll.update_one({"key": "a"}, {"$inc": {"n": 1}},
                                   upsert=True)
        assert modified == 1
        assert coll.find_one({"key": "a"})["n"] == 1

    def test_upsert_applies_set_on_insert_only_on_insert(self):
        coll = Collection()
        update = {"$inc": {"n": 1}, "$setOnInsert": {"created": "day0"}}
        coll.update_one({"key": "a"}, update, upsert=True)
        coll.update_one({"key": "a"}, update, upsert=True)
        doc = coll.find_one({"key": "a"})
        assert doc["n"] == 2
        assert doc["created"] == "day0"
        assert coll.count() == 1

    def test_upsert_seeds_from_equality_constraints(self):
        coll = Collection()
        coll.update_one({"a": 1, "b": {"$eq": 2}, "c": {"$gt": 5}},
                        {"$set": {"x": True}}, upsert=True)
        doc = coll.find_one({"a": 1})
        assert doc["b"] == 2
        assert "c" not in doc  # range constraints do not seed


class TestFindOneAndUpdate:
    def test_returns_new_by_default(self):
        coll = Collection()
        coll.insert_one({"k": "a", "n": 1})
        doc = coll.find_one_and_update({"k": "a"}, {"$inc": {"n": 1}})
        assert doc["n"] == 2

    def test_returns_old_when_requested(self):
        coll = Collection()
        coll.insert_one({"k": "a", "n": 1})
        doc = coll.find_one_and_update({"k": "a"}, {"$inc": {"n": 1}},
                                       return_new=False)
        assert doc["n"] == 1
        assert coll.find_one({"k": "a"})["n"] == 2

    def test_no_match_returns_none(self):
        assert Collection().find_one_and_update(
            {"k": "zzz"}, {"$set": {"x": 1}}
        ) is None

    def test_upsert_path(self):
        coll = Collection()
        doc = coll.find_one_and_update({"k": "a"}, {"$set": {"x": 1}},
                                       upsert=True)
        assert doc["x"] == 1


class TestSortedIndex:
    def test_range_lookup(self):
        index = SortedFieldIndex("year")
        for i, year in enumerate([2019, 2020, 2020, 2021, 2022]):
            index.add(i, {"year": year})
        assert index.range(2020, True, 2021, True) == {1, 2, 3}
        assert index.range(2020, False, None, True) == {3, 4}
        assert index.range(None, True, 2020, False) == {0}

    def test_skips_non_scalars(self):
        index = SortedFieldIndex("v")
        index.add(1, {"v": [1, 2]})
        index.add(2, {"v": {"nested": 1}})
        index.add(3, {"v": None})
        index.add(4, {})
        assert len(index) == 0

    def test_remove_and_update(self):
        index = SortedFieldIndex("v")
        index.add(1, {"v": 5})
        index.add(2, {"v": 5})
        index.remove(1)
        assert index.lookup(5) == {2}
        index.update(2, {"v": 9})
        assert index.lookup(5) == set()
        assert index.lookup(9) == {2}

    def test_collection_range_query_uses_index(self):
        coll = Collection()
        coll.insert_many([{"year": 2015 + i % 8} for i in range(80)])
        coll.create_sorted_index("year")
        coll.scan_count = 0
        results = coll.find({"year": {"$gte": 2021}}).to_list()
        assert len(results) == 20
        assert coll.scan_count == 20  # only the indexed range scanned

    def test_collection_index_survives_updates(self):
        coll = Collection()
        ids = coll.insert_many([{"year": 2020}, {"year": 2021}])
        coll.create_sorted_index("year")
        coll.update_one({"_id": ids[0]}, {"$set": {"year": 2022}})
        coll.scan_count = 0
        assert coll.count({"year": {"$gt": 2021}}) == 1
        assert coll.scan_count == 1

    def test_range_constraints_extraction(self):
        query = {"a": {"$gte": 1, "$lt": 5}, "b": {"$eq": 3},
                 "c": {"$regex": "x"}, "d": 7}
        constraints = range_constraints(query)
        assert constraints["a"] == (1, True, 5, False)
        assert constraints["b"] == (3, True, 3, True)
        assert "c" not in constraints
        assert "d" not in constraints


@given(st.lists(st.integers(0, 100), min_size=1, max_size=50),
       st.integers(0, 100), st.integers(0, 100))
def test_sorted_index_range_matches_bruteforce(values, lo, hi):
    if lo > hi:
        lo, hi = hi, lo
    index = SortedFieldIndex("v")
    for i, value in enumerate(values):
        index.add(i, {"v": value})
    expected = {i for i, value in enumerate(values) if lo <= value <= hi}
    assert index.range(lo, True, hi, True) == expected


@given(st.lists(st.integers(0, 20), min_size=1, max_size=40),
       st.integers(1, 10), st.integers(0, 5))
def test_sample_is_subset_without_replacement(values, size, seed):
    docs = [{"_id": i, "v": value} for i, value in enumerate(values)]
    result = aggregate(docs, [{"$sample": {"size": size, "seed": seed}}])
    ids = [doc["_id"] for doc in result.documents]
    assert len(ids) == len(set(ids))
    assert len(ids) == min(size, len(docs))
    assert set(ids) <= {doc["_id"] for doc in docs}


class TestArrayExpressions:
    DOC = {"rates": [5.0, 60.0, 20.0],
           "effects": [{"name": "fever", "rate": 30.0},
                       {"name": "rash", "rate": 2.0}],
           "tag": "fever"}

    def ev(self, expr):
        from repro.docstore.aggregation import evaluate_expression
        from repro.docstore.functions import FunctionRegistry
        return evaluate_expression(expr, self.DOC, FunctionRegistry())

    def test_in_expression(self):
        assert self.ev({"$in": [20.0, "$rates"]}) is True
        assert self.ev({"$in": [99.0, "$rates"]}) is False

    def test_in_requires_array(self):
        with pytest.raises(AggregationError):
            self.ev({"$in": [1, "$tag"]})

    def test_array_elem_at(self):
        assert self.ev({"$arrayElemAt": ["$rates", 1]}) == 60.0
        assert self.ev({"$arrayElemAt": ["$rates", -1]}) == 20.0
        assert self.ev({"$arrayElemAt": ["$rates", 9]}) is None

    def test_filter_scalars(self):
        result = self.ev({"$filter": {
            "input": "$rates",
            "cond": {"$gt": ["$$this", 10.0]},
        }})
        assert result == [60.0, 20.0]

    def test_filter_documents_with_custom_variable(self):
        result = self.ev({"$filter": {
            "input": "$effects", "as": "effect",
            "cond": {"$gte": ["$$effect.rate", 10.0]},
        }})
        assert [item["name"] for item in result] == ["fever"]

    def test_map(self):
        result = self.ev({"$map": {
            "input": "$rates",
            "in": {"$multiply": ["$$this", 2]},
        }})
        assert result == [10.0, 120.0, 40.0]

    def test_map_over_documents(self):
        result = self.ev({"$map": {
            "input": "$effects", "as": "e",
            "in": "$$e.name",
        }})
        assert result == ["fever", "rash"]

    def test_min_max_expr(self):
        assert self.ev({"$minExpr": ["$tag", {"$literal": "alpha"}]}) == (
            "alpha"
        )
        assert self.ev({"$maxExpr": [1, 5, 3]}) == 5

    def test_filter_inside_pipeline(self):
        docs = [{"effects": [{"rate": 5.0}, {"rate": 50.0}]}]
        result = aggregate(docs, [
            {"$addFields": {"severe": {"$filter": {
                "input": "$effects",
                "cond": {"$gte": ["$$this.rate", 10.0]},
            }}}},
            {"$project": {"n": {"$size": "$severe"}, "_id": 0}},
        ])
        assert result.documents == [{"n": 1}]

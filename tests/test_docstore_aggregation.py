"""Tests for the aggregation pipeline engine."""

import pytest

from repro.docstore.aggregation import (
    AggregationPipeline,
    aggregate,
    evaluate_expression,
)
from repro.docstore.collection import Collection
from repro.docstore.functions import FunctionRegistry
from repro.errors import AggregationError

DOCS = [
    {"_id": 1, "title": "masks", "year": 2020, "cites": 50,
     "tags": ["ppe", "cloth"]},
    {"_id": 2, "title": "vaccines", "year": 2021, "cites": 120,
     "tags": ["mrna"]},
    {"_id": 3, "title": "variants", "year": 2021, "cites": 80,
     "tags": ["mrna", "delta"]},
    {"_id": 4, "title": "ventilators", "year": 2020, "cites": 10,
     "tags": []},
]


def collection():
    coll = Collection("agg")
    coll.insert_many(DOCS)
    return coll


class TestMatchProject:
    def test_match_filters(self):
        result = aggregate(DOCS, [{"$match": {"year": 2021}}])
        assert {d["_id"] for d in result} == {2, 3}

    def test_project_inclusion(self):
        result = aggregate(DOCS, [
            {"$match": {"_id": 1}},
            {"$project": {"title": 1, "_id": 0}},
        ])
        assert result.documents == [{"title": "masks"}]

    def test_project_computed_field(self):
        result = aggregate(DOCS, [
            {"$match": {"_id": 1}},
            {"$project": {"double_cites": {"$multiply": ["$cites", 2]},
                          "_id": 0}},
        ])
        assert result.documents == [{"double_cites": 100.0}]

    def test_add_fields(self):
        result = aggregate(DOCS, [
            {"$addFields": {"decade": {"$subtract": ["$year", 2020]}}},
        ])
        assert result.documents[0]["decade"] == 0
        assert result.documents[1]["decade"] == 1


class TestShaping:
    def test_sort_skip_limit(self):
        result = aggregate(DOCS, [
            {"$sort": {"cites": -1}},
            {"$skip": 1},
            {"$limit": 2},
        ])
        assert [d["cites"] for d in result] == [80, 50]

    def test_count(self):
        result = aggregate(DOCS, [
            {"$match": {"year": 2020}},
            {"$count": "n"},
        ])
        assert result.documents == [{"n": 2}]

    def test_unwind(self):
        result = aggregate(DOCS, [
            {"$match": {"_id": 3}},
            {"$unwind": "$tags"},
        ])
        assert [d["tags"] for d in result] == ["mrna", "delta"]

    def test_unwind_drops_empty_by_default(self):
        result = aggregate(DOCS, [{"$unwind": "$tags"}])
        assert all(d["_id"] != 4 for d in result)

    def test_unwind_preserve_empty(self):
        result = aggregate(DOCS, [
            {"$unwind": {"path": "$tags",
                         "preserveNullAndEmptyArrays": True}},
        ])
        assert any(d["_id"] == 4 for d in result)


class TestGroup:
    def test_group_sum_avg(self):
        result = aggregate(DOCS, [
            {"$group": {"_id": "$year",
                        "total": {"$sum": "$cites"},
                        "mean": {"$avg": "$cites"}}},
            {"$sort": {"_id": 1}},
        ])
        assert result.documents == [
            {"_id": 2020, "total": 60, "mean": 30.0},
            {"_id": 2021, "total": 200, "mean": 100.0},
        ]

    def test_group_min_max_push(self):
        result = aggregate(DOCS, [
            {"$group": {"_id": None,
                        "lo": {"$min": "$cites"},
                        "hi": {"$max": "$cites"},
                        "titles": {"$push": "$title"}}},
        ])
        doc = result.documents[0]
        assert doc["lo"] == 10 and doc["hi"] == 120
        assert len(doc["titles"]) == 4

    def test_group_add_to_set_first_last(self):
        result = aggregate(DOCS, [
            {"$sort": {"_id": 1}},
            {"$group": {"_id": "$year",
                        "first_title": {"$first": "$title"},
                        "last_title": {"$last": "$title"}}},
            {"$sort": {"_id": 1}},
        ])
        assert result.documents[0]["first_title"] == "masks"
        assert result.documents[0]["last_title"] == "ventilators"

    def test_group_requires_id(self):
        with pytest.raises(AggregationError):
            aggregate(DOCS, [{"$group": {"x": {"$sum": 1}}}])


class TestFunctionStage:
    def test_function_stage_computes_per_document(self):
        registry = FunctionRegistry()
        registry.register("boost", lambda cites: cites * 10)
        result = aggregate(DOCS, [
            {"$function": {"name": "boost", "args": ["$cites"],
                           "as": "boosted"}},
            {"$match": {"boosted": {"$gte": 800}}},
        ], registry)
        assert {d["_id"] for d in result} == {2, 3}

    def test_function_receives_root(self):
        registry = FunctionRegistry()
        registry.register("label", lambda doc: f"{doc['title']}-{doc['year']}")
        result = aggregate(DOCS[:1], [
            {"$function": {"name": "label", "as": "label"}},
        ], registry)
        assert result.documents[0]["label"] == "masks-2020"

    def test_unknown_function_raises(self):
        with pytest.raises(AggregationError):
            aggregate(DOCS, [{"$function": {"name": "missing"}}],
                      FunctionRegistry())


class TestExpressions:
    REGISTRY = FunctionRegistry()

    def ev(self, expr, doc):
        return evaluate_expression(expr, doc, self.REGISTRY)

    def test_field_reference(self):
        assert self.ev("$a.b", {"a": {"b": 3}}) == 3

    def test_arithmetic(self):
        doc = {"x": 10, "y": 4}
        assert self.ev({"$add": ["$x", "$y", 1]}, doc) == 15
        assert self.ev({"$subtract": ["$x", "$y"]}, doc) == 6
        assert self.ev({"$multiply": ["$x", 2]}, doc) == 20
        assert self.ev({"$divide": ["$x", "$y"]}, doc) == 2.5

    def test_divide_by_zero(self):
        with pytest.raises(AggregationError):
            self.ev({"$divide": [1, 0]}, {})

    def test_concat_and_case(self):
        doc = {"a": "Covid", "b": "KG"}
        assert self.ev({"$concat": ["$a", "-", "$b"]}, doc) == "Covid-KG"
        assert self.ev({"$toLower": "$a"}, doc) == "covid"
        assert self.ev({"$toUpper": "$b"}, doc) == "KG"

    def test_cond_and_ifnull(self):
        doc = {"n": 5}
        expr = {"$cond": [{"$gt": ["$n", 3]}, "big", "small"]}
        assert self.ev(expr, doc) == "big"
        assert self.ev({"$ifNull": ["$missing", "dflt"]}, doc) == "dflt"

    def test_size_and_literal(self):
        doc = {"tags": [1, 2, 3]}
        assert self.ev({"$size": "$tags"}, doc) == 3
        assert self.ev({"$literal": "$tags"}, doc) == "$tags"

    def test_unknown_operator_raises(self):
        with pytest.raises(AggregationError):
            self.ev({"$nonsense": 1}, {})


class TestPushdownAndStats:
    def test_leading_match_uses_collection_index(self):
        coll = collection()
        coll.create_index("year")
        coll.scan_count = 0
        pipeline = AggregationPipeline([{"$match": {"year": 2021}}])
        result = pipeline.run(coll)
        assert len(result) == 2
        assert coll.scan_count == 2  # indexed, not a full scan
        assert result.stages[0].stage == "$match(indexed)"

    def test_stage_stats_track_docs_in_out(self):
        result = aggregate(DOCS, [
            {"$match": {"year": 2021}},
            {"$limit": 1},
        ])
        assert result.stages[0].docs_in == 4
        assert result.stages[0].docs_out == 2
        assert result.stages[1].docs_out == 1
        assert result.total_seconds >= 0

    def test_pipeline_does_not_mutate_source(self):
        docs = [{"_id": 1, "v": 1}]
        aggregate(docs, [{"$addFields": {"v": 99}}])
        assert docs[0]["v"] == 1


class TestValidation:
    def test_unknown_stage_rejected_at_construction(self):
        with pytest.raises(AggregationError):
            AggregationPipeline([{"$flatten": {}}])

    def test_multi_key_stage_rejected(self):
        with pytest.raises(AggregationError):
            AggregationPipeline([{"$match": {}, "$limit": 1}])

"""Tests for k-means clustering and cross-validation utilities."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.errors import ModelError, NotFittedError
from repro.ml.crossval import StratifiedKFold, cross_validate, train_test_split
from repro.ml.kmeans import KMeans, normalized_mutual_information, purity
from repro.ml.svm import LinearSVM

RNG = np.random.default_rng(17)


def three_blobs(n_per=40, spread=0.3):
    centers = np.array([[0.0, 0.0], [5.0, 5.0], [-5.0, 5.0]])
    points, labels = [], []
    for label, center in enumerate(centers):
        points.append(center + RNG.normal(scale=spread, size=(n_per, 2)))
        labels.extend([label] * n_per)
    return np.vstack(points), np.array(labels)


class TestKMeans:
    def test_recovers_separated_blobs(self):
        points, truth = three_blobs()
        assignments = KMeans(3, seed=1).fit_predict(points)
        assert purity(assignments, truth) > 0.95

    def test_inertia_decreases_with_more_clusters(self):
        points, _ = three_blobs()
        inertia1 = KMeans(1, seed=1).fit(points).inertia_
        inertia3 = KMeans(3, seed=1).fit(points).inertia_
        assert inertia3 < inertia1

    def test_predict_assigns_nearest_centroid(self):
        points, _ = three_blobs()
        model = KMeans(3, seed=2).fit(points)
        prediction = model.predict(np.array([[5.0, 5.0]]))
        centroid = model.centroids[prediction[0]]
        assert np.linalg.norm(centroid - [5.0, 5.0]) < 1.0

    def test_requires_enough_points(self):
        with pytest.raises(ModelError):
            KMeans(5).fit(np.zeros((3, 2)))

    def test_unfitted_predict_raises(self):
        with pytest.raises(NotFittedError):
            KMeans(2).predict(np.zeros((1, 2)))

    def test_duplicate_points_handled(self):
        points = np.ones((10, 2))
        model = KMeans(2, seed=0).fit(points)
        assert model.inertia_ == pytest.approx(0.0)

    def test_deterministic_given_seed(self):
        points, _ = three_blobs()
        a = KMeans(3, seed=5).fit(points).centroids
        b = KMeans(3, seed=5).fit(points).centroids
        np.testing.assert_array_equal(a, b)


class TestClusterMetrics:
    def test_perfect_clustering(self):
        truth = np.array([0, 0, 1, 1, 2, 2])
        assert purity(truth, truth) == 1.0
        assert normalized_mutual_information(truth, truth) == (
            pytest.approx(1.0)
        )

    def test_permuted_labels_still_perfect(self):
        truth = np.array([0, 0, 1, 1])
        permuted = np.array([1, 1, 0, 0])
        assert purity(permuted, truth) == 1.0
        assert normalized_mutual_information(permuted, truth) == (
            pytest.approx(1.0)
        )

    def test_single_cluster_of_mixed_labels(self):
        truth = np.array([0, 1, 0, 1])
        assignments = np.zeros(4, dtype=int)
        assert purity(assignments, truth) == 0.5
        assert normalized_mutual_information(assignments, truth) == 0.0

    def test_length_mismatch(self):
        with pytest.raises(ModelError):
            purity(np.array([0]), np.array([0, 1]))


class TestSplits:
    def test_train_test_split_partitions(self):
        x = np.arange(20).reshape(-1, 1)
        y = np.arange(20)
        train_x, test_x, train_y, test_y = train_test_split(
            x, y, test_fraction=0.25, seed=1
        )
        assert len(test_x) == 5 and len(train_x) == 15
        assert sorted(np.concatenate([train_y, test_y]).tolist()) == (
            list(range(20))
        )

    def test_invalid_fraction(self):
        with pytest.raises(ModelError):
            train_test_split(np.zeros((4, 1)), np.zeros(4), test_fraction=1.5)

    def test_stratified_folds_preserve_balance(self):
        labels = np.array([0] * 80 + [1] * 20)
        for train, test in StratifiedKFold(5, seed=0).split(labels):
            positives = labels[test].mean()
            assert 0.1 <= positives <= 0.3
            assert len(train) + len(test) == 100

    def test_folds_are_disjoint_and_cover(self):
        labels = RNG.integers(0, 2, 50)
        seen = []
        for _, test in StratifiedKFold(5, seed=1).split(labels):
            seen.extend(test.tolist())
        assert sorted(seen) == list(range(50))

    def test_too_few_folds_rejected(self):
        with pytest.raises(ModelError):
            StratifiedKFold(1)


class TestCrossValidate:
    def test_cv_on_separable_data_scores_high(self):
        x = RNG.normal(size=(100, 2))
        y = (x[:, 0] > 0).astype(int)
        x[y == 1] += 2.0
        result = cross_validate(lambda: LinearSVM(epochs=15), x, y,
                                num_folds=5, seed=2)
        assert result.mean("f1") > 0.9
        assert len(result.fold_metrics) == 5
        assert set(result.summary()) == {
            "precision", "recall", "f1", "accuracy",
        }

    def test_cv_std_available(self):
        x = RNG.normal(size=(60, 2))
        y = (x[:, 0] > 0).astype(int)
        result = cross_validate(lambda: LinearSVM(epochs=5), x, y,
                                num_folds=3)
        assert result.std("f1") >= 0.0


@settings(deadline=None, max_examples=20)
@given(st.integers(2, 5), st.integers(20, 60))
def test_kfold_partition_property(num_folds, num_samples):
    labels = np.arange(num_samples) % 2
    folds = list(StratifiedKFold(num_folds, seed=3).split(labels))
    all_test = sorted(i for _, test in folds for i in test.tolist())
    assert all_test == list(range(num_samples))
    for train, test in folds:
        assert set(train.tolist()).isdisjoint(test.tolist())

"""Tests for the TF-IDF model behind the ranking functions."""

import math

import pytest
from hypothesis import given
from hypothesis import strategies as st

from repro.errors import NotFittedError
from repro.text.tfidf import TfIdfModel
from repro.text.tokenizer import tokenize

CORPUS = [
    "masks reduce covid transmission",
    "masks and respirators in hospitals",
    "vaccine efficacy against covid variants",
    "ventilators in intensive care units",
]


@pytest.fixture()
def model():
    return TfIdfModel().fit(CORPUS)


class TestIdf:
    def test_rare_term_outweighs_common_term(self, model):
        assert model.idf("ventilators") > model.idf("masks")

    def test_unseen_term_gets_max_idf(self, model):
        unseen = model.idf("zzzunseen")
        assert unseen >= model.idf("ventilators")
        assert math.isfinite(unseen)

    def test_unfitted_raises(self):
        with pytest.raises(NotFittedError):
            TfIdfModel().idf("masks")

    def test_document_frequency(self, model):
        assert model.document_frequency("masks") == 2
        assert model.document_frequency("covid") == 2
        assert model.document_frequency("absent") == 0

    def test_df_counts_documents_not_occurrences(self):
        model = TfIdfModel().fit(["masks masks masks"])
        assert model.document_frequency("masks") == 1


class TestScoring:
    def test_term_absent_scores_zero(self, model):
        assert model.tfidf("vaccine", tokenize(CORPUS[0])) == 0.0

    def test_repeated_term_scores_higher(self, model):
        single = model.tfidf("masks", tokenize("masks work"))
        double = model.tfidf("masks", tokenize("masks masks work"))
        assert double > single

    def test_score_document_sums_terms(self, model):
        joint = model.score_document(["masks", "covid"], CORPUS[0])
        solo = model.score_document(["masks"], CORPUS[0])
        assert joint > solo

    def test_vector_matches_pointwise(self, model):
        vocab = ["masks", "covid", "absent"]
        vec = model.vector(CORPUS[0], vocab)
        tokens = tokenize(CORPUS[0])
        assert vec == [model.tfidf(t, tokens) for t in vocab]

    def test_incremental_add_matches_fit(self):
        incremental = TfIdfModel()
        for doc in CORPUS:
            incremental.add_document(doc)
        fitted = TfIdfModel().fit(CORPUS)
        assert incremental.idf("masks") == fitted.idf("masks")


@given(st.lists(st.text(alphabet="abc ", min_size=1, max_size=30),
                min_size=1, max_size=20))
def test_idf_monotone_in_document_frequency(docs):
    model = TfIdfModel().fit(docs)
    terms = {t for doc in docs for t in tokenize(doc)}
    for term in terms:
        # More frequent terms never get a larger IDF than rarer ones.
        for other in terms:
            if model.document_frequency(term) > model.document_frequency(other):
                assert model.idf(term) <= model.idf(other)

"""Pre-flight pipeline validation, and its wiring into the stack."""

from __future__ import annotations

import pytest

from repro.analysis.pipeline_check import (
    PipelineValidationError,
    ensure_valid_pipeline,
    validate_pipeline,
)
from repro.docstore.functions import FunctionRegistry
from repro.docstore.sharding import ShardedCollection
from repro.errors import AggregationError


@pytest.fixture()
def registry():
    reg = FunctionRegistry()
    reg.register("rank", lambda doc: 1.0)
    return reg


GOOD_PIPELINE = [
    {"$match": {"year": {"$gte": 2020},
                "$or": [{"journal": "Nature"}, {"journal": "Cell"}]}},
    {"$project": {"title": 1, "year": 1}},
    {"$addFields": {"boost": {"$multiply": ["$year", 0.001]}}},
    {"$function": {"name": "rank", "args": ["$$ROOT"], "as": "score"}},
    {"$sort": {"score": -1}},
    {"$skip": 10},
    {"$limit": 10},
]


def test_good_pipeline_has_no_issues(registry):
    assert validate_pipeline(GOOD_PIPELINE, registry) == []
    assert ensure_valid_pipeline(GOOD_PIPELINE, registry) == []


def _errors(stages, registry=None):
    return [issue for issue in validate_pipeline(stages, registry)
            if issue.severity == "error"]


def test_non_list_pipeline_is_an_error():
    (issue,) = _errors({"$match": {}})
    assert "must be a list" in issue.message


def test_multi_key_stage_is_an_error():
    (issue,) = _errors([{"$match": {}, "$limit": 1}])
    assert "single-key" in issue.message


def test_unknown_stage_gets_a_did_you_mean_hint():
    (issue,) = _errors([{"$matc": {"x": 1}}])
    assert "unknown stage" in issue.message
    assert "$match" in issue.message


def test_unknown_match_operator_rejected():
    (issue,) = _errors([{"$match": {"x": {"$gtee": 3}}}])
    assert "$gtee" in issue.message and "$gte" in issue.message


def test_logical_operator_shape_checked():
    (issue,) = _errors([{"$match": {"$or": {"x": 1}}}])
    assert "non-empty list" in issue.message


def test_in_requires_array():
    (issue,) = _errors([{"$match": {"x": {"$in": 3}}}])
    assert "requires an array" in issue.message


def test_elem_match_subquery_validated():
    (issue,) = _errors([{"$match":
                         {"rows": {"$elemMatch": {"v": {"$bogus": 1}}}}}])
    assert "$bogus" in issue.message


def test_unregistered_function_stage_rejected(registry):
    (issue,) = _errors([{"$function": {"name": "nope"}}], registry)
    assert "not registered" in issue.message
    assert "rank" in issue.message  # the hint lists what exists


def test_function_stage_without_registry_skips_resolution():
    # registry=None: per-query functions may be registered later.
    assert _errors([{"$function": {"name": "later"}}], None) == []


def test_unregistered_function_expression_rejected(registry):
    (issue,) = _errors(
        [{"$addFields": {"s": {"$function": {"name": "ghost"}}}}], registry
    )
    assert "ghost" in issue.message


def test_unknown_expression_operator_rejected():
    (issue,) = _errors([{"$project": {"z": {"$addd": [1, 2]}}}])
    assert "$addd" in issue.message and "$add" in issue.message


def test_expression_arity_checked():
    (issue,) = _errors([{"$addFields": {"z": {"$divide": [1, 2, 3]}}}])
    assert "exactly 2 operands" in issue.message


def test_cond_shape_checked():
    (issue,) = _errors([{"$addFields": {"z": {"$cond": [1, 2]}}}])
    assert "$cond" in issue.message


def test_sort_direction_checked():
    (issue,) = _errors([{"$sort": {"score": "desc"}}])
    assert "must be 1 or -1" in issue.message


def test_skip_and_limit_must_be_nonnegative_ints():
    issues = _errors([{"$skip": -1}, {"$limit": "ten"}])
    assert len(issues) == 2


def test_unwind_path_shape_checked():
    (issue,) = _errors([{"$unwind": "authors"}])
    assert "starting with '$'" in issue.message


def test_group_requires_id_and_known_accumulators():
    issues = _errors([{"$group": {"total": {"$summ": "$x"}}}])
    messages = " ".join(issue.message for issue in issues)
    assert "_id" in messages
    assert "$summ" in messages and "$sum" in messages


def test_facet_subpipelines_validated(registry):
    (issue,) = _errors(
        [{"$facet": {"top": [{"$bogus": 1}]}}], registry
    )
    assert "facet 'top'" in issue.message and "$bogus" in issue.message


def test_bucket_boundaries_checked():
    (issue,) = _errors([{"$bucket": {"groupBy": "$y",
                                     "boundaries": [3, 1, 2]}}])
    assert "sorted" in issue.message


def test_perf_warning_match_not_first():
    issues = validate_pipeline(
        [{"$sort": {"x": 1}}, {"$match": {"x": 1}}]
    )
    assert [issue.severity for issue in issues] == ["warning"]
    assert "index pushdown" in issues[0].message


def test_no_match_warning_when_match_needs_computed_fields():
    issues = validate_pipeline([
        {"$group": {"_id": "$j", "n": {"$count": {}}}},
        {"$match": {"n": {"$gte": 2}}},
    ])
    assert issues == []


def test_perf_warning_sort_after_limit():
    issues = validate_pipeline(
        [{"$match": {"x": 1}}, {"$limit": 5}, {"$sort": {"x": 1}}]
    )
    assert [issue.severity for issue in issues] == ["warning"]
    assert "already-truncated" in issues[0].message


def test_ensure_valid_raises_with_all_errors(registry):
    with pytest.raises(PipelineValidationError) as excinfo:
        ensure_valid_pipeline(
            [{"$matc": {}}, {"$sort": {"x": 0}}], registry
        )
    assert len(excinfo.value.issues) == 2
    assert isinstance(excinfo.value, AggregationError)


def test_warnings_do_not_raise(registry):
    issues = ensure_valid_pipeline(
        [{"$limit": 5}, {"$sort": {"x": 1}}], registry
    )
    assert [issue.severity for issue in issues] == ["warning"]


# -- wiring ----------------------------------------------------------------

def _sharded(num_docs: int = 8) -> ShardedCollection:
    collection = ShardedCollection("pubs", shard_key="paper_id",
                                   num_shards=3)
    collection.insert_many([
        {"paper_id": f"p{i}", "year": 2019 + (i % 4)}
        for i in range(num_docs)
    ])
    return collection


def test_sharded_aggregate_rejects_before_fanout():
    collection = _sharded()
    scans_before = collection.total_scan_count
    with pytest.raises(PipelineValidationError):
        collection.aggregate([{"$match": {"x": {"$bogus": 1}}}],
                             validate=True)
    # Pre-flight means *pre*-flight: no shard was scanned.
    assert collection.total_scan_count == scans_before


def test_sharded_aggregate_env_default(monkeypatch):
    collection = _sharded()
    monkeypatch.setenv("REPRO_VALIDATE_PIPELINES", "1")
    with pytest.raises(PipelineValidationError):
        collection.aggregate([{"$bogus": {}}])
    # Explicit validate=False overrides the environment.
    result = collection.aggregate([{"$match": {"year": {"$gte": 2020}}}],
                                  validate=False)
    assert len(result.documents) > 0


def test_sharded_aggregate_valid_pipeline_unaffected():
    collection = _sharded()
    checked = collection.aggregate(
        [{"$match": {"year": {"$gte": 2020}}}, {"$sort": {"paper_id": 1}}],
        validate=True,
    )
    unchecked = collection.aggregate(
        [{"$match": {"year": {"$gte": 2020}}}, {"$sort": {"paper_id": 1}}],
        validate=False,
    )
    assert checked.documents == unchecked.documents


def test_engine_validate_pipelines_flag():
    from repro.corpus.generator import CorpusGenerator
    from repro.search.all_fields import AllFieldsEngine

    engine = AllFieldsEngine()
    engine.add_papers(CorpusGenerator().papers(6))
    engine.validate_pipelines = True
    results = engine.search("covid", page=1)  # $function resolves
    assert results.total_matches >= 0


def test_covidkg_config_validate_pipelines_flag():
    from repro.api.system import CovidKG, CovidKGConfig

    system = CovidKG(CovidKGConfig(validate_pipelines=True))
    assert system.all_fields.validate_pipelines
    assert system.title_abstract.validate_pipelines
    assert system.tables.validate_pipelines


def test_serve_config_validate_pipelines_flag():
    from repro.api.system import CovidKG
    from repro.corpus.generator import CorpusGenerator
    from repro.serve.service import QueryService, ServeConfig

    system = CovidKG()
    system.ingest(CorpusGenerator().papers(6))
    with QueryService(system,
                      ServeConfig(validate_pipelines=True)) as service:
        assert system.all_fields.validate_pipelines
        page = service.query("all_fields", query="covid")
        assert page.engine == "all_fields"

"""Regression tests for the concurrency bugs the linter flagged.

Each test here pins a specific fix: the executor's shutdown-under-lock
deadlock (both the explicit teardown and the width-change rebuild),
observer callbacks running under the module lock, the fan-out paths
that used to raise before quiescing (or mask a falsy winner), the
admission pool's submit/shutdown race, and the metrics/cache snapshot
methods that used to read shared counters with no lock at all.  The
deadlock tests run the risky sequence on a helper thread and fail via
join-timeout instead of hanging the suite.
"""

from __future__ import annotations

import threading
import time
from concurrent.futures import ThreadPoolExecutor

import pytest

from repro.docstore import executor as executor_module
from repro.docstore.executor import (
    add_fanout_observer,
    remove_fanout_observer,
    scatter,
    scatter_first,
    shutdown_executor,
)
from repro.errors import (
    ServiceClosedError,
    ServiceOverloadedError,
    ShardingError,
)
from repro.serve.admission import WorkerPool
from repro.serve.cache import ResultCache
from repro.serve.metrics import LatencyHistogram, ServiceMetrics


@pytest.fixture(autouse=True)
def _fresh_executor(monkeypatch):
    monkeypatch.setenv(executor_module.WIDTH_ENV, "4")
    shutdown_executor()
    yield
    shutdown_executor()


def test_shutdown_while_tasks_are_running_does_not_deadlock():
    """shutdown(wait=True) must not hold the module lock.

    A worker finishing a task re-enters the module lock (to copy the
    observer list); a shutdown that waits for that worker while holding
    the same lock deadlocks the pair.  The fix swaps the pool reference
    under the lock and blocks outside it.
    """
    release = threading.Event()
    results: list[list[int]] = []

    def slow(value: int) -> int:
        release.wait(timeout=5.0)
        return value

    fanout = threading.Thread(
        target=lambda: results.append(
            scatter([lambda v=v: slow(v) for v in range(4)])
        )
    )
    fanout.start()
    time.sleep(0.05)  # let the workers start and block on the event

    shutter = threading.Thread(target=shutdown_executor)
    shutter.start()
    time.sleep(0.05)
    release.set()
    shutter.join(timeout=5.0)
    fanout.join(timeout=5.0)
    assert not shutter.is_alive(), "shutdown_executor deadlocked"
    assert not fanout.is_alive()
    assert results == [[0, 1, 2, 3]]


def test_observer_may_unregister_itself_without_deadlock():
    """Observers run outside the module lock, so they may re-enter it."""
    calls: list[float] = []

    def one_shot(seconds: float) -> None:
        calls.append(seconds)
        remove_fanout_observer(one_shot)

    add_fanout_observer(one_shot)
    done = threading.Thread(target=lambda: scatter([lambda: 1, lambda: 2]))
    done.start()
    done.join(timeout=5.0)
    assert not done.is_alive(), "observer callback deadlocked the fan-out"
    assert len(calls) >= 1
    scatter([lambda: 3, lambda: 4])  # unregistered: no further calls
    assert len(calls) <= 2


def test_width_change_rebuild_retires_old_pool_outside_module_lock(
        monkeypatch):
    """A width-change rebuild must not shut the old pool down under
    the module lock.

    ``shutdown`` (even ``wait=False``) takes the pool's internal locks
    and may wake workers that re-enter this module; the probe below
    asserts the module lock is free while it runs.  Pre-fix code called
    ``doomed.shutdown`` inside ``with _lock:`` and the probe times out.
    """
    assert scatter([lambda: 1, lambda: 2]) == [1, 2]  # build at width 4
    probes: list[bool] = []
    real_shutdown = ThreadPoolExecutor.shutdown

    def probing_shutdown(self, wait=True, *, cancel_futures=False):
        acquired = executor_module._lock.acquire(timeout=1.0)
        if acquired:
            executor_module._lock.release()
        probes.append(acquired)
        return real_shutdown(self, wait=wait,
                             cancel_futures=cancel_futures)

    monkeypatch.setattr(ThreadPoolExecutor, "shutdown", probing_shutdown)
    monkeypatch.setenv(executor_module.WIDTH_ENV, "3")
    executor_module.get_executor()  # width changed: rebuild + retire
    assert probes, "width change did not retire the old pool"
    assert all(probes), \
        "old pool shutdown ran while the module lock was held"


@pytest.mark.parametrize("raw, expected", [
    ("0", executor_module.DEFAULT_WIDTH),   # 0 = "auto"
    ("-3", 1),                              # negative = explicit serial
    ("garbage", executor_module.DEFAULT_WIDTH),
    ("", executor_module.DEFAULT_WIDTH),
    ("6", 6),
])
def test_executor_width_env_semantics(monkeypatch, raw, expected):
    monkeypatch.setenv(executor_module.WIDTH_ENV, raw)
    assert executor_module.executor_width() == expected


def test_executor_width_defaults_when_env_unset(monkeypatch):
    monkeypatch.delenv(executor_module.WIDTH_ENV, raising=False)
    assert executor_module.executor_width() == executor_module.DEFAULT_WIDTH


def test_scatter_quiesces_before_raising():
    """A failed fan-out must not raise while sibling tasks still run.

    Pre-fix code consumed ``future.result()`` in submission order, so
    the first exception propagated while the slow task was still
    mutating — here that would flip ``finished`` *after* scatter
    returned.
    """
    release = threading.Event()
    slow_started = threading.Event()
    finished: list[bool] = [False]

    def failer():
        # Raise only once the sibling is *running* (so it cannot just
        # be cancelled) — the interesting case is a started task.
        assert slow_started.wait(timeout=5.0)
        raise RuntimeError("shard 0 exploded")

    def slow():
        slow_started.set()
        release.wait(timeout=5.0)
        finished[0] = True
        return 1

    threading.Timer(0.2, release.set).start()
    with pytest.raises(RuntimeError, match="shard 0 exploded"):
        scatter([failer, slow])
    finished_at_raise = finished[0]
    time.sleep(0.3)  # a still-running task would mutate in this window
    assert finished_at_raise, \
        "scatter raised before the started sibling task finished"
    assert finished == [finished_at_raise]


def test_scatter_raises_first_error_after_quiesce():
    """Multiple failures: the first (in task order) wins, once settled."""
    def fail_a():
        raise RuntimeError("first")

    def fail_b():
        time.sleep(0.05)
        raise ValueError("second")

    with pytest.raises(RuntimeError, match="first"):
        scatter([fail_a, fail_b, lambda: 1])


def test_scatter_first_falsy_accepted_result_wins():
    """An accepted falsy winner must not be masked by a shard error.

    Pre-fix code tracked the winner by value, so an accepted ``None``
    looked like "nobody accepted" and an unrelated shard error was
    raised instead.
    """
    failed = threading.Event()

    def failer():
        failed.set()
        raise ShardingError("shard 1 down")

    def winner():
        failed.wait(timeout=5.0)
        time.sleep(0.05)  # let the failure settle first
        return None

    result = scatter_first([failer, winner], accept=lambda value: True)
    assert result is None


def test_scatter_first_still_raises_when_nothing_accepted():
    def failer():
        raise ShardingError("shard 1 down")

    with pytest.raises(ShardingError):
        scatter_first([failer, lambda: 0],
                      accept=lambda value: value is Ellipsis)


def test_worker_pool_submit_shutdown_race_settles_every_future():
    """No future returned by ``submit`` may languish unsettled.

    Pre-fix code enqueued outside the closed-check lock, so a task
    could land in the queue *after* the shutdown sentinels (and after
    the shutdown drain) — its future never resolved.  Hammer the
    interleaving; any lost future fails the ``result(timeout=...)``.
    """
    for _ in range(15):
        pool = WorkerPool(num_workers=2, max_queue=32)
        futures: list = []
        futures_lock = threading.Lock()
        start = threading.Barrier(5)

        def submitter():
            start.wait(timeout=5.0)
            while True:
                try:
                    future = pool.submit(lambda: 1)
                except ServiceClosedError:
                    return
                except ServiceOverloadedError:
                    continue
                with futures_lock:
                    futures.append(future)

        def shutter():
            start.wait(timeout=5.0)
            pool.shutdown(wait=True)

        threads = [threading.Thread(target=submitter) for _ in range(4)]
        threads.append(threading.Thread(target=shutter))
        for thread in threads:
            thread.start()
        for thread in threads:
            thread.join(timeout=10.0)
            assert not thread.is_alive()
        for future in futures:
            try:
                assert future.result(timeout=2.0) == 1
            except ServiceClosedError:
                pass  # failed by the shutdown drain: still settled


def _hammer(worker, num_threads: int = 4) -> None:
    threads = [threading.Thread(target=worker) for _ in range(num_threads)]
    for thread in threads:
        thread.start()
    for thread in threads:
        thread.join(timeout=10.0)
        assert not thread.is_alive()


def test_histogram_snapshot_is_internally_consistent_under_writes():
    histogram = LatencyHistogram(capacity=64)
    stop = threading.Event()
    inconsistencies: list[dict] = []

    def write():
        while not stop.is_set():
            histogram.observe(0.001)

    def read():
        for _ in range(300):
            snap = histogram.snapshot()
            if snap["count"] and snap["mean_ms"] is None:
                inconsistencies.append(snap)
            if snap["count"] and abs(snap["mean_ms"] - 1.0) > 1e-6:
                # every sample is exactly 1ms; any drift means the mean
                # was computed from a count/total pair torn by a writer
                inconsistencies.append(snap)

    writers = [threading.Thread(target=write) for _ in range(3)]
    for thread in writers:
        thread.start()
    try:
        _hammer(read, num_threads=2)
    finally:
        stop.set()
        for thread in writers:
            thread.join(timeout=10.0)
    assert inconsistencies == []


def test_service_metrics_snapshot_under_concurrent_updates():
    metrics = ServiceMetrics(histogram_capacity=32)

    def write():
        for _ in range(200):
            metrics.record_request("all_fields")
            metrics.record_shed()
            metrics.record_retry()
            metrics.record_negative_hit()
            metrics.record_latency("all_fields", 0.001)

    def read():
        for _ in range(200):
            snap = metrics.snapshot()
            assert snap["shed"] >= 0
            assert snap["total_requests"] == sum(snap["requests"].values())

    threads = ([threading.Thread(target=write) for _ in range(3)]
               + [threading.Thread(target=read) for _ in range(2)])
    for thread in threads:
        thread.start()
    for thread in threads:
        thread.join(timeout=10.0)
        assert not thread.is_alive()
    final = metrics.snapshot()
    assert final["shed"] == 600
    assert final["retries"] == 600
    assert final["negative_hits"] == 600
    assert final["total_requests"] == 600


def test_cache_stats_snapshot_races_with_lookups():
    cache = ResultCache(max_entries=8, ttl_seconds=60.0)
    versions = (1,)

    def churn():
        for i in range(300):
            key = ("q", (i % 16,))
            hit, _ = cache.get(key, versions)
            if not hit:
                cache.put(key, versions, i)

    def read():
        for _ in range(300):
            stats = cache.stats_snapshot()
            assert set(stats) >= {"hits", "misses"}
            assert all(v >= 0 for v in stats.values())

    threads = ([threading.Thread(target=churn) for _ in range(3)]
               + [threading.Thread(target=read) for _ in range(2)])
    for thread in threads:
        thread.start()
    for thread in threads:
        thread.join(timeout=10.0)
        assert not thread.is_alive()
    final = cache.stats_snapshot()
    assert final["hits"] + final["misses"] == 900


# -- PR 8: leaks the interprocedural rules (REP208-REP211) surfaced --------

def test_client_connect_closes_socket_when_setsockopt_fails(monkeypatch):
    """REP211 regression: a socket must not leak when tuning it fails.

    ``GatewayClient._connect`` used to create the connection and then
    set TCP_NODELAY with no guard — a raise between the two stranded
    the connected socket.  The fix closes it on any failure after
    creation.
    """
    import socket as socket_module

    from repro.gateway.client import GatewayClient

    class FakeSock:
        def __init__(self) -> None:
            self.closed = False

        def setsockopt(self, *args):
            raise OSError("setsockopt denied")

        def close(self) -> None:
            self.closed = True

    fake = FakeSock()
    monkeypatch.setattr(socket_module, "create_connection",
                        lambda *a, **kw: fake)
    client = GatewayClient("127.0.0.1", 1)
    with pytest.raises(OSError, match="setsockopt denied"):
        client._connect()
    assert fake.closed
    assert client.connects == 0


def test_query_service_failed_init_registers_no_fanout_observers():
    """A QueryService whose construction fails must leave the global
    fan-out observer hook exactly as it found it.

    Observers used to be registered before the worker pool was built;
    a pool sizing error then stranded callbacks into a half-built
    service on the module-level hook forever.
    """
    from repro.serve.service import QueryService, ServeConfig

    before = list(executor_module._observers)
    with pytest.raises(ValueError):
        QueryService(object(), ServeConfig(num_workers=0))
    assert executor_module._observers == before
    with pytest.raises(ValueError):
        QueryService(object(), ServeConfig(max_queue=0))
    assert executor_module._observers == before


def test_worker_pool_thread_start_failure_reaps_started_workers(
        monkeypatch):
    """Partial thread start-up must not strand the started workers.

    If the Nth worker thread fails to start, the N-1 already running
    are parked on the queue; without sentinels they would idle forever
    (a daemon-thread leak per failed pool).
    """
    real_start = threading.Thread.start
    starts = {"count": 0}

    def flaky_start(self):
        if self.name.startswith("doomed-pool-worker"):
            starts["count"] += 1
            if starts["count"] == 3:
                raise RuntimeError("can't start new thread")
        real_start(self)

    monkeypatch.setattr(threading.Thread, "start", flaky_start)
    with pytest.raises(RuntimeError, match="can't start new thread"):
        WorkerPool(num_workers=4, name="doomed-pool")
    monkeypatch.undo()
    deadline = time.monotonic() + 5.0
    while time.monotonic() < deadline:
        alive = [t for t in threading.enumerate()
                 if t.name.startswith("doomed-pool-worker")]
        if not alive:
            break
        time.sleep(0.01)
    assert not alive, f"stranded worker threads: {alive}"

"""Regression tests for the concurrency bugs the linter flagged.

Each test here pins a specific fix: the executor's shutdown-under-lock
deadlock, observer callbacks running under the module lock, and the
metrics/cache snapshot methods that used to read shared counters with
no lock at all.  The deadlock tests run the risky sequence on a helper
thread and fail via join-timeout instead of hanging the suite.
"""

from __future__ import annotations

import threading
import time

import pytest

from repro.docstore import executor as executor_module
from repro.docstore.executor import (
    add_fanout_observer,
    remove_fanout_observer,
    scatter,
    shutdown_executor,
)
from repro.serve.cache import ResultCache
from repro.serve.metrics import LatencyHistogram, ServiceMetrics


@pytest.fixture(autouse=True)
def _fresh_executor(monkeypatch):
    monkeypatch.setenv(executor_module.WIDTH_ENV, "4")
    shutdown_executor()
    yield
    shutdown_executor()


def test_shutdown_while_tasks_are_running_does_not_deadlock():
    """shutdown(wait=True) must not hold the module lock.

    A worker finishing a task re-enters the module lock (to copy the
    observer list); a shutdown that waits for that worker while holding
    the same lock deadlocks the pair.  The fix swaps the pool reference
    under the lock and blocks outside it.
    """
    release = threading.Event()
    results: list[list[int]] = []

    def slow(value: int) -> int:
        release.wait(timeout=5.0)
        return value

    fanout = threading.Thread(
        target=lambda: results.append(
            scatter([lambda v=v: slow(v) for v in range(4)])
        )
    )
    fanout.start()
    time.sleep(0.05)  # let the workers start and block on the event

    shutter = threading.Thread(target=shutdown_executor)
    shutter.start()
    time.sleep(0.05)
    release.set()
    shutter.join(timeout=5.0)
    fanout.join(timeout=5.0)
    assert not shutter.is_alive(), "shutdown_executor deadlocked"
    assert not fanout.is_alive()
    assert results == [[0, 1, 2, 3]]


def test_observer_may_unregister_itself_without_deadlock():
    """Observers run outside the module lock, so they may re-enter it."""
    calls: list[float] = []

    def one_shot(seconds: float) -> None:
        calls.append(seconds)
        remove_fanout_observer(one_shot)

    add_fanout_observer(one_shot)
    done = threading.Thread(target=lambda: scatter([lambda: 1, lambda: 2]))
    done.start()
    done.join(timeout=5.0)
    assert not done.is_alive(), "observer callback deadlocked the fan-out"
    assert len(calls) >= 1
    scatter([lambda: 3, lambda: 4])  # unregistered: no further calls
    assert len(calls) <= 2


def _hammer(worker, num_threads: int = 4) -> None:
    threads = [threading.Thread(target=worker) for _ in range(num_threads)]
    for thread in threads:
        thread.start()
    for thread in threads:
        thread.join(timeout=10.0)
        assert not thread.is_alive()


def test_histogram_snapshot_is_internally_consistent_under_writes():
    histogram = LatencyHistogram(capacity=64)
    stop = threading.Event()
    inconsistencies: list[dict] = []

    def write():
        while not stop.is_set():
            histogram.observe(0.001)

    def read():
        for _ in range(300):
            snap = histogram.snapshot()
            if snap["count"] and snap["mean_ms"] is None:
                inconsistencies.append(snap)
            if snap["count"] and abs(snap["mean_ms"] - 1.0) > 1e-6:
                # every sample is exactly 1ms; any drift means the mean
                # was computed from a count/total pair torn by a writer
                inconsistencies.append(snap)

    writers = [threading.Thread(target=write) for _ in range(3)]
    for thread in writers:
        thread.start()
    try:
        _hammer(read, num_threads=2)
    finally:
        stop.set()
        for thread in writers:
            thread.join(timeout=10.0)
    assert inconsistencies == []


def test_service_metrics_snapshot_under_concurrent_updates():
    metrics = ServiceMetrics(histogram_capacity=32)

    def write():
        for _ in range(200):
            metrics.record_request("all_fields")
            metrics.record_shed()
            metrics.record_retry()
            metrics.record_negative_hit()
            metrics.record_latency("all_fields", 0.001)

    def read():
        for _ in range(200):
            snap = metrics.snapshot()
            assert snap["shed"] >= 0
            assert snap["total_requests"] == sum(snap["requests"].values())

    threads = ([threading.Thread(target=write) for _ in range(3)]
               + [threading.Thread(target=read) for _ in range(2)])
    for thread in threads:
        thread.start()
    for thread in threads:
        thread.join(timeout=10.0)
        assert not thread.is_alive()
    final = metrics.snapshot()
    assert final["shed"] == 600
    assert final["retries"] == 600
    assert final["negative_hits"] == 600
    assert final["total_requests"] == 600


def test_cache_stats_snapshot_races_with_lookups():
    cache = ResultCache(max_entries=8, ttl_seconds=60.0)
    versions = (1,)

    def churn():
        for i in range(300):
            key = ("q", (i % 16,))
            hit, _ = cache.get(key, versions)
            if not hit:
                cache.put(key, versions, i)

    def read():
        for _ in range(300):
            stats = cache.stats_snapshot()
            assert set(stats) >= {"hits", "misses"}
            assert all(v >= 0 for v in stats.values())

    threads = ([threading.Thread(target=churn) for _ in range(3)]
               + [threading.Thread(target=read) for _ in range(2)])
    for thread in threads:
        thread.start()
    for thread in threads:
        thread.join(timeout=10.0)
        assert not thread.is_alive()
    final = cache.stats_snapshot()
    assert final["hits"] + final["misses"] == 900

"""KGQL lexer/parser tests: round-trips, diagnostics, and properties.

The canonical-render round-trip (``parse(q.render()) == q``) is the
contract that lets the serving tier cache on normalized query text: two
queries with the same AST always produce the same cache key.
"""

from __future__ import annotations

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.errors import KGQLSyntaxError
from repro.kgql import parse
from repro.kgql.ast import (
    EDGE_TYPES,
    MAX_HOPS,
    BoolOp,
    Chain,
    Comparison,
    EdgePattern,
    FieldRef,
    Literal,
    NodePattern,
    NotExpr,
    Query,
)
from repro.kgql.lexer import tokenize


# -- lexer ------------------------------------------------------------------

class TestLexer:
    def test_tokenizes_full_query(self):
        tokens = tokenize(
            'MATCH (v:"Vaccines")-[child_of*1..3]->(e) RETURN v LIMIT 5'
        )
        kinds = [token.kind for token in tokens]
        assert tokens[0].kind == "KEYWORD"
        assert tokens[0].value == "MATCH"
        assert "STRING" in kinds
        assert kinds[-1] == "EOF"

    def test_keywords_are_case_insensitive(self):
        assert tokenize("match")[0].value == "MATCH"
        assert tokenize("Return")[0].value == "RETURN"

    def test_string_escapes(self):
        token = tokenize(r'"a \"quoted\" \\ label"')[0]
        assert token.value == 'a "quoted" \\ label'

    def test_unterminated_string_raises_with_position(self):
        with pytest.raises(KGQLSyntaxError) as excinfo:
            tokenize('MATCH (v:"oops')
        assert excinfo.value.column == 10

    def test_unexpected_character(self):
        with pytest.raises(KGQLSyntaxError):
            tokenize("MATCH (v) § RETURN v")


# -- parser round-trips -----------------------------------------------------

ROUND_TRIP_QUERIES = [
    'MATCH (v) RETURN v',
    'MATCH (v:"Vaccines") RETURN v LIMIT 10',
    'MATCH (v:"Vaccines")-[parent_of]->(e) RETURN v, e',
    'MATCH (v:"Vaccines")-[parent_of*2..4]->(e) RETURN e',
    'MATCH (a)-[related*1..3]->(b:"Masks") RETURN a LIMIT 3',
    'MATCH (a:"Pfizer"), (b:"Moderna") RETURN a, b',
    'MATCH (v:"Vaccines")-[parent_of]->(e)-[parent_of]->(g) RETURN g',
    'MATCH (v) WHERE v.category = "side_effects" RETURN v',
    'MATCH (v) WHERE v.depth > 1 AND v.depth <= 3 RETURN v',
    'MATCH (v) WHERE NOT v.label CONTAINS "fever" RETURN v',
    'MATCH (v) WHERE v.papers >= 1 OR v.depth = 0 RETURN v LIMIT 7',
]


class TestParserRoundTrip:
    @pytest.mark.parametrize("text", ROUND_TRIP_QUERIES)
    def test_render_then_parse_is_identity(self, text):
        query = parse(text)
        rendered = query.render()
        assert parse(rendered) == query
        # Rendering is canonical: a second round changes nothing.
        assert parse(rendered).render() == rendered

    def test_exact_hop_bound_canonicalizes(self):
        query = parse('MATCH (a)-[related*3]->(b:"Masks") RETURN b')
        assert "related*3..3" in query.render()

    def test_backward_edge_desugars_to_forward_inverse(self):
        back = parse('MATCH (a:"Masks")<-[child_of*1..2]-(b) RETURN b')
        forward = parse('MATCH (a:"Masks")-[parent_of*1..2]->(b) RETURN b')
        assert back.chains == forward.chains

    def test_related_is_self_inverse(self):
        back = parse('MATCH (a:"Masks")<-[related]-(b) RETURN b')
        forward = parse('MATCH (a:"Masks")-[related]->(b) RETURN b')
        assert back.chains == forward.chains

    def test_variables_in_first_appearance_order(self):
        query = parse('MATCH (b)-[related]->(a), (c:"Masks") RETURN a')
        assert query.variables() == ("b", "a", "c")

    def test_and_or_flatten_to_nary(self):
        query = parse(
            'MATCH (v) WHERE v.depth = 1 AND v.depth = 2 AND '
            'v.depth = 3 RETURN v'
        )
        assert isinstance(query.where, BoolOp)
        assert len(query.where.operands) == 3


# -- diagnostics ------------------------------------------------------------

def _caret_column(error: KGQLSyntaxError) -> int:
    return error.column


class TestDiagnostics:
    def test_missing_return(self):
        with pytest.raises(KGQLSyntaxError, match="RETURN"):
            parse('MATCH (v)')

    def test_unknown_edge_type_position(self):
        with pytest.raises(KGQLSyntaxError) as excinfo:
            parse('MATCH (a)-[sibling_of]->(b) RETURN a')
        assert excinfo.value.column == 12
        assert "sibling_of" in str(excinfo.value)

    def test_caret_rendering_points_at_offender(self):
        with pytest.raises(KGQLSyntaxError) as excinfo:
            parse('MATCH (v:')
        rendered = str(excinfo.value)
        lines = rendered.splitlines()
        assert lines[1].strip() == "MATCH (v:"
        assert lines[2].index("^") - lines[1].index("M") == \
            excinfo.value.column - 1

    def test_unknown_return_variable(self):
        with pytest.raises(KGQLSyntaxError, match="unknown variable"):
            parse('MATCH (v) RETURN w')

    def test_unknown_where_variable(self):
        with pytest.raises(KGQLSyntaxError, match="unknown variable"):
            parse('MATCH (v) WHERE w.depth = 1 RETURN v')

    def test_unknown_field(self):
        with pytest.raises(KGQLSyntaxError, match="field"):
            parse('MATCH (v) WHERE v.color = "red" RETURN v')

    def test_hop_bounds_validated(self):
        with pytest.raises(KGQLSyntaxError, match="hop"):
            parse('MATCH (a)-[related*3..2]->(b) RETURN a')
        with pytest.raises(KGQLSyntaxError, match="hop"):
            parse(f'MATCH (a)-[related*1..{MAX_HOPS + 1}]->(b) RETURN a')

    def test_limit_must_be_positive(self):
        with pytest.raises(KGQLSyntaxError):
            parse('MATCH (v) RETURN v LIMIT 0')

    def test_trailing_tokens_rejected(self):
        with pytest.raises(KGQLSyntaxError):
            parse('MATCH (v) RETURN v LIMIT 5 garbage')

    def test_empty_query(self):
        with pytest.raises(KGQLSyntaxError):
            parse('')


# -- property-based round-trip ---------------------------------------------

_vars = st.sampled_from(["a", "b", "c", "d", "v"])
_labels = st.one_of(
    st.none(),
    st.sampled_from(["Vaccines", "Side-effects", "COVID-19",
                     'quo"ted', "back\\slash", "Masks usage"]),
)
_fields = st.sampled_from(["id", "label", "category", "depth", "papers"])


@st.composite
def _node(draw):
    return NodePattern(var=draw(_vars), label=draw(_labels))


@st.composite
def _edge(draw):
    lo = draw(st.integers(min_value=0, max_value=4))
    hi = draw(st.integers(min_value=max(lo, 1), max_value=6))
    return EdgePattern(etype=draw(st.sampled_from(EDGE_TYPES)),
                       min_hops=lo, max_hops=hi)


@st.composite
def _chain(draw):
    length = draw(st.integers(min_value=1, max_value=3))
    nodes = tuple(draw(_node()) for _ in range(length))
    edges = tuple(draw(_edge()) for _ in range(length - 1))
    return Chain(nodes=nodes, edges=edges)


@st.composite
def _comparison(draw, declared):
    lhs = FieldRef(var=draw(st.sampled_from(declared)),
                   field=draw(_fields))
    op = draw(st.sampled_from(
        ("=", "!=", "<", "<=", ">", ">=", "CONTAINS")))
    rhs = draw(st.one_of(
        st.integers(min_value=0, max_value=99).map(Literal),
        st.sampled_from(["fever", 'with "quotes"', "x"]).map(Literal),
    ))
    return Comparison(lhs=lhs, op=op, rhs=rhs)


@st.composite
def _expr(draw, declared, depth=0):
    if depth >= 2:
        return draw(_comparison(declared))
    choice = draw(st.integers(min_value=0, max_value=3))
    if choice == 0:
        return draw(_comparison(declared))
    if choice == 1:
        return NotExpr(operand=draw(_expr(declared, depth + 1)))
    operands = tuple(
        draw(_expr(declared, depth + 1))
        for _ in range(draw(st.integers(min_value=2, max_value=3)))
    )
    op = "AND" if choice == 2 else "OR"
    # Mirror the parser's flattening: nested same-op BoolOps collapse.
    flat = []
    for operand in operands:
        if isinstance(operand, BoolOp) and operand.op == op:
            flat.extend(operand.operands)
        else:
            flat.append(operand)
    return BoolOp(op=op, operands=tuple(flat))


@st.composite
def _query(draw):
    chains = tuple(
        draw(_chain())
        for _ in range(draw(st.integers(min_value=1, max_value=2)))
    )
    declared = sorted({node.var for chain in chains
                       for node in chain.nodes})
    where = draw(st.one_of(st.none(), _expr(declared)))
    count = draw(st.integers(min_value=1, max_value=len(declared)))
    returns = tuple(draw(st.permutations(declared))[:count])
    limit = draw(st.one_of(
        st.none(), st.integers(min_value=1, max_value=50)))
    return Query(chains=chains, returns=returns, where=where,
                 limit=limit)


class TestParserProperty:
    @settings(max_examples=120, deadline=None)
    @given(_query())
    def test_render_parse_round_trip(self, query):
        assert parse(query.render()) == query

"""Tests for the synthetic CORD-19 and WDC corpus generators."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.corpus import vocabulary_data as vd
from repro.corpus.generator import CorpusGenerator, GeneratorConfig
from repro.corpus.loader import load_papers_jsonl, save_papers_jsonl
from repro.corpus.schema import full_text, validate_paper
from repro.corpus.wdc import WdcTableGenerator
from repro.errors import PersistenceError, SchemaError
from repro.tables.html_parser import parse_html_table


@pytest.fixture(scope="module")
def generator():
    return CorpusGenerator(GeneratorConfig(seed=42, papers_per_week=10))


@pytest.fixture(scope="module")
def papers(generator):
    return generator.papers(60)


class TestSchema:
    def test_generated_papers_validate(self, papers):
        for paper in papers:
            validate_paper(paper)

    def test_missing_field_rejected(self, papers):
        broken = dict(papers[0])
        del broken["abstract"]
        with pytest.raises(SchemaError):
            validate_paper(broken)

    def test_bad_date_rejected(self, papers):
        broken = dict(papers[0])
        broken["publish_time"] = "July 2020"
        with pytest.raises(SchemaError):
            validate_paper(broken)

    def test_non_dict_rejected(self):
        with pytest.raises(SchemaError):
            validate_paper(["not", "a", "paper"])

    def test_full_text_collects_sections(self, papers):
        paper = papers[0]
        text = full_text(paper)
        assert paper["title"] in text
        assert paper["abstract"] in text


class TestGenerator:
    def test_deterministic(self):
        a = CorpusGenerator(GeneratorConfig(seed=7)).paper(3)
        b = CorpusGenerator(GeneratorConfig(seed=7)).paper(3)
        assert a == b

    def test_different_seeds_differ(self):
        a = CorpusGenerator(GeneratorConfig(seed=1)).paper(0)
        b = CorpusGenerator(GeneratorConfig(seed=2)).paper(0)
        assert a != b

    def test_unique_paper_ids(self, papers):
        ids = [paper["paper_id"] for paper in papers]
        assert len(set(ids)) == len(ids)

    def test_publish_time_advances_weekly(self, generator):
        early = generator.paper(0)["publish_time"]
        late = generator.paper(55)["publish_time"]  # 5+ weeks later
        assert late > early

    def test_weekly_batches_sizes(self, generator):
        batches = list(generator.weekly_batches(3))
        assert len(batches) == 3
        assert all(len(batch) == 10 for batch in batches)

    def test_topics_cover_configured_set(self, papers):
        seen = {paper["ground_truth"]["topic"] for paper in papers}
        assert len(seen) >= 5

    def test_topic_vocabulary_dominates_text(self, papers):
        # Text of a topic's paper should contain its topic terms.
        for paper in papers[:10]:
            topic = paper["ground_truth"]["topic"]
            text = full_text(paper).lower()
            hits = sum(1 for term in vd.TOPICS[topic] if term in text)
            assert hits >= 2

    def test_tables_have_labeled_headers(self, papers):
        tables = [t for paper in papers for t in paper["tables"]]
        assert tables, "no tables generated across 60 papers"
        for table in tables:
            assert table["rows"][0].get("is_metadata") is True

    def test_table_html_roundtrips_through_parser(self, papers):
        for paper in papers:
            for table_json in paper["tables"]:
                parsed = parse_html_table(table_json["html"])
                original_grid = [
                    [cell["text"] for cell in row["cells"]]
                    for row in table_json["rows"]
                ]
                assert parsed.row_texts() == original_grid
                assert parsed.caption == table_json["caption"]

    def test_side_effect_tables_record_ground_truth(self, papers):
        for paper in papers:
            for table in paper["tables"]:
                if table["kind"] == "side_effects":
                    assert paper["ground_truth"]["vaccines"]
                    assert paper["ground_truth"]["side_effects"]

    def test_unknown_topic_rejected(self):
        with pytest.raises(SchemaError):
            CorpusGenerator(GeneratorConfig(topics=["astrology"]))

    def test_unseen_vaccines_appear_at_low_rate(self):
        config = GeneratorConfig(seed=3, unseen_vaccine_rate=0.5)
        papers = CorpusGenerator(config).papers(40)
        unseen = {
            vaccine
            for paper in papers
            for vaccine in paper["ground_truth"]["vaccines"]
            if vaccine in vd.UNSEEN_VACCINES
        }
        assert unseen  # at 50% rate some must appear


class TestLoader:
    def test_roundtrip(self, papers, tmp_path):
        path = tmp_path / "corpus.jsonl"
        assert save_papers_jsonl(papers[:5], path) == 5
        loaded = load_papers_jsonl(path)
        assert loaded == papers[:5]

    def test_missing_file(self, tmp_path):
        with pytest.raises(PersistenceError):
            load_papers_jsonl(tmp_path / "nope.jsonl")

    def test_corrupt_line(self, tmp_path):
        path = tmp_path / "bad.jsonl"
        path.write_text("{broken\n")
        with pytest.raises(PersistenceError):
            load_papers_jsonl(path)

    def test_invalid_paper_reported_with_line(self, papers, tmp_path):
        import json
        path = tmp_path / "invalid.jsonl"
        broken = dict(papers[0])
        del broken["title"]
        path.write_text(json.dumps(broken) + "\n")
        with pytest.raises(SchemaError, match="invalid.jsonl:1"):
            load_papers_jsonl(path)


class TestWdc:
    def test_horizontal_table_shape(self):
        generated = WdcTableGenerator(seed=1).generate(
            0, orientation="horizontal", num_data_rows=5, num_columns=4
        )
        assert generated.table.num_rows == 6
        assert generated.table.num_columns == 4
        assert generated.metadata_lines == [0]
        assert generated.table.rows[0].is_metadata is True

    def test_vertical_table_shape(self):
        generated = WdcTableGenerator(seed=1).generate(
            0, orientation="vertical", num_data_rows=5, num_columns=3
        )
        # Vertical: one row per attribute, one column per record (+ header).
        assert generated.table.num_rows == 3
        assert generated.table.num_columns == 6

    def test_deterministic(self):
        a = WdcTableGenerator(seed=5).generate(2)
        b = WdcTableGenerator(seed=5).generate(2)
        assert a.table.row_texts() == b.table.row_texts()

    def test_invalid_orientation(self):
        with pytest.raises(SchemaError):
            WdcTableGenerator().generate(0, orientation="diagonal")

    def test_labeled_tuples_have_one_metadata_per_table(self):
        pairs = WdcTableGenerator(seed=2).labeled_tuples(
            5, orientation="horizontal"
        )
        positives = sum(1 for _, label in pairs if label)
        assert positives == 5
        assert len(pairs) > 10

    def test_labeled_tuples_vertical_transposes(self):
        pairs = WdcTableGenerator(seed=2).labeled_tuples(
            3, orientation="vertical"
        )
        positives = [tuple_ for tuple_, label in pairs if label]
        assert len(positives) == 3
        # Metadata tuples are attribute-name rows: mostly non-numeric.
        for tuple_ in positives:
            numeric = sum(cell.replace(".", "").isdigit()
                          for cell in tuple_)
            assert numeric == 0


@settings(deadline=None, max_examples=15)
@given(st.integers(0, 500))
def test_any_paper_index_validates(index):
    paper = CorpusGenerator(GeneratorConfig(seed=9)).paper(index)
    validate_paper(paper)


class TestCord19MetadataCsv:
    CSV = (
        "cord_uid,title,abstract,authors,publish_time,journal\n"
        'abc123,Masks work,"Cloth masks reduce spread.",'
        '"Chen, Wei; Garcia, Maria",2020-07-13,JAMA\n'
        "def456,Year only paper,Some abstract,Smith John,2021,BMJ\n"
        ",Missing id,abstract,,2020-01-01,X\n"
        "ghi789,No date paper,abstract,,,X\n"
        "abc123,Duplicate uid,abstract,,2020-02-02,X\n"
    )

    def write(self, tmp_path):
        path = tmp_path / "metadata.csv"
        path.write_text(self.CSV)
        return path

    def test_loads_valid_rows(self, tmp_path):
        from repro.corpus.loader import load_cord19_metadata_csv
        papers = load_cord19_metadata_csv(self.write(tmp_path))
        ids = [paper["paper_id"] for paper in papers]
        assert ids == ["abc123", "def456"]

    def test_author_parsing(self, tmp_path):
        from repro.corpus.loader import load_cord19_metadata_csv
        papers = load_cord19_metadata_csv(self.write(tmp_path))
        authors = papers[0]["authors"]
        assert authors[0] == {"first": "Wei", "last": "Chen"}
        assert authors[1] == {"first": "Maria", "last": "Garcia"}

    def test_year_only_dates_normalized(self, tmp_path):
        from repro.corpus.loader import load_cord19_metadata_csv
        papers = load_cord19_metadata_csv(self.write(tmp_path))
        assert papers[1]["publish_time"] == "2021-01-01"

    def test_rows_validate_against_schema(self, tmp_path):
        from repro.corpus.loader import load_cord19_metadata_csv
        for paper in load_cord19_metadata_csv(self.write(tmp_path)):
            validate_paper(paper)

    def test_limit(self, tmp_path):
        from repro.corpus.loader import load_cord19_metadata_csv
        papers = load_cord19_metadata_csv(self.write(tmp_path), limit=1)
        assert len(papers) == 1

    def test_missing_file(self, tmp_path):
        from repro.corpus.loader import load_cord19_metadata_csv
        with pytest.raises(PersistenceError):
            load_cord19_metadata_csv(tmp_path / "absent.csv")

    def test_loaded_papers_are_ingestible(self, tmp_path):
        from repro.api.system import CovidKG, CovidKGConfig
        from repro.corpus.loader import load_cord19_metadata_csv
        papers = load_cord19_metadata_csv(self.write(tmp_path))
        system = CovidKG(CovidKGConfig(num_shards=2))
        system.ingest(papers)
        assert system.search("masks").total_matches == 1


class TestIngestSkipDuplicates:
    def test_redelivered_batch_is_noop(self):
        from repro.api.system import CovidKG, CovidKGConfig
        papers = CorpusGenerator(GeneratorConfig(seed=91)).papers(5)
        system = CovidKG(CovidKGConfig(num_shards=2))
        system.ingest(papers)
        report = system.ingest(papers, skip_duplicates=True)
        assert len(system.store) == 5
        assert report.subtrees == 0

    def test_partial_overlap(self):
        from repro.api.system import CovidKG, CovidKGConfig
        gen = CorpusGenerator(GeneratorConfig(seed=92))
        system = CovidKG(CovidKGConfig(num_shards=2))
        system.ingest(gen.papers(4))
        system.ingest(gen.papers(6), skip_duplicates=True)
        assert len(system.store) == 6

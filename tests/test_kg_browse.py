"""Tests for the interactive browser session and provenance drill-down."""

import pytest

from repro.api.system import CovidKG, CovidKGConfig
from repro.corpus.generator import CorpusGenerator, GeneratorConfig
from repro.errors import GraphError
from repro.kg.browse import BrowserSession
from repro.kg.ontology import seed_covid_graph


@pytest.fixture()
def session():
    return BrowserSession(seed_covid_graph())


class TestNavigation:
    def test_starts_at_root(self, session):
        assert session.current.label == "COVID-19"
        view = session.view()
        assert view.breadcrumbs == ["COVID-19"]
        assert view.depth == 0
        assert any(
            child["label"] == "Vaccines" for child in view.children
        )

    def test_enter_child(self, session):
        view = session.enter("Vaccines")
        assert view.breadcrumbs == ["COVID-19", "Vaccines"]
        assert session.current.label == "Vaccines"

    def test_enter_is_case_insensitive(self, session):
        assert session.enter("vaccines").depth == 1

    def test_enter_unknown_child_rejected(self, session):
        with pytest.raises(GraphError):
            session.enter("Astrology")

    def test_up_and_back(self, session):
        session.enter("Vaccines")
        session.enter("Side-effects")
        assert session.up().breadcrumbs[-1] == "Vaccines"
        assert session.back().breadcrumbs[-1] == "Side-effects"

    def test_up_from_root_rejected(self, session):
        with pytest.raises(GraphError):
            session.up()

    def test_back_without_history_rejected(self, session):
        with pytest.raises(GraphError):
            session.back()

    def test_jump_via_search(self, session):
        view = session.jump("pfizer")
        assert view.breadcrumbs[-1] == "Pfizer"
        assert view.breadcrumbs[0] == "COVID-19"

    def test_jump_no_match_rejected(self, session):
        with pytest.raises(GraphError):
            session.jump("zzzz")

    def test_home(self, session):
        session.enter("Vaccines")
        assert session.home().depth == 0

    def test_render_shows_breadcrumbs_and_children(self, session):
        session.enter("Vaccines")
        text = session.view().render()
        assert text.startswith("COVID-19 > Vaccines")
        assert "Pfizer" in text


class TestBookmarks:
    def test_bookmark_roundtrip(self, session):
        session.enter("Vaccines")
        session.bookmark("vax")
        session.home()
        assert session.goto_bookmark("vax").breadcrumbs[-1] == "Vaccines"

    def test_unknown_bookmark(self, session):
        with pytest.raises(GraphError):
            session.goto_bookmark("nope")


class TestProvenanceDrilldown:
    @pytest.fixture(scope="class")
    def system(self):
        corpus = CorpusGenerator(GeneratorConfig(
            seed=81, tables_per_paper=(1, 2),
        )).papers(20)
        kg = CovidKG(CovidKGConfig(num_shards=2))
        kg.ingest(corpus)
        return kg

    def test_explain_node_returns_papers_with_snippets(self, system):
        vaccines = system.graph.find_by_label("Vaccines")[0]
        explanation = system.explain_node(vaccines.node_id)
        assert explanation["path"] == ["COVID-19", "Vaccines"]
        assert explanation["total_papers"] > 0
        assert explanation["papers"]
        for paper in explanation["papers"]:
            assert paper["title"]
            assert paper["paper_id"].startswith("cord-")

    def test_max_papers_respected(self, system):
        vaccines = system.graph.find_by_label("Vaccines")[0]
        explanation = system.explain_node(vaccines.node_id, max_papers=2)
        assert len(explanation["papers"]) <= 2

    def test_browse_facade(self, system):
        session = system.browse()
        assert session.enter("Vaccines").papers

"""Version counters: the invalidation signal behind the serving cache."""

import pytest

from repro.docstore.collection import Collection
from repro.docstore.sharding import ShardedCollection
from repro.kg.fusion import ExtractedSubtree, FusionEngine
from repro.kg.graph import KnowledgeGraph
from repro.kg.matching import NodeMatcher
from repro.kg.ontology import seed_covid_graph
from repro.kg.review import ExpertReviewQueue


class TestCollectionVersion:
    def test_every_mutation_bumps(self):
        collection = Collection("c")
        assert collection.version == 0
        collection.insert_one({"k": 1, "v": "a"})
        v_insert = collection.version
        assert v_insert > 0
        collection.update_one({"k": 1}, {"$set": {"v": "b"}})
        v_update = collection.version
        assert v_update > v_insert
        collection.replace_one({"k": 1}, {"k": 1, "v": "c"})
        v_replace = collection.version
        assert v_replace > v_update
        collection.delete_one({"k": 1})
        assert collection.version > v_replace

    def test_reads_do_not_bump(self):
        collection = Collection("c")
        collection.insert_one({"k": 1})
        before = collection.version
        collection.find({"k": 1}).to_list()
        collection.find_one({"k": 1})
        collection.count()
        collection.distinct("k")
        assert collection.version == before

    def test_failed_unique_insert_does_not_bump(self):
        from repro.errors import DuplicateKeyError
        collection = Collection("c")
        collection.create_index("k", unique=True)
        collection.insert_one({"k": 1})
        before = collection.version
        with pytest.raises(DuplicateKeyError):
            collection.insert_one({"k": 1})
        assert collection.version == before

    def test_unmatched_update_does_not_bump(self):
        collection = Collection("c")
        collection.insert_one({"k": 1})
        before = collection.version
        assert collection.update_one({"k": 99}, {"$set": {"v": 1}}) == 0
        assert collection.version == before

    def test_advance_version_never_lowers(self):
        collection = Collection("c")
        collection.advance_version(10)
        assert collection.version == 10
        collection.advance_version(3)
        assert collection.version == 10


class TestShardedCollectionVersion:
    def test_aggregates_across_shards(self):
        store = ShardedCollection("s", shard_key="k", num_shards=3)
        assert store.version == 0
        for i in range(7):
            store.insert_one({"k": f"key-{i}"})
        assert store.version == 7
        store.delete_many({"k": "key-3"})
        assert store.version == 8

    def test_rebalance_is_monotonic(self):
        store = ShardedCollection("s", shard_key="k", num_shards=2)
        for i in range(5):
            store.insert_one({"k": f"key-{i}"})
        before = store.version
        store.rebalance(4)
        assert store.version > before
        # ... and keeps counting normally afterwards.
        after = store.version
        store.insert_one({"k": "key-new"})
        assert store.version == after + 1

    def test_advance_version(self):
        store = ShardedCollection("s", shard_key="k", num_shards=2)
        store.insert_one({"k": "a"})
        store.advance_version(100)
        assert store.version == 100
        store.insert_one({"k": "b"})
        assert store.version == 101


class TestKnowledgeGraphVersion:
    def test_structural_writes_bump(self):
        graph = KnowledgeGraph()
        v0 = graph.version
        child = graph.add_node("Vaccines")
        assert graph.version > v0
        v1 = graph.version
        graph.insert_parent("Interventions", child)
        assert graph.version > v1

    def test_reads_do_not_bump(self):
        graph = seed_covid_graph()
        before = graph.version
        list(graph.walk())
        graph.statistics()
        graph.path_to(graph.root_id)
        assert graph.version == before

    def test_touch_and_advance(self):
        graph = KnowledgeGraph()
        before = graph.version
        graph.touch()
        assert graph.version == before + 1
        graph.advance_version(before + 100)
        assert graph.version == before + 100

    def test_json_roundtrip_starts_nonzero(self):
        graph = seed_covid_graph()
        restored = KnowledgeGraph.from_json(graph.to_json())
        assert restored.version > 0

    def test_fusion_merge_touches_graph(self):
        graph = seed_covid_graph()
        engine = FusionEngine(graph, NodeMatcher(graph),
                              review_queue=ExpertReviewQueue())
        target = next(node for node in graph.walk()
                      if node.node_id != graph.root_id and node.is_leaf)
        before = graph.version
        result = engine.fuse(ExtractedSubtree(
            label=target.label, provenance="paper-1",
        ))
        assert result.action in ("merged", "auto_approved")
        assert graph.version > before


class TestPersistedVersions:
    def test_save_then_load_advances_counters(self, tmp_path):
        from repro.api.persistence import load_system, save_system
        from repro.api.system import CovidKG, CovidKGConfig
        from repro.corpus.generator import CorpusGenerator, GeneratorConfig

        corpus = CorpusGenerator(GeneratorConfig(
            seed=7, tables_per_paper=(1, 1),
        )).papers(6)
        system = CovidKG(CovidKGConfig(num_shards=2))
        system.ingest(corpus)
        saved_store, saved_kg = system.store.version, system.graph.version
        save_system(system, tmp_path / "sys")

        reloaded = load_system(tmp_path / "sys")
        # Strictly past the saved counters: a cache keyed against the
        # old process's snapshots can never read as fresh.
        assert reloaded.store.version > saved_store
        assert reloaded.graph.version > saved_kg

    def test_versions_file_written(self, tmp_path):
        import json

        from repro.api.persistence import save_system
        from repro.api.system import CovidKG

        save_system(CovidKG(), tmp_path / "sys")
        data = json.loads((tmp_path / "sys" / "versions.json").read_text())
        assert set(data) == {"store", "kg"}

"""Tests for positional features (f1..f7) and orientation detection."""

from hypothesis import given
from hypothesis import strategies as st

from repro.tables.features import (
    POSITIONAL_FEATURE_NAMES,
    row_features,
    table_features,
)
from repro.tables.model import Table
from repro.tables.orientation import (
    Orientation,
    detect_orientation,
    rows_for_classification,
)

HORIZONTAL = Table.from_grid(
    [
        ["Vaccine", "Doses", "Efficacy"],
        ["Pfizer", "2", "95"],
        ["Moderna", "2", "94"],
        ["AstraZeneca", "2", "76"],
    ],
    header_rows=1,
)

# A genuine attribute-value layout: attribute names down the first column.
VERTICAL = Table.from_grid(
    [
        ["Age", "45", "52", "61"],
        ["Weight", "70", "82", "75"],
        ["Dose", "10", "20", "10"],
    ],
)


class TestRowFeatures:
    def test_first_row(self):
        features = row_features(HORIZONTAL, 0)
        assert features.f2_num_cells == 3
        assert features.f3_has_above is False
        assert features.f4_has_below is True
        assert features.f5_cells_above == 0
        assert features.f6_cells_below == 3
        assert features.f7_is_metadata is True

    def test_middle_row(self):
        features = row_features(HORIZONTAL, 1)
        assert features.f3_has_above is True
        assert features.f4_has_below is True
        assert features.f5_cells_above == 3
        assert features.f7_is_metadata is False

    def test_last_row(self):
        features = row_features(HORIZONTAL, 3)
        assert features.f4_has_below is False
        assert features.f6_cells_below == 0

    def test_f1_applies_numeric_substitution(self):
        features = row_features(HORIZONTAL, 1)
        assert "INT" in features.f1_text
        assert "Pfizer" in features.f1_text

    def test_positional_vector_shape(self):
        features = row_features(HORIZONTAL, 0)
        assert len(features.positional) == len(POSITIONAL_FEATURE_NAMES)
        assert features.positional == [3.0, 0.0, 1.0, 0.0, 3.0]

    def test_table_features_covers_all_rows(self):
        assert len(table_features(HORIZONTAL)) == HORIZONTAL.num_rows

    def test_unlabeled_row_has_none_label(self):
        table = Table.from_grid([["a", "b"]])
        assert row_features(table, 0).f7_is_metadata is False


class TestOrientation:
    def test_horizontal_detected(self):
        assert detect_orientation(HORIZONTAL) is Orientation.HORIZONTAL

    def test_vertical_detected(self):
        assert detect_orientation(VERTICAL) is Orientation.VERTICAL

    def test_empty_table_defaults_horizontal(self):
        assert detect_orientation(Table()) is Orientation.HORIZONTAL

    def test_rows_for_classification_transposes_vertical(self):
        orientation, rows = rows_for_classification(VERTICAL)
        assert orientation is Orientation.VERTICAL
        assert rows[0] == ["Age", "Weight", "Dose"]

    def test_table_with_header_row_and_key_column_reads_horizontal(self):
        # Scientific tables often carry both; horizontal must win the tie.
        table = Table.from_grid([
            ["Vaccine", "Doses", "Efficacy"],
            ["Pfizer", "2", "95"],
            ["Moderna", "2", "94"],
        ])
        assert detect_orientation(table) is Orientation.HORIZONTAL

    def test_rows_for_classification_keeps_horizontal(self):
        orientation, rows = rows_for_classification(HORIZONTAL)
        assert orientation is Orientation.HORIZONTAL
        assert rows[0] == ["Vaccine", "Doses", "Efficacy"]


@given(st.integers(2, 6), st.integers(2, 6))
def test_features_consistent_on_numeric_grids(rows, cols):
    grid = [["header"] * cols] + [
        [str(r * cols + c) for c in range(cols)] for r in range(rows - 1)
    ]
    table = Table.from_grid(grid, header_rows=1)
    features = table_features(table)
    assert all(f.f2_num_cells == cols for f in features)
    # Interior rows always see neighbours above and below.
    for interior in features[1:-1]:
        assert interior.f3_has_above and interior.f4_has_below

"""KGQL executor tests: differential against brute-force enumeration.

The oracle enumerates *every* assignment of pattern variables to graph
nodes (|V|^k candidates) and checks the chains/WHERE directly — no
planning, no orientation, no pushdown.  The executor must produce
byte-identical JSON (modulo timing) on every generated graph/query
pair, which pins ordering, dedupe, LIMIT, and provenance semantics.
"""

from __future__ import annotations

import itertools
import json
import random

import pytest

from repro.errors import KGQLError
from repro.kg.graph import KnowledgeGraph
from repro.kg.node import stem_terms
from repro.kg.ontology import seed_covid_graph
from repro.kgql import KGQLEngine, parse
from repro.kgql.ast import (
    BoolOp,
    Comparison,
    FieldRef,
    Literal,
    NotExpr,
)
from repro.kgql.executor import _numeric_id
from repro.kgql.plan import ANON_PREFIX


# -- brute-force oracle -----------------------------------------------------

def _oracle_neighbors(graph, node_id, etype):
    node = graph.node(node_id)
    if etype == "child_of":
        return [node.parent_id] if node.parent_id else []
    if etype == "parent_of":
        return list(node.children)
    out = list(node.children)
    if node.parent_id:
        out.append(node.parent_id)
    return out


def _oracle_reachable(graph, src, dst, etype, lo, hi):
    """Is there a walk of length lo..hi from src to dst?"""
    frontier = {src}
    if lo == 0 and src == dst:
        return True
    for hop in range(1, hi + 1):
        frontier = {
            n for f in frontier
            for n in _oracle_neighbors(graph, f, etype)
        }
        if hop >= lo and dst in frontier:
            return True
    return False


def _oracle_field(graph, node_id, field):
    node = graph.node(node_id)
    if field == "id":
        return node.node_id
    if field == "label":
        return node.label
    if field == "category":
        return node.category if node.category is not None else ""
    if field == "depth":
        return graph.depth(node_id)
    return len(graph.papers_for(node_id))


def _oracle_eval(graph, expr, binding):
    if isinstance(expr, BoolOp):
        results = [_oracle_eval(graph, op, binding)
                   for op in expr.operands]
        return all(results) if expr.op == "AND" else any(results)
    if isinstance(expr, NotExpr):
        return not _oracle_eval(graph, expr.operand, binding)
    assert isinstance(expr, Comparison)

    def value(operand):
        if isinstance(operand, Literal):
            return operand.value
        assert isinstance(operand, FieldRef)
        return _oracle_field(graph, binding[operand.var], operand.field)

    lhs, rhs = value(expr.lhs), value(expr.rhs)
    if expr.op == "CONTAINS":
        return stem_terms(str(rhs)) <= stem_terms(str(lhs))
    numeric = (int, float)
    compatible = (type(lhs) is type(rhs) or
                  (isinstance(lhs, numeric) and isinstance(rhs, numeric)))
    if expr.op == "=":
        return compatible and lhs == rhs
    if expr.op == "!=":
        return not compatible or lhs != rhs
    if not compatible:
        return False
    return {"<": lhs < rhs, "<=": lhs <= rhs,
            ">": lhs > rhs, ">=": lhs >= rhs}[expr.op]


def brute_force(graph, text):
    """All matches by exhaustive |V|^k enumeration over walk()."""
    query = parse(text)
    # Collect variables including anonymous patterns (existential).
    variables = []
    anon = itertools.count(1)
    chains = []
    for chain in query.chains:
        named = []
        for node in chain.nodes:
            var = node.var or f"{ANON_PREFIX}{next(anon)}"
            named.append((var, node.label))
            if var not in variables:
                variables.append(var)
        chains.append((named, chain.edges))
    node_ids = [node.node_id for node in graph.walk()]
    matches = set()
    for combo in itertools.product(node_ids, repeat=len(variables)):
        binding = dict(zip(variables, combo))
        ok = True
        for named, edges in chains:
            for (var, label) in named:
                if label is None:
                    continue
                wanted = {n.node_id for n in graph.find_by_label(label)}
                if binding[var] not in wanted:
                    ok = False
                    break
            if not ok:
                break
            for index, edge in enumerate(edges):
                src = binding[named[index][0]]
                dst = binding[named[index + 1][0]]
                if not _oracle_reachable(graph, src, dst, edge.etype,
                                         edge.min_hops, edge.max_hops):
                    ok = False
                    break
            if not ok:
                break
        if ok and query.where is not None:
            ok = _oracle_eval(graph, query.where, binding)
        if ok:
            named_vars = query.variables()
            matches.add(tuple(binding[v] for v in named_vars))
    named_vars = query.variables()
    ordered = sorted(matches, key=lambda ids: tuple(
        _numeric_id(i) for i in ids))
    total = len(ordered)
    if query.limit is not None:
        ordered = ordered[:query.limit]
    # Rows carry only the RETURNed variables; matches (and therefore
    # ordering, dedupe, and total_matches) span every named variable.
    positions = [named_vars.index(var) for var in query.returns]
    projected = [tuple(match[pos] for pos in positions)
                 for match in ordered]
    return list(query.returns), projected, total


def _result_rows(result, columns_vars):
    return [tuple(row.bindings[var]["id"]
                  for var in columns_vars)
            for row in result.rows]


# -- generated graphs -------------------------------------------------------

LABEL_POOL = ["Vaccines", "Side-effects", "Fever", "Masks", "Dosage",
              "Fever"]  # duplicates on purpose
CATEGORY_POOL = [None, "vaccines", "side_effects", "symptoms"]


def random_graph(seed, size=10):
    rng = random.Random(seed)
    graph = KnowledgeGraph("COVID-19")
    ids = [graph.root_id]
    for index in range(size):
        parent = rng.choice(ids)
        node_id = graph.add_node(
            rng.choice(LABEL_POOL),
            parent_id=parent,
            category=rng.choice(CATEGORY_POOL),
        )
        for paper in range(rng.randint(0, 2)):
            graph.node(node_id).add_provenance(
                f"paper-{rng.randint(1, 6)}")
        ids.append(node_id)
    return graph


DIFFERENTIAL_QUERIES = [
    'MATCH (v:"Fever") RETURN v',
    'MATCH (v) RETURN v LIMIT 4',
    'MATCH (a)-[parent_of]->(b) RETURN a, b',
    'MATCH (a:"Vaccines")-[parent_of*1..2]->(b) RETURN a, b',
    'MATCH (a)-[child_of*1..3]->(b:"Vaccines") RETURN a',
    'MATCH (a:"Fever")<-[parent_of*1..2]-(b) RETURN b LIMIT 3',
    'MATCH (a)-[related*1..2]->(b:"Fever") RETURN a, b',
    'MATCH (a)-[related*2]->(b) WHERE a.label CONTAINS "fever" '
    'RETURN a, b',
    'MATCH (v) WHERE v.depth > 1 AND v.category = "side_effects" '
    'RETURN v',
    'MATCH (v) WHERE NOT v.papers = 0 RETURN v',
    'MATCH (a:"Vaccines"), (b:"Fever") RETURN a, b LIMIT 5',
    'MATCH (a:"Vaccines")-[parent_of]->(x)-[parent_of]->(c) '
    'RETURN a, c',
    'MATCH (v) WHERE v.depth >= 1 OR v.label = "COVID-19" '
    'RETURN v LIMIT 6',
]


class TestDifferential:
    @pytest.mark.parametrize("seed", [0, 1, 2, 3])
    @pytest.mark.parametrize("text", DIFFERENTIAL_QUERIES)
    def test_matches_brute_force(self, seed, text):
        graph = random_graph(seed)
        engine = KGQLEngine(graph)
        named_vars, expected_rows, expected_total = \
            brute_force(graph, text)
        result = engine.query(text)
        assert result.total_matches == expected_total
        assert _result_rows(result, named_vars) == expected_rows

    @pytest.mark.parametrize("seed", [5, 6])
    def test_deterministic_json(self, seed):
        """Identical queries produce byte-identical JSON bodies."""
        graph = random_graph(seed, size=12)
        engine = KGQLEngine(graph)
        text = ('MATCH (a)-[related*1..2]->(b:"Fever") '
                'RETURN a, b LIMIT 8')
        first = engine.query(text).to_json()
        second = engine.query(text).to_json()
        first.pop("seconds")
        second.pop("seconds")
        assert json.dumps(first, sort_keys=True) == \
            json.dumps(second, sort_keys=True)


class TestSemantics:
    def test_provenance_on_every_row(self):
        graph = seed_covid_graph()
        graph.node("n12").add_provenance("paper-7")  # Side-effects
        engine = KGQLEngine(graph)
        result = engine.query(
            'MATCH (v:"Side-effects") RETURN v LIMIT 1')
        row = result.rows[0]
        payload = row.bindings["v"]
        assert "paper-7" in payload["papers"]
        assert payload["rendered_path"].endswith("[[Side-effects]]")
        assert payload["path"][0] == "COVID-19"
        assert row.papers == payload["papers"]

    def test_multi_var_papers_intersect(self):
        graph = KnowledgeGraph("root")
        a = graph.add_node("Alpha", provenance="shared")
        b = graph.add_node("Beta", provenance="shared")
        graph.node(a).add_provenance("only-a")
        engine = KGQLEngine(graph)
        result = engine.query(
            'MATCH (a:"Alpha"), (b:"Beta") RETURN a, b')
        assert result.rows[0].papers == ["shared"]

    def test_walk_semantics_allow_revisits(self):
        # root - child: a related*2 walk returns to the start.
        graph = KnowledgeGraph("root")
        graph.add_node("Leaf")
        engine = KGQLEngine(graph)
        result = engine.query(
            'MATCH (a:"root")-[related*2]->(b) RETURN b')
        labels = [row.bindings["b"]["label"] for row in result.rows]
        assert labels == ["root"]

    def test_binding_cap_raises(self):
        graph = random_graph(9, size=8)
        engine = KGQLEngine(graph, max_bindings=10)
        with pytest.raises(KGQLError, match="bindings"):
            engine.query('MATCH (a)-[related*1..4]->(b) RETURN a, b')

    def test_nl_flag_routes_through_templates(self):
        engine = KGQLEngine(seed_covid_graph())
        result = engine.query("what is under Vaccines", nl=True)
        assert result.query.startswith("MATCH")
        assert result.total_matches > 0

    def test_explain_does_not_execute(self):
        engine = KGQLEngine(seed_covid_graph(), max_bindings=1)
        explained = engine.explain(
            'MATCH (a)-[related*1..4]->(b) RETURN a, b')
        assert explained["estimated_cost"] > 0
        assert "expand" in explained["plan"]

    def test_column_order_follows_return(self):
        engine = KGQLEngine(seed_covid_graph())
        result = engine.query(
            'MATCH (a:"Vaccines")-[parent_of]->(b) RETURN b, a LIMIT 1')
        assert result.columns == ["b", "a"]

"""Tests for the shared scatter-gather executor."""

import threading
import time

import pytest

from repro.docstore import executor as ex


@pytest.fixture(autouse=True)
def fresh_executor():
    """Each test starts and ends with no pool and no observers."""
    ex.shutdown_executor()
    yield
    ex.shutdown_executor()


class TestWidth:
    def test_default_when_unset(self, monkeypatch):
        monkeypatch.delenv(ex.WIDTH_ENV, raising=False)
        assert ex.executor_width() == ex.DEFAULT_WIDTH

    def test_env_override(self, monkeypatch):
        monkeypatch.setenv(ex.WIDTH_ENV, "3")
        assert ex.executor_width() == 3

    def test_invalid_env_falls_back(self, monkeypatch):
        monkeypatch.setenv(ex.WIDTH_ENV, "not-a-number")
        assert ex.executor_width() == ex.DEFAULT_WIDTH

    def test_non_positive_env_falls_back(self, monkeypatch):
        monkeypatch.setenv(ex.WIDTH_ENV, "0")
        assert ex.executor_width() == ex.DEFAULT_WIDTH

    def test_pool_rebuilds_on_width_change(self, monkeypatch):
        monkeypatch.setenv(ex.WIDTH_ENV, "2")
        first = ex.get_executor()
        monkeypatch.setenv(ex.WIDTH_ENV, "3")
        second = ex.get_executor()
        assert first is not second
        assert second is ex.get_executor()


class TestScatter:
    def test_results_in_task_order(self):
        def task(value):
            def run():
                time.sleep(0.002 * (5 - value))  # later tasks finish first
                return value
            return run

        assert ex.scatter([task(i) for i in range(5)]) == list(range(5))

    def test_actually_parallel(self, monkeypatch):
        monkeypatch.setenv(ex.WIDTH_ENV, "4")
        barrier = threading.Barrier(4, timeout=10)

        def task():
            barrier.wait()  # deadlocks unless all four run concurrently
            return threading.get_ident()

        idents = ex.scatter([task] * 4)
        assert len(set(idents)) == 4

    def test_width_one_is_serial(self, monkeypatch):
        monkeypatch.setenv(ex.WIDTH_ENV, "1")
        main = threading.get_ident()
        idents = ex.scatter([threading.get_ident] * 4)
        assert set(idents) == {main}

    def test_single_task_runs_inline(self):
        main = threading.get_ident()
        assert ex.scatter([threading.get_ident]) == [main]

    def test_first_exception_propagates(self):
        def boom():
            raise ValueError("shard exploded")

        with pytest.raises(ValueError, match="shard exploded"):
            ex.scatter([boom, lambda: 1, lambda: 2])

    def test_nested_fanout_runs_inline(self, monkeypatch):
        # Width 2 with 4 outer tasks that each fan out again: nested
        # submission to the bounded pool would deadlock; inline nested
        # execution cannot.
        monkeypatch.setenv(ex.WIDTH_ENV, "2")

        def inner():
            return threading.get_ident()

        def outer():
            return (threading.get_ident(), ex.scatter([inner] * 3))

        results = ex.scatter([outer] * 4)
        for worker_ident, inner_idents in results:
            assert set(inner_idents) == {worker_ident}


class TestScatterFirst:
    def test_returns_accepted_result(self):
        result = ex.scatter_first(
            [lambda: None, lambda: 7, lambda: None],
            accept=lambda value: value is not None,
        )
        assert result == 7

    def test_none_when_nothing_accepted(self):
        result = ex.scatter_first(
            [lambda: None] * 4, accept=lambda value: value is not None
        )
        assert result is None

    def test_serial_short_circuits_in_order(self, monkeypatch):
        monkeypatch.setenv(ex.WIDTH_ENV, "1")
        calls = []

        def task(value):
            def run():
                calls.append(value)
                return value
            return run

        result = ex.scatter_first(
            [task(0), task(1), task(2), task(3)],
            accept=lambda value: value >= 1,
        )
        assert result == 1
        assert calls == [0, 1]  # later tasks never ran

    def test_fast_hit_wins_over_slow_tasks(self, monkeypatch):
        monkeypatch.setenv(ex.WIDTH_ENV, "4")

        def slow():
            time.sleep(0.2)
            return None

        def fast():
            return "hit"

        started = time.perf_counter()
        result = ex.scatter_first(
            [slow, fast, slow, slow],
            accept=lambda value: value is not None,
        )
        assert result == "hit"
        assert time.perf_counter() - started < 1.0

    def test_error_propagates_only_without_winner(self):
        def boom():
            raise ValueError("shard down")

        assert ex.scatter_first(
            [boom, lambda: "ok"], accept=lambda value: value is not None
        ) == "ok"
        with pytest.raises(ValueError, match="shard down"):
            ex.scatter_first(
                [boom, lambda: None], accept=lambda v: v is not None
            )


class TestObservers:
    def test_observer_sees_each_task(self):
        samples = []
        ex.add_fanout_observer(samples.append)
        try:
            ex.scatter([lambda: 1, lambda: 2, lambda: 3])
        finally:
            ex.remove_fanout_observer(samples.append)
        assert len(samples) == 3
        assert all(seconds >= 0 for seconds in samples)

    def test_removed_observer_not_called(self):
        samples = []
        ex.add_fanout_observer(samples.append)
        ex.remove_fanout_observer(samples.append)
        ex.scatter([lambda: 1, lambda: 2])
        assert samples == []

    def test_observer_exception_does_not_break_fanout(self):
        def broken(seconds):
            raise RuntimeError("observer bug")

        ex.add_fanout_observer(broken)
        try:
            assert ex.scatter([lambda: 1, lambda: 2]) == [1, 2]
        finally:
            ex.remove_fanout_observer(broken)

    def test_single_task_skips_observation(self):
        samples = []
        ex.add_fanout_observer(samples.append)
        try:
            ex.scatter([lambda: 1])
        finally:
            ex.remove_fanout_observer(samples.append)
        assert samples == []  # no fan-out happened

"""Tests for the Client/Database facade."""

import pytest

from repro.docstore.database import Client, Database
from repro.docstore.functions import FunctionRegistry
from repro.errors import ShardingError


class TestDatabase:
    def test_collection_is_memoized(self):
        db = Database("kg")
        assert db.collection("papers") is db.collection("papers")

    def test_sharded_collection_is_memoized(self):
        db = Database("kg")
        first = db.sharded_collection("papers", shard_key="pid")
        assert db.sharded_collection("papers", shard_key="pid") is first

    def test_flavor_mismatch_raises(self):
        db = Database("kg")
        db.collection("plain")
        with pytest.raises(ShardingError):
            db.sharded_collection("plain", shard_key="pid")
        db.sharded_collection("sharded", shard_key="pid")
        with pytest.raises(ShardingError):
            db.collection("sharded")

    def test_drop_collection(self):
        db = Database("kg")
        db.collection("tmp").insert_one({"x": 1})
        db.drop_collection("tmp")
        assert db.collection("tmp").count() == 0

    def test_aggregate_plain_collection(self):
        db = Database("kg")
        db.collection("nums").insert_many([{"v": i} for i in range(10)])
        result = db.aggregate("nums", [
            {"$match": {"v": {"$gte": 5}}},
            {"$count": "n"},
        ])
        assert result.documents == [{"n": 5}]

    def test_aggregate_sharded_collection_with_leading_match(self):
        db = Database("kg")
        coll = db.sharded_collection("papers", shard_key="pid", num_shards=3)
        coll.insert_many([{"pid": i, "year": 2020 + i % 2}
                          for i in range(20)])
        result = db.aggregate("papers", [
            {"$match": {"year": 2021}},
            {"$count": "n"},
        ])
        assert result.documents == [{"n": 10}]

    def test_registry_shared_with_pipelines(self):
        registry = FunctionRegistry()
        registry.register("twice", lambda v: v * 2)
        db = Database("kg", registry)
        db.collection("nums").insert_many([{"v": 3}])
        result = db.aggregate("nums", [
            {"$function": {"name": "twice", "args": ["$v"], "as": "w"}},
        ])
        assert result.documents[0]["w"] == 6

    def test_storage_bytes_sums_collections(self):
        db = Database("kg")
        db.collection("a").insert_one({"pad": "x" * 100})
        db.sharded_collection("b", shard_key="k").insert_one(
            {"k": 1, "pad": "y" * 100}
        )
        assert db.storage_bytes() > 200


class TestClient:
    def test_databases_are_memoized(self):
        client = Client()
        assert client.database("kg") is client["kg"]

    def test_database_names(self):
        client = Client()
        client["a"], client["b"]
        assert client.database_names() == ["a", "b"]

    def test_drop_database(self):
        client = Client()
        client["kg"].collection("papers").insert_one({"x": 1})
        client.drop_database("kg")
        assert client["kg"].collection("papers").count() == 0


class TestShardedGroupMerge:
    """Two-phase (mongos-style) aggregation for mergeable $group specs."""

    def build(self, num_docs=60, num_shards=4):
        db = Database("kg")
        coll = db.sharded_collection("papers", shard_key="pid",
                                     num_shards=num_shards)
        docs = [
            {"pid": i, "year": 2019 + i % 3, "cites": i % 7,
             "tag": f"t{i % 2}"}
            for i in range(num_docs)
        ]
        coll.insert_many(docs)
        return db, docs

    def reference(self, docs, stages):
        from repro.docstore.aggregation import aggregate
        return aggregate(docs, stages)

    def canonical(self, documents):
        import json
        return sorted(
            json.dumps(doc, sort_keys=True, default=str)
            for doc in documents
        )

    def test_mergeable_group_matches_unsharded(self):
        db, docs = self.build()
        stages = [
            {"$group": {"_id": "$year",
                        "total": {"$sum": "$cites"},
                        "n": {"$count": {}},
                        "lo": {"$min": "$cites"},
                        "hi": {"$max": "$cites"}}},
        ]
        sharded = db.aggregate("papers", stages)
        reference = self.reference(docs, stages)
        assert self.canonical(sharded.documents) == self.canonical(
            reference.documents
        )

    def test_push_and_add_to_set_merge(self):
        db, docs = self.build(num_docs=20)
        stages = [{"$group": {"_id": "$tag",
                              "years": {"$addToSet": "$year"},
                              "all": {"$push": "$cites"}}}]
        sharded = db.aggregate("papers", stages).documents
        reference = self.reference(docs, stages).documents
        by_id = {doc["_id"]: doc for doc in sharded}
        for ref in reference:
            got = by_id[ref["_id"]]
            assert sorted(got["years"]) == sorted(ref["years"])
            assert sorted(got["all"]) == sorted(ref["all"])

    def test_match_then_group(self):
        db, docs = self.build()
        stages = [
            {"$match": {"year": {"$gte": 2020}}},
            {"$group": {"_id": "$year", "n": {"$count": {}}}},
            {"$sort": {"_id": 1}},
        ]
        sharded = db.aggregate("papers", stages)
        reference = self.reference(docs, stages)
        assert sharded.documents == reference.documents

    def test_avg_falls_back_but_stays_correct(self):
        db, docs = self.build()
        stages = [{"$group": {"_id": "$year",
                              "mean": {"$avg": "$cites"}}},
                  {"$sort": {"_id": 1}}]
        sharded = db.aggregate("papers", stages)
        reference = self.reference(docs, stages)
        assert sharded.documents == reference.documents

    def test_post_group_stages_apply(self):
        db, docs = self.build()
        stages = [
            {"$group": {"_id": "$year", "n": {"$count": {}}}},
            {"$sort": {"n": -1, "_id": 1}},
            {"$limit": 1},
        ]
        sharded = db.aggregate("papers", stages)
        reference = self.reference(docs, stages)
        assert sharded.documents == reference.documents


class TestRegistryIsolation:
    """Each Database owns a registry seeded from the defaults, so
    ``$function`` registrations cannot leak across systems."""

    def test_databases_do_not_share_registrations(self):
        db_a = Database("a")
        db_b = Database("b")
        db_a.registry.register("only_in_a", lambda doc: 1)
        assert "only_in_a" in db_a.registry
        assert "only_in_a" not in db_b.registry

    def test_default_registry_seeds_new_databases(self):
        from repro.docstore.functions import default_registry

        default_registry.register("seeded_fn", lambda doc: 42)
        try:
            db = Database("seeded")
            assert "seeded_fn" in db.registry
            # ... but it is a copy: later global additions don't appear.
            default_registry.register("late_fn", lambda doc: 0)
            try:
                assert "late_fn" not in db.registry
            finally:
                default_registry.unregister("late_fn")
        finally:
            default_registry.unregister("seeded_fn")

    def test_explicit_registry_still_honoured(self):
        shared = FunctionRegistry()
        db_a = Database("a", registry=shared)
        db_b = Database("b", registry=shared)
        shared.register("shared_fn", lambda doc: 1)
        assert "shared_fn" in db_a.registry
        assert "shared_fn" in db_b.registry

    def test_client_databases_share_one_registry(self):
        client = Client()
        db_a = client.database("a")
        db_b = client.database("b")
        db_a.registry.register("client_fn", lambda doc: 1)
        assert "client_fn" in db_b.registry
        assert "client_fn" not in Client().database("c").registry

    def test_covidkg_systems_are_isolated(self):
        from repro.api.system import CovidKG

        system_a = CovidKG()
        system_b = CovidKG()
        system_a.functions.register("system_a_rank", lambda doc: 0.0)
        assert "system_a_rank" not in system_b.functions
        # The three engines of one system share that system's registry.
        assert system_a.all_fields.registry is system_a.functions
        assert system_a.tables.registry is system_a.functions

    def test_registry_copy_is_independent(self):
        original = FunctionRegistry()
        original.register("f", lambda doc: 1)
        clone = original.copy()
        clone.register("g", lambda doc: 2)
        assert "f" in clone
        assert "g" not in original

"""Tests for JSONL snapshots, the operation log, and storage accounting."""

import pytest

from repro.docstore.collection import Collection
from repro.docstore.documents import ObjectId
from repro.docstore.persistence import (
    OperationLog,
    StorageReport,
    load_collection,
    save_collection,
    storage_report,
)
from repro.docstore.sharding import ShardedCollection
from repro.errors import PersistenceError


class TestSnapshot:
    def test_roundtrip(self, tmp_path):
        collection = Collection("papers")
        collection.insert_many([
            {"title": "a", "year": 2020},
            {"title": "b", "nested": {"deep": [1, 2]}},
        ])
        path = tmp_path / "papers.jsonl"
        written = save_collection(collection, path)
        assert written > 0
        loaded = load_collection(path)
        assert len(loaded) == 2
        assert loaded.find_one({"title": "b"})["nested"]["deep"] == [1, 2]

    def test_object_ids_survive_roundtrip(self, tmp_path):
        collection = Collection()
        doc_id = collection.insert_one({"x": 1})
        path = tmp_path / "c.jsonl"
        save_collection(collection, path)
        loaded = load_collection(path)
        restored = loaded.find_one({"x": 1})
        assert isinstance(restored["_id"], ObjectId)
        assert restored["_id"] == doc_id

    def test_missing_snapshot_raises(self, tmp_path):
        with pytest.raises(PersistenceError):
            load_collection(tmp_path / "absent.jsonl")

    def test_corrupt_snapshot_raises(self, tmp_path):
        path = tmp_path / "bad.jsonl"
        path.write_text('{"ok": 1}\nnot json at all\n')
        with pytest.raises(PersistenceError):
            load_collection(path)


class TestOperationLog:
    def test_replay_applies_operations(self, tmp_path):
        log = OperationLog(tmp_path / "oplog.jsonl")
        log.append("insert", {"document": {"_id": "a", "v": 1}})
        log.append("insert", {"document": {"_id": "b", "v": 2}})
        log.append("update", {"query": {"_id": "a"},
                              "update": {"$inc": {"v": 10}}})
        log.append("delete", {"query": {"_id": "b"}})
        collection = Collection()
        applied = log.replay(collection)
        assert applied == 4
        assert collection.count() == 1
        assert collection.find_one({"_id": "a"})["v"] == 11

    def test_replay_missing_log_is_noop(self, tmp_path):
        log = OperationLog(tmp_path / "never.jsonl")
        assert log.replay(Collection()) == 0

    def test_unknown_op_raises(self, tmp_path):
        log = OperationLog(tmp_path / "oplog.jsonl")
        log.append("frobnicate", {})
        with pytest.raises(PersistenceError):
            log.replay(Collection())

    def test_truncate(self, tmp_path):
        log = OperationLog(tmp_path / "oplog.jsonl")
        log.append("insert", {"document": {"v": 1}})
        log.truncate()
        assert log.replay(Collection()) == 0

    def test_snapshot_plus_log_recovery(self, tmp_path):
        # The deployment shape: checkpoint, more writes, crash, recover.
        collection = Collection()
        collection.insert_one({"_id": "base", "v": 0})
        save_collection(collection, tmp_path / "snap.jsonl")
        log = OperationLog(tmp_path / "oplog.jsonl")
        log.append("insert", {"document": {"_id": "later", "v": 1}})
        recovered = load_collection(tmp_path / "snap.jsonl")
        log.replay(recovered)
        assert recovered.count() == 2


class TestStorageReport:
    def test_report_for_plain_collection(self):
        collection = Collection()
        collection.insert_many([{"pad": "x" * 100} for _ in range(10)])
        report = storage_report(collection)
        assert report.num_documents == 10
        assert report.total_bytes > 1000
        assert report.bytes_per_document > 100

    def test_report_for_sharded_collection(self):
        coll = ShardedCollection("s", shard_key="k", num_shards=4)
        coll.insert_many([{"k": i, "pad": "x" * 50} for i in range(40)])
        report = storage_report(coll)
        assert len(report.shard_bytes) == 4
        assert report.total_bytes == sum(report.shard_bytes)
        assert report.shard_skew >= 1.0

    def test_extrapolation_scales_linearly(self):
        report = StorageReport(num_documents=100, total_bytes=200_000,
                               shard_bytes=[200_000])
        assert report.extrapolate_bytes(450_000) == 900_000_000

    def test_empty_report(self):
        report = storage_report(Collection())
        assert report.bytes_per_document == 0.0
        assert report.shard_skew == 1.0


class TestVersionSidecar:
    """The mutation counter must survive the snapshot roundtrip.

    Replaying the inserts alone resets the counter, and a restored
    collection whose version restarted from zero could alias cached
    results computed in the pre-save process.
    """

    def test_version_resumes_past_saved_value(self, tmp_path):
        collection = Collection("papers")
        collection.insert_many([{"title": "a"}, {"title": "b"}])
        collection.update_many({"title": "a"}, {"$set": {"seen": 1}})
        saved_version = collection.version
        path = tmp_path / "papers.jsonl"
        save_collection(collection, path)

        loaded = load_collection(path)
        assert loaded.version > saved_version

    def test_sidecar_written_next_to_snapshot(self, tmp_path):
        collection = Collection("papers")
        collection.insert_one({"title": "a"})
        path = tmp_path / "papers.jsonl"
        save_collection(collection, path)
        sidecar = tmp_path / "papers.jsonl.meta.json"
        assert sidecar.exists()

    def test_snapshot_without_sidecar_still_loads(self, tmp_path):
        """Back-compat: snapshots from older code have no sidecar."""
        collection = Collection("papers")
        collection.insert_one({"title": "a"})
        path = tmp_path / "papers.jsonl"
        save_collection(collection, path)
        (tmp_path / "papers.jsonl.meta.json").unlink()
        loaded = load_collection(path)
        assert len(loaded) == 1

    def test_corrupt_sidecar_raises(self, tmp_path):
        collection = Collection("papers")
        collection.insert_one({"title": "a"})
        path = tmp_path / "papers.jsonl"
        save_collection(collection, path)
        (tmp_path / "papers.jsonl.meta.json").write_text("{not json")
        with pytest.raises(PersistenceError):
            load_collection(path)

"""Shared fixtures: the racecheck session gate.

Running the suite with ``REPRO_RACECHECK=1`` turns every lock created by
the serve/docstore modules into an instrumented wrapper; this hook makes
the whole suite double as a race test — at session end the accumulated
lock-order graph must contain no deadlock cycles and no held-across-
fan-out violations.
"""

from __future__ import annotations

import os

import pytest

from repro.analysis import racecheck


@pytest.fixture(scope="session", autouse=True)
def _racecheck_gate():
    """Assert a clean lock-order report when racechecking is enabled."""
    enabled_for_suite = os.environ.get(racecheck.ENV_FLAG, "") == "1"
    if enabled_for_suite:
        racecheck.reset()
    yield
    if not enabled_for_suite:
        return
    report = racecheck.report()
    # Unit tests deliberately manufacture cycles/violations and reset()
    # afterwards; anything still recorded here leaked from real code.
    assert report.clean, (
        "racecheck found concurrency hazards in the production locks:\n"
        + report.summary()
    )

"""Tests for Word2Vec, tabular embeddings, and similarity utilities."""

import numpy as np
import pytest

from repro.embeddings.similarity import cosine_similarity, nearest_neighbors
from repro.embeddings.tabular import TabularEmbedder
from repro.embeddings.word2vec import Word2Vec
from repro.errors import ModelError, NotFittedError
from repro.text.vocabulary import UNKNOWN_INDEX, Vocabulary

# A tiny corpus with two clearly separated topics: vaccines and ventilation.
SENTENCES = (
    ["pfizer vaccine dose efficacy antibody",
     "moderna vaccine dose antibody response",
     "vaccine dose antibody efficacy pfizer",
     "moderna dose vaccine response antibody"] * 8
    + ["ventilator oxygen icu airway pressure",
       "icu ventilator airway oxygen support",
       "oxygen airway ventilator pressure icu",
       "ventilator icu pressure oxygen airway"] * 8
)


@pytest.fixture(scope="module")
def vocab():
    return Vocabulary.from_texts(SENTENCES, drop_stopwords=False)


@pytest.fixture(scope="module")
def w2v(vocab):
    return Word2Vec(vocab, dim=16, window=2, seed=3).fit(
        SENTENCES, epochs=10
    )


class TestWord2Vec:
    def test_topic_terms_cluster(self, w2v):
        same_topic = cosine_similarity(
            w2v.vector("pfizer"), w2v.vector("moderna")
        )
        cross_topic = cosine_similarity(
            w2v.vector("pfizer"), w2v.vector("ventilator")
        )
        assert same_topic > cross_topic

    def test_most_similar_returns_topic_neighbors(self, w2v):
        neighbors = [term for term, _ in w2v.most_similar("vaccine", top_k=4)]
        vaccine_terms = {"pfizer", "moderna", "dose", "antibody",
                         "efficacy", "response"}
        assert len(set(neighbors) & vaccine_terms) >= 3

    def test_text_vector_is_token_mean(self, w2v):
        combined = w2v.text_vector("pfizer moderna")
        manual = (w2v.vector("pfizer") + w2v.vector("moderna")) / 2
        np.testing.assert_allclose(combined, manual)

    def test_text_vector_of_unknown_text_is_zero(self, w2v):
        np.testing.assert_array_equal(
            w2v.text_vector("zzz qqq"), np.zeros(w2v.dim)
        )

    def test_unfitted_raises(self, vocab):
        with pytest.raises(NotFittedError):
            Word2Vec(vocab).vector("vaccine")

    def test_double_fit_requires_fine_tune_flag(self, vocab):
        model = Word2Vec(vocab, dim=8, seed=0).fit(SENTENCES[:8], epochs=1)
        with pytest.raises(ModelError):
            model.fit(SENTENCES[:8], epochs=1)
        model.fit(SENTENCES[:8], epochs=1, fine_tune=True)  # allowed

    def test_fine_tune_moves_vectors(self, vocab):
        model = Word2Vec(vocab, dim=8, seed=1).fit(SENTENCES, epochs=2)
        before = model.vector("vaccine").copy()
        model.fit(["vaccine ventilator"] * 20, epochs=3, fine_tune=True)
        assert not np.allclose(before, model.vector("vaccine"))

    def test_invalid_construction(self, vocab):
        with pytest.raises(ModelError):
            Word2Vec(vocab, dim=0)
        with pytest.raises(ModelError):
            Word2Vec(vocab, window=0)

    def test_fit_rejects_fully_unknown_corpus(self, vocab):
        with pytest.raises(ModelError):
            Word2Vec(vocab, dim=4).fit(["zzz qqq xxx"], epochs=1)


class TestTabularEmbedder:
    def test_term_indices_padded(self, vocab):
        embedder = TabularEmbedder(vocab, max_terms=6, max_cells=3)
        indices = embedder.term_indices(["pfizer vaccine", "dose"])
        assert indices.shape == (6,)
        assert indices[0] == vocab.index_of("pfizer")
        assert indices[3] == UNKNOWN_INDEX  # padding

    def test_term_indices_truncated(self, vocab):
        embedder = TabularEmbedder(vocab, max_terms=2, max_cells=3)
        indices = embedder.term_indices(["pfizer vaccine dose efficacy"])
        assert indices.shape == (2,)

    def test_numeric_cells_normalized_before_lookup(self, vocab):
        vocab_with_num = Vocabulary.from_texts(
            ["INT RANGE pfizer"], drop_stopwords=False
        )
        embedder = TabularEmbedder(vocab_with_num, max_terms=4)
        indices = embedder.term_indices(["120", "5-10"])
        assert indices[0] == vocab_with_num.index_of("int")
        assert indices[1] == vocab_with_num.index_of("range")

    def test_cell_token_indices_one_per_cell(self, vocab):
        embedder = TabularEmbedder(vocab, max_cells=4)
        indices = embedder.cell_token_indices(
            ["pfizer vaccine", "zzz", "dose"]
        )
        assert indices.shape == (4,)
        assert indices[0] == vocab.index_of("pfizer")
        assert indices[1] == UNKNOWN_INDEX
        assert indices[2] == vocab.index_of("dose")

    def test_batch_shapes(self, vocab):
        embedder = TabularEmbedder(vocab, max_terms=5, max_cells=3)
        tuples = [["pfizer", "dose"], ["ventilator icu oxygen"]]
        assert embedder.batch_term_indices(tuples).shape == (2, 5)
        assert embedder.batch_cell_indices(tuples).shape == (2, 3)

    def test_cell_vectors_require_word2vec(self, vocab):
        embedder = TabularEmbedder(vocab)
        with pytest.raises(ModelError):
            embedder.cell_vectors(["pfizer"])

    def test_cell_vectors_shape_and_content(self, vocab, w2v):
        embedder = TabularEmbedder(vocab, max_cells=3, word2vec=w2v)
        vectors = embedder.cell_vectors(["pfizer", "ventilator"])
        assert vectors.shape == (3, w2v.dim)
        np.testing.assert_allclose(vectors[0], w2v.text_vector("pfizer"))
        np.testing.assert_array_equal(vectors[2], 0.0)

    def test_tuple_vector_mean(self, vocab, w2v):
        embedder = TabularEmbedder(vocab, word2vec=w2v)
        vector = embedder.tuple_vector(["pfizer", "moderna"])
        manual = (w2v.text_vector("pfizer")
                  + w2v.text_vector("moderna")) / 2
        np.testing.assert_allclose(vector, manual)

    def test_invalid_lengths(self, vocab):
        with pytest.raises(ModelError):
            TabularEmbedder(vocab, max_terms=0)


class TestSimilarity:
    def test_cosine_identical(self):
        v = np.array([1.0, 2.0, 3.0])
        assert cosine_similarity(v, v) == pytest.approx(1.0)

    def test_cosine_orthogonal(self):
        assert cosine_similarity(
            np.array([1.0, 0.0]), np.array([0.0, 1.0])
        ) == pytest.approx(0.0)

    def test_cosine_opposite(self):
        assert cosine_similarity(
            np.array([1.0, 0.0]), np.array([-1.0, 0.0])
        ) == pytest.approx(-1.0)

    def test_zero_vector_yields_zero(self):
        assert cosine_similarity(np.zeros(3), np.ones(3)) == 0.0

    def test_shape_mismatch(self):
        with pytest.raises(ModelError):
            cosine_similarity(np.zeros(2), np.zeros(3))

    def test_nearest_neighbors_order(self):
        candidates = np.array([
            [1.0, 0.0],   # identical direction
            [0.7, 0.7],   # 45 degrees
            [0.0, 1.0],   # orthogonal
            [-1.0, 0.0],  # opposite
        ])
        result = nearest_neighbors(np.array([1.0, 0.0]), candidates, top_k=3)
        assert [index for index, _ in result] == [0, 1, 2]
        assert result[0][1] == pytest.approx(1.0)

    def test_nearest_neighbors_skips_zero_rows(self):
        candidates = np.array([[0.0, 0.0], [1.0, 0.0]])
        result = nearest_neighbors(np.array([1.0, 0.0]), candidates, top_k=2)
        assert [index for index, _ in result] == [1]

    def test_zero_query_returns_empty(self):
        assert nearest_neighbors(np.zeros(2), np.ones((3, 2))) == []

"""Tests for the bias-interrogation module."""

import pytest
from hypothesis import given
from hypothesis import strategies as st

from repro.corpus.generator import CorpusGenerator, GeneratorConfig
from repro.kg.bias import (
    BiasFlag,
    BiasInterrogator,
    BiasReport,
    normalized_entropy,
)
from repro.kg.enrichment import EnrichmentPipeline
from repro.kg.fusion import ExtractedSubtree, FusionEngine
from repro.kg.matching import NodeMatcher
from repro.kg.ontology import seed_covid_graph


def make_paper(paper_id, journal="JAMA", topic="vaccines", tables=()):
    return {
        "paper_id": paper_id,
        "title": f"{topic} study {paper_id}",
        "abstract": f"a study of {topic}",
        "authors": [{"first": "A", "last": "B"}],
        "publish_time": "2021-01-01",
        "journal": journal,
        "body_text": [{"section": "Results", "text": f"about {topic}"}],
        "tables": list(tables),
        "figures": [],
    }


def side_effect_table(vaccine, rates):
    rows = [{"cells": [{"text": "Side effect"}, {"text": "Dose 1 (%)"},
                       {"text": "Dose 2 (%)"}], "is_metadata": True}]
    for effect, (d1, d2) in rates.items():
        rows.append({"cells": [{"text": effect}, {"text": str(d1)},
                               {"text": str(d2)}]})
    return {
        "caption": f"Table: Side effects reported after {vaccine} "
        "vaccination, by dose",
        "rows": rows,
    }


class TestNormalizedEntropy:
    def test_uniform_is_one(self):
        assert normalized_entropy([10, 10, 10]) == pytest.approx(1.0)

    def test_degenerate_is_zero(self):
        assert normalized_entropy([30, 0, 0]) == 0.0
        assert normalized_entropy([5]) == 0.0
        assert normalized_entropy([30, 1, 1]) < 0.5

    def test_trivial_distributions_are_balanced(self):
        assert normalized_entropy([1]) == 1.0
        assert normalized_entropy([]) == 1.0
        assert normalized_entropy([0, 0]) == 1.0

    @given(st.lists(st.integers(1, 50), min_size=2, max_size=10))
    def test_bounded(self, counts):
        assert 0.0 <= normalized_entropy(counts) <= 1.0 + 1e-9

    @given(st.integers(2, 10), st.integers(1, 40))
    def test_uniform_always_one(self, buckets, per):
        assert normalized_entropy([per] * buckets) == pytest.approx(1.0)


class TestSourceBalance:
    def test_balanced_journals_not_flagged(self):
        papers = [make_paper(f"p{i}", journal=f"J{i % 5}")
                  for i in range(20)]
        balance, flags, journals = (
            BiasInterrogator().check_source_balance(papers)
        )
        assert balance > 0.9
        assert not flags
        assert sum(journals.values()) == 20

    def test_dominant_journal_flagged(self):
        papers = [make_paper(f"p{i}", journal="MegaJournal")
                  for i in range(18)]
        papers.append(make_paper("p-other", journal="Small"))
        balance, flags, _ = BiasInterrogator().check_source_balance(papers)
        assert balance < 0.6
        assert flags and flags[0].kind == "source_skew"
        assert flags[0].subject == "MegaJournal"


class TestProvenance:
    def build(self):
        graph = seed_covid_graph()
        engine = FusionEngine(graph, NodeMatcher(graph))
        return graph, engine

    def test_thin_node_flagged(self):
        graph, engine = self.build()
        engine.fuse(ExtractedSubtree(
            "Vaccines", category="vaccines", provenance="only-paper",
            children=[ExtractedSubtree("LonelyVax", category="vaccines")],
        ))
        flags = BiasInterrogator().check_provenance(graph)
        assert any(flag.subject == "LonelyVax" for flag in flags)

    def test_well_sourced_node_not_flagged(self):
        graph, engine = self.build()
        for paper in ("p1", "p2", "p3"):
            engine.fuse(ExtractedSubtree(
                "Vaccines", category="vaccines", provenance=paper,
                children=[ExtractedSubtree("PopularVax",
                                           category="vaccines")],
            ))
        flags = BiasInterrogator().check_provenance(graph)
        assert not any(flag.subject == "PopularVax" for flag in flags)

    def test_untouched_seed_structure_exempt(self):
        graph, _ = self.build()
        flags = BiasInterrogator().check_provenance(graph)
        assert flags == []


class TestContestedClaims:
    def test_high_variance_rate_flagged(self):
        papers = [
            make_paper("p1", tables=[side_effect_table(
                "Pfizer", {"fever": (5.0, 6.0)})]),
            make_paper("p2", tables=[side_effect_table(
                "Pfizer", {"fever": (60.0, 70.0)})]),
        ]
        flags = BiasInterrogator().check_contested_claims(papers)
        assert flags
        assert all(flag.kind == "contested_claim" for flag in flags)
        assert "Pfizer / fever" in flags[0].subject

    def test_agreeing_rates_not_flagged(self):
        papers = [
            make_paper("p1", tables=[side_effect_table(
                "Pfizer", {"fever": (20.0, 25.0)})]),
            make_paper("p2", tables=[side_effect_table(
                "Pfizer", {"fever": (21.0, 26.0)})]),
        ]
        assert BiasInterrogator().check_contested_claims(papers) == []

    def test_single_paper_claims_exempt(self):
        papers = [make_paper("p1", tables=[side_effect_table(
            "Pfizer", {"fever": (1.0, 99.0)})])]
        assert BiasInterrogator().check_contested_claims(papers) == []


class TestInterrogate:
    def test_full_report_on_synthetic_corpus(self):
        papers = CorpusGenerator(GeneratorConfig(
            seed=31, tables_per_paper=(1, 2),
        )).papers(40)
        graph = seed_covid_graph()
        engine = FusionEngine(graph, NodeMatcher(graph))
        pipeline = EnrichmentPipeline(engine)
        pipeline.enrich(papers)
        report = BiasInterrogator().interrogate(
            papers, graph=graph, pipeline=pipeline, num_clusters=4,
        )
        assert 0.0 <= report.topic_balance <= 1.0
        assert 0.0 <= report.source_balance <= 1.0
        summary = report.summary()
        assert set(summary) == {"topic_balance", "source_balance", "flags"}
        assert report.worst(3) == sorted(
            report.flags, key=lambda f: -f.severity
        )[:3]

    def test_flags_of_filters_by_kind(self):
        report = BiasReport(flags=[
            BiasFlag("source_skew", "x", 0.5, "d"),
            BiasFlag("thin_provenance", "y", 0.9, "d"),
        ])
        assert len(report.flags_of("source_skew")) == 1

    def test_system_facade_interrogation(self):
        from repro.api.system import CovidKG, CovidKGConfig
        from repro.errors import ModelError
        system = CovidKG(CovidKGConfig(num_shards=2))
        with pytest.raises(ModelError):
            system.interrogate_bias()
        papers = CorpusGenerator(GeneratorConfig(
            seed=32, tables_per_paper=(1, 2),
        )).papers(16)
        system.ingest(papers)
        report = system.interrogate_bias(num_clusters=4)
        assert isinstance(report, BiasReport)

"""Streaming ingest through the serving tier and the HTTP gateway.

Covers the serve-side contract (dedicated writer pool, admission
pricing, cache invalidation on commit *and* rollback, negative-cache
un-negativing) and the full wire path: ``POST /v1/ingest`` with typed
error mapping, reads flowing concurrently with commits.
"""

import threading
from concurrent.futures import wait

import pytest

from repro.api.system import CovidKG, CovidKGConfig
from repro.corpus.generator import CorpusGenerator, GeneratorConfig
from repro.errors import KGQLSyntaxError, RequestTooExpensiveError
from repro.gateway.client import GatewayClient
from repro.gateway.server import BackgroundGateway
from repro.ingest.engine import IngestEngine
from repro.serve.service import GatewayConfig, QueryService, ServeConfig


def _corpus(count):
    return CorpusGenerator(GeneratorConfig(
        seed=53, papers_per_week=20, tables_per_paper=(1, 2),
    )).papers(count)


def _page_ids(results):
    return [(hit.paper_id, hit.score) for hit in results]


@pytest.fixture()
def stack(tmp_path):
    """(system, service-with-engine, held-back papers)."""
    papers = _corpus(50)
    system = CovidKG(CovidKGConfig(num_shards=2))
    system.ingest(papers[:35])
    engine = IngestEngine(system, tmp_path)
    service = QueryService(system, ServeConfig(num_workers=2))
    service.attach_ingest(engine)
    try:
        yield system, service, papers[35:]
    finally:
        service.close()
        engine.close()


class TestServiceIngest:
    def test_commit_invalidates_cached_pages(self, stack):
        system, service, held = stack
        cold = service.query("all_fields", query="covid vaccine")
        assert service.query("all_fields",
                             query="covid vaccine").cached
        receipt = service.submit_ingest(held[:10]).result(timeout=30)
        assert receipt.engine == "ingest"
        assert receipt.value["accepted"] == 10
        fresh = service.query("all_fields", query="covid vaccine")
        assert not fresh.cached
        assert fresh.versions != cold.versions

    def test_rollback_invalidates_cached_pages(self, stack):
        system, service, held = stack
        before = service.query("all_fields", query="covid vaccine")
        service.submit_ingest(held[:10]).result(timeout=30)
        service.ingest_engine.rollback("base")
        after = service.query("all_fields", query="covid vaccine")
        assert not after.cached  # no counter ever repeats
        assert _page_ids(after.value) == _page_ids(before.value)

    def test_ingest_rejection_propagates_typed(self, stack):
        from repro.errors import IngestRejectedError

        system, service, held = stack
        bad = dict(held[0])
        bad.pop("title")
        with pytest.raises(IngestRejectedError):
            service.submit_ingest([bad]).result(timeout=30)

    def test_admission_prices_per_document(self, stack, tmp_path):
        system, service, held = stack
        priced = QueryService(system, ServeConfig(
            num_workers=1, max_request_cost=100.0))
        priced.attach_ingest(service.ingest_engine)
        try:
            with pytest.raises(RequestTooExpensiveError):
                priced.submit_ingest(held[:10])  # 250 units > 100
            receipt = priced.submit_ingest(
                held[:2]).result(timeout=30)  # 50 units fits
            assert receipt.value["accepted"] == 2
        finally:
            priced.close()

    def test_negative_cache_unnegatives_after_ingest(self, stack):
        system, service, held = stack
        bad_query = 'MATCH (v:"Vaccines" RETURN v'  # unbalanced paren
        with pytest.raises(KGQLSyntaxError):
            service.query("kg_query", query=bad_query)
        with pytest.raises(KGQLSyntaxError):
            service.query("kg_query", query=bad_query)
        negatives = service.stats()["negative_hits"]
        assert negatives >= 1  # the repeat replayed the cached failure
        service.submit_ingest(held[:3]).result(timeout=30)
        # Version bump: the remembered failure is stale, so the next
        # attempt recomputes instead of replaying it.
        with pytest.raises(KGQLSyntaxError):
            service.query("kg_query", query=bad_query)
        assert service.stats()["negative_hits"] == negatives

    def test_reads_flow_while_committing(self, stack):
        system, service, held = stack
        errors = []
        stop = threading.Event()

        def reader():
            while not stop.is_set():
                try:
                    service.query("all_fields", query="antibody")
                except Exception as exc:  # noqa: BLE001 - recorded
                    errors.append(exc)
                    return

        threads = [threading.Thread(target=reader) for _ in range(3)]
        for thread in threads:
            thread.start()
        try:
            futures = [service.submit_ingest([paper])
                       for paper in held[:6]]
            done, pending = wait(futures, timeout=60)
            assert not pending
            for future in done:
                future.result()
        finally:
            stop.set()
            for thread in threads:
                thread.join(timeout=10)
        assert errors == []
        assert service.query("all_fields", query="antibody") is not None
        assert len(system.store) == 41

    def test_stats_expose_ingest_section(self, stack):
        system, service, held = stack
        service.submit_ingest(held[:5]).result(timeout=30)
        stats = service.stats()["ingest"]
        assert stats["attached"]
        assert stats["seq"] == 1
        assert "batch-000001" in stats["snapshots"]
        assert set(stats["delta_rows"]) == \
            {"all_fields", "title_abstract", "table"}


class TestGatewayIngest:
    @pytest.fixture()
    def gateway(self, stack):
        system, service, held = stack
        service.config.gateway = GatewayConfig(port=0)
        with BackgroundGateway(service) as background:
            with GatewayClient("127.0.0.1", background.port) as client:
                yield client, held

    def test_post_commits_and_search_sees_it(self, gateway):
        client, held = gateway
        before = client.search("all_fields", query="covid")
        response = client.ingest(held[:10])
        assert response.status == 200
        value = response.json()["value"]
        assert value["accepted"] == 10
        assert value["snapshot"] == "batch-000001"
        after = client.search("all_fields", query="covid")
        assert after.json()["versions"] != \
            before.json()["versions"]

    def test_duplicate_batch_maps_to_422(self, gateway):
        client, held = gateway
        assert client.ingest(held[:3]).status == 200
        redelivery = client.ingest(held[:3])
        assert redelivery.status == 422
        error = redelivery.json()["error"]
        assert error["code"] == "ingest_rejected"
        retried = client.ingest(held[:3], skip_duplicates=True)
        assert retried.status == 200
        assert retried.json()["value"]["accepted"] == 0

    def test_malformed_bodies_map_to_400(self, gateway):
        client, held = gateway
        for body in (b"", b"not json", b'{"papers": []}',
                     b'{"papers": 7}', b'"just a string"',
                     b'{"papers": [{}], "skip_duplicates": "yes"}'):
            response = client.request(
                "POST", "/v1/ingest", body=body,
                headers={"Content-Type": "application/json"})
            assert response.status == 400, body
            assert response.json()["error"]["code"] == "bad_request"

    def test_invalid_paper_maps_to_422(self, gateway):
        client, held = gateway
        bad = dict(held[0])
        bad["publish_time"] = "soonish"
        response = client.ingest([bad])
        assert response.status == 422
        rejects = response.json()["error"]
        assert rejects["code"] == "ingest_rejected"

    def test_get_maps_to_405_with_allow(self, gateway):
        client, held = gateway
        response = client.get("/v1/ingest")
        assert response.status == 405
        assert response.headers.get("allow") == "POST"
        assert response.json()["error"]["code"] == "method_not_allowed"

    def test_ingest_appears_in_metrics(self, gateway):
        client, held = gateway
        client.ingest(held[:2])
        text = client.metrics_text()
        assert 'covidkg_gateway_requests_total{endpoint="ingest"}' \
            in text

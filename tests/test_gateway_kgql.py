"""End-to-end ``/v1/kg/query`` tests over real sockets.

Same harness as ``tests/test_gateway.py`` (BackgroundGateway on an
ephemeral port + the stdlib keep-alive client); runs in the CI
racecheck shard alongside the other gateway suites.
"""

from __future__ import annotations

import pytest

import repro.errors as errors_module
from repro.api.system import CovidKG, CovidKGConfig
from repro.corpus.generator import CorpusGenerator, GeneratorConfig
from repro.gateway import (
    ERROR_STATUS,
    BackgroundGateway,
    GatewayClient,
    map_error,
)
from repro.gateway.routes import all_error_classes
from repro.serve.service import QueryService, ServeConfig

QUERY = 'MATCH (v:"Vaccines")-[parent_of*1..2]->(e) RETURN e LIMIT 5'


@pytest.fixture(scope="module")
def system():
    kg = CovidKG(CovidKGConfig(num_shards=2))
    kg.ingest(CorpusGenerator(GeneratorConfig(seed=29)).papers(10))
    return kg


@pytest.fixture(scope="module")
def gateway(system):
    config = ServeConfig(num_workers=2, max_request_cost=100_000.0)
    with QueryService(system, config) as service:
        with BackgroundGateway(service) as gw:
            yield gw


@pytest.fixture()
def client(gateway):
    with GatewayClient("127.0.0.1", gateway.port) as cl:
        yield cl


class TestKgQueryRoute:
    def test_kgql_over_http_with_provenance(self, client):
        response = client.kg_query(QUERY)
        assert response.status == 200
        body = response.json()
        assert body["engine"] == "kg_query"
        value = body["value"]
        assert value["query"] == QUERY
        assert value["total_matches"] > 0
        row = value["rows"][0]
        node = row["bindings"]["e"]
        assert node["rendered_path"].startswith("COVID-19 > ")
        assert "papers" in row

    def test_nl_question_over_http(self, client):
        response = client.kg_query("what is under Vaccines", nl=True)
        assert response.status == 200
        value = response.json()["value"]
        # The response echoes the KGQL actually executed.
        assert value["query"].startswith("MATCH")
        labels = {row["bindings"]["c"]["label"]
                  for row in value["rows"]}
        assert "Side-effects" in labels

    def test_second_identical_query_is_cached(self, client):
        params = {"query": 'MATCH (v:"Masks") RETURN v'}
        first = client.get("/v1/kg/query", params=params)
        second = client.get("/v1/kg/query", params=params)
        assert first.status == second.status == 200
        assert second.json()["cached"]
        assert second.json()["value"] == first.json()["value"]

    def test_syntax_error_maps_to_400_with_caret(self, client):
        response = client.kg_query("MATCH (v:")
        assert response.status == 400
        error = response.json()["error"]
        assert error["code"] == "kgql_syntax"
        assert "^" in error["message"]
        assert "line 1" in error["message"]

    def test_unmatched_nl_maps_to_400_bad_kgql(self, client):
        response = client.kg_query("how is the weather", nl=True)
        assert response.status == 400
        assert response.json()["error"]["code"] == "bad_kgql"

    def test_missing_query_param_is_400(self, client):
        response = client.get("/v1/kg/query")
        assert response.status == 400
        assert response.json()["error"]["code"] == "bad_request"

    def test_bad_nl_flag_is_400(self, client):
        response = client.get(
            "/v1/kg/query", params={"query": QUERY, "nl": "maybe"})
        assert response.status == 400

    def test_expensive_traversal_rejected_with_429(self, client):
        response = client.kg_query(
            'MATCH (a)-[related*1..32]->(b)-[related*1..32]->(c) '
            'RETURN a, b, c'
        )
        assert response.status == 429
        assert response.json()["error"]["code"] == \
            "request_too_expensive"


class TestErrorMapExhaustiveness:
    def test_every_error_class_has_an_explicit_entry(self):
        missing = [
            cls.__name__ for cls in all_error_classes()
            if cls not in ERROR_STATUS
        ]
        assert missing == []

    def test_kgql_errors_map_to_400(self):
        status, code = map_error(errors_module.KGQLError("x"))
        assert (status, code) == (400, "bad_kgql")
        status, code = map_error(errors_module.KGQLSyntaxError("x"))
        assert (status, code) == (400, "kgql_syntax")

"""Tests for the Section 3.4 numeric-normalization rules."""

from hypothesis import given
from hypothesis import strategies as st

from repro.text.normalize import NumericNormalizer, normalize_tuple


class TestPaperRules:
    """Each test exercises one substitution rule as the paper states it."""

    def setup_method(self):
        self.norm = NumericNormalizer()

    def test_integer_zero(self):
        assert self.norm.normalize("0") == "ZERO"

    def test_decimal_zero(self):
        assert self.norm.normalize("0.0") == "ZERO"

    def test_zero_inside_fifty_is_not_zero(self):
        # The paper calls this out: 0 in 50 is not the same as 0.0.
        assert self.norm.normalize("50") == "INT"

    def test_range_with_units_kept_then_rewritten(self):
        assert self.norm.normalize("5-10 mg") == "RANGE MILLIGRAMS"

    def test_range_without_units(self):
        assert self.norm.normalize("18-65") == "RANGE"

    def test_negative_integer(self):
        assert self.norm.normalize("-12") == "NEG"

    def test_hyphenated_word_is_not_negative(self):
        assert self.norm.normalize("covid-19") == "covid-19"

    def test_small_positive(self):
        assert self.norm.normalize("0.37") == "SMALLPOS"

    def test_float(self):
        assert self.norm.normalize("3.14") == "FLOAT"

    def test_int(self):
        assert self.norm.normalize("1234") == "INT"

    def test_percent_small_vs_int(self):
        # The paper: 5% and 0.5% are substituted differently.
        assert self.norm.normalize("5%") == "INT PERCENT"
        assert self.norm.normalize("0.5%") == "SMALLPOS PERCENT"

    def test_worded_date(self):
        assert self.norm.normalize("March 12, 2020") == "DATE"

    def test_worded_date_day_first(self):
        assert self.norm.normalize("12 March 2020") == "DATE"

    def test_numeric_date_form_is_not_handled(self):
        # The paper explicitly does not handle mm/dd/yy.
        assert "DATE" not in self.norm.normalize("03/12/20")

    def test_less_and_greater(self):
        assert self.norm.normalize("<5") == "LESS INT"
        assert self.norm.normalize(">100") == "GREATER INT"

    def test_time_unit(self):
        assert self.norm.normalize("48 hours") == "HOURS"

    def test_ml_unit(self):
        assert self.norm.normalize("5 ml") == "MILLILITERS"

    def test_kg_unit(self):
        assert self.norm.normalize("70 kg") == "KILOGRAMS"

    def test_mixed_sentence(self):
        text = "5-10 mg twice, 0.5% of 120 patients"
        assert self.norm.normalize(text) == (
            "RANGE MILLIGRAMS twice, SMALLPOS PERCENT of INT patients"
        )

    def test_words_untouched(self):
        assert self.norm.normalize("fever and cough") == "fever and cough"

    def test_empty(self):
        assert self.norm.normalize("") == ""


class TestNormalizeTuple:
    def test_each_cell_normalized_independently(self):
        cells = ["Pfizer", "2 doses", "94.5%", "0"]
        assert normalize_tuple(cells) == [
            "Pfizer", "INT doses", "FLOAT PERCENT", "ZERO",
        ]


@given(st.text(max_size=120))
def test_normalizer_never_raises(text):
    NumericNormalizer().normalize(text)


@given(st.integers(min_value=1, max_value=10**9))
def test_positive_integers_become_int(value):
    assert NumericNormalizer().normalize(str(value)) == "INT"


@given(st.integers(min_value=1, max_value=10**6))
def test_negative_integers_become_neg(value):
    assert NumericNormalizer().normalize(f"-{value}") == "NEG"


@given(st.floats(min_value=0.001, max_value=0.999, allow_nan=False))
def test_small_positive_floats(value):
    text = f"{value:.3f}"
    assert NumericNormalizer().normalize(text) == "SMALLPOS"

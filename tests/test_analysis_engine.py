"""Engine behaviour: cache correctness, config, changed-only, SARIF.

The cache contract is the load-bearing one — a warm run must produce
*identical* findings to a cold run, and editing one file must re-analyze
exactly that file (``AnalysisResult.analyzed_paths``) while everything
else comes from cache.
"""

from __future__ import annotations

import json
import subprocess

import pytest

from repro.analysis.engine import (
    AnalysisConfig,
    _parse_toml_subset,
    analyze_paths,
    changed_files,
    load_config,
)
from repro.analysis.sarif import dump_sarif, to_sarif, validate_sarif
from repro.analysis.rules import default_rules, project_rules

CORPUS = {
    "pkg/net.py": (
        "import socket\n\n\n"
        "def connect(addr):\n"
        "    sock = socket.create_connection(addr)\n"
        "    sock.setsockopt(6, 1, 1)\n"
        "    return sock\n"
    ),
    "pkg/slow.py": (
        "import time\n\n\n"
        "def slow():\n"
        "    time.sleep(1)\n"
    ),
    "pkg/app.py": (
        "from pkg.slow import slow\n\n\n"
        "async def handler():\n"
        "    slow()\n"
    ),
}


def _write_corpus(root, files=CORPUS):
    for name, text in files.items():
        target = root / name
        target.parent.mkdir(parents=True, exist_ok=True)
        target.write_text(text, encoding="utf-8")


def _keyed(findings):
    return [(f.rule, f.path, f.line, f.severity, f.message)
            for f in findings]


# -- cache correctness -----------------------------------------------------

def test_warm_run_is_all_cache_hits_with_identical_findings(tmp_path):
    _write_corpus(tmp_path)
    cold = analyze_paths([tmp_path], root=tmp_path)
    assert cold.cache_hits == 0
    assert cold.files == 3
    assert {f.rule for f in cold.findings} == {"REP208", "REP211"}

    warm = analyze_paths([tmp_path], root=tmp_path)
    assert warm.cache_hits == 3
    assert warm.analyzed_paths == []
    assert _keyed(warm.findings) == _keyed(cold.findings)


def test_editing_one_file_reanalyzes_only_that_file(tmp_path):
    _write_corpus(tmp_path)
    cold = analyze_paths([tmp_path], root=tmp_path)

    # A whitespace-only edit: content hash changes, findings must not.
    target = tmp_path / "pkg" / "net.py"
    target.write_text(target.read_text() + "\n# trailing comment\n",
                      encoding="utf-8")
    warm = analyze_paths([tmp_path], root=tmp_path)
    assert warm.analyzed_paths == ["pkg/net.py"]
    assert warm.cache_hits == 2
    assert _keyed(warm.findings) == _keyed(cold.findings)


def test_edit_that_fixes_the_bug_clears_the_finding(tmp_path):
    _write_corpus(tmp_path)
    analyze_paths([tmp_path], root=tmp_path)
    (tmp_path / "pkg" / "app.py").write_text(
        "from pkg.slow import slow\n\n\n"
        "async def handler(loop):\n"
        "    await loop.run_in_executor(None, slow)\n",
        encoding="utf-8")
    result = analyze_paths([tmp_path], root=tmp_path)
    assert result.analyzed_paths == ["pkg/app.py"]
    assert {f.rule for f in result.findings} == {"REP211"}


def test_interprocedural_findings_survive_caching(tmp_path):
    # REP208's evidence spans pkg/app.py and pkg/slow.py; both sides
    # must reconstitute from cached summaries, not just per-file hits.
    _write_corpus(tmp_path)
    analyze_paths([tmp_path], root=tmp_path)
    warm = analyze_paths([tmp_path], root=tmp_path)
    assert warm.cache_hits == 3
    rep208 = [f for f in warm.findings if f.rule == "REP208"]
    assert len(rep208) == 1
    assert "pkg.slow:slow" in rep208[0].message


def test_corrupt_cache_entry_is_rebuilt_not_trusted(tmp_path):
    _write_corpus(tmp_path)
    cold = analyze_paths([tmp_path], root=tmp_path)
    cache = tmp_path / ".repro-analysis-cache"
    entries = sorted(cache.glob("*.json"))
    assert len(entries) == 3
    entries[0].write_text("{not json", encoding="utf-8")
    warm = analyze_paths([tmp_path], root=tmp_path)
    assert warm.cache_hits == 2
    assert len(warm.analyzed_paths) == 1
    assert _keyed(warm.findings) == _keyed(cold.findings)


def test_no_cache_flag_skips_the_cache_dir_entirely(tmp_path):
    _write_corpus(tmp_path)
    result = analyze_paths([tmp_path], root=tmp_path, use_cache=False)
    assert result.cache_hits == 0
    assert not (tmp_path / ".repro-analysis-cache").exists()


# -- configuration ---------------------------------------------------------

def test_severity_override_and_disable(tmp_path):
    _write_corpus(tmp_path)
    config = AnalysisConfig(severity={"REP211": "warning"},
                            disable=frozenset({"REP208"}))
    result = analyze_paths([tmp_path], root=tmp_path, config=config,
                           use_cache=False)
    assert {f.rule for f in result.findings} == {"REP211"}
    assert all(f.severity == "warning" for f in result.findings)


PYPROJECT = """\
[project]
name = "demo"

[tool.repro.analysis]
disable = ["REP101", "REP102"]

[tool.repro.analysis.severity]
REP208 = "warning"
REP211 = "note"
"""


def test_load_config_reads_pyproject(tmp_path):
    (tmp_path / "pyproject.toml").write_text(PYPROJECT,
                                             encoding="utf-8")
    config = load_config(tmp_path)
    assert config.disable == frozenset({"REP101", "REP102"})
    assert config.severity == {"REP208": "warning", "REP211": "note"}


def test_toml_subset_fallback_matches_tomllib():
    tomllib = pytest.importorskip("tomllib")
    flat = _parse_toml_subset(PYPROJECT)
    full = tomllib.loads(PYPROJECT)
    assert flat["tool.repro.analysis"]["disable"] == \
        full["tool"]["repro"]["analysis"]["disable"]
    assert flat["tool.repro.analysis.severity"] == \
        full["tool"]["repro"]["analysis"]["severity"]


def test_missing_pyproject_gives_empty_config(tmp_path):
    config = load_config(tmp_path)
    assert config.severity == {}
    assert config.disable == frozenset()


# -- changed-only ----------------------------------------------------------

def _git(root, *argv):
    subprocess.run(["git", *argv], cwd=str(root), check=True,
                   capture_output=True)


def test_changed_files_reports_diff_and_untracked(tmp_path):
    _git(tmp_path, "init", "-q")
    _git(tmp_path, "config", "user.email", "t@t")
    _git(tmp_path, "config", "user.name", "t")
    (tmp_path / "a.py").write_text("x = 1\n", encoding="utf-8")
    _git(tmp_path, "add", "a.py")
    _git(tmp_path, "commit", "-qm", "seed")

    assert changed_files(tmp_path) == set()
    (tmp_path / "a.py").write_text("x = 2\n", encoding="utf-8")
    (tmp_path / "b.py").write_text("y = 1\n", encoding="utf-8")
    assert changed_files(tmp_path) == {"a.py", "b.py"}


def test_changed_files_returns_none_outside_git(tmp_path):
    assert changed_files(tmp_path) is None


# -- SARIF -----------------------------------------------------------------

def test_emitted_sarif_is_valid_and_round_trips(tmp_path):
    _write_corpus(tmp_path)
    result = analyze_paths([tmp_path], root=tmp_path, use_cache=False)
    metadata = [(r.rule_id, r.severity, r.description)
                for r in [*default_rules(), *project_rules()]]
    text = dump_sarif(result.findings, metadata)
    document = json.loads(text)
    assert validate_sarif(document) == []

    run = document["runs"][0]
    advertised = {rule["id"] for rule in run["tool"]["driver"]["rules"]}
    assert {"REP208", "REP209", "REP210", "REP211"} <= advertised
    assert {r["ruleId"] for r in run["results"]} == \
        {"REP208", "REP211"}
    for res in run["results"]:
        location = res["locations"][0]["physicalLocation"]
        assert location["artifactLocation"]["uriBaseId"] == "SRCROOT"
        assert location["region"]["startLine"] >= 1


def test_validator_catches_structural_breakage():
    document = to_sarif([], [("REP101", "warning", "demo")])
    assert validate_sarif(document) == []

    broken = json.loads(json.dumps(document))
    del broken["runs"][0]["tool"]["driver"]["name"]
    assert any("driver" in problem and "name" in problem
               for problem in validate_sarif(broken))

    broken = json.loads(json.dumps(document))
    broken["version"] = "9.9"
    assert any("version" in problem
               for problem in validate_sarif(broken))

    broken = json.loads(json.dumps(document))
    broken["runs"][0]["results"] = [{"message": {"text": "x"},
                                    "level": "fatal"}]
    assert any("level" in problem
               for problem in validate_sarif(broken))

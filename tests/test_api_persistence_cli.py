"""Tests for system persistence, model serialization, and the CLI."""

import numpy as np
import pytest

from repro.api.persistence import load_system, save_system
from repro.api.system import CovidKG, CovidKGConfig
from repro.classify.dataset import MetadataDataset
from repro.classify.svm_model import SvmMetadataClassifier
from repro.cli import main
from repro.corpus.generator import CorpusGenerator, GeneratorConfig
from repro.embeddings.word2vec import Word2Vec
from repro.errors import NotFittedError, PersistenceError
from repro.text.vocabulary import Vocabulary


@pytest.fixture(scope="module")
def corpus():
    return CorpusGenerator(GeneratorConfig(
        seed=51, tables_per_paper=(1, 2),
    )).papers(24)


@pytest.fixture(scope="module")
def built_system(corpus):
    system = CovidKG(CovidKGConfig(num_shards=2, vocabulary_size=10_000,
                                   wdc_training_tables=20, seed=5))
    system.train(corpus[:10], word2vec_epochs=1)
    system.ingest(corpus)
    return system


class TestVocabularySerialization:
    def test_roundtrip(self):
        vocab = Vocabulary.from_texts(["fever cough fever", "rash"],
                                      drop_stopwords=False)
        restored = Vocabulary.from_json(vocab.to_json())
        assert restored.terms == vocab.terms
        assert restored.count_of("fever") == 2


class TestWord2VecSerialization:
    def test_roundtrip(self, tmp_path):
        sentences = ["vaccine dose antibody"] * 20
        vocab = Vocabulary.from_texts(sentences, drop_stopwords=False)
        model = Word2Vec(vocab, dim=8, seed=1).fit(sentences, epochs=2)
        model.save(tmp_path / "w2v.npz")
        restored = Word2Vec.load(tmp_path / "w2v.npz")
        np.testing.assert_array_equal(
            restored.vector("vaccine"), model.vector("vaccine")
        )
        assert restored.dim == 8
        # Restored models can keep fine-tuning.
        restored.fit(sentences, epochs=1, fine_tune=True)

    def test_untrained_save_rejected(self, tmp_path):
        vocab = Vocabulary.from_texts(["a b"], drop_stopwords=False)
        with pytest.raises(NotFittedError):
            Word2Vec(vocab).save(tmp_path / "x.npz")


class TestClassifierSerialization:
    def test_roundtrip_predictions_identical(self, tmp_path):
        dataset = MetadataDataset.from_wdc(20, seed=7)
        model = SvmMetadataClassifier(seed=7).fit(dataset)
        model.save(tmp_path / "clf.npz")
        restored = SvmMetadataClassifier.load(tmp_path / "clf.npz")
        np.testing.assert_array_equal(
            restored.predict(dataset), model.predict(dataset)
        )

    def test_untrained_save_rejected(self, tmp_path):
        with pytest.raises(NotFittedError):
            SvmMetadataClassifier().save(tmp_path / "x.npz")


class TestSystemPersistence:
    def test_roundtrip_preserves_queries(self, built_system, corpus,
                                         tmp_path):
        save_system(built_system, tmp_path / "sys")
        restored = load_system(tmp_path / "sys")

        assert len(restored.store) == len(built_system.store)
        original = built_system.search("vaccine")
        reloaded = restored.search("vaccine")
        assert reloaded.total_matches == original.total_matches
        # Scores must match exactly; ties may legally reorder after the
        # reload (fresh document ids), so compare (score, id) as sets.
        assert {
            (round(r.score, 9), r.paper_id) for r in reloaded
        } == {
            (round(r.score, 9), r.paper_id) for r in original
        }

    def test_roundtrip_preserves_graph(self, built_system, tmp_path):
        save_system(built_system, tmp_path / "sys2")
        restored = load_system(tmp_path / "sys2")
        assert restored.graph.statistics() == (
            built_system.graph.statistics()
        )
        hits = restored.search_graph("vaccines")
        assert hits and hits[0].rendered_path().startswith("COVID-19")

    def test_restored_models_registered(self, built_system, tmp_path):
        save_system(built_system, tmp_path / "sys3")
        restored = load_system(tmp_path / "sys3")
        assert "covidkg-word2vec" in restored.registry
        assert "covidkg-metadata-svm" in restored.registry
        assert restored.classifier is not None

    def test_restored_system_can_keep_ingesting(self, built_system,
                                                tmp_path):
        save_system(built_system, tmp_path / "sys4")
        restored = load_system(tmp_path / "sys4")
        extra = CorpusGenerator(GeneratorConfig(
            seed=99, tables_per_paper=(1, 1),
        )).papers(3)
        # Paper ids are a function of the index alone; disambiguate so
        # they do not collide with the already-ingested corpus.
        extra = [
            {**paper, "paper_id": f"extra-{paper['paper_id']}"}
            for paper in extra
        ]
        restored.ingest(extra)
        assert len(restored.store) == len(built_system.store) + 3

    def test_missing_directory_rejected(self, tmp_path):
        with pytest.raises(PersistenceError):
            load_system(tmp_path / "nothing")


class TestCli:
    def test_generate_build_query_cycle(self, tmp_path, capsys):
        corpus_path = str(tmp_path / "corpus.jsonl")
        system_path = str(tmp_path / "system")

        assert main(["generate", "--papers", "15", "--seed", "3",
                     "--out", corpus_path]) == 0
        assert main(["build", "--corpus", corpus_path,
                     "--out", system_path, "--shards", "2",
                     "--epochs", "1"]) == 0
        assert main(["search", "--system", system_path, "covid"]) == 0
        assert main(["kg", "--system", system_path, "vaccines"]) == 0
        assert main(["stats", "--system", system_path]) == 0
        assert main(["bias", "--system", system_path,
                     "--clusters", "3"]) == 0
        output = capsys.readouterr().out
        assert "matches" in output
        assert "COVID-19" in output
        assert "topic balance" in output

    def test_tables_command(self, tmp_path, capsys):
        corpus_path = str(tmp_path / "corpus.jsonl")
        system_path = str(tmp_path / "system")
        main(["generate", "--papers", "12", "--seed", "4",
              "--out", corpus_path])
        main(["build", "--corpus", corpus_path, "--out", system_path,
              "--epochs", "1"])
        assert main(["tables", "--system", system_path,
                     "efficacy"]) == 0

    def test_kg_no_hits_exits_nonzero(self, tmp_path):
        corpus_path = str(tmp_path / "corpus.jsonl")
        system_path = str(tmp_path / "system")
        main(["generate", "--papers", "10", "--out", corpus_path])
        main(["build", "--corpus", corpus_path, "--out", system_path,
              "--epochs", "1"])
        assert main(["kg", "--system", system_path,
                     "zzz-not-a-node"]) == 1


class TestDifferentialReload:
    """Pre/post-reload page identity — the staleness bugfix sweep.

    A reloaded system must answer every surface identically to the one
    that was saved: same ranker configuration (a BM25 system must not
    quietly come back as TF-IDF), same scores, and a KGQL tier that
    actually reads the restored graph (it used to keep answering from
    the empty seeded one).
    """

    QUERIES = ["vaccine", "covid trial", "antibody response"]

    def _pages(self, system):
        pages = {}
        for query in self.QUERIES:
            results = system.search(query)
            pages[query] = {
                (round(hit.score, 9), hit.paper_id)
                for hit in results
            } | {("total", results.total_matches)}
        return pages

    @pytest.mark.parametrize("ranker", ["tfidf", "bm25"])
    def test_ranker_pages_identical_after_reload(self, corpus,
                                                 tmp_path, ranker):
        system = CovidKG(CovidKGConfig(
            num_shards=2, ranker=ranker, bm25_k1=1.3, bm25_b=0.6,
        ))
        system.ingest(corpus)
        before = self._pages(system)
        save_system(system, tmp_path / ranker)

        restored = load_system(tmp_path / ranker)
        assert restored.config.ranker == ranker
        assert restored.config.bm25_k1 == pytest.approx(1.3)
        assert restored.config.bm25_b == pytest.approx(0.6)
        assert self._pages(restored) == before

    def test_rankers_actually_differ(self, corpus, tmp_path):
        """The identity test above has teeth only if the configs do."""
        tfidf = CovidKG(CovidKGConfig(num_shards=2, ranker="tfidf"))
        tfidf.ingest(corpus)
        bm25 = CovidKG(CovidKGConfig(num_shards=2, ranker="bm25"))
        bm25.ingest(corpus)
        assert any(
            {(round(h.score, 9), h.paper_id) for h in
             tfidf.search(q)} !=
            {(round(h.score, 9), h.paper_id) for h in bm25.search(q)}
            for q in self.QUERIES
        )

    def test_kgql_answers_from_restored_graph(self, built_system,
                                              tmp_path):
        """Regression: ``load_system`` used to leave ``kgql.graph``
        pointing at the discarded seed graph."""
        query = 'MATCH (v:"Vaccines")-[parent_of*1..2]->(e) RETURN e'
        before = built_system.query_graph(query)
        save_system(built_system, tmp_path / "kgql")
        restored = load_system(tmp_path / "kgql")
        assert restored.kgql.graph is restored.graph
        after = restored.query_graph(query)
        assert after.total_matches == before.total_matches
        assert [
            [row.bindings[var]["label"] for var in after.columns]
            for row in after.rows
        ] == [
            [row.bindings[var]["label"] for var in before.columns]
            for row in before.rows
        ]

    def test_matcher_cache_not_stale_after_reload(self, built_system,
                                                  tmp_path):
        # Warm the matcher cache against the pre-save graph, then make
        # sure a reload does not serve from it.
        built_system.search_graph("vaccines")
        save_system(built_system, tmp_path / "matcher")
        restored = load_system(tmp_path / "matcher")
        assert restored.matcher.graph is restored.graph
        hits = restored.search_graph("vaccines")
        assert hits

"""Tests for hash/range sharding and the sharded collection."""

import pytest
from hypothesis import given
from hypothesis import strategies as st

from repro.docstore.sharding import HashSharder, RangeSharder, ShardedCollection
from repro.errors import ShardingError


class TestHashSharder:
    def test_deterministic(self):
        sharder = HashSharder(8)
        assert sharder.shard_for("abc") == sharder.shard_for("abc")

    def test_in_range(self):
        sharder = HashSharder(5)
        for value in ["a", "b", 1, 2.5, None, ["x"]]:
            assert 0 <= sharder.shard_for(value) < 5

    def test_rejects_zero_shards(self):
        with pytest.raises(ShardingError):
            HashSharder(0)

    @given(st.lists(st.text(min_size=1, max_size=8), min_size=50,
                    max_size=200, unique=True))
    def test_distribution_is_not_degenerate(self, keys):
        sharder = HashSharder(4)
        shards = {sharder.shard_for(key) for key in keys}
        assert len(shards) >= 2  # 50+ distinct keys never land on one shard


class TestRangeSharder:
    def test_routing_by_boundaries(self):
        sharder = RangeSharder([10, 20])
        assert sharder.shard_for(5) == 0
        assert sharder.shard_for(10) == 1
        assert sharder.shard_for(15) == 1
        assert sharder.shard_for(25) == 2

    def test_unsorted_boundaries_rejected(self):
        with pytest.raises(ShardingError):
            RangeSharder([20, 10])

    def test_incomparable_value_rejected(self):
        sharder = RangeSharder([10])
        with pytest.raises(ShardingError):
            sharder.shard_for("not-a-number")


@pytest.fixture()
def sharded():
    coll = ShardedCollection("papers", shard_key="paper_id", num_shards=4)
    coll.insert_many([
        {"paper_id": f"p{i}", "year": 2020 + (i % 2), "cites": i}
        for i in range(40)
    ])
    return coll


class TestShardedCollection:
    def test_all_documents_stored(self, sharded):
        assert len(sharded) == 40
        assert sum(sharded.shard_sizes()) == 40

    def test_documents_spread_across_shards(self, sharded):
        assert sum(1 for size in sharded.shard_sizes() if size > 0) >= 2

    def test_missing_shard_key_rejected(self, sharded):
        with pytest.raises(ShardingError):
            sharded.insert_one({"year": 2021})

    def test_targeted_find_hits_one_shard(self, sharded):
        for shard in sharded.shards:
            shard.scan_count = 0
        result = sharded.find({"paper_id": "p7"}).to_list()
        assert len(result) == 1
        scanned_shards = [s for s in sharded.shards if s.scan_count > 0]
        assert len(scanned_shards) == 1

    def test_scatter_gather_find(self, sharded):
        assert len(sharded.find({"year": 2021})) == 20

    def test_count_and_find_one(self, sharded):
        assert sharded.count({"year": 2020}) == 20
        assert sharded.find_one({"paper_id": "p3"})["cites"] == 3
        assert sharded.find_one({"paper_id": "nope"}) is None

    def test_update_and_delete_route_correctly(self, sharded):
        sharded.update_many({"paper_id": "p1"}, {"$set": {"flag": True}})
        assert sharded.find_one({"paper_id": "p1"})["flag"] is True
        assert sharded.delete_many({"year": 2020}) == 20
        assert len(sharded) == 20

    def test_unique_index_must_include_shard_key(self, sharded):
        with pytest.raises(ShardingError):
            sharded.create_index("doi", unique=True)
        sharded.create_index("paper_id", unique=True)

    def test_rebalance_preserves_documents(self, sharded):
        before = sorted(d["paper_id"] for d in sharded.all_documents())
        sharded.rebalance(7)
        assert len(sharded.shards) == 7
        after = sorted(d["paper_id"] for d in sharded.all_documents())
        assert before == after

    def test_rebalance_recreates_indexes(self, sharded):
        sharded.create_index("year")
        sharded.rebalance(2)
        for shard in sharded.shards:
            shard.scan_count = 0
        sharded.find({"year": 2021}).to_list()
        total_scans = sum(s.scan_count for s in sharded.shards)
        assert total_scans == 20  # index used: only matching docs examined

    def test_storage_accounting(self, sharded):
        shard_bytes = sharded.shard_storage_bytes()
        assert len(shard_bytes) == 4
        assert sharded.storage_bytes() == sum(shard_bytes)


@given(st.lists(st.integers(0, 10_000), min_size=1, max_size=60,
                unique=True))
def test_every_document_routed_to_exactly_one_shard(keys):
    coll = ShardedCollection("t", shard_key="k", num_shards=3)
    coll.insert_many([{"k": key} for key in keys])
    assert sum(coll.shard_sizes()) == len(keys)
    for key in keys:
        owners = [
            shard for shard in coll.shards
            if shard.count({"k": key}) == 1
        ]
        assert len(owners) == 1

"""Differential tests for top-k ranked retrieval and sharded search.

The acceptance bar: the parallel scatter-gather top-k path must return
result pages **byte-identical** (order, scores, snippets, totals) to the
serial full-sort reference on a multi-shard corpus.
"""

import pytest

from repro.corpus.generator import CorpusGenerator, GeneratorConfig
from repro.docstore.executor import WIDTH_ENV, shutdown_executor
from repro.docstore.sharding import ShardedCollection
from repro.search.all_fields import AllFieldsEngine
from repro.search.engine import PAGE_SIZE

QUERIES = ["vaccine", "covid symptoms", "antibody trial", "dosage"]


@pytest.fixture(scope="module")
def corpus():
    config = GeneratorConfig(seed=77, papers_per_week=15,
                             tables_per_paper=(0, 2))
    return CorpusGenerator(config).papers(70)


@pytest.fixture(autouse=True)
def clean_pool():
    shutdown_executor()
    yield
    shutdown_executor()


def build_engine(corpus, num_shards, full_sort=False):
    engine = AllFieldsEngine(num_shards=num_shards)
    engine.full_sort = full_sort
    engine.add_papers(corpus)
    return engine


def page_tuple(results):
    """Everything a rendered page shows, as comparable data."""
    return [
        (hit.paper_id, hit.title, hit.score, hit.snippets, hit.extras)
        for hit in results
    ]


def test_topk_matches_full_sort_single_shard(corpus):
    reference = build_engine(corpus, num_shards=1, full_sort=True)
    topk = build_engine(corpus, num_shards=1)
    for query in QUERIES:
        want = reference.search(query, page=1)
        got = topk.search(query, page=1)
        assert page_tuple(got.results) == page_tuple(want.results)
        assert got.total_matches == want.total_matches


def test_parallel_sharded_topk_matches_serial_full_sort(corpus,
                                                        monkeypatch):
    """The headline differential: 4-shard parallel top-k vs. the serial
    single-collection full sort, byte-identical across pages."""
    monkeypatch.setenv(WIDTH_ENV, "1")
    reference = build_engine(corpus, num_shards=1, full_sort=True)
    monkeypatch.delenv(WIDTH_ENV, raising=False)
    sharded = build_engine(corpus, num_shards=4)
    assert isinstance(sharded.collection, ShardedCollection)

    for query in QUERIES:
        for page in (1, 2, 3):
            want = reference.search(query, page=page)
            got = sharded.search(query, page=page)
            assert page_tuple(got.results) == page_tuple(want.results), (
                f"page mismatch for {query!r} page {page}"
            )
            assert got.total_matches == want.total_matches
            assert got.num_pages == want.num_pages


def test_sharded_full_sort_matches_sharded_topk(corpus):
    """Within the sharded path, full_sort and top-k agree exactly."""
    topk = build_engine(corpus, num_shards=4)
    reference = build_engine(corpus, num_shards=4, full_sort=True)
    for query in QUERIES:
        want = reference.search(query, page=1)
        got = topk.search(query, page=1)
        assert page_tuple(got.results) == page_tuple(want.results)
        assert got.total_matches == want.total_matches


def test_deterministic_tiebreak_orders_by_paper_id(corpus):
    """Equal scores order by paper_id ascending — shard layout can't leak
    into the page order."""
    for num_shards in (1, 4):
        engine = build_engine(corpus, num_shards=num_shards)
        results = engine.search("covid", page=1).results
        for earlier, later in zip(results, results[1:]):
            assert (earlier.score, earlier.paper_id) != \
                   (later.score, later.paper_id)
            if earlier.score == later.score:
                assert earlier.paper_id < later.paper_id


def test_pagination_past_last_page_is_empty(corpus):
    engine = build_engine(corpus, num_shards=4)
    first = engine.search("vaccine", page=1)
    beyond = first.num_pages + 1
    assert engine.search("vaccine", page=beyond).results == []


def test_topk_stage_reports_total_matches(corpus):
    engine = build_engine(corpus, num_shards=4)
    results = engine.search("covid", page=1)
    assert results.total_matches >= len(results.results)
    assert len(results.results) <= PAGE_SIZE
    assert any(stat.stage.startswith("$sort")
               for stat in results.stage_stats)

"""The custom lint framework: rules, suppression, baselines.

Each fixture is a minimal module designed to trigger exactly one rule
exactly once; the corpus doubles as living documentation of what the
rules mean.  The final test runs the real linter over the real repo and
compares against the checked-in baseline — the same gate CI applies.
"""

from __future__ import annotations

from pathlib import Path

import pytest

from repro.analysis.lint import (
    Finding,
    Source,
    format_findings,
    lint_paths,
    lint_source,
    load_baseline,
    new_findings,
    save_baseline,
)
from repro.analysis.rules import default_rules

REPO_ROOT = Path(__file__).resolve().parent.parent

#: rule id -> fixture module expected to trigger it exactly once.
FIXTURES = {
    "REP101": """
def fetch(cache={}):
    return cache
""",
    "REP102": """
def swallow(fn):
    try:
        return fn()
    except:
        return None
""",
    "REP103": """
from repro.errors import AggregationError


def quiet(fn):
    try:
        return fn()
    except AggregationError:
        pass
""",
    "REP201": """
import threading


class Tally:
    def __init__(self):
        self._lock = threading.Lock()
        self.total = 0

    def add(self, n):
        with self._lock:
            self.total += n

    def read(self):
        return self.total
""",
    "REP202": """
import threading
import time

_lock = threading.Lock()


def slow():
    with _lock:
        time.sleep(0.1)
""",
    "REP203": """
from repro.docstore.executor import scatter


def fan(items):
    return scatter([
        lambda item=item: scatter([lambda: item])
        for item in items
    ])
""",
    "REP204": """
import random

from repro.docstore.functions import FunctionRegistry

registry = FunctionRegistry()


def rank(doc):
    return random.random()


registry.register("rank", rank)
""",
    "REP205": """
def gather(futures):
    return [future.result() for future in futures]
""",
    "REP206": """
import time


async def handler(request):
    time.sleep(0.1)
    return request
""",
    "REP211": """
import socket


def connect(addr):
    sock = socket.create_connection(addr)
    sock.setsockopt(6, 1, 1)
    return sock
""",
}

CLEAN_FIXTURE = """
import threading


class Tally:
    def __init__(self):
        self._lock = threading.Lock()
        self.total = 0

    def add(self, n):
        with self._lock:
            self.total += n

    def read(self):
        with self._lock:
            return self.total
"""


def _lint_text(text: str) -> list[Finding]:
    return lint_source(Source("fixture.py", text), default_rules())


@pytest.mark.parametrize("rule_id", sorted(FIXTURES))
def test_each_rule_fires_exactly_once_on_its_fixture(rule_id):
    findings = _lint_text(FIXTURES[rule_id])
    assert [f.rule for f in findings] == [rule_id], (
        f"expected exactly one {rule_id} finding, got: "
        f"{[str(f) for f in findings]}"
    )


def test_clean_fixture_produces_no_findings():
    assert _lint_text(CLEAN_FIXTURE) == []


def test_rep205_barrier_in_same_scope_is_clean():
    text = """
from concurrent.futures import wait


def gather(futures):
    wait(futures)
    return [future.result() for future in futures]
"""
    assert _lint_text(text) == []


def test_rep205_enclosing_scope_barrier_covers_nested_helpers():
    text = """
from concurrent.futures import wait


def gather(futures):
    wait(futures)

    def collect():
        return [future.result() for future in futures]

    return collect()
"""
    assert _lint_text(text) == []


def test_rep205_nested_barrier_does_not_excuse_the_outer_scope():
    # A wait() buried in a helper does not quiesce the outer loop's
    # futures; the outer gather must still be flagged.
    text = """
from concurrent.futures import wait


def gather(futures):
    def settle(extra):
        wait(extra)

    return [future.result() for future in futures]
"""
    assert [f.rule for f in _lint_text(text)] == ["REP205"]


def test_rep206_awaited_calls_and_async_primitives_are_clean():
    text = """
import asyncio


async def handler(reader, future):
    await asyncio.sleep(0.1)
    served = await asyncio.wrap_future(future)
    head = await asyncio.wait_for(reader.readuntil(b"x"), timeout=1.0)
    return served, head
"""
    assert _lint_text(text) == []


def test_rep206_nested_sync_def_is_not_the_event_loop():
    # A sync helper defined inside an async function runs wherever it
    # is *called* — typically an executor thread — so its body is not
    # the event loop's problem.
    text = """
import time


async def handler(loop):
    def blocking():
        time.sleep(0.5)
        return 1

    return await loop.run_in_executor(None, blocking)
"""
    assert _lint_text(text) == []


def test_rep206_flags_future_result_in_async_body():
    text = """
async def handler(future):
    return future.result()
"""
    assert [f.rule for f in _lint_text(text)] == ["REP206"]


def test_rep206_flags_sync_socket_ops_in_async_body():
    text = """
async def proxy(sock):
    sock.sendall(b"hello")
    return sock.recv(1024)
"""
    assert [f.rule for f in _lint_text(text)] == ["REP206", "REP206"]


def test_rep205_flags_explicit_for_loops_too():
    text = """
def drain(futures):
    results = []
    for future in futures:
        results.append(future.result())
    return results
"""
    assert [f.rule for f in _lint_text(text)] == ["REP205"]


def test_findings_carry_location_and_snippet():
    (finding,) = _lint_text(FIXTURES["REP101"])
    assert finding.path == "fixture.py"
    assert finding.line == 2
    assert finding.severity == "warning"
    assert "cache={}" in finding.snippet
    assert str(finding).startswith("fixture.py:2: REP101 [warning]")


# -- suppression -----------------------------------------------------------

def test_same_line_suppression():
    text = FIXTURES["REP101"].replace(
        "def fetch(cache={}):", "def fetch(cache={}):  # lint: allow=REP101"
    )
    assert _lint_text(text) == []


def test_line_above_suppression():
    text = FIXTURES["REP101"].replace(
        "def fetch(cache={}):",
        "# lint: allow=REP101\ndef fetch(cache={}):",
    )
    assert _lint_text(text) == []


def test_allow_all_suppression():
    text = FIXTURES["REP102"].replace(
        "    except:", "    except:  # lint: allow=all"
    )
    assert _lint_text(text) == []


def test_suppressing_a_different_rule_does_not_hide_the_finding():
    text = FIXTURES["REP101"].replace(
        "def fetch(cache={}):", "def fetch(cache={}):  # lint: allow=REP102"
    )
    assert [f.rule for f in _lint_text(text)] == ["REP101"]


def test_suppression_on_opening_line_covers_multi_line_header():
    # REP101 anchors at the default *expression*, two lines below the
    # `def`; the comment on the opening line must still cover it.
    text = """
def fetch(  # lint: allow=REP101
    size,
    cache={},
):
    return cache
"""
    assert _lint_text(text) == []
    assert [f.rule for f in _lint_text(text.replace(
        "  # lint: allow=REP101", ""))] == ["REP101"]


def test_suppression_above_decorator_covers_decorated_def():
    text = """
import functools


# lint: allow=REP101
@functools.lru_cache(maxsize=None)
def fetch(cache={}):
    return cache
"""
    assert _lint_text(text) == []


def test_suppression_on_def_line_of_decorated_def():
    text = """
import functools


@functools.lru_cache(
    maxsize=None,
)
def fetch(  # lint: allow=REP101
    cache={},
):
    return cache
"""
    assert _lint_text(text) == []


def test_header_suppression_does_not_leak_into_the_body():
    # The opening-line comment covers the statement *header* only;
    # findings in the body still fire.
    text = """
def swallow(  # lint: allow=REP102
    fn,
    cache={},  # lint: allow=REP101
):
    try:
        return fn()
    except:
        return None
"""
    assert [f.rule for f in _lint_text(text)] == ["REP102"]


# -- file discovery and syntax errors --------------------------------------

def test_lint_paths_walks_directories_and_reports_syntax_errors(tmp_path):
    (tmp_path / "pkg").mkdir()
    (tmp_path / "pkg" / "bad.py").write_text("def broken(:\n")
    (tmp_path / "pkg" / "warm.py").write_text(FIXTURES["REP101"])
    findings = lint_paths([tmp_path], root=tmp_path)
    assert [(f.rule, f.path) for f in findings] == [
        ("REP000", "pkg/bad.py"),
        ("REP101", "pkg/warm.py"),
    ]


# -- baselines -------------------------------------------------------------

def test_baseline_roundtrip_suppresses_known_findings(tmp_path):
    findings = _lint_text(FIXTURES["REP101"])
    baseline_path = tmp_path / "baseline.json"
    save_baseline(baseline_path, findings)
    assert new_findings(findings, load_baseline(baseline_path)) == []


def test_new_findings_only_reports_what_the_baseline_lacks(tmp_path):
    old = _lint_text(FIXTURES["REP101"])
    baseline_path = tmp_path / "baseline.json"
    save_baseline(baseline_path, old)
    fresh = _lint_text(FIXTURES["REP102"])
    result = new_findings(old + fresh, load_baseline(baseline_path))
    assert [f.rule for f in result] == ["REP102"]


def test_baseline_matching_survives_line_drift(tmp_path):
    findings = _lint_text(FIXTURES["REP101"])
    baseline_path = tmp_path / "baseline.json"
    save_baseline(baseline_path, findings)
    # The same offending line, pushed down by an unrelated edit.
    drifted = _lint_text("\n\n# a new comment\n" + FIXTURES["REP101"])
    assert drifted[0].line != findings[0].line
    assert new_findings(drifted, load_baseline(baseline_path)) == []


def test_baseline_uses_multiset_semantics():
    findings = _lint_text(FIXTURES["REP101"])
    baseline = load_baseline("/nonexistent")
    baseline.update([findings[0].key()])
    # Two identical findings, one baseline entry: one is still new.
    assert len(new_findings(findings * 2, baseline)) == 1


def test_missing_baseline_means_everything_is_new(tmp_path):
    findings = _lint_text(FIXTURES["REP101"])
    assert new_findings(
        findings, load_baseline(tmp_path / "absent.json")
    ) == findings


# -- output formats --------------------------------------------------------

def test_text_format_includes_summary_line():
    rendered = format_findings(_lint_text(FIXTURES["REP101"]))
    assert "1 finding(s): 0 error(s), 1 warning(s)" in rendered


def test_json_format_is_parseable():
    import json

    rendered = format_findings(_lint_text(FIXTURES["REP102"]), "json")
    payload = json.loads(rendered)
    assert payload[0]["rule"] == "REP102"


# -- the real repo ---------------------------------------------------------

def test_repo_is_clean_against_checked_in_baseline():
    """The CI gate: no findings beyond the checked-in baseline."""
    findings = lint_paths(
        [REPO_ROOT / "src" / "repro", REPO_ROOT / "benchmarks"],
        root=REPO_ROOT,
    )
    baseline = load_baseline(REPO_ROOT / "analysis-baseline.json")
    fresh = new_findings(findings, baseline)
    assert fresh == [], (
        "new lint findings (fix them or run "
        "`repro-covidkg analyze --update-baseline`):\n"
        + "\n".join(str(f) for f in fresh)
    )


# -- REP207: per-document scoring loops (path-restricted) ------------------

_REP207_HOT_LOOP = """
def scorer(documents, idf):
    scores = []
    for document in documents:
        scores.append(compute_score(document, idf))
    return scores
"""


def _lint_rep207(text: str, path: str) -> list[Finding]:
    from repro.analysis.rules import PerDocumentScoringLoop
    return lint_source(Source(path, text), [PerDocumentScoringLoop()])


def test_rep207_fires_on_search_hot_path():
    findings = _lint_rep207(_REP207_HOT_LOOP,
                            "src/repro/search/ranking.py")
    assert [f.rule for f in findings] == ["REP207"]
    assert "scorer()" in findings[0].message


def test_rep207_is_silent_outside_repro_search():
    assert _lint_rep207(_REP207_HOT_LOOP, "src/repro/kg/fusion.py") == []


def test_rep207_ignores_non_scoring_functions():
    text = """
def ingest(documents):
    for document in documents:
        normalize_score_field(document)
"""
    assert _lint_rep207(text, "src/repro/search/engine.py") == []


def test_rep207_ignores_bookkeeping_loops_in_scoring_functions():
    text = """
def rank(entries):
    out = []
    for entry in entries:
        out.append(entry)
    return out
"""
    assert _lint_rep207(text, "src/repro/search/engine.py") == []


def test_rep207_flags_nested_loop_once_per_line():
    text = """
def score_all(documents, terms):
    total = 0.0
    for document in documents:
        for term in terms:
            total += term_score(document, term)
    return total
"""
    findings = _lint_rep207(text, "src/repro/search/ranking.py")
    assert [f.rule for f in findings] == ["REP207", "REP207"]
    assert len({f.line for f in findings}) == 2


def test_rep207_respects_inline_allow():
    text = """
def scorer(documents, idf):
    # Reference implementation for the differential tests.
    for document in documents:  # lint: allow=REP207
        yield compute_score(document, idf)
"""
    source = Source("src/repro/search/ranking.py", text)
    from repro.analysis.rules import PerDocumentScoringLoop
    findings = lint_source(source, [PerDocumentScoringLoop()])
    assert findings == []

"""Tests for node matching, subtree fusion, and the expert review loop."""

import pytest

from repro.corpus import vocabulary_data as vd
from repro.embeddings.word2vec import Word2Vec
from repro.errors import FusionError
from repro.kg.fusion import ExtractedSubtree, FusionEngine
from repro.kg.matching import NodeMatcher
from repro.kg.ontology import seed_covid_graph
from repro.kg.review import ExpertReviewQueue, FusionCorrector
from repro.text.vocabulary import Vocabulary

# A tiny embedding corpus that places vaccine names in one neighbourhood.
VACCINE_SENTENCES = [
    f"{vaccine} vaccine dose efficacy antibody trial"
    for vaccine in vd.KNOWN_VACCINES + vd.UNSEEN_VACCINES
] * 10 + [
    f"{strain} strain mutation lineage sequencing"
    for strain in vd.STRAINS
] * 10


@pytest.fixture(scope="module")
def word2vec():
    vocab = Vocabulary.from_texts(VACCINE_SENTENCES, drop_stopwords=False)
    return Word2Vec(vocab, dim=16, window=2, seed=1).fit(
        VACCINE_SENTENCES, epochs=8
    )


@pytest.fixture()
def setup(word2vec):
    graph = seed_covid_graph()
    matcher = NodeMatcher(graph, word2vec=word2vec)
    queue = ExpertReviewQueue()
    engine = FusionEngine(graph, matcher, review_queue=queue)
    return graph, matcher, queue, engine


class TestNodeMatcher:
    def test_term_match_exact(self, setup):
        _, matcher, _, _ = setup
        result = matcher.match("Vaccines")
        assert result.matched and result.method == "term"
        assert result.confidence == 1.0

    def test_term_match_normalized(self, setup):
        _, matcher, _, _ = setup
        # Singular and different case still term-match.
        result = matcher.match("vaccine")
        assert result.matched and result.method == "term"

    def test_unseen_entity_embedding_matches_sibling(self, setup):
        _, matcher, _, _ = setup
        result = matcher.match("NovoVac", category="vaccines")
        assert result.matched
        assert result.method == "embedding"
        assert result.node.category == "vaccines"

    def test_sibling_parent_infers_vaccines_node(self, setup):
        graph, matcher, _, _ = setup
        parent = matcher.sibling_parent("NovoVac", category="vaccines")
        assert parent is not None
        assert parent.label == "Vaccines"

    def test_no_match_for_garbage(self, setup):
        _, matcher, _, _ = setup
        result = matcher.match("zzzz qqqq xxxx")
        assert not result.matched


class TestSubtreeDepth:
    def test_depths(self):
        leaf = ExtractedSubtree("x")
        assert leaf.depth() == 0
        one = ExtractedSubtree("root", [leaf])
        assert one.depth() == 1
        two = ExtractedSubtree("top", [one])
        assert two.depth() == 2
        assert two.num_nodes() == 3

    def test_json_roundtrip(self):
        tree = ExtractedSubtree(
            "Side-effects", category="side_effects", provenance="p1",
            children=[ExtractedSubtree("Rash", provenance="p1")],
        )
        assert ExtractedSubtree.from_json(tree.to_json()) == tree


class TestUnsupervisedLeafFusion:
    def test_new_leaf_added_under_matched_root(self, setup):
        graph, _, _, engine = setup
        subtree = ExtractedSubtree(
            "Vaccines", category="vaccines", provenance="p1",
            children=[ExtractedSubtree("BrandNewVax",
                                       category="vaccines")],
        )
        result = engine.fuse(subtree)
        assert result.action == "merged"
        assert result.added_leaves == ["BrandNewVax"]
        added = graph.find_by_label("BrandNewVax")[0]
        assert graph.parent(added.node_id).label == "Vaccines"
        assert added.provenance == ["p1"]

    def test_existing_leaf_merges_and_gains_provenance(self, setup):
        graph, _, _, engine = setup
        subtree = ExtractedSubtree(
            "Vaccines", category="vaccines", provenance="p42",
            children=[ExtractedSubtree("Pfizer", category="vaccines")],
        )
        result = engine.fuse(subtree)
        assert result.merged_leaves == ["Pfizer"]
        assert result.added_leaves == []
        pfizer = graph.find_by_label("Pfizer")[0]
        assert "p42" in pfizer.provenance

    def test_unseen_root_with_unseen_leaf_uses_embeddings(self, setup):
        graph, _, _, engine = setup
        # Root "Vaccine candidates" has no term match; leaf NovoVac should
        # be placed next to the known vaccines by embedding similarity.
        subtree = ExtractedSubtree(
            "Vaccine candidates", category="vaccines", provenance="p9",
            children=[ExtractedSubtree("NovoVac", category="vaccines")],
        )
        result = engine.fuse(subtree)
        assert result.action == "merged"
        assert result.match_method == "embedding"
        novo = graph.find_by_label("NovoVac")[0]
        assert graph.parent(novo.node_id).label == "Vaccines"


class TestReviewRouting:
    def multi_layer(self):
        return ExtractedSubtree(
            "Side-effects", category="side_effects", provenance="p5",
            children=[ExtractedSubtree(
                "Children side-effects", category="side_effects",
                children=[ExtractedSubtree("Rash",
                                           category="side_effects")],
            )],
        )

    def test_multi_layer_subtree_queued(self, setup):
        _, _, queue, engine = setup
        result = engine.fuse(self.multi_layer())
        assert result.action == "queued"
        assert len(queue.pending()) == 1
        assert queue.pending()[0].reason == "multi-layer subtree"

    def test_approval_applies_subtree(self, setup):
        graph, _, queue, engine = setup
        result = engine.fuse(self.multi_layer())
        queue.decide(result.review_id, True, engine)
        # Rash must exist under Children side-effects...
        rashes = graph.find_by_label("Rash")
        parents = {graph.parent(n.node_id).label for n in rashes}
        assert "Children side-effects" in parents

    def test_keep_separate_rule(self, setup):
        # Rash under Children side-effects stays separate from a Rash
        # under general Side-effects even after both fusions.
        graph, _, queue, engine = setup
        general = ExtractedSubtree(
            "Side-effects", category="side_effects", provenance="pA",
            children=[ExtractedSubtree("Rash", category="side_effects")],
        )
        engine.fuse(general)  # unsupervised leaf fusion
        result = engine.fuse(self.multi_layer())
        queue.decide(result.review_id, True, engine)
        rashes = [
            node for node in graph.find_by_label("Rash")
            if node.category == "side_effects"
        ]
        assert len(rashes) == 2
        parents = {graph.parent(n.node_id).label for n in rashes}
        assert parents == {"Side-effects", "Children side-effects"}

    def test_rejection_leaves_graph_unchanged(self, setup):
        graph, _, queue, engine = setup
        before = len(graph)
        result = engine.fuse(self.multi_layer())
        queue.decide(result.review_id, False, engine)
        assert len(graph) == before

    def test_double_decision_rejected(self, setup):
        _, _, queue, engine = setup
        result = engine.fuse(self.multi_layer())
        queue.decide(result.review_id, True, engine)
        with pytest.raises(FusionError):
            queue.decide(result.review_id, False, engine)


class TestFusionCorrector:
    def test_learns_after_consistent_history(self, setup):
        graph, _, queue, engine = setup
        # The expert approves three identical multi-layer cases...
        for _ in range(3):
            subtree = TestReviewRouting().multi_layer()
            result = engine.fuse(subtree)
            queue.decide(result.review_id, True, engine)
        # ...after which the engine auto-approves the fourth.
        result = engine.fuse(TestReviewRouting().multi_layer())
        assert result.action == "auto_approved"

    def test_no_prediction_without_history(self):
        corrector = FusionCorrector()
        assert corrector.predict(ExtractedSubtree("x"), "term") is None

    def test_mixed_history_stays_undecided(self):
        corrector = FusionCorrector(min_history=4)
        tree = ExtractedSubtree("x", category="c")
        for approved in (True, False, True, False):
            corrector.record(tree, "term", approved)
        assert corrector.predict(tree, "term") is None

    def test_consistent_rejection_learned(self):
        corrector = FusionCorrector(min_history=3)
        tree = ExtractedSubtree("x", category="c")
        for _ in range(3):
            corrector.record(tree, "none", False)
        assert corrector.predict(tree, "none") is False


class TestScriptedExpert:
    def test_process_all_with_policy(self, setup):
        _, _, queue, engine = setup
        for _ in range(4):
            engine.fuse(TestReviewRouting().multi_layer())
        outcomes = queue.process_all(
            engine, policy=lambda item: (True, None)
        )
        assert outcomes["approved"] >= 1
        assert not queue.pending()


class TestInsertParentProposals:
    """The NovoVac corollary: 'the node Vaccine then can be added to the
    KG on the top of the NovoVac node' — proposed, expert-gated."""

    def test_differing_root_label_proposes_insert(self, setup):
        graph, _, queue, engine = setup
        result = engine.fuse(ExtractedSubtree(
            "Vaccine candidates", category="vaccines", provenance="pX",
            children=[ExtractedSubtree("NovoVac", category="vaccines")],
        ))
        assert result.action == "merged"
        assert result.intermediate_review_ids
        item = queue.item(result.intermediate_review_ids[0])
        assert item.operation == "insert_parent"
        assert item.subtree.label == "Vaccine candidates"

    def test_approval_inserts_intermediate_node(self, setup):
        graph, _, queue, engine = setup
        result = engine.fuse(ExtractedSubtree(
            "Vaccine candidates", category="vaccines", provenance="pY",
            children=[ExtractedSubtree("NovoVac", category="vaccines")],
        ))
        review_id = result.intermediate_review_ids[0]
        queue.decide(review_id, True, engine)
        novo = graph.find_by_label("NovoVac")[0]
        path = [n.label for n in graph.path_to(novo.node_id)]
        assert path == ["COVID-19", "Vaccines", "Vaccine candidates",
                        "NovoVac"]
        intermediate = graph.parent(novo.node_id)
        assert "pY" in intermediate.provenance

    def test_rejection_keeps_flat_placement(self, setup):
        graph, _, queue, engine = setup
        result = engine.fuse(ExtractedSubtree(
            "Vaccine candidates", category="vaccines", provenance="pZ",
            children=[ExtractedSubtree("NovoVac", category="vaccines")],
        ))
        queue.decide(result.intermediate_review_ids[0], False, engine)
        novo = graph.find_by_label("NovoVac")[0]
        assert graph.parent(novo.node_id).label == "Vaccines"

    def test_matching_root_label_proposes_nothing(self, setup):
        _, _, queue, engine = setup
        before = len(queue)
        result = engine.fuse(ExtractedSubtree(
            "Vaccines", category="vaccines", provenance="pW",
            children=[ExtractedSubtree("BrandNewVax2",
                                       category="vaccines")],
        ))
        assert result.intermediate_review_ids == []
        assert len(queue) == before

    def test_insert_decisions_tracked_separately_by_corrector(self, setup):
        _, _, queue, engine = setup
        tree = ExtractedSubtree("x", category="c")
        queue.corrector.record(tree, "embedding", True,
                               operation="attach_subtree")
        assert queue.corrector.predict(
            tree, "embedding", operation="insert_parent"
        ) is None

"""Golden tests for the NL → KGQL template front end.

The translations are part of the serving contract (the tier caches on
the translated query text), so each template's exact output is pinned.
"""

from __future__ import annotations

import pytest

from repro.errors import KGQLError
from repro.kg.ontology import seed_covid_graph
from repro.kgql import KGQLEngine, parse, translate

GOLDEN = [
    (
        "side effects of Pfizer",
        "side_effects_of",
        'MATCH (x:"Pfizer")-[related*1..3]->(e) '
        'WHERE e.category = "side_effects" RETURN x, e LIMIT 25',
    ),
    (
        "What are the side-effects of the Moderna vaccine?",
        "side_effects_of",
        'MATCH (x:"Moderna vaccine")-[related*1..3]->(e) '
        'WHERE e.category = "side_effects" RETURN x, e LIMIT 25',
    ),
    (
        "papers linking masks and transmission",
        "papers_linking",
        'MATCH (x:"masks")-[related*1..6]->(y:"transmission") '
        'RETURN x, y LIMIT 25',
    ),
    (
        "Which papers link Fever to Vaccines?",
        "papers_linking",
        'MATCH (x:"Fever")-[related*1..6]->(y:"Vaccines") '
        'RETURN x, y LIMIT 25',
    ),
    (
        "what is under Vaccines",
        "what_is_under",
        'MATCH (y:"Vaccines")-[parent_of*1..3]->(c) RETURN c LIMIT 50',
    ),
    (
        "children of Side-effects",
        "what_is_under",
        'MATCH (y:"Side-effects")-[parent_of*1..3]->(c) '
        'RETURN c LIMIT 50',
    ),
    (
        "what is above Fever?",
        "what_is_above",
        'MATCH (x:"Fever")-[child_of*1..5]->(p) RETURN p LIMIT 25',
    ),
    (
        "parents of Pfizer",
        "what_is_above",
        'MATCH (x:"Pfizer")-[child_of*1..5]->(p) RETURN p LIMIT 25',
    ),
    (
        "papers about remdesivir",
        "papers_about",
        'MATCH (x:"remdesivir") RETURN x LIMIT 10',
    ),
    (
        "papers mentioning masks?",
        "papers_about",
        'MATCH (x:"masks") RETURN x LIMIT 10',
    ),
]


class TestGolden:
    @pytest.mark.parametrize("question,template,kgql", GOLDEN)
    def test_translation_is_pinned(self, question, template, kgql):
        translated = translate(question)
        assert translated.template == template
        assert translated.kgql == kgql

    @pytest.mark.parametrize("question,template,kgql", GOLDEN)
    def test_every_translation_parses(self, question, template, kgql):
        parse(kgql)  # must not raise


class TestEdgeCases:
    def test_entities_with_quotes_are_escaped(self):
        translated = translate('papers about "novel" strains')
        assert translated.kgql == \
            'MATCH (x:"\\"novel\\" strains") RETURN x LIMIT 10'
        parse(translated.kgql)

    def test_unmatched_question_lists_templates(self):
        with pytest.raises(KGQLError, match="supported shapes"):
            translate("how is the weather today")

    def test_empty_entity_rejected(self):
        with pytest.raises(KGQLError):
            translate("papers about ?")

    def test_translation_executes_on_seed_graph(self):
        engine = KGQLEngine(seed_covid_graph())
        result = engine.query("what is under Vaccines", nl=True)
        labels = {row.bindings["c"]["label"] for row in result.rows}
        assert "Side-effects" in labels
        result = engine.query("side effects of vaccines", nl=True)
        assert result.total_matches > 0
        assert all(
            row.bindings["e"]["category"] == "side_effects"
            for row in result.rows
        )

"""The ``kg_query`` engine through :class:`QueryService`.

Covers the serving contract for declarative graph queries: result
caching keyed on the KG version (invalidated by ``touch()``), admission
pricing of traversal cost before execution, and negative caching of
deterministic KGQL errors.
"""

from __future__ import annotations

import pytest

from repro.api.system import CovidKG, CovidKGConfig
from repro.corpus.generator import CorpusGenerator, GeneratorConfig
from repro.errors import (
    KGQLSyntaxError,
    RequestTooExpensiveError,
)
from repro.kgql import KGQLResult
from repro.serve.service import ENGINES, QueryService, ServeConfig


@pytest.fixture(scope="module")
def system():
    kg = CovidKG(CovidKGConfig(num_shards=2))
    kg.ingest(CorpusGenerator(GeneratorConfig(seed=11)).papers(8))
    return kg


@pytest.fixture()
def service(system):
    with QueryService(system, ServeConfig(num_workers=2)) as svc:
        yield svc


QUERY = 'MATCH (v:"Vaccines")-[parent_of*1..2]->(e) RETURN e LIMIT 5'


class TestServing:
    def test_kg_query_is_a_registered_engine(self):
        assert "kg_query" in ENGINES

    def test_serves_provenance_bearing_result(self, service):
        served = service.query("kg_query", query=QUERY)
        assert isinstance(served.value, KGQLResult)
        assert served.value.total_matches > 0
        row = served.value.rows[0]
        assert "rendered_path" in row.bindings["e"]

    def test_identical_query_hits_cache(self, service):
        first = service.query("kg_query", query=QUERY)
        second = service.query("kg_query", query=QUERY)
        assert not first.cached
        assert second.cached
        assert second.value is first.value

    def test_touch_invalidates(self, system, service):
        service.query("kg_query", query=QUERY)
        system.graph.touch()
        refreshed = service.query("kg_query", query=QUERY)
        assert not refreshed.cached

    def test_nl_parameter_is_part_of_the_key(self, service):
        nl = service.query("kg_query", query="what is under Vaccines",
                           nl=True)
        assert not nl.cached
        assert nl.value.query.startswith("MATCH")
        again = service.query("kg_query",
                              query="what is under Vaccines", nl=True)
        assert again.cached

    def test_syntax_error_surfaces_and_negative_caches(self, system):
        with QueryService(system, ServeConfig(num_workers=1)) as svc:
            with pytest.raises(KGQLSyntaxError):
                svc.query("kg_query", query="MATCH (v:")
            before = svc.stats()["negative_hits"]
            with pytest.raises(KGQLSyntaxError):
                svc.query("kg_query", query="MATCH (v:")
            assert svc.stats()["negative_hits"] == before + 1


class TestAdmissionPricing:
    def test_oversized_hop_bound_rejected_before_execution(self, system):
        config = ServeConfig(num_workers=1, max_request_cost=50.0)
        with QueryService(system, config) as svc:
            with pytest.raises(RequestTooExpensiveError):
                svc.query(
                    "kg_query",
                    query='MATCH (a)-[related*1..32]->(b) RETURN a, b',
                )
            assert svc.stats()["cost_rejected"] == 1

    def test_cheap_query_admitted_under_same_budget(self, system):
        estimate = None
        config = ServeConfig(num_workers=1, max_request_cost=None)
        with QueryService(system, config) as svc:
            estimate = svc._estimate_cost(
                "kg_query", {"query": QUERY, "nl": False})
        assert estimate is not None
        config = ServeConfig(num_workers=1,
                             max_request_cost=estimate.total_cost + 1)
        with QueryService(system, config) as svc:
            served = svc.query("kg_query", query=QUERY)
            assert served.value.total_matches > 0

    def test_bad_kgql_rejected_at_pricing_settles_flight(self, system):
        # With pricing enabled the parse error fires in _lead, before
        # any worker runs — the flight must still settle so a repeat
        # replays from the negative cache instead of hanging.
        config = ServeConfig(num_workers=1, max_request_cost=1e9)
        with QueryService(system, config) as svc:
            with pytest.raises(KGQLSyntaxError):
                svc.query("kg_query", query="MATCH (")
            with pytest.raises(KGQLSyntaxError):
                svc.query("kg_query", query="MATCH (")
            assert svc.stats()["negative_hits"] == 1
            assert svc.cache.inflight == 0

    def test_nl_questions_are_priced_after_translation(self, system):
        config = ServeConfig(num_workers=1, max_request_cost=1e9)
        with QueryService(system, config) as svc:
            estimate = svc._estimate_cost(
                "kg_query",
                {"query": "papers linking masks and fever", "nl": True})
            assert estimate is not None
            assert estimate.total_cost > 0

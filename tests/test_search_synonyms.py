"""Tests for synonym expansion in matching and ranking."""

import pytest

from repro.embeddings.word2vec import Word2Vec
from repro.search.all_fields import AllFieldsEngine
from repro.search.query import match_filter, parse_query
from repro.search.ranking import RankingFunction
from repro.search.synonyms import (
    CURATED_WEIGHT,
    SynonymExpander,
)
from repro.docstore.matching import matches
from repro.text.stemmer import stem
from repro.text.tfidf import TfIdfModel
from repro.text.tokenizer import tokenize
from repro.text.vocabulary import Vocabulary


def make_paper(paper_id, title, abstract=""):
    return {
        "paper_id": paper_id, "title": title, "abstract": abstract,
        "authors": [{"first": "A", "last": "B"}],
        "publish_time": "2021-01-01", "journal": "JAMA",
        "body_text": [], "tables": [], "figures": [],
    }


class TestExpander:
    def test_curated_synonyms(self):
        expander = SynonymExpander()
        synonyms = dict(expander.expand("vaccine"))
        assert "immunization" in synonyms
        assert synonyms["immunization"] == CURATED_WEIGHT

    def test_term_never_expands_to_itself(self):
        expander = SynonymExpander()
        assert "vaccine" not in dict(expander.expand("vaccine"))

    def test_unknown_term_expands_to_nothing(self):
        assert SynonymExpander().expand("zygomorphic") == []

    def test_case_insensitive(self):
        assert SynonymExpander().expand("VACCINE")

    def test_symmetry_within_group(self):
        expander = SynonymExpander()
        assert "vaccine" in dict(expander.expand("immunization"))

    def test_custom_groups(self):
        expander = SynonymExpander(groups=(("alpha", "beta"),))
        assert dict(expander.expand("alpha")) == {"beta": CURATED_WEIGHT}
        assert expander.expand("vaccine") == []  # curated table replaced

    def test_embedding_neighbors_added(self):
        sentences = ["remdesivir antiviral drug treatment dosing"] * 30
        vocabulary = Vocabulary.from_texts(sentences,
                                           drop_stopwords=False)
        w2v = Word2Vec(vocabulary, dim=8, seed=1).fit(sentences, epochs=10)
        expander = SynonymExpander(word2vec=w2v,
                                   max_embedding_neighbors=2)
        expanded = expander.expand("remdesivir")
        # Embedding neighbours (if above the floor) never outweigh
        # curated synonyms.
        assert all(weight <= CURATED_WEIGHT for _, weight in expanded)


class TestSynonymMatching:
    DOC = {"search": {"title": "Immunization schedules for adults"}}

    def test_match_filter_without_expander_misses(self):
        parsed = parse_query("vaccine")
        filt = match_filter(parsed, ["search.title"])
        assert not matches(self.DOC, filt)

    def test_match_filter_with_expander_hits(self):
        parsed = parse_query("vaccine")
        filt = match_filter(parsed, ["search.title"],
                            expander=SynonymExpander())
        assert matches(self.DOC, filt)

    def test_exact_terms_do_not_expand(self):
        parsed = parse_query('"vaccine"')
        filt = match_filter(parsed, ["search.title"],
                            expander=SynonymExpander())
        assert not matches(self.DOC, filt)


class TestSynonymRanking:
    def build_ranking(self, docs, expander=None):
        tfidf = TfIdfModel()
        for text in docs:
            tfidf.add_document_tokens(stem(t) for t in tokenize(text))
        return RankingFunction(tfidf, expander=expander)

    def test_synonym_contributes_below_literal(self):
        docs = ["vaccine trial results", "immunization trial results"]
        ranking = self.build_ranking(docs, expander=SynonymExpander())
        parsed = parse_query("vaccine")
        literal = ranking.field_score(parsed, docs[0])
        synonym = ranking.field_score(parsed, docs[1])
        assert literal > synonym > 0.0

    def test_no_expander_means_no_synonym_score(self):
        docs = ["vaccine trial", "immunization trial"]
        ranking = self.build_ranking(docs)
        parsed = parse_query("vaccine")
        assert ranking.field_score(parsed, docs[1]) == 0.0


class TestEngineIntegration:
    @pytest.fixture()
    def engine(self):
        engine = AllFieldsEngine(expander=SynonymExpander())
        engine.add_papers([
            make_paper("p-lit", "Vaccine effectiveness in adults"),
            make_paper("p-syn", "Immunization effectiveness in adults"),
            make_paper("p-none", "Ventilator allocation policy"),
        ])
        return engine

    def test_synonym_widens_recall(self, engine):
        results = engine.search("vaccine")
        ids = {result.paper_id for result in results}
        assert ids == {"p-lit", "p-syn"}

    def test_literal_match_ranks_first(self, engine):
        results = engine.search("vaccine")
        assert results.results[0].paper_id == "p-lit"

    def test_plain_engine_unchanged(self):
        engine = AllFieldsEngine()
        engine.add_papers([
            make_paper("p-syn", "Immunization effectiveness"),
        ])
        assert engine.search("vaccine").total_matches == 0

"""Tests for the HTML table fragment parser."""

import pytest

from repro.errors import ParseError
from repro.tables.html_parser import parse_html_table, parse_html_tables

SIMPLE = """
<table>
  <caption>Vaccine efficacy</caption>
  <tr><th>Vaccine</th><th>Efficacy</th></tr>
  <tr><td>Pfizer</td><td>95%</td></tr>
  <tr><td>Moderna</td><td>94%</td></tr>
</table>
"""


class TestBasicParsing:
    def test_rows_and_cells(self):
        table = parse_html_table(SIMPLE)
        assert table.num_rows == 3
        assert table.rows[1].texts == ["Pfizer", "95%"]

    def test_caption(self):
        assert parse_html_table(SIMPLE).caption == "Vaccine efficacy"

    def test_header_rows_labeled_metadata(self):
        table = parse_html_table(SIMPLE)
        assert table.rows[0].is_metadata is True
        assert table.rows[1].is_metadata is None

    def test_paper_id_propagated(self):
        table = parse_html_table(SIMPLE, paper_id="cord-123")
        assert table.paper_id == "cord-123"

    def test_no_table_raises(self):
        with pytest.raises(ParseError):
            parse_html_table("<p>no tables here</p>")

    def test_entities_decoded(self):
        html = "<table><tr><td>AT&amp;T</td><td>&lt;5</td></tr></table>"
        assert parse_html_table(html).rows[0].texts == ["AT&T", "<5"]

    def test_inline_markup_flattened(self):
        html = ("<table><tr><td><b>bold</b> and <i>italic</i></td>"
                "</tr></table>")
        assert parse_html_table(html).rows[0].texts == ["bold and italic"]

    def test_br_becomes_space(self):
        html = "<table><tr><td>line1<br>line2</td></tr></table>"
        assert parse_html_table(html).rows[0].texts == ["line1 line2"]

    def test_whitespace_collapsed(self):
        html = "<table><tr><td>  lots \n of   space </td></tr></table>"
        assert parse_html_table(html).rows[0].texts == ["lots of space"]

    def test_thead_tbody_sections(self):
        html = """
        <table>
          <thead><tr><th>h1</th><th>h2</th></tr></thead>
          <tbody><tr><td>a</td><td>b</td></tr></tbody>
          <tfoot><tr><td>f1</td><td>f2</td></tr></tfoot>
        </table>
        """
        table = parse_html_table(html)
        assert table.num_rows == 3
        assert table.rows[0].texts == ["h1", "h2"]

    def test_empty_rows_dropped(self):
        html = ("<table><tr><td></td><td></td></tr>"
                "<tr><td>x</td><td>y</td></tr></table>")
        table = parse_html_table(html)
        assert table.num_rows == 1


class TestSpans:
    def test_colspan_expanded(self):
        html = """
        <table>
          <tr><th colspan="2">Group</th><th>N</th></tr>
          <tr><td>a</td><td>b</td><td>c</td></tr>
        </table>
        """
        table = parse_html_table(html)
        assert table.rows[0].texts == ["Group", "Group", "N"]
        assert table.num_columns == 3

    def test_rowspan_expanded(self):
        html = """
        <table>
          <tr><td rowspan="2">Span</td><td>r1</td></tr>
          <tr><td>r2</td></tr>
        </table>
        """
        table = parse_html_table(html)
        assert table.rows[0].texts == ["Span", "r1"]
        assert table.rows[1].texts == ["Span", "r2"]

    def test_invalid_span_value_defaults_to_one(self):
        html = '<table><tr><td colspan="x">a</td><td>b</td></tr></table>'
        assert parse_html_table(html).rows[0].texts == ["a", "b"]


class TestMultipleTables:
    HTML = """
    <div>
      <table><tr><td>first</td></tr></table>
      <table><caption>second cap</caption><tr><td>second</td></tr></table>
    </div>
    """

    def test_parse_all(self):
        tables = parse_html_tables(self.HTML)
        assert len(tables) == 2
        assert tables[0].rows[0].texts == ["first"]
        assert tables[1].caption == "second cap"
        assert tables[1].table_id == "t1"

    def test_single_parse_rejects_multiple(self):
        with pytest.raises(ParseError):
            parse_html_table(self.HTML)

    def test_nested_table_content_ignored(self):
        html = """
        <table><tr><td>outer
          <table><tr><td>inner</td></tr></table>
        </td></tr></table>
        """
        tables = parse_html_tables(html)
        assert len(tables) == 1
        assert "outer" in tables[0].rows[0].texts[0]


class TestMalformedHTML:
    def test_unclosed_cells(self):
        html = "<table><tr><td>a<td>b<tr><td>c</table>"
        table = parse_html_table(html)
        assert table.rows[0].texts == ["a", "b"]
        assert table.rows[1].texts == ["c"]

    def test_missing_tr(self):
        html = "<table><td>orphan</td></table>"
        table = parse_html_table(html)
        assert table.rows[0].texts == ["orphan"]

    def test_empty_fragment_raises(self):
        with pytest.raises(ParseError):
            parse_html_table("")


class TestComplexStructures:
    def test_combined_colspan_and_rowspan(self):
        html = """
        <table>
          <tr><td colspan="2" rowspan="2">Block</td><td>r1c3</td></tr>
          <tr><td>r2c3</td></tr>
          <tr><td>a</td><td>b</td><td>c</td></tr>
        </table>
        """
        table = parse_html_table(html)
        assert table.rows[0].texts == ["Block", "Block", "r1c3"]
        assert table.rows[1].texts == ["Block", "Block", "r2c3"]
        assert table.rows[2].texts == ["a", "b", "c"]

    def test_deeply_nested_inline_markup(self):
        html = ("<table><tr><td><span><b><i>deep</i></b> text"
                "<sup>1</sup></span></td></tr></table>")
        assert parse_html_table(html).rows[0].texts == ["deep text1"]

    def test_caption_after_rows_still_captured(self):
        html = ("<table><tr><td>x</td></tr>"
                "<caption>Late caption</caption></table>")
        assert parse_html_table(html).caption == "Late caption"

    def test_mixed_th_td_row_not_structurally_labeled(self):
        html = ("<table><tr><th>name</th><td>alice</td></tr></table>")
        table = parse_html_table(html)
        # Mixed rows are ambiguous; the classifier decides, not structure.
        assert table.rows[0].is_metadata is None

    def test_three_sequential_rowspans(self):
        html = """
        <table>
          <tr><td rowspan="3">S</td><td>1</td></tr>
          <tr><td>2</td></tr>
          <tr><td>3</td></tr>
        </table>
        """
        table = parse_html_table(html)
        assert [row.texts for row in table.rows] == [
            ["S", "1"], ["S", "2"], ["S", "3"],
        ]

    def test_attribute_noise_tolerated(self):
        html = ('<table class="x" style="width:1px">'
                '<tr data-row="1"><td align="left">v</td></tr></table>')
        assert parse_html_table(html).rows[0].texts == ["v"]

"""Integration tests for the CovidKG facade and the model registry."""

import pytest

from repro.api.registry import ModelRegistry
from repro.api.system import CovidKG, CovidKGConfig
from repro.corpus.generator import CorpusGenerator, GeneratorConfig
from repro.errors import ModelError, RegistryError


@pytest.fixture(scope="module")
def corpus():
    config = GeneratorConfig(seed=21, papers_per_week=15,
                             tables_per_paper=(1, 2))
    return CorpusGenerator(config).papers(45)


@pytest.fixture(scope="module")
def system(corpus):
    kg = CovidKG(CovidKGConfig(num_shards=3, wdc_training_tables=30,
                               vocabulary_size=20_000, seed=2))
    kg.train(corpus[:20], word2vec_epochs=2)
    kg.ingest(corpus)
    return kg


class TestModelRegistry:
    def test_register_and_get(self):
        registry = ModelRegistry()
        registry.register("m1", "classifier", object(), f1=0.93)
        assert "m1" in registry
        assert registry.entry("m1").metadata["f1"] == 0.93

    def test_duplicate_rejected(self):
        registry = ModelRegistry()
        registry.register("m1", "classifier", object())
        with pytest.raises(RegistryError):
            registry.register("m1", "classifier", object())

    def test_unknown_rejected(self):
        with pytest.raises(RegistryError):
            ModelRegistry().get("ghost")

    def test_kind_filter(self):
        registry = ModelRegistry()
        registry.register("e1", "embedding", object())
        registry.register("c1", "classifier", object())
        assert registry.names("embedding") == ["e1"]

    def test_manifest_roundtrip(self, tmp_path):
        import json
        registry = ModelRegistry()
        registry.register("e1", "embedding", object(), dim=24)
        registry.save_manifest(tmp_path / "manifest.json")
        loaded = json.loads((tmp_path / "manifest.json").read_text())
        assert loaded[0]["name"] == "e1"
        assert loaded[0]["metadata"]["dim"] == 24


class TestCovidKGSystem:
    def test_train_registers_models(self, system):
        names = system.registry.names()
        assert "covidkg-word2vec" in names
        assert "covidkg-metadata-svm" in names
        assert "covidkg-vocabulary" in names

    def test_ingest_stores_all_papers(self, system, corpus):
        assert len(system.store) == len(corpus)
        stats = system.statistics()
        assert stats["publications"] == len(corpus)
        assert sum(stats["shard_sizes"]) == len(corpus)

    def test_duplicate_ingest_rejected(self, system, corpus):
        from repro.errors import DuplicateKeyError
        with pytest.raises(DuplicateKeyError):
            system.ingest([corpus[0]])

    def test_all_fields_search_works(self, system):
        results = system.search("vaccine")
        assert results.total_matches > 0
        assert results.results[0].title

    def test_table_search_works(self, system):
        results = system.search_tables("efficacy")
        if results.total_matches:
            assert results.results[0].extras["tables"]

    def test_field_search_works(self, system):
        results = system.search_fields(title="covid")
        assert results.total_matches >= 0  # shape check; may be empty

    def test_kg_search_highlights_path(self, system):
        hits = system.search_graph("vaccines")
        assert hits
        assert hits[0].rendered_path().startswith("COVID-19")

    def test_kg_grew_from_enrichment(self, system):
        # Seed graph has no provenance; ingest must have attached papers.
        assert system.graph.statistics()["papers"] > 0

    def test_classifier_labels_ingested_tables(self, system):
        stored = system.store.find({}).to_list()
        tables = [t for paper in stored for t in paper.get("tables", [])]
        assert tables
        labeled = [
            row
            for table in tables
            for row in table.get("rows", [])
            if "is_metadata" in row
        ]
        assert labeled
        assert any(row["is_metadata"] for row in labeled)

    def test_meta_profile_from_ingested(self, system):
        profile = system.meta_profile()
        assert profile.vaccines
        assert profile.num_sources > 0

    def test_meta_profile_requires_papers(self):
        with pytest.raises(ModelError):
            CovidKG().meta_profile()

    def test_statistics_shape(self, system):
        stats = system.statistics()
        assert set(stats) == {
            "publications", "kg", "storage_bytes", "shard_sizes",
            "executor_width", "ranker", "columnar", "pending_reviews",
            "registered_models",
        }
        assert stats["storage_bytes"] > 0
        assert stats["executor_width"] >= 1
        assert stats["ranker"] == "tfidf"
        assert stats["columnar"] is True

    def test_untrained_system_still_ingests(self, corpus):
        kg = CovidKG(CovidKGConfig(num_shards=2))
        report = kg.ingest(corpus[:3])
        assert len(kg.store) == 3
        assert report.subtrees >= 0


class TestBiGruFacade:
    def test_bigru_classifier_option(self, corpus):
        kg = CovidKG(CovidKGConfig(
            num_shards=2, wdc_training_tables=20,
            vocabulary_size=10_000, classifier="bigru",
            classifier_epochs=2, embedding_dim=12, seed=3,
        ))
        kg.train(corpus[:10], word2vec_epochs=1)
        assert "covidkg-metadata-bigru" in kg.registry
        report = kg.ingest(corpus[:5])
        assert len(kg.store) == 5
        assert report.subtrees >= 0
        # Ingested tables carry classifier-assigned labels.
        stored = kg.store.find({}).to_list()
        labeled = [
            row
            for paper in stored
            for table in paper.get("tables", [])
            for row in table.get("rows", [])
            if "is_metadata" in row
        ]
        assert labeled

    def test_unknown_classifier_rejected(self, corpus):
        from repro.errors import ModelError
        kg = CovidKG(CovidKGConfig(classifier="transformer"))
        with pytest.raises(ModelError):
            kg.train(corpus[:5], word2vec_epochs=1)

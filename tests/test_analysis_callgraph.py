"""Unit tests for the project symbol table and call graph.

Summaries are built from text in-memory (no filesystem), indexed, and
interrogated the way the interprocedural rules do — resolution through
imports and cycles, method lookup along bases, conservative treatment
of anything the graph cannot pin down.
"""

from __future__ import annotations

import ast

from repro.analysis.callgraph import ProjectIndex
from repro.analysis.summaries import module_name_for, summarize_module


def _index(files: dict[str, str]) -> ProjectIndex:
    return ProjectIndex(
        summarize_module(path, ast.parse(text))
        for path, text in files.items()
    )


# -- module naming ---------------------------------------------------------

def test_module_names_strip_src_and_init():
    assert module_name_for("src/repro/gateway/server.py") == \
        "repro.gateway.server"
    assert module_name_for("src/repro/docstore/__init__.py") == \
        "repro.docstore"
    assert module_name_for("tests/test_x.py") == "tests.test_x"
    assert module_name_for("benchmarks/bench_e16.py") == \
        "benchmarks.bench_e16"


# -- resolution ------------------------------------------------------------

def test_bare_and_imported_calls_resolve():
    index = _index({
        "src/pkg/util.py": "def helper():\n    return 1\n",
        "src/pkg/app.py": (
            "from pkg.util import helper\n"
            "import pkg.util\n"
            "def local():\n    return 2\n"
            "def run():\n"
            "    local()\n"
            "    helper()\n"
            "    pkg.util.helper()\n"
        ),
    })
    caller = "pkg.app:run"
    assert index.resolve_call(caller, "local") == "pkg.app:local"
    assert index.resolve_call(caller, "helper") == "pkg.util:helper"
    assert index.resolve_call(caller, "pkg.util.helper") == \
        "pkg.util:helper"


def test_import_alias_resolves():
    index = _index({
        "src/pkg/util.py": "def helper():\n    return 1\n",
        "src/pkg/app.py": (
            "from pkg.util import helper as h\n"
            "def run():\n    h()\n"
        ),
    })
    assert index.resolve_call("pkg.app:run", "h") == "pkg.util:helper"


def test_import_cycles_do_not_break_resolution():
    # a imports b, b imports a — summaries are per-module so the index
    # never "imports" anything; both directions must resolve.
    index = _index({
        "src/pkg/a.py": (
            "from pkg.b import beta\n"
            "def alpha():\n    beta()\n"
        ),
        "src/pkg/b.py": (
            "from pkg.a import alpha\n"
            "def beta():\n    alpha()\n"
        ),
    })
    assert index.resolve_call("pkg.a:alpha", "beta") == "pkg.b:beta"
    assert index.resolve_call("pkg.b:beta", "alpha") == "pkg.a:alpha"
    # The recursive analyses terminate on the cycle.
    assert index.blocking_chain("pkg.a:alpha") is None
    assert index.transitive_locks("pkg.a:alpha") == {}


def test_self_method_resolution_walks_project_bases():
    index = _index({
        "src/pkg/base.py": (
            "class Base:\n"
            "    def shared(self):\n        return 1\n"
        ),
        "src/pkg/impl.py": (
            "from pkg.base import Base\n"
            "class Impl(Base):\n"
            "    def run(self):\n"
            "        self.local()\n"
            "        self.shared()\n"
            "    def local(self):\n        return 2\n"
        ),
    })
    caller = "pkg.impl:Impl.run"
    assert index.resolve_call(caller, "self.local") == \
        "pkg.impl:Impl.local"
    assert index.resolve_call(caller, "self.shared") == \
        "pkg.base:Base.shared"


def test_constructor_call_resolves_to_init():
    index = _index({
        "src/pkg/thing.py": (
            "class Thing:\n"
            "    def __init__(self):\n        self.x = 1\n"
        ),
        "src/pkg/app.py": (
            "from pkg.thing import Thing\n"
            "def make():\n    return Thing()\n"
        ),
    })
    assert index.resolve_call("pkg.app:make", "Thing") == \
        "pkg.thing:Thing.__init__"


def test_unknown_callees_stay_conservative():
    index = _index({
        "src/pkg/app.py": (
            "import json\n"
            "def run(obj):\n"
            "    json.dumps(obj)\n"
            "    obj.mystery()\n"
            "    unknown_name()\n"
        ),
    })
    caller = "pkg.app:run"
    assert index.resolve_call(caller, "json.dumps") is None
    assert index.resolve_call(caller, "obj.mystery") is None
    assert index.resolve_call(caller, "unknown_name") is None
    assert index.resolve_call(caller, "?.method") is None
    # And unknowns contribute no effects.
    assert index.blocking_chain(caller) is None
    assert index.fanout_chain(caller) is None


def test_method_on_external_base_is_unknown_not_absent():
    index = _index({
        "src/pkg/impl.py": (
            "import threading\n"
            "class Impl(threading.Thread):\n"
            "    def go(self):\n        self.start()\n"
        ),
    })
    assert index.resolve_call("pkg.impl:Impl.go", "self.start") is None


def test_nested_def_resolves_as_sibling_closure():
    index = _index({
        "src/pkg/app.py": (
            "def outer():\n"
            "    def inner():\n        return 1\n"
            "    return inner()\n"
        ),
    })
    assert index.resolve_call("pkg.app:outer", "inner") == \
        "pkg.app:outer.inner"


# -- transitive analyses ---------------------------------------------------

def test_blocking_chain_crosses_modules_with_provenance():
    index = _index({
        "src/pkg/low.py": (
            "import time\n"
            "def slow():\n    time.sleep(1)\n"
        ),
        "src/pkg/mid.py": (
            "from pkg.low import slow\n"
            "def relay():\n    slow()\n"
        ),
    })
    chain = index.blocking_chain("pkg.mid:relay")
    assert chain is not None
    reason, steps = chain
    assert reason == "time.sleep"
    assert [step.function for step in steps] == \
        ["pkg.mid:relay", "pkg.low:slow"]
    assert steps[0].path == "src/pkg/mid.py"


def test_transitive_locks_aggregate_through_calls():
    index = _index({
        "src/pkg/locks.py": (
            "from repro.analysis import racecheck\n"
            "A = racecheck.make_lock('A')\n"
            "B = racecheck.make_lock('B')\n"
            "def take_b():\n"
            "    with B:\n        pass\n"
            "def outer():\n"
            "    with A:\n"
            "        take_b()\n"
        ),
    })
    locks = index.transitive_locks("pkg.locks:outer")
    assert set(locks) == {"A", "B"}
    edges = index.lock_order_edges()
    assert ("A", "B") in edges
    assert ("B", "A") not in edges


def test_plain_locks_are_qualified_by_binding_site():
    # Same attribute name in two classes must not alias into one lock.
    index = _index({
        "src/pkg/two.py": (
            "import threading\n"
            "class P:\n"
            "    def __init__(self):\n"
            "        self._lock = threading.Lock()\n"
            "    def use(self):\n"
            "        with self._lock:\n            pass\n"
            "class Q:\n"
            "    def __init__(self):\n"
            "        self._lock = threading.Lock()\n"
            "    def use(self):\n"
            "        with self._lock:\n            pass\n"
        ),
    })
    p_locks = index.transitive_locks("pkg.two:P.use")
    q_locks = index.transitive_locks("pkg.two:Q.use")
    assert p_locks and q_locks
    assert set(p_locks).isdisjoint(q_locks)


def test_tuple_assigned_racecheck_locks_resolve_by_factory_name():
    # The racecheck test-suite shape: a, b = make_lock("A"), make_lock("B")
    index = _index({
        "src/pkg/tup.py": (
            "from repro.analysis.racecheck import make_lock\n"
            "def workload():\n"
            "    a, b = make_lock('A'), make_lock('B')\n"
            "    def ab():\n"
            "        with a:\n"
            "            with b:\n                pass\n"
            "    return ab\n"
        ),
    })
    locks = index.transitive_locks("pkg.tup:workload.ab")
    assert set(locks) == {"A", "B"}
    assert ("A", "B") in index.lock_order_edges()


def test_lambda_bodies_are_deferred_not_attributed():
    # pool.submit(lambda: time.sleep(1)) must not make the enclosing
    # function "blocking" — the lambda runs on the pool, not here.
    index = _index({
        "src/pkg/defer.py": (
            "import time\n"
            "def dispatch(pool):\n"
            "    return pool.submit(lambda: time.sleep(1))\n"
        ),
    })
    assert index.blocking_chain("pkg.defer:dispatch") is None


def test_fanout_chain_tracks_scatter_through_helpers():
    index = _index({
        "src/pkg/fan.py": (
            "from repro.docstore.executor import scatter\n"
            "def wide(tasks):\n    return scatter(tasks)\n"
            "def indirect(tasks):\n    return wide(tasks)\n"
        ),
    })
    chain = index.fanout_chain("pkg.fan:indirect")
    assert chain is not None
    assert chain[-1].note == "fans out via scatter()"

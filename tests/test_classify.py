"""Tests for the metadata-classification stack (Section 3 of the paper)."""

import numpy as np
import pytest

from repro.classify.bigru_model import NeuralMetadataClassifier
from repro.classify.dataset import MetadataDataset
from repro.classify.evaluate import evaluate_classifier_cv, evaluation_grid
from repro.classify.svm_model import SvmMetadataClassifier, hashed_bag_of_words
from repro.corpus.generator import CorpusGenerator, GeneratorConfig
from repro.errors import ModelError, NotFittedError
from repro.tables.model import Table
from repro.text.vocabulary import Vocabulary


@pytest.fixture(scope="module")
def dataset():
    return MetadataDataset.from_wdc(40, seed=1).shuffled(seed=2)


@pytest.fixture(scope="module")
def vocab(dataset):
    return Vocabulary.from_texts(dataset.texts(), drop_stopwords=False)


class TestDataset:
    def test_wdc_dataset_has_both_classes(self, dataset):
        summary = dataset.balance_summary()
        assert summary["metadata"] > 0
        assert summary["data"] > summary["metadata"]

    def test_each_table_contributes_one_metadata_line(self):
        data = MetadataDataset.from_wdc(10, seed=3,
                                        orientations=("horizontal",))
        assert int(data.labels.sum()) == 10

    def test_orientation_slicing(self, dataset):
        horizontal = dataset.by_orientation("horizontal")
        vertical = dataset.by_orientation("vertical")
        assert len(horizontal) + len(vertical) == len(dataset)
        assert len(horizontal) > 0 and len(vertical) > 0

    def test_size_slicing(self, dataset):
        small = dataset.by_size(max_rows=5)
        large = dataset.by_size(min_rows=6)
        assert len(small) + len(large) == len(dataset)

    def test_from_papers(self):
        papers = CorpusGenerator(
            GeneratorConfig(seed=5, tables_per_paper=(1, 2))
        ).papers(10)
        data = MetadataDataset.from_papers(papers)
        assert len(data) > 10
        assert 0 < data.labels.sum() < len(data)

    def test_from_table_skips_unlabeled_rows(self):
        table = Table.from_grid([["h1", "h2"], ["a", "b"]])
        table.rows[0].is_metadata = True  # row 1 stays None... no: from_grid
        table.rows[1].is_metadata = None
        data = MetadataDataset.from_table(table)
        assert len(data) == 1

    def test_require_both_classes(self):
        table = Table.from_grid([["a", "b"]], header_rows=1)
        with pytest.raises(ModelError):
            MetadataDataset.from_table(table).require_both_classes()

    def test_text_applies_normalization(self, dataset):
        data_rows = [t for t in dataset if not t.label]
        assert any(
            keyword in row.text
            for row in data_rows
            for keyword in ("INT", "FLOAT", "MONEY", "$", "RANGE", "YEARS")
        )


class TestHashedBagOfWords:
    def test_deterministic(self):
        a = hashed_bag_of_words("vaccine dose INT", 32)
        b = hashed_bag_of_words("vaccine dose INT", 32)
        np.testing.assert_array_equal(a, b)

    def test_different_texts_differ(self):
        a = hashed_bag_of_words("vaccine dose", 64)
        b = hashed_bag_of_words("ventilator icu", 64)
        assert not np.array_equal(a, b)

    def test_shape(self):
        assert hashed_bag_of_words("x", 16).shape == (16,)


class TestSvmClassifier:
    def test_learns_wdc_metadata(self, dataset):
        split = int(len(dataset) * 0.8)
        train = dataset.subset(range(split))
        test = dataset.subset(range(split, len(dataset)))
        model = SvmMetadataClassifier(seed=1).fit(train)
        predictions = model.predict(test)
        accuracy = float(np.mean(predictions == test.labels))
        assert accuracy > 0.9

    def test_unfitted_raises(self, dataset):
        with pytest.raises(NotFittedError):
            SvmMetadataClassifier().predict(dataset)

    def test_feature_mask_shrinks_vector(self, dataset):
        full = SvmMetadataClassifier(text_hash_dim=8)
        masked = SvmMetadataClassifier(
            text_hash_dim=8,
            feature_mask=(True, False, False, False, False),
        )
        assert (masked.feature_matrix(dataset).shape[1]
                == full.feature_matrix(dataset).shape[1] - 4)

    def test_invalid_mask_length(self):
        with pytest.raises(ModelError):
            SvmMetadataClassifier(feature_mask=(True, False))

    def test_text_only_model_works(self, dataset):
        model = SvmMetadataClassifier(
            feature_mask=(False,) * 5, text_hash_dim=64, seed=2
        ).fit(dataset)
        assert 0 < model.predict(dataset).sum() < len(dataset)

    def test_kernel_variant_trains(self, dataset):
        small = dataset.subset(range(60))
        model = SvmMetadataClassifier(kernel="rbf", epochs=5, seed=3)
        model.fit(small)
        assert model.predict(small).shape == (60,)


class TestNeuralClassifier:
    @pytest.fixture(scope="class")
    def trained(self, dataset, vocab):
        model = NeuralMetadataClassifier(
            vocab, cell="gru", embed_dim=12, hidden=8,
            max_terms=12, max_cells=6, seed=4,
        )
        train = dataset.subset(range(int(len(dataset) * 0.8)))
        model.fit(train, epochs=6, batch_size=32)
        return model

    def test_learns_metadata(self, trained, dataset):
        test = dataset.subset(range(int(len(dataset) * 0.8), len(dataset)))
        predictions = trained.predict(test)
        accuracy = float(np.mean(predictions == test.labels))
        assert accuracy > 0.85

    def test_probabilities_in_unit_interval(self, trained, dataset):
        probs = trained.predict_proba(dataset.subset(range(10)))
        assert np.all((probs >= 0) & (probs <= 1))

    def test_unfitted_raises(self, dataset, vocab):
        model = NeuralMetadataClassifier(vocab)
        with pytest.raises(NotFittedError):
            model.predict(dataset)

    def test_lstm_variant_trains(self, dataset, vocab):
        model = NeuralMetadataClassifier(
            vocab, cell="lstm", embed_dim=8, hidden=6,
            max_terms=8, max_cells=4, seed=5,
        )
        small = dataset.subset(range(64))
        history = model.fit(small, epochs=2, batch_size=16)
        assert len(history.losses) == 2
        assert history.total_seconds > 0

    def test_unknown_cell_rejected(self, vocab):
        with pytest.raises(ModelError):
            NeuralMetadataClassifier(vocab, cell="transformer")

    def test_loss_decreases(self, dataset, vocab):
        model = NeuralMetadataClassifier(
            vocab, embed_dim=8, hidden=6, max_terms=8, max_cells=4, seed=6
        )
        history = model.fit(dataset.subset(range(96)), epochs=5,
                            batch_size=32)
        assert history.losses[-1] < history.losses[0]


class TestEvaluation:
    def test_cv_report_structure(self, dataset):
        report = evaluate_classifier_cv(
            lambda: SvmMetadataClassifier(epochs=5, seed=7),
            dataset, num_folds=4,
        )
        assert len(report.folds) == 4
        row = report.row()
        assert set(row) == {"precision", "recall", "f1", "accuracy"}
        assert report.std("f1") >= 0.0

    def test_svm_reaches_paper_band_on_wdc(self, dataset):
        report = evaluate_classifier_cv(
            lambda: SvmMetadataClassifier(epochs=10, seed=8),
            dataset, num_folds=5,
        )
        # Paper band is 89-96% F-measure.
        assert report.mean("f1") > 0.85

    def test_grid_keys(self, dataset):
        grid = evaluation_grid(
            lambda: SvmMetadataClassifier(epochs=5, seed=9),
            dataset, num_folds=3,
        )
        assert "horizontal" in grid
        assert "vertical" in grid
        assert any(key.startswith("rows:") for key in grid)


class TestEncoderModes:
    """The A1 ablation's encoder variants through the public API."""

    def test_gap_mode_trains_and_predicts(self, dataset, vocab):
        model = NeuralMetadataClassifier(
            vocab, mode="gap", embed_dim=8, max_terms=8, max_cells=4,
            seed=8,
        )
        small = dataset.subset(range(80))
        history = model.fit(small, epochs=3, batch_size=32)
        assert history.losses[-1] < history.losses[0]
        predictions = model.predict(small)
        assert set(predictions.tolist()) <= {0, 1}

    def test_uni_mode_trains(self, dataset, vocab):
        model = NeuralMetadataClassifier(
            vocab, mode="uni", embed_dim=8, hidden=6,
            max_terms=8, max_cells=4, seed=9,
        )
        model.fit(dataset.subset(range(64)), epochs=2, batch_size=16)
        assert model.predict(dataset.subset(range(16))).shape == (16,)

    def test_unknown_mode_rejected(self, vocab):
        with pytest.raises(ModelError):
            NeuralMetadataClassifier(vocab, mode="transformer")

    def test_gap_has_fewest_parameters(self, vocab):
        kwargs = dict(embed_dim=8, hidden=6, max_terms=8, max_cells=4)
        gap = NeuralMetadataClassifier(vocab, mode="gap", **kwargs)
        uni = NeuralMetadataClassifier(vocab, mode="uni", **kwargs)
        bi = NeuralMetadataClassifier(vocab, mode="bi", **kwargs)
        assert gap.num_parameters() < uni.num_parameters()
        assert uni.num_parameters() < bi.num_parameters()

    def test_pretrained_vector_shape_enforced(self, vocab):
        import numpy as np
        with pytest.raises(ModelError):
            NeuralMetadataClassifier(
                vocab, embed_dim=8,
                pretrained_vectors=np.zeros((len(vocab), 99)),
            )

    def test_pretrained_vectors_used_as_init(self, vocab):
        import numpy as np
        vectors = np.random.default_rng(0).normal(
            size=(len(vocab), 8)
        )
        model = NeuralMetadataClassifier(
            vocab, embed_dim=8, pretrained_vectors=vectors,
        )
        np.testing.assert_array_equal(
            model.term_path.embedding.weights, vectors
        )

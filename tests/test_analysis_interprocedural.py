"""Fixture corpora for REP208–REP210 and the static/runtime cross-check.

Each scenario writes a small package to ``tmp_path``, runs the full
engine (per-file rules + project rules) over it, and asserts on exactly
which interprocedural findings come out — true positives, the
exemptions that keep the rules quiet on correct code, and suppression.

The agreement test at the bottom is the PR's keystone: one lock
workload is *executed* under racecheck (runtime lock-order graph) and
*summarized* statically (REP209's graph), and every runtime cycle must
appear in the static answer — the compile-time checker may not be
blinder than the runtime one on code it can see.
"""

from __future__ import annotations

import ast
from pathlib import Path

from repro.analysis import racecheck
from repro.analysis.callgraph import ProjectIndex
from repro.analysis.engine import analyze_paths
from repro.analysis.lint import Finding
from repro.analysis.summaries import summarize_module


def _analyze(tmp_path: Path, files: dict[str, str]) -> list[Finding]:
    for name, text in files.items():
        target = tmp_path / name
        target.parent.mkdir(parents=True, exist_ok=True)
        target.write_text(text, encoding="utf-8")
    result = analyze_paths([tmp_path], root=tmp_path, use_cache=False)
    return result.findings


def _rules(findings: list[Finding], rule: str) -> list[Finding]:
    return [f for f in findings if f.rule == rule]


# -- REP208: transitively-blocking call reachable from async --------------

REP208_POSITIVE = {
    "pkg/low.py": (
        "import time\n\n\n"
        "def slow():\n"
        "    time.sleep(1)\n"
    ),
    "pkg/mid.py": (
        "from pkg.low import slow\n\n\n"
        "def relay():\n"
        "    slow()\n"
    ),
    "pkg/app.py": (
        "from pkg.mid import relay\n\n\n"
        "async def handler():\n"
        "    relay()\n"
    ),
}


def test_rep208_flags_blocking_two_frames_down(tmp_path):
    findings = _rules(_analyze(tmp_path, REP208_POSITIVE), "REP208")
    assert len(findings) == 1
    (finding,) = findings
    assert finding.path == "pkg/app.py"
    assert "time.sleep" in finding.message
    assert "pkg.mid:relay" in finding.message
    assert "pkg.low:slow" in finding.message


def test_rep208_direct_blocking_is_rep206s_job_not_duplicated(tmp_path):
    findings = _analyze(tmp_path, {"pkg/app.py": (
        "import time\n\n\n"
        "async def handler():\n"
        "    time.sleep(1)\n"
    )})
    assert [f.rule for f in findings] == ["REP206"]


def test_rep208_awaited_and_executor_calls_are_exempt(tmp_path):
    findings = _analyze(tmp_path, {
        "pkg/low.py": (
            "import time\n\n\n"
            "def slow():\n"
            "    time.sleep(1)\n"
        ),
        "pkg/app.py": (
            "import asyncio\n\n"
            "from pkg.low import slow\n\n\n"
            "async def helper():\n"
            "    await asyncio.sleep(0)\n\n\n"
            "async def handler(loop, pool):\n"
            "    await helper()\n"
            "    await loop.run_in_executor(None, slow)\n"
            "    pool.submit(slow)\n"
        ),
    })
    assert _rules(findings, "REP208") == []


def test_rep208_async_callee_is_not_blocking(tmp_path):
    # Calling (without awaiting) an async function builds a coroutine;
    # whatever its body does, the *call* does not block.
    findings = _analyze(tmp_path, {"pkg/app.py": (
        "import time\n\n\n"
        "async def worker():\n"
        "    time.sleep(1)  # lint: allow=REP206\n\n\n"
        "async def handler():\n"
        "    return worker()\n"
    )})
    assert _rules(findings, "REP208") == []


def test_rep208_suppression_comment_works(tmp_path):
    files = dict(REP208_POSITIVE)
    files["pkg/app.py"] = files["pkg/app.py"].replace(
        "    relay()", "    relay()  # lint: allow=REP208")
    assert _rules(_analyze(tmp_path, files), "REP208") == []


# -- REP209: static lock-order cycles --------------------------------------

REP209_POSITIVE = {
    "pkg/locks.py": (
        "from repro.analysis.racecheck import make_lock\n\n"
        "A = make_lock('A')\n"
        "B = make_lock('B')\n"
    ),
    "pkg/one.py": (
        "from pkg.locks import A, B\n\n\n"
        "def take_b():\n"
        "    with B:\n"
        "        pass\n\n\n"
        "def ab():\n"
        "    with A:\n"
        "        take_b()\n"
    ),
    "pkg/two.py": (
        "from pkg.locks import A, B\n\n\n"
        "def ba():\n"
        "    with B:\n"
        "        with A:\n"
        "            pass\n"
    ),
}


def test_rep209_flags_cycle_split_across_modules(tmp_path):
    findings = _rules(_analyze(tmp_path, REP209_POSITIVE), "REP209")
    assert len(findings) == 1
    (finding,) = findings
    assert "A -> B -> A" in finding.message or \
        "B -> A -> B" in finding.message
    # Provenance names both sides of the inversion.
    assert "pkg.one:ab" in finding.message
    assert "pkg.two:ba" in finding.message


def test_rep209_consistent_order_is_clean(tmp_path):
    findings = _analyze(tmp_path, {
        "pkg/locks.py": REP209_POSITIVE["pkg/locks.py"],
        "pkg/one.py": REP209_POSITIVE["pkg/one.py"],
        "pkg/three.py": (
            "from pkg.locks import A, B\n\n\n"
            "def also_ab():\n"
            "    with A:\n"
            "        with B:\n"
            "            pass\n"
        ),
    })
    assert _rules(findings, "REP209") == []


def test_rep209_same_attr_name_in_two_classes_is_no_cycle(tmp_path):
    # P holds its own lock calling Q which takes Q's lock, and vice
    # versa: only a cycle if the two `self._lock`s alias. They must not.
    findings = _analyze(tmp_path, {"pkg/pair.py": (
        "import threading\n\n\n"
        "class P:\n"
        "    def __init__(self, other):\n"
        "        self._lock = threading.Lock()\n"
        "        self.other = other\n\n"
        "    def poke(self):\n"
        "        with self._lock:\n"
        "            pass\n\n\n"
        "class Q:\n"
        "    def __init__(self, other):\n"
        "        self._lock = threading.Lock()\n"
        "        self.other = other\n\n"
        "    def poke(self):\n"
        "        with self._lock:\n"
        "            pass\n"
    )})
    assert _rules(findings, "REP209") == []


# -- REP210: fan-out while holding a lock ----------------------------------

REP210_POSITIVE = {
    "pkg/fan.py": (
        "import threading\n\n"
        "from repro.docstore.executor import scatter\n\n"
        "_lock = threading.Lock()\n\n\n"
        "def wide(tasks):\n"
        "    return scatter(tasks)\n\n\n"
        "def bad(tasks):\n"
        "    with _lock:\n"
        "        return wide(tasks)\n"
    ),
}


def test_rep210_flags_transitive_fanout_under_lock(tmp_path):
    findings = _rules(_analyze(tmp_path, REP210_POSITIVE), "REP210")
    assert len(findings) == 1
    (finding,) = findings
    assert "wide()" in finding.message
    assert "pkg.fan._lock" in finding.message


def test_rep210_flags_direct_fanout_under_lock(tmp_path):
    findings = _analyze(tmp_path, {"pkg/fan.py": (
        "import threading\n\n"
        "from repro.docstore.executor import scatter\n\n"
        "_lock = threading.Lock()\n\n\n"
        "def bad(tasks):\n"
        "    with _lock:\n"
        "        return scatter(tasks)\n"
    )})
    assert len(_rules(findings, "REP210")) == 1


def test_rep210_fanout_after_lock_released_is_clean(tmp_path):
    findings = _analyze(tmp_path, {"pkg/fan.py": (
        "import threading\n\n"
        "from repro.docstore.executor import scatter\n\n"
        "_lock = threading.Lock()\n\n\n"
        "def good(tasks):\n"
        "    with _lock:\n"
        "        snapshot = list(tasks)\n"
        "    return scatter(snapshot)\n"
    )})
    assert _rules(findings, "REP210") == []


def test_rep210_suppression_comment_works(tmp_path):
    files = {"pkg/fan.py": REP210_POSITIVE["pkg/fan.py"].replace(
        "        return wide(tasks)",
        "        return wide(tasks)  # lint: allow=REP210")}
    assert _rules(_analyze(tmp_path, files), "REP210") == []


# -- REP211: resource leaks (fixture corpus beyond the minimal one) --------

def test_rep211_socket_leak_between_acquire_and_return(tmp_path):
    findings = _analyze(tmp_path, {"pkg/net.py": (
        "import socket\n\n\n"
        "def connect(addr):\n"
        "    sock = socket.create_connection(addr)\n"
        "    sock.setsockopt(6, 1, 1)\n"
        "    return sock\n"
    )})
    assert [f.rule for f in findings] == ["REP211"]
    assert "sock" in findings[0].message


def test_rep211_guarded_acquire_is_clean(tmp_path):
    findings = _analyze(tmp_path, {"pkg/net.py": (
        "import socket\n\n\n"
        "def connect(addr):\n"
        "    sock = socket.create_connection(addr)\n"
        "    try:\n"
        "        sock.setsockopt(6, 1, 1)\n"
        "    except BaseException:\n"
        "        sock.close()\n"
        "        raise\n"
        "    return sock\n"
    )})
    assert _rules(findings, "REP211") == []


def test_rep211_with_statement_is_clean(tmp_path):
    findings = _analyze(tmp_path, {"pkg/io.py": (
        "def read(path):\n"
        "    with open(path) as handle:\n"
        "        return handle.read()\n"
    )})
    assert _rules(findings, "REP211") == []


def test_rep211_executor_never_shut_down(tmp_path):
    findings = _analyze(tmp_path, {"pkg/pool.py": (
        "from concurrent.futures import ThreadPoolExecutor\n\n\n"
        "def burst(tasks):\n"
        "    pool = ThreadPoolExecutor(max_workers=4)\n"
        "    futures = [pool.submit(task) for task in tasks]\n"
        "    return [future.result() for future in futures]\n"
        "    # lint: allow=REP205\n"
    )})
    assert "REP211" in {f.rule for f in findings}


def test_rep211_global_assignment_is_module_state_not_a_leak(tmp_path):
    # The docstore executor pattern: the pool is deliberately stored in
    # a module global under a declared `global`.
    findings = _analyze(tmp_path, {"pkg/pool.py": (
        "from concurrent.futures import ThreadPoolExecutor\n\n"
        "_pool = None\n\n\n"
        "def get_pool():\n"
        "    global _pool\n"
        "    if _pool is None:\n"
        "        _pool = ThreadPoolExecutor(max_workers=4)\n"
        "    return _pool\n"
    )})
    assert _rules(findings, "REP211") == []


def test_rep211_attribute_storage_transfers_ownership(tmp_path):
    findings = _analyze(tmp_path, {"pkg/owner.py": (
        "from concurrent.futures import ThreadPoolExecutor\n\n\n"
        "class Service:\n"
        "    def __init__(self):\n"
        "        self.pool = ThreadPoolExecutor(max_workers=2)\n"
    )})
    assert _rules(findings, "REP211") == []


def test_rep211_finally_release_is_clean(tmp_path):
    findings = _analyze(tmp_path, {"pkg/io.py": (
        "def read(path):\n"
        "    handle = open(path)\n"
        "    try:\n"
        "        return handle.read()\n"
        "    finally:\n"
        "        handle.close()\n"
    )})
    assert _rules(findings, "REP211") == []


# -- static/runtime lock-graph agreement -----------------------------------

#: One workload, two checkers.  Every shape here is *statically
#: resolvable* (named factory locks, direct nesting, cross-function
#: holds) — the contract under test is "runtime sees nothing static
#: misses", which can only hold on code the static side can see.
AGREEMENT_WORKLOAD = """
from repro.analysis.racecheck import make_lock

A = make_lock("AGREE_A")
B = make_lock("AGREE_B")
C = make_lock("AGREE_C")


def take_b():
    with B:
        pass


def hold_a_then_b():
    with A:
        take_b()


def hold_b_then_c():
    with B:
        with C:
            pass


def hold_c_then_a():
    with C:
        with A:
            pass


def drive():
    hold_a_then_b()
    hold_b_then_c()
    hold_c_then_a()
"""


def test_rep209_static_graph_covers_runtime_racecheck_graph(tmp_path):
    # Runtime: execute the workload under racecheck instrumentation.
    previous = racecheck._enabled_override
    racecheck.enable()
    racecheck.reset()
    try:
        namespace: dict = {}
        exec(compile(AGREEMENT_WORKLOAD, "workload.py", "exec"),
             namespace)
        namespace["drive"]()
        runtime = racecheck.report()
    finally:
        racecheck.reset()
        racecheck._enabled_override = previous

    assert runtime.cycles, "workload must produce a runtime cycle"

    # Static: summarize the same source, build the same graph.
    index = ProjectIndex([summarize_module(
        "pkg/workload.py", ast.parse(AGREEMENT_WORKLOAD))])
    static_edges = set(index.lock_order_edges())
    static_cycles = racecheck.find_cycles(static_edges)

    # Every runtime edge between *named* locks appears statically.
    missing_edges = set(runtime.edges) - static_edges
    assert not missing_edges, (
        f"runtime lock-order edges invisible to REP209: "
        f"{sorted(missing_edges)}")
    # And therefore every runtime cycle is found statically.
    static_sets = [frozenset(cycle) for cycle in static_cycles]
    for cycle in runtime.cycles:
        assert frozenset(cycle) in static_sets, (
            f"runtime cycle {cycle} not detected statically; "
            f"static cycles: {static_cycles}")


def test_rep209_is_clean_on_the_real_repo_like_runtime_racecheck():
    # CI's racecheck shard passes (no runtime cycles on the exercised
    # production locks); the static graph over src/repro must agree.
    repo_root = Path(__file__).resolve().parent.parent
    result = analyze_paths([repo_root / "src" / "repro"],
                           root=repo_root, use_cache=False)
    rep209 = _rules(result.findings, "REP209")
    assert rep209 == [], [str(f) for f in rep209]

"""Tests for fit-time validation/early stopping and query explain plans."""

import numpy as np
import pytest

from repro.docstore.collection import Collection
from repro.errors import ModelError
from repro.neural.layers import Dense
from repro.neural.model import Sequential
from repro.neural.optimizers import Adam

RNG = np.random.default_rng(71)


def separable(n):
    x = RNG.normal(size=(n, 2))
    y = (x[:, 0] + x[:, 1] > 0).astype(float)
    return x, y


def model():
    return Sequential(
        [Dense(2, 8, activation="relu", seed=1),
         Dense(8, 1, activation="sigmoid", seed=2)],
        optimizer=Adam(learning_rate=0.05),
    )


class TestValidationAndEarlyStopping:
    def test_validation_losses_recorded(self):
        x, y = separable(100)
        vx, vy = separable(40)
        history = model().fit(x, y, epochs=5,
                              validation_data=(vx, vy))
        assert len(history.validation_losses) == 5
        assert all(np.isfinite(v) for v in history.validation_losses)

    def test_early_stopping_halts_on_plateau(self):
        x, y = separable(100)
        # Validation targets are pure noise: no generalization possible,
        # so validation loss plateaus/rises and patience fires.
        vx = RNG.normal(size=(40, 2))
        vy = RNG.integers(0, 2, 40).astype(float)
        history = model().fit(x, y, epochs=50,
                              validation_data=(vx, vy), patience=2)
        assert history.stopped_early
        assert len(history.losses) < 50

    def test_no_early_stop_while_improving(self):
        x, y = separable(200)
        vx, vy = separable(80)
        history = model().fit(x, y, epochs=5,
                              validation_data=(vx, vy), patience=5)
        assert not history.stopped_early
        assert len(history.losses) == 5

    def test_patience_without_validation_rejected(self):
        x, y = separable(10)
        with pytest.raises(ModelError):
            model().fit(x, y, epochs=2, patience=1)


class TestExplain:
    def collection(self):
        coll = Collection("papers")
        coll.insert_many([
            {"year": 2015 + i % 8, "journal": f"J{i % 3}"}
            for i in range(80)
        ])
        return coll

    def test_full_scan_without_indexes(self):
        plan = self.collection().explain({"year": 2020})
        assert plan["strategy"] == "full_scan"
        assert plan["candidates"] == 80

    def test_hash_index_plan(self):
        coll = self.collection()
        coll.create_index("journal")
        plan = coll.explain({"journal": "J1"})
        assert plan["strategy"] == "hash_index"
        assert plan["index"] == "journal"
        assert plan["candidates"] < 80

    def test_sorted_index_plan_for_ranges(self):
        coll = self.collection()
        coll.create_sorted_index("year")
        plan = coll.explain({"year": {"$gte": 2021}})
        assert plan["strategy"] == "sorted_index"
        assert plan["index"] == "year"
        assert plan["candidates"] == 20

    def test_cheapest_index_wins(self):
        coll = self.collection()
        coll.create_index("journal")
        coll.create_sorted_index("year")
        # Equality on year (via sorted index) narrows to 10; journal to ~27.
        plan = coll.explain({"journal": "J1", "year": {"$eq": 2020}})
        assert plan["index"] == "year"
        assert plan["candidates"] == 10

    def test_explain_matches_actual_scan(self):
        coll = self.collection()
        coll.create_sorted_index("year")
        plan = coll.explain({"year": {"$gte": 2021}})
        coll.scan_count = 0
        coll.find({"year": {"$gte": 2021}}).to_list()
        assert coll.scan_count == plan["candidates"]

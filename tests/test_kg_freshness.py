"""Tests for the KG freshness audit."""

import datetime

import pytest

from repro.corpus.generator import CorpusGenerator, GeneratorConfig
from repro.errors import GraphError
from repro.kg.enrichment import EnrichmentPipeline
from repro.kg.freshness import audit_freshness, paper_dates
from repro.kg.fusion import ExtractedSubtree, FusionEngine
from repro.kg.matching import NodeMatcher
from repro.kg.ontology import seed_covid_graph


def paper(paper_id, date):
    return {"paper_id": paper_id, "publish_time": date}


def fused_graph(provenance_dates):
    """A seed graph with one fused leaf per (paper_id, date) pair."""
    graph = seed_covid_graph()
    engine = FusionEngine(graph, NodeMatcher(graph))
    for index, (paper_id, _) in enumerate(provenance_dates):
        engine.fuse(ExtractedSubtree(
            "Vaccines", category="vaccines", provenance=paper_id,
            children=[ExtractedSubtree(f"Vax{index}",
                                       category="vaccines")],
        ))
    return graph


class TestPaperDates:
    def test_extracts_dates(self):
        dates = paper_dates([paper("p1", "2021-03-01")])
        assert dates["p1"] == datetime.date(2021, 3, 1)

    def test_bad_date_rejected(self):
        with pytest.raises(GraphError):
            paper_dates([paper("p1", "March 2021")])

    def test_missing_fields_skipped(self):
        assert paper_dates([{"paper_id": "p1"}]) == {}


class TestAudit:
    def test_fresh_and_stale_nodes(self):
        papers = [paper("old", "2020-01-15"), paper("new", "2021-06-01")]
        graph = fused_graph([("old", None), ("new", None)])
        report = audit_freshness(graph, papers, window_days=90)

        stale_labels = {node.label for node in report.stale_nodes}
        assert "Vax0" in stale_labels     # supported only by "old"
        assert "Vax1" not in stale_labels
        assert report.as_of == datetime.date(2021, 6, 1)

    def test_seed_structure_counted_not_flagged(self):
        papers = [paper("new", "2021-06-01")]
        graph = fused_graph([("new", None)])
        report = audit_freshness(graph, papers)
        assert report.unevidenced_nodes > 0
        assert all(node.num_papers >= 1 for node in report.nodes)

    def test_parent_inherits_child_freshness(self):
        # papers_for aggregates the subtree, so "Vaccines" is as fresh as
        # its newest leaf.
        papers = [paper("old", "2020-01-01"), paper("new", "2021-06-01")]
        graph = fused_graph([("old", None), ("new", None)])
        report = audit_freshness(graph, papers, window_days=30)
        vaccines = next(
            node for node in report.nodes if node.label == "Vaccines"
        )
        assert vaccines.age_days == 0
        assert not vaccines.is_stale

    def test_explicit_as_of(self):
        papers = [paper("p", "2021-01-01")]
        graph = fused_graph([("p", None)])
        report = audit_freshness(graph, papers, as_of="2021-12-31",
                                 window_days=30)
        assert report.stale_fraction() == 1.0

    def test_summary_shape(self):
        papers = [paper("p", "2021-01-01")]
        graph = fused_graph([("p", None)])
        summary = audit_freshness(graph, papers).summary()
        assert set(summary) == {
            "as_of", "evidenced_nodes", "unevidenced_nodes",
            "stale_nodes", "stale_fraction", "median_age_days",
        }

    def test_by_category(self):
        papers = [paper("p", "2021-01-01")]
        graph = fused_graph([("p", None)])
        categories = audit_freshness(graph, papers).by_category()
        assert "vaccines" in categories
        assert categories["vaccines"]["nodes"] >= 1

    def test_no_dated_papers_rejected(self):
        with pytest.raises(GraphError):
            audit_freshness(seed_covid_graph(), [])


class TestEndToEnd:
    def test_weekly_ingest_keeps_graph_fresh(self):
        """The paper's loop: continuous enrichment keeps staleness low."""
        generator = CorpusGenerator(GeneratorConfig(
            seed=61, papers_per_week=15, tables_per_paper=(1, 2),
        ))
        graph = seed_covid_graph()
        pipeline = EnrichmentPipeline(
            FusionEngine(graph, NodeMatcher(graph))
        )
        all_papers = []
        for batch in generator.weekly_batches(8):
            pipeline.enrich(batch)
            all_papers.extend(batch)
        report = audit_freshness(graph, all_papers, window_days=35)
        # Continuously-updated categories stay fresh.
        assert report.stale_fraction() < 0.5
        vaccines = report.by_category()["vaccines"]
        assert (report.as_of - vaccines["newest"]).days <= 14

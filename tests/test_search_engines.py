"""Integration tests for the three advanced search engines."""

import pytest

from repro.corpus.generator import CorpusGenerator, GeneratorConfig
from repro.errors import QueryError
from repro.search.all_fields import AllFieldsEngine
from repro.search.engine import PAGE_SIZE
from repro.search.table_search import TableSearchEngine
from repro.search.title_abstract import TitleAbstractCaptionEngine

HAND_PAPERS = [
    {
        "paper_id": "p-masks",
        "title": "Masks prevent transmission in hospitals",
        "abstract": "Cloth masks and respirators reduce aerosol spread.",
        "authors": [{"first": "A", "last": "Chen"}],
        "publish_time": "2021-03-01",
        "journal": "JAMA",
        "body_text": [{"section": "Results",
                       "text": "Mask mandates lowered infection rates."}],
        "tables": [],
        "figures": [{"caption": "Figure 1: mask effectiveness by type"}],
    },
    {
        "paper_id": "p-vent",
        "title": "Ventilator allocation strategies",
        "abstract": "ICU ventilators were scarce in the first wave.",
        "authors": [{"first": "B", "last": "Khan"}],
        "publish_time": "2020-05-01",
        "journal": "BMJ",
        "body_text": [{"section": "Methods",
                       "text": "We modeled ventilator demand."}],
        "tables": [
            {
                "caption": "Table: Ventilator usage by ICU",
                "table_id": "t0",
                "rows": [
                    {"cells": [{"text": "ICU"}, {"text": "Ventilators"}],
                     "is_metadata": True},
                    {"cells": [{"text": "North"}, {"text": "12"}]},
                    {"cells": [{"text": "South"}, {"text": "7"}]},
                ],
            },
        ],
        "figures": [],
    },
    {
        "paper_id": "p-vax",
        "title": "Vaccine efficacy against variants",
        "abstract": "Vaccines remain effective against the Delta variant.",
        "authors": [{"first": "C", "last": "Silva"}],
        "publish_time": "2021-09-01",
        "journal": "Nature Medicine",
        "body_text": [{"section": "Discussion",
                       "text": "Efficacy wanes slowly over months."}],
        "tables": [
            {
                "caption": "Table: Efficacy by vaccine",
                "table_id": "t0",
                "rows": [
                    {"cells": [{"text": "Vaccine"}, {"text": "Efficacy"}],
                     "is_metadata": True},
                    {"cells": [{"text": "Pfizer"}, {"text": "95%"}]},
                ],
            },
        ],
        "figures": [],
    },
]


@pytest.fixture(scope="module")
def all_fields():
    engine = AllFieldsEngine()
    engine.add_papers(HAND_PAPERS)
    return engine


@pytest.fixture(scope="module")
def table_engine():
    engine = TableSearchEngine()
    engine.add_papers(HAND_PAPERS)
    return engine


@pytest.fixture(scope="module")
def tac_engine():
    engine = TitleAbstractCaptionEngine()
    engine.add_papers(HAND_PAPERS)
    return engine


class TestAllFieldsEngine:
    def test_finds_masks_paper(self, all_fields):
        results = all_fields.search("masks")
        assert results.total_matches == 1
        assert results.results[0].paper_id == "p-masks"

    def test_stemming_matches_inflections(self, all_fields):
        # Document says "Ventilator(s)"; query is singular/different form.
        results = all_fields.search("ventilators")
        assert any(r.paper_id == "p-vent" for r in results)

    def test_snippets_highlight_matches(self, all_fields):
        results = all_fields.search("masks")
        snippets = results.results[0].snippets
        assert any("[[" in text for text in snippets.values())

    def test_match_in_figure_caption_found(self, all_fields):
        # "effectiveness" stems to "effect", which also matches the vaccine
        # paper's "effective" — stemming-match widens recall by design.
        results = all_fields.search("effectiveness")
        assert results.total_matches == 2
        masks = next(r for r in results if r.paper_id == "p-masks")
        assert "figure_captions" in masks.snippets

    def test_multi_term_query_requires_all_terms(self, all_fields):
        assert all_fields.search("masks hospitals").total_matches == 1
        assert all_fields.search("masks ventilator").total_matches == 0

    def test_exact_phrase(self, all_fields):
        assert all_fields.search('"aerosol spread"').total_matches == 1
        assert all_fields.search('"spread aerosol"').total_matches == 0

    def test_no_matches(self, all_fields):
        results = all_fields.search("zebra")
        assert results.total_matches == 0
        assert len(results) == 0

    def test_match_stage_runs_first(self, all_fields):
        # The columnar kernel fuses match+score into one stage; the
        # scalar pipeline must still put $match first (paper Section 2.1).
        results = all_fields.search("masks")
        assert results.stage_stats[0].stage.startswith("$columnar")
        all_fields.use_columnar = False
        try:
            results = all_fields.search("masks")
            assert results.stage_stats[0].stage.startswith("$match")
        finally:
            all_fields.use_columnar = True

    def test_pagination(self):
        engine = AllFieldsEngine()
        papers = CorpusGenerator(
            GeneratorConfig(seed=8, tables_per_paper=(0, 1))
        ).papers(40)
        engine.add_papers(papers)
        first = engine.search("covid patients cohort".split()[0], page=1)
        if first.total_matches > PAGE_SIZE:
            assert len(first) == PAGE_SIZE
            second = engine.search("covid", page=2)
            first_ids = {r.paper_id for r in first}
            second_ids = {r.paper_id for r in second}
            assert first_ids.isdisjoint(second_ids)


class TestTitleAbstractCaptionEngine:
    def test_title_only_search(self, tac_engine):
        results = tac_engine.search(title="masks")
        assert results.total_matches == 1
        assert results.results[0].paper_id == "p-masks"

    def test_inclusive_fields_all_must_match(self, tac_engine):
        # "masks" in title yes; "ventilator" in abstract no -> excluded.
        results = tac_engine.search(title="masks", abstract="ventilator")
        assert results.total_matches == 0

    def test_both_fields_match(self, tac_engine):
        results = tac_engine.search(title="vaccine", abstract="delta")
        assert results.total_matches == 1
        assert results.results[0].paper_id == "p-vax"

    def test_caption_search(self, tac_engine):
        results = tac_engine.search(caption="efficacy")
        assert results.total_matches == 1
        assert results.results[0].paper_id == "p-vax"

    def test_result_format_has_title_authors_abstract(self, tac_engine):
        results = tac_engine.search(title="masks")
        snippets = results.results[0].snippets
        assert "title" in snippets
        assert "authors" in snippets
        assert "abstract" in snippets
        assert "Chen" in snippets["authors"]

    def test_no_field_rejected(self, tac_engine):
        with pytest.raises(QueryError):
            tac_engine.search()


class TestTableSearchEngine:
    def test_matches_table_data_cells(self, table_engine):
        results = table_engine.search("Pfizer")
        assert results.total_matches == 1
        tables = results.results[0].extras["tables"]
        assert tables
        flat = [cell for row in tables[0]["rows"] for cell in row]
        assert any("[[Pfizer]]" in cell for cell in flat)

    def test_matches_table_caption(self, table_engine):
        results = table_engine.search("ventilator")
        assert results.total_matches == 1
        assert "[[Ventilator]]" in results.results[0].extras[
            "tables"
        ][0]["caption"]

    def test_body_only_match_is_not_a_table_hit(self, table_engine):
        # "masks" never occurs in any table: engine 3 must not return it.
        assert table_engine.search("masks").total_matches == 0

    def test_tables_ranked_caption_first(self):
        engine = TableSearchEngine()
        paper = dict(HAND_PAPERS[1])
        paper = {**paper, "paper_id": "p-two-tables", "tables": [
            {"caption": "No match here", "table_id": "t0",
             "rows": [{"cells": [{"text": "oxygen"}]}]},
            {"caption": "Oxygen therapy outcomes", "table_id": "t1",
             "rows": [{"cells": [{"text": "nothing"}]}]},
        ]}
        engine.add_paper(paper)
        results = engine.search("oxygen")
        tables = results.results[0].extras["tables"]
        assert tables[0]["table_id"] == "t1"  # caption hit ranks first

    def test_abstract_excerpt_shown_when_matching(self, table_engine):
        results = table_engine.search("ventilators")
        assert "abstract" in results.results[0].snippets


class TestCrossEngineRanking:
    def test_title_match_outranks_body_match(self):
        engine = AllFieldsEngine()
        title_paper = {
            **HAND_PAPERS[0], "paper_id": "in-title",
            "title": "Remdesivir trial outcomes",
            "abstract": "An antiviral study.",
            "body_text": [{"section": "x", "text": "unrelated"}],
            "figures": [],
        }
        body_paper = {
            **HAND_PAPERS[0], "paper_id": "in-body",
            "title": "Unrelated title",
            "abstract": "Nothing specific.",
            "body_text": [{"section": "x",
                           "text": "remdesivir mentioned in passing"}],
            "figures": [],
        }
        engine.add_papers([title_paper, body_paper])
        results = engine.search("remdesivir")
        assert [r.paper_id for r in results] == ["in-title", "in-body"]

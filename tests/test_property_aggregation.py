"""Property-based tests of aggregation-pipeline algebra.

These pin down the algebraic laws the engine must satisfy — the same
laws a query optimizer (like the $match-first rewrite the paper relies
on) silently assumes.
"""

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.docstore.aggregation import aggregate

_docs = st.lists(
    st.fixed_dictionaries({
        "a": st.integers(-10, 10),
        "b": st.integers(0, 5),
        "tag": st.sampled_from(["x", "y", "z"]),
    }),
    max_size=25,
)

_bounds = st.integers(-10, 10)


def _ids(result):
    return [(doc["a"], doc["b"], doc["tag"]) for doc in result.documents]


@given(_docs, _bounds, st.integers(0, 5))
def test_match_then_match_equals_and(docs, a_bound, b_bound):
    """$match(p) | $match(q)  ==  $match(p AND q)."""
    sequential = aggregate(docs, [
        {"$match": {"a": {"$gte": a_bound}}},
        {"$match": {"b": {"$lte": b_bound}}},
    ])
    combined = aggregate(docs, [
        {"$match": {"$and": [{"a": {"$gte": a_bound}},
                             {"b": {"$lte": b_bound}}]}},
    ])
    assert _ids(sequential) == _ids(combined)


@given(_docs, _bounds)
def test_match_commutes_with_addfields_on_untouched_paths(docs, bound):
    """$match on an input field commutes past $addFields of a new field."""
    before = aggregate(docs, [
        {"$match": {"a": {"$gte": bound}}},
        {"$addFields": {"c": {"$add": ["$a", "$b"]}}},
    ])
    after = aggregate(docs, [
        {"$addFields": {"c": {"$add": ["$a", "$b"]}}},
        {"$match": {"a": {"$gte": bound}}},
    ])
    assert before.documents == after.documents


@given(_docs, st.integers(0, 30), st.integers(0, 30))
def test_skip_limit_is_slicing(docs, skip, limit):
    result = aggregate(docs, [
        {"$sort": {"a": 1}},
        {"$skip": skip},
        {"$limit": limit},
    ])
    reference = sorted(docs, key=lambda d: d["a"])[skip:skip + limit]
    assert [doc["a"] for doc in result.documents] == [
        doc["a"] for doc in reference
    ]


@given(_docs)
def test_sort_is_idempotent(docs):
    once = aggregate(docs, [{"$sort": {"a": 1}}])
    twice = aggregate(docs, [{"$sort": {"a": 1}}, {"$sort": {"a": 1}}])
    assert _ids(once) == _ids(twice)


@given(_docs)
def test_sort_is_stable(docs):
    """Equal keys keep their input order (sorted() stability inherited)."""
    result = aggregate(docs, [{"$sort": {"b": 1}}])
    values = [(doc["b"], docs.index(doc)) for doc in result.documents]
    del values  # order checked structurally below
    seen_positions: dict[int, list[int]] = {}
    position_of = {id(doc): i for i, doc in enumerate(docs)}
    del position_of  # documents are copies; compare by key groups instead
    previous_key = None
    for doc in result.documents:
        key = doc["b"]
        assert previous_key is None or key >= previous_key
        seen_positions.setdefault(key, []).append(
            (doc["a"], doc["tag"])
        )
        previous_key = key
    for key, group in seen_positions.items():
        original = [(d["a"], d["tag"]) for d in docs if d["b"] == key]
        assert group == original


@given(_docs)
def test_group_count_equals_sortbycount(docs):
    grouped = aggregate(docs, [
        {"$group": {"_id": "$tag", "count": {"$count": {}}}},
    ])
    by_count = aggregate(docs, [{"$sortByCount": "$tag"}])
    assert sorted(
        (doc["_id"], doc["count"]) for doc in grouped.documents
    ) == sorted(
        (doc["_id"], doc["count"]) for doc in by_count.documents
    )


@given(_docs)
def test_group_sum_partitions_total(docs):
    """Per-group sums add up to the global sum."""
    per_group = aggregate(docs, [
        {"$group": {"_id": "$tag", "total": {"$sum": "$a"}}},
    ])
    assert sum(doc["total"] for doc in per_group.documents) == sum(
        doc["a"] for doc in docs
    )


@given(_docs, _bounds)
def test_count_stage_matches_len(docs, bound):
    counted = aggregate(docs, [
        {"$match": {"a": {"$lt": bound}}},
        {"$count": "n"},
    ])
    matched = aggregate(docs, [{"$match": {"a": {"$lt": bound}}}])
    assert counted.documents[0]["n"] == len(matched.documents)


@given(_docs)
@settings(max_examples=30)
def test_facet_equals_running_pipelines_separately(docs):
    facet = aggregate(docs, [
        {"$facet": {
            "sorted": [{"$sort": {"a": 1}}],
            "counted": [{"$count": "n"}],
        }},
    ]).documents[0]
    assert facet["sorted"] == aggregate(
        docs, [{"$sort": {"a": 1}}]
    ).documents
    assert facet["counted"] == aggregate(
        docs, [{"$count": "n"}]
    ).documents


@given(_docs)
def test_unwind_after_push_roundtrip(docs):
    """$group($push) then $unwind recovers every original value."""
    result = aggregate(docs, [
        {"$group": {"_id": "$tag", "values": {"$push": "$a"}}},
        {"$unwind": "$values"},
    ])
    assert sorted(doc["values"] for doc in result.documents) == sorted(
        doc["a"] for doc in docs
    )

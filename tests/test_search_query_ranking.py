"""Tests for query parsing, ranking features, and snippets."""

import pytest
from hypothesis import given
from hypothesis import strategies as st

from repro.errors import QueryError
from repro.search.query import (
    field_match_filter,
    match_filter,
    parse_query,
)
from repro.search.ranking import RankingFunction, min_window
from repro.search.snippets import highlight, snippet
from repro.docstore.matching import matches
from repro.text.stemmer import stem
from repro.text.tfidf import TfIdfModel
from repro.text.tokenizer import tokenize


class TestParseQuery:
    def test_loose_terms_are_stemmed_patterns(self):
        parsed = parse_query("masks")
        assert parsed.terms[0].exact is False
        assert parsed.terms[0].regex().search("Masking policies")
        assert parsed.terms[0].regex().search("masks")

    def test_quoted_phrase_is_exact(self):
        parsed = parse_query('"mechanical ventilation"')
        term = parsed.terms[0]
        assert term.exact is True
        assert term.regex().search("under mechanical ventilation care")
        assert not term.regex().search("mechanical and ventilation")

    def test_exact_does_not_match_inflections(self):
        parsed = parse_query('"mask"')
        assert not parsed.terms[0].regex().search("masks")

    def test_empty_query_rejected(self):
        with pytest.raises(QueryError):
            parse_query("   ")

    def test_words_property_splits_phrases(self):
        parsed = parse_query('icu "oxygen support"')
        assert parsed.words == ["icu", "oxygen", "support"]


class TestMatchFilter:
    DOC = {"search": {"title": "Masks reduce transmission",
                      "abstract": "We study respirators."}}

    def test_single_term_any_field(self):
        parsed = parse_query("masks")
        filt = match_filter(parsed, ["search.title", "search.abstract"])
        assert matches(self.DOC, filt)

    def test_and_across_terms(self):
        parsed = parse_query("masks respirators")
        filt = match_filter(parsed, ["search.title", "search.abstract"])
        assert matches(self.DOC, filt)
        missing = parse_query("masks ventilators")
        filt2 = match_filter(missing, ["search.title", "search.abstract"])
        assert not matches(self.DOC, filt2)

    def test_field_filter_inclusive_semantics(self):
        parsed = parse_query("masks ventilators")
        # At least ONE term must hit the given field.
        assert matches(self.DOC, field_match_filter(parsed, "search.title"))
        absent = parse_query("ventilators oxygen")
        assert not matches(
            self.DOC, field_match_filter(absent, "search.title")
        )


class TestMinWindow:
    def test_adjacent_terms(self):
        assert min_window([[0], [1]]) == 2

    def test_far_terms(self):
        assert min_window([[0], [10]]) == 11

    def test_picks_best_combination(self):
        assert min_window([[0, 50], [51], [49]]) == 3

    def test_missing_term_returns_none(self):
        assert min_window([[0], []]) is None

    def test_single_term(self):
        assert min_window([[5, 9]]) == 1


class TestRankingFunction:
    def build(self, documents):
        tfidf = TfIdfModel()
        for text in documents:
            tfidf.add_document_tokens(stem(t) for t in tokenize(text))
        return RankingFunction(tfidf)

    def test_title_outweighs_body(self):
        ranking = self.build(["masks work", "other text entirely"])
        parsed = parse_query("masks")
        doc_title = {"search": {"title": "masks work", "body": ""}}
        doc_body = {"search": {"title": "", "body": "masks work"}}
        assert ranking.score(parsed, doc_title) > ranking.score(
            parsed, doc_body
        )

    def test_proximity_rewards_adjacency(self):
        ranking = self.build(["oxygen support needed"])
        parsed = parse_query("oxygen support")
        near = "oxygen support was provided immediately on arrival"
        far = ("oxygen was administered early and later additional "
               "breathing support was provided")
        assert ranking.proximity_bonus(parsed, near) > (
            ranking.proximity_bonus(parsed, far)
        )

    def test_static_score_rewards_recent_and_tables(self):
        ranking = self.build(["x"])
        older = {"static_rank": {"year": 2020, "num_tables": 0}}
        newer = {"static_rank": {"year": 2022, "num_tables": 3}}
        assert ranking.static_score(newer) > ranking.static_score(older)

    def test_rare_term_scores_higher_than_common(self):
        ranking = self.build(["masks masks", "masks again", "ventilator"])
        parsed_rare = parse_query("ventilator")
        parsed_common = parse_query("masks")
        doc = {"search": {"title": "masks ventilator", "body": ""}}
        assert ranking.score(parsed_rare, doc) > ranking.score(
            parsed_common, doc
        )


class TestSnippets:
    def test_highlight_wraps_matches(self):
        parsed = parse_query("masks")
        assert highlight("Masks matter", parsed) == "[[Masks]] matter"

    def test_snippet_centers_on_match(self):
        parsed = parse_query("ventilator")
        text = ("x " * 100) + "the ventilator worked" + (" y" * 100)
        excerpt = snippet(text, parsed)
        assert "[[ventilator]]" in excerpt
        assert excerpt.startswith("...")
        assert excerpt.endswith("...")
        assert len(excerpt) < 260

    def test_snippet_empty_when_no_match(self):
        parsed = parse_query("absentterm")
        assert snippet("nothing to see here", parsed) == ""

    def test_snippet_preserves_whole_words(self):
        parsed = parse_query("needle")
        text = "supercalifragilistic needle expialidocious"
        excerpt = snippet(text, parsed, radius=3)
        assert "supercalifragilistic" in excerpt


@given(st.lists(st.lists(st.integers(0, 50), min_size=1, max_size=5),
                min_size=1, max_size=4))
def test_min_window_bounds(positions):
    window = min_window(positions)
    assert window is not None
    flat = [p for ps in positions for p in ps]
    assert 1 <= window <= max(flat) - min(flat) + 1

"""The columnar ranking kernels: byte-identity, BM25, invalidation.

The contract under test is strict: for every query the kernel accepts,
the result page must be *byte-identical* to the scalar ``$function``
pipeline — same paper ids, same float scores (not approximately: the
kernel reproduces the scalar arithmetic op for op), same tie-break
order.  Queries the kernel cannot express must fall back to the scalar
path silently.
"""

from __future__ import annotations

import math
import os
import random

import pytest

from repro.docstore.executor import (
    KIND_ENV,
    WIDTH_ENV,
    shutdown_executor,
    shutdown_process_executor,
)
from repro.docstore.functions import FunctionRegistry
from repro.search import columnar
from repro.search.all_fields import AllFieldsEngine
from repro.search.query import parse_query
from repro.search.ranking import (
    BM25RankingFunction,
    FieldLengthStats,
    RankingFunction,
    bm25_idf,
)
from repro.search.table_search import TableSearchEngine
from repro.search.title_abstract import TitleAbstractCaptionEngine
from repro.text.tfidf import TfIdfModel

pytestmark = pytest.mark.skipif(
    not columnar.HAVE_NUMPY, reason="columnar kernels require numpy"
)

WORDS = ("covid vaccine vaccinated spike protein trial mask masks "
         "transmission antibody variant lockdown serology genome "
         "mutation immunity dose efficacy symptom fever cough "
         "hospital icu").split()

QUERIES = [
    "covid",                 # single common term
    "vaccine trial",         # multi-term, proximity bonus in play
    "mask transmission icu", # three terms, sparse co-occurrence
    "vaccin",                # stem that prefixes many corpus words
    "zebra",                 # no matches at all
    "covid-19",              # punctuation: must fall back, still agree
    "19",                    # numeric term
]


def _make_paper(rng: random.Random, i: int) -> dict:
    def text(n):
        return " ".join(rng.choice(WORDS) for _ in range(n))
    return {
        "paper_id": f"p{i:05d}",
        "title": text(rng.randint(3, 8)),
        "abstract": text(rng.randint(10, 40)),
        "body_text": [{"section": "s", "text": text(rng.randint(20, 90))}],
        "publish_time": f"20{rng.randint(19, 22)}-01-01",
        "journal": "J",
        "authors": [{"first": "A", "last": "B"}],
        "tables": [{"table_id": f"t{i}", "caption": text(4),
                    "rows": [{"cells": [{"text": text(2)}]}]}]
        if rng.random() < 0.5 else [],
        "figures": [{"caption": text(3)}] if rng.random() < 0.5 else [],
    }


def _build(engine_cls, num_shards, num_papers=120, seed=11, **kwargs):
    rng = random.Random(seed)
    engine = engine_cls(FunctionRegistry(), num_shards=num_shards,
                        **kwargs)
    for i in range(num_papers):
        engine.add_paper(_make_paper(rng, i))
    return engine


def _page(results):
    return [(hit.paper_id, hit.score) for hit in results.results]


def _stages(results):
    return [stats.stage for stats in results.stage_stats]


# -- differential: kernel vs scalar vs full sort ---------------------------

@pytest.mark.parametrize("num_shards", [1, 3])
@pytest.mark.parametrize("ranker", ["tfidf", "bm25"])
def test_kernel_is_byte_identical_to_scalar(num_shards, ranker):
    engine = _build(AllFieldsEngine, num_shards, ranker=ranker)
    for query in QUERIES:
        for page in (1, 2):
            kernel = engine.search(query, page=page)
            engine.use_columnar = False
            scalar = engine.search(query, page=page)
            engine.full_sort = True
            reference = engine.search(query, page=page)
            engine.full_sort = False
            engine.use_columnar = True

            assert _page(kernel) == _page(scalar), (query, page)
            assert _page(kernel) == _page(reference), (query, page)
            assert kernel.total_matches == scalar.total_matches


def test_kernel_engages_for_plain_queries():
    engine = _build(AllFieldsEngine, 2)
    results = engine.search("covid vaccine")
    assert any("columnar" in stage for stage in _stages(results))
    # The stage advertises the active ranker.
    assert "$columnar(tfidf)" in _stages(results)


def test_title_abstract_and_table_engines_take_the_kernel():
    for engine_cls, kwargs in [
        (TableSearchEngine, {}),
        (TitleAbstractCaptionEngine, {}),
    ]:
        engine = _build(engine_cls, 2, **kwargs)
        if engine_cls is TitleAbstractCaptionEngine:
            kernel = engine.search(title="covid", abstract="vaccine trial")
            engine.use_columnar = False
            scalar = engine.search(title="covid", abstract="vaccine trial")
        else:
            kernel = engine.search("covid protein")
            engine.use_columnar = False
            scalar = engine.search("covid protein")
        engine.use_columnar = True
        assert any("columnar" in stage for stage in _stages(kernel))
        assert _page(kernel) == _page(scalar)


# -- fallback: queries the kernel cannot express ---------------------------

def test_quoted_phrase_falls_back_to_scalar():
    engine = _build(AllFieldsEngine, 2)
    results = engine.search('"vaccine trial"')
    assert not any("columnar" in stage for stage in _stages(results))
    engine.use_columnar = False
    assert _page(engine.search('"vaccine trial"')) == _page(results)


def test_expander_falls_back_to_scalar():
    class FakeExpander:
        def expand(self, term):
            return [("immunization", 0.5)] if term == "vaccine" else []

    engine = _build(AllFieldsEngine, 2)
    engine.expander = FakeExpander()
    engine.ranking.expander = engine.expander
    results = engine.search("vaccine")
    assert not any("columnar" in stage for stage in _stages(results))


def test_custom_ranking_subclass_falls_back_to_scalar():
    engine = _build(AllFieldsEngine, 2)

    class Doubled(RankingFunction):
        def _word_score(self, tf, dl, avgdl, planned):
            return 2.0 * super()._word_score(tf, dl, avgdl, planned)

    engine.ranking = Doubled(engine.tfidf)
    results = engine.search("covid")
    assert not any("columnar" in stage for stage in _stages(results))


def test_full_sort_disables_the_kernel():
    engine = _build(AllFieldsEngine, 1)
    engine.full_sort = True
    results = engine.search("covid")
    assert not any("columnar" in stage for stage in _stages(results))


# -- BM25 golden values ----------------------------------------------------

def test_bm25_word_score_matches_hand_computation():
    """One word, one field: the score is the textbook formula, exactly."""
    model = TfIdfModel()
    model.add_document_tokens(["vaccin", "trial", "covid"])
    model.add_document_tokens(["vaccin", "vaccin", "mask"])
    model.add_document_tokens(["covid", "mask", "fever"])
    stats = FieldLengthStats()
    for length in (3, 3, 3):
        stats.observe("search.title", length)
        stats.add_document()

    k1, b = 1.2, 0.6
    ranking = BM25RankingFunction(
        model, {"search.title": 1.0}, stats=stats, k1=k1, b=b,
    )
    document = {"search": {"title": "vaccine vaccinated trial"}}
    score = ranking.score(parse_query("vaccine"), document,
                          ["search.title"])

    # Hand-computed: stem("vaccine") = stem("vaccinated") = "vaccin",
    # so tf = 2 in a field of length dl = 3 with avgdl = 3.
    tf, dl, avgdl = 2, 3, 3.0
    idf = math.log(1.0 + (3 - 2 + 0.5) / (2 + 0.5))
    norm = k1 * (1.0 - b + b * (dl / avgdl))
    word = idf * (tf * (k1 + 1.0)) / (tf + norm)
    # Single-term query: no proximity bonus.  No static_rank: the
    # static score defaults to recency(2020) = 1.0, weighted by 0.1.
    assert score == word + 0.1 * 1.0


def test_bm25_idf_golden_values():
    assert bm25_idf(100, 1) == math.log(1.0 + 99.5 / 1.5)
    assert bm25_idf(100, 100) == math.log(1.0 + 0.5 / 100.5)
    assert bm25_idf(3, 2) == math.log(1.0 + 1.5 / 2.5)


def test_bm25_engine_ranks_by_the_same_formula():
    """End to end: the engine's BM25 page ordering is reproducible."""
    engine = _build(AllFieldsEngine, 1, num_papers=50, ranker="bm25",
                    bm25_k1=1.2, bm25_b=0.5)
    assert engine.ranking.k1 == 1.2 and engine.ranking.b == 0.5
    results = engine.search("vaccine trial")
    assert "$columnar(bm25)" in _stages(results)
    scores = [hit.score for hit in results.results]
    assert scores == sorted(scores, reverse=True)
    # Rescore the top hit through the scalar ranking function.
    top = results.results[0]
    documents = engine.collection.find(
        {"paper_id": top.paper_id}
    ).to_list()
    expected = engine.ranking.score(
        parse_query("vaccine trial"), documents[0],
        list(engine.ranking.field_weights),
    )
    assert top.score == expected


def test_tfidf_and_bm25_disagree_on_order_eventually():
    """The knob is real: the two rankers are not the same function."""
    tfidf_engine = _build(AllFieldsEngine, 1, ranker="tfidf")
    bm25_engine = _build(AllFieldsEngine, 1, ranker="bm25")
    tfidf_scores = _page(tfidf_engine.search("vaccine trial"))
    bm25_scores = _page(bm25_engine.search("vaccine trial"))
    assert [s for _, s in tfidf_scores] != [s for _, s in bm25_scores]


def test_unknown_ranker_is_rejected():
    from repro.errors import QueryError
    with pytest.raises(QueryError):
        AllFieldsEngine(FunctionRegistry(), ranker="pagerank")


# -- invalidation on docstore mutation -------------------------------------

def test_index_is_reused_until_the_store_moves():
    engine = _build(AllFieldsEngine, 2, num_papers=40)
    engine.search("covid")
    first = engine._columnar_index()
    engine.search("vaccine")
    assert engine._columnar_index() is first


def test_mutation_invalidates_and_new_documents_rank():
    engine = _build(AllFieldsEngine, 2, num_papers=40)
    engine.search("covid")
    stale = engine._columnar_index()

    rng = random.Random(99)
    paper = _make_paper(rng, 9999)
    paper["title"] = "zebra zebra zebra"
    engine.add_paper(paper)

    results = engine.search("zebra")
    assert engine._columnar_index() is not stale
    assert any(hit.paper_id == "p09999" for hit in results.results)
    engine.use_columnar = False
    assert _page(engine.search("zebra")) == _page(results)


# -- query-spec mechanics --------------------------------------------------

def test_query_spec_is_picklable():
    import pickle

    engine = _build(AllFieldsEngine, 1, num_papers=30)
    parsed = parse_query("covid vaccine")
    from repro.search.indexing import ALL_SEARCH_FIELDS
    spec = columnar.build_query_spec(
        parsed,
        columnar.MatchPlan.terms_over_fields(parsed, ALL_SEARCH_FIELDS),
        ALL_SEARCH_FIELDS,
        engine.ranking,
        set(ALL_SEARCH_FIELDS),
    )
    assert spec is not None
    assert pickle.loads(pickle.dumps(spec)) == spec


def test_spec_rejected_for_unfitted_model():
    engine = AllFieldsEngine(FunctionRegistry())
    parsed = parse_query("covid")
    from repro.search.indexing import ALL_SEARCH_FIELDS
    spec = columnar.build_query_spec(
        parsed,
        columnar.MatchPlan.terms_over_fields(parsed, ALL_SEARCH_FIELDS),
        ALL_SEARCH_FIELDS,
        engine.ranking,
        set(ALL_SEARCH_FIELDS),
    )
    assert spec is None


# -- process-pool executor -------------------------------------------------

def test_process_mode_matches_thread_mode(monkeypatch):
    engine = _build(AllFieldsEngine, 3, num_papers=60)
    thread_pages = [_page(engine.search(q)) for q in QUERIES[:3]]

    monkeypatch.setenv(KIND_ENV, "process")
    monkeypatch.setenv(WIDTH_ENV, "2")
    try:
        process_pages = [_page(engine.search(q)) for q in QUERIES[:3]]
        # Warm worker cache: a second pass must agree too.
        warm_pages = [_page(engine.search(q)) for q in QUERIES[:3]]
    finally:
        shutdown_process_executor()
        monkeypatch.delenv(KIND_ENV, raising=False)
        monkeypatch.delenv(WIDTH_ENV, raising=False)
        shutdown_executor()
    assert process_pages == thread_pages
    assert warm_pages == thread_pages


def test_executor_kind_defaults_to_threads():
    from repro.docstore.executor import executor_kind
    assert os.environ.get(KIND_ENV) is None
    assert executor_kind() == "thread"


# -- delta segments and the snapshot-atomicity regression ------------------

def _append_papers(engine, start, count, seed=77, title=None):
    rng = random.Random(seed)
    for i in range(start, start + count):
        paper = _make_paper(rng, i)
        if title is not None:
            paper["title"] = title
        engine.add_paper(paper)


def test_append_only_mutation_extends_into_delta_segments():
    engine = _build(AllFieldsEngine, 2, num_papers=60)
    engine.search("covid")
    base = engine._columnar_index()
    assert base.delta_segments == 0

    _append_papers(engine, 60, 15)
    kernel_pages = [_page(engine.search(q)) for q in QUERIES]
    extended = engine._columnar_index()

    # Incremental, not a rebuild: same worker-cache key, base segment
    # arrays shared, only the 15 new rows tokenized into deltas.
    assert extended is not base
    assert extended.key == base.key
    assert extended.delta_segments > 0
    assert extended.delta_rows == 15
    assert extended.num_rows == 75

    # Byte identity against the scalar path and an offline rebuild.
    engine.use_columnar = False
    assert [_page(engine.search(q)) for q in QUERIES] == kernel_pages
    engine.use_columnar = True
    offline = _build(AllFieldsEngine, 2, num_papers=60)
    _append_papers(offline, 60, 15)
    offline._columnar = None  # force a from-scratch build
    assert [_page(offline.search(q)) for q in QUERIES] == kernel_pages


def test_merge_segments_is_byte_identical_to_delta_serving():
    engine = _build(AllFieldsEngine, 3, num_papers=50)
    engine.search("covid")
    _append_papers(engine, 50, 12)
    with_deltas = [_page(engine.search(q)) for q in QUERIES]
    assert engine.delta_rows == 12

    assert engine.merge_segments() is True
    merged = engine._columnar_index()
    assert merged.delta_segments == 0
    assert engine.delta_rows == 0
    assert [_page(engine.search(q)) for q in QUERIES] == with_deltas
    # Idempotent: nothing left to fold.
    assert engine.merge_segments() is False


def test_non_append_mutations_rebuild_instead_of_extending():
    engine = _build(AllFieldsEngine, 2, num_papers=40)
    engine.search("covid")
    base = engine._columnar_index()
    # A version bump without a matching document append — the
    # lockstep heuristic must refuse to extend.
    engine.collection.advance_version(engine.collection.version + 5)
    engine.search("covid")
    rebuilt = engine._columnar_index()
    assert rebuilt is not base
    assert rebuilt.delta_segments == 0


def test_mutation_between_snapshot_and_kernel_serves_one_generation(
        monkeypatch):
    """Regression: the stamp and the arrays must be captured together.

    A writer landing between the eligibility check and the kernel run
    used to let one request mix generations (pre-mutation arrays,
    post-mutation stamp).  The pipeline now takes one immutable
    ``(columns, stamp)`` snapshot up front; a mutation mid-request
    leaves the in-flight page byte-identical to the pre-mutation
    answer.
    """
    engine = _build(AllFieldsEngine, 2, num_papers=40)
    baseline = engine.search("covid")
    real_rank = AllFieldsEngine._rank_columnar
    fired = []

    def racy_rank(self, index, spec, skip, top_k):
        if not fired:
            fired.append(True)
            # The worst-case writer: lands after the snapshot was
            # taken, before the kernel reads a single row.
            _append_papers(self, 8000, 3, seed=5,
                           title="covid covid covid covid")
        return real_rank(self, index, spec, skip, top_k)

    monkeypatch.setattr(AllFieldsEngine, "_rank_columnar", racy_rank)
    racy = engine.search("covid")
    monkeypatch.setattr(AllFieldsEngine, "_rank_columnar", real_rank)

    assert fired  # the mutation really was injected mid-request
    assert _page(racy) == _page(baseline)
    assert racy.total_matches == baseline.total_matches

    # The *next* request sees the new generation, ranked identically
    # to the scalar path.
    fresh = engine.search("covid")
    assert any(hit.paper_id == "p08000" for hit in fresh.results)
    engine.use_columnar = False
    assert _page(engine.search("covid")) == _page(fresh)

"""Tests for the frequency-ranked Vocabulary feature space."""

import pytest
from hypothesis import given
from hypothesis import strategies as st

from repro.errors import ModelError
from repro.text.vocabulary import UNKNOWN_INDEX, UNKNOWN_TOKEN, Vocabulary


def build(texts, **kwargs):
    return Vocabulary.from_texts(texts, **kwargs)


class TestConstruction:
    def test_frequency_order(self):
        vocab = build(["cough cough cough fever fever rash"],
                      drop_stopwords=False)
        assert vocab.term_at(1) == "cough"
        assert vocab.term_at(2) == "fever"
        assert vocab.term_at(3) == "rash"

    def test_index_zero_is_unknown(self):
        vocab = build(["fever"])
        assert vocab.term_at(UNKNOWN_INDEX) == UNKNOWN_TOKEN
        assert vocab.index_of("neverseen") == UNKNOWN_INDEX

    def test_stopwords_dropped_by_default(self):
        vocab = build(["the the the fever"])
        assert "the" not in vocab
        assert "fever" in vocab

    def test_stopwords_kept_when_disabled(self):
        vocab = build(["the fever"], drop_stopwords=False)
        assert "the" in vocab

    def test_max_terms_cutoff(self):
        texts = [" ".join(f"term{i}" for i in range(100))]
        vocab = build(texts, max_terms=11)
        assert len(vocab) == 11  # 10 terms + UNK

    def test_min_count_cutoff(self):
        vocab = build(["common common rare"], min_count=2)
        assert "common" in vocab
        assert "rare" not in vocab

    def test_invalid_max_terms(self):
        with pytest.raises(ModelError):
            Vocabulary(max_terms=0)


class TestEncode:
    def test_encode_roundtrip(self):
        vocab = build(["fever cough fever"])
        encoded = vocab.encode("fever cough unknownword")
        assert encoded[0] == vocab.index_of("fever")
        assert encoded[1] == vocab.index_of("cough")
        assert encoded[2] == UNKNOWN_INDEX

    def test_encode_before_build_raises(self):
        vocab = Vocabulary()
        vocab.add_text("fever")
        with pytest.raises(ModelError):
            vocab.encode("fever")

    def test_encode_is_case_insensitive(self):
        vocab = build(["Fever"])
        assert vocab.index_of("FEVER") == vocab.index_of("fever")


class TestTruncated:
    def test_truncation_keeps_most_frequent_prefix(self):
        vocab = build(["a1 a1 a1 b2 b2 c3"], drop_stopwords=False)
        small = vocab.truncated(2)  # UNK + 1 term
        assert len(small) == 2
        assert small.term_at(1) == "a1"

    def test_truncation_preserves_counts(self):
        vocab = build(["x9 x9 y8"])
        small = vocab.truncated(3)
        assert small.count_of("x9") == 2


@given(st.lists(st.text(alphabet="abcdef", min_size=1, max_size=5),
                min_size=1, max_size=50))
def test_indexes_are_dense_and_unique(tokens):
    vocab = Vocabulary(drop_stopwords=False)
    vocab.add_tokens(tokens)
    vocab.build()
    indexes = [vocab.index_of(t) for t in set(tokens)]
    assert sorted(indexes) == list(range(1, len(set(tokens)) + 1))


@given(st.lists(st.text(alphabet="abcdef", min_size=1, max_size=5),
                min_size=1, max_size=50),
       st.integers(min_value=1, max_value=20))
def test_truncated_is_prefix_of_full(tokens, cutoff):
    vocab = Vocabulary(drop_stopwords=False)
    vocab.add_tokens(tokens)
    vocab.build()
    small = vocab.truncated(cutoff)
    for index in range(1, len(small)):
        assert small.term_at(index) == vocab.term_at(index)

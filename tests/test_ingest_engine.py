"""IngestEngine: commit, quality gate, rollback, crash replay, merge.

The recurring assertion here is **byte identity**: after any recovery
path (rollback, crash replay, background merge) the system must answer
queries with pages identical to a reference system that never took the
detour.
"""

import pytest

from repro.api.system import CovidKG, CovidKGConfig
from repro.corpus.generator import CorpusGenerator, GeneratorConfig
from repro.errors import IngestRejectedError, SnapshotNotFoundError
from repro.ingest.engine import IngestEngine
from repro.ingest.snapshots import system_versions

QUERIES = ["covid vaccine", "antibody response", "clinical trial",
           "side effects"]


def _corpus(count):
    return CorpusGenerator(GeneratorConfig(
        seed=41, papers_per_week=20, tables_per_paper=(1, 2),
    )).papers(count)


def _fresh_system(papers):
    system = CovidKG(CovidKGConfig(num_shards=2))
    if papers:
        system.ingest(papers)
    return system


def _pages(system):
    """Full result pages for every probe query — the identity probe."""
    pages = {}
    for query in QUERIES:
        results = system.search(query, page=1)
        pages[query] = [
            (hit.paper_id, hit.score, hit.title, tuple(
                sorted(hit.snippets.items())))
            for hit in results
        ] + [("total", results.total_matches)]
    pages["kg"] = [
        (hit.node.label, hit.score) for hit in
        system.search_graph("side effects", top_k=8)
    ]
    return pages


@pytest.fixture(scope="module")
def corpus():
    return _corpus(50)


class TestCommit:
    def test_receipt_and_visibility(self, corpus, tmp_path):
        system = _fresh_system(corpus[:30])
        before = system.search("covid", page=1).total_matches
        with IngestEngine(system, tmp_path) as engine:
            receipt = engine.commit_batch(corpus[30:40])
            assert receipt.accepted == 10
            assert receipt.seq == 1
            assert receipt.snapshot == "batch-000001"
            assert receipt.batch_id == "ingest-000001"
            assert receipt.versions == system_versions(system)
            after = system.search("covid", page=1).total_matches
            assert after >= before
            assert len(system.store) == 40

    def test_quality_gate_rejects_batch_atomically(self, corpus,
                                                   tmp_path):
        system = _fresh_system(corpus[:20])
        bad = dict(corpus[25])
        bad.pop("abstract")
        with IngestEngine(system, tmp_path) as engine:
            with pytest.raises(IngestRejectedError) as info:
                engine.commit_batch([corpus[20], bad, corpus[21]])
            rejects = info.value.rejects
            assert len(rejects) == 1
            assert rejects[0]["paper_id"] == bad["paper_id"]
            # All-or-nothing: the two valid papers did not land either.
            assert len(system.store) == 20
            assert engine.wal.segment_paths() == []

    def test_malformed_table_rows_rejected(self, corpus, tmp_path):
        system = _fresh_system(corpus[:5])
        bad = dict(corpus[10])
        bad["tables"] = [{"caption": "c", "rows": "not-a-list"}]
        with IngestEngine(system, tmp_path) as engine:
            with pytest.raises(IngestRejectedError):
                engine.commit_batch([bad])

    def test_store_duplicates_preflighted(self, corpus, tmp_path):
        system = _fresh_system(corpus[:20])
        with IngestEngine(system, tmp_path) as engine:
            with pytest.raises(IngestRejectedError) as info:
                engine.commit_batch([corpus[19], corpus[20]])
            assert info.value.rejects[0]["paper_id"] == \
                corpus[19]["paper_id"]
            # The duplicate was caught before anything was logged or
            # applied: the valid paper did not sneak in.
            assert len(system.store) == 20
            assert engine.wal.replay().batches == []

    def test_skip_duplicates_reports_actual_insertions(self, corpus,
                                                       tmp_path):
        system = _fresh_system(corpus[:20])
        with IngestEngine(system, tmp_path) as engine:
            receipt = engine.commit_batch(corpus[15:25],
                                          skip_duplicates=True)
            assert receipt.accepted == 5  # 5 were redeliveries
            assert len(system.store) == 25


class TestRollback:
    def test_rollback_restores_byte_identical_pages(self, corpus,
                                                    tmp_path):
        system = _fresh_system(corpus[:30])
        with IngestEngine(system, tmp_path) as engine:
            engine.commit_batch(corpus[30:40])
            reference = _pages(system)
            engine.commit_batch(corpus[40:50])
            assert _pages(system) != reference  # the batch did change
            snapshot = engine.rollback("batch-000001")
            assert snapshot.seq == 1
            assert _pages(system) == reference
            assert len(system.store) == 40

    def test_rollback_to_base_empties_streamed_corpus(self, corpus,
                                                      tmp_path):
        system = _fresh_system(corpus[:30])
        reference = _pages(system)
        with IngestEngine(system, tmp_path) as engine:
            engine.commit_batch(corpus[30:40])
            engine.rollback("base")
            assert _pages(system) == reference
            assert len(system.store) == 30

    def test_version_counters_never_repeat(self, corpus, tmp_path):
        system = _fresh_system(corpus[:30])
        with IngestEngine(system, tmp_path) as engine:
            engine.commit_batch(corpus[30:40])
            before = system_versions(system)
            engine.rollback("base")
            after = system_versions(system)
            for name, value in after.items():
                assert value > before[name], name

    def test_rollback_drops_newer_snapshots(self, corpus, tmp_path):
        system = _fresh_system(corpus[:30])
        with IngestEngine(system, tmp_path) as engine:
            engine.commit_batch(corpus[30:35])
            engine.commit_batch(corpus[35:40])
            engine.rollback("batch-000001")
            assert "batch-000002" not in engine.snapshots
            with pytest.raises(SnapshotNotFoundError):
                engine.rollback("batch-000002")
            # The sequence resumes from the restore point.
            receipt = engine.commit_batch(corpus[35:40])
            assert receipt.seq == 2

    def test_unknown_snapshot_is_typed_error(self, corpus, tmp_path):
        system = _fresh_system(corpus[:5])
        with IngestEngine(system, tmp_path) as engine:
            with pytest.raises(SnapshotNotFoundError):
                engine.rollback("batch-999999")


class TestCrashReplay:
    def test_replay_reproduces_committed_state(self, corpus, tmp_path):
        system = _fresh_system(corpus[:30])
        with IngestEngine(system, tmp_path) as engine:
            engine.commit_batch(corpus[30:40])
            engine.commit_batch(corpus[40:50])
            reference = _pages(system)

        # "Crash": a brand-new process builds the same base and replays.
        recovered = _fresh_system(corpus[:30])
        with IngestEngine(recovered, tmp_path) as engine:
            assert engine.replay() == 2
            assert _pages(recovered) == reference
            assert len(recovered.store) == 50
            # New batch ids continue past the replayed ones.
            receipt = engine.commit_batch(
                _corpus(55)[50:], skip_duplicates=True)
            assert receipt.batch_id == "ingest-000003"

    def test_replay_honours_logged_rollback(self, corpus, tmp_path):
        system = _fresh_system(corpus[:30])
        with IngestEngine(system, tmp_path) as engine:
            engine.commit_batch(corpus[30:40])
            reference = _pages(system)
            engine.commit_batch(corpus[40:50])
            engine.rollback("batch-000001")

        recovered = _fresh_system(corpus[:30])
        with IngestEngine(recovered, tmp_path) as engine:
            assert engine.replay() == 1
            assert _pages(recovered) == reference

    def test_torn_batch_is_invisible_after_apply_failure(self, corpus,
                                                         tmp_path):
        system = _fresh_system(corpus[:30])
        engine = IngestEngine(system, tmp_path)
        reference = _pages(system)

        original = system.ingest

        def exploding_ingest(papers, skip_duplicates=False):
            # Apply half the batch, then die — the worst-case partial.
            original(papers[:3], skip_duplicates=skip_duplicates)
            raise RuntimeError("simulated crash mid-apply")

        system.ingest = exploding_ingest
        try:
            with pytest.raises(RuntimeError):
                engine.commit_batch(corpus[30:40])
        finally:
            system.ingest = original
            engine.close()
        # Memory was restored from the snapshot...
        assert _pages(system) == reference
        assert len(system.store) == 30
        # ...and the torn WAL batch replays to nothing.
        recovered = _fresh_system(corpus[:30])
        with IngestEngine(recovered, tmp_path) as engine:
            assert engine.replay() == 0
            assert _pages(recovered) == reference


class TestMergeAndCheckpoint:
    def test_merge_is_byte_identical_to_rebuild(self, corpus, tmp_path):
        streamed = _fresh_system(corpus[:30])
        _pages(streamed)  # materialize the base columnar index first
        with IngestEngine(streamed, tmp_path) as engine:
            engine.commit_batch(corpus[30:40])
            engine.commit_batch(corpus[40:50])
            with_deltas = _pages(streamed)
            assert streamed.all_fields.delta_rows > 0
            assert engine.merge_now() >= 1
            assert streamed.all_fields.delta_rows == 0
            assert _pages(streamed) == with_deltas
        # And both equal a system that indexed everything offline.
        offline = _fresh_system(corpus[:50])
        assert _pages(offline) == with_deltas

    def test_background_merge_triggers_past_threshold(self, corpus,
                                                      tmp_path):
        import time

        system = _fresh_system(corpus[:30])
        engine = IngestEngine(system, tmp_path, merge_threshold=5)
        try:
            system.search("covid")  # materialize the columnar index
            engine.commit_batch(corpus[30:40])
            deadline = time.monotonic() + 10.0
            while time.monotonic() < deadline:
                if engine.stats()["merges"] >= 1:
                    break
                time.sleep(0.02)
            assert engine.stats()["merges"] >= 1
            assert system.all_fields.delta_rows == 0
        finally:
            engine.close()

    def test_checkpoint_persists_and_truncates(self, corpus, tmp_path):
        from repro.api.persistence import load_system

        system = _fresh_system(corpus[:30])
        with IngestEngine(system, tmp_path / "ingest") as engine:
            engine.commit_batch(corpus[30:40])
            reference = _pages(system)
            engine.checkpoint(tmp_path / "saved")
            assert engine.wal.segment_paths() == []

        reloaded = load_system(tmp_path / "saved")
        assert _pages(reloaded) == reference

    def test_checkpoint_concurrent_with_commits_loses_nothing(
            self, corpus, tmp_path):
        """Every acknowledged batch survives a restart: it lands in the
        checkpoint or stays in the WAL, never in neither.  (checkpoint
        must hold the write lock across save + truncate, or a commit
        can slip between them and vanish.)"""
        import threading
        import time

        from repro.api.persistence import load_system

        system = _fresh_system(corpus[:10])
        wal_dir = tmp_path / "ingest"
        saved_dir = tmp_path / "saved"
        errors = []
        batches = [corpus[i:i + 2] for i in range(10, 50, 2)]

        def _committer(engine):
            try:
                for batch in batches:
                    engine.commit_batch(batch)
            except Exception as exc:  # pragma: no cover - surfaced below
                errors.append(exc)

        with IngestEngine(system, wal_dir) as engine:
            thread = threading.Thread(target=_committer, args=(engine,))
            thread.start()
            while thread.is_alive():
                engine.checkpoint(saved_dir)
                time.sleep(0.001)
            thread.join()
        assert not errors

        restarted = load_system(saved_dir)
        with IngestEngine(restarted, wal_dir) as recovered:
            recovered.replay()
        for paper in corpus[10:50]:
            assert restarted.store.find_one(
                {"paper_id": paper["paper_id"]}) is not None, (
                f"acknowledged paper {paper['paper_id']} lost across "
                "checkpoint + replay")

    def test_stats_shape(self, corpus, tmp_path):
        system = _fresh_system(corpus[:30])
        with IngestEngine(system, tmp_path) as engine:
            engine.commit_batch(corpus[30:35])
            stats = engine.stats()
            assert stats["seq"] == 1
            assert stats["snapshots"] == ["base", "batch-000001"]
            assert stats["wal_segments"] >= 1
            assert set(stats["delta_rows"]) == \
                {"all_fields", "title_abstract", "table"}

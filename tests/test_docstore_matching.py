"""Tests for the MongoDB-style query language."""

import pytest
from hypothesis import given
from hypothesis import strategies as st

from repro.docstore.matching import (
    equality_constraints,
    matches,
    make_predicate,
    used_paths,
)
from repro.errors import QueryError

DOC = {
    "title": "Vaccine efficacy study",
    "year": 2021,
    "score": 4.5,
    "tags": ["vaccine", "efficacy"],
    "meta": {"venue": "EDBT", "pages": 12},
    "authors": [
        {"name": "smith", "cites": 10},
        {"name": "jones", "cites": 3},
    ],
    "retracted": False,
    "doi": None,
}


class TestEquality:
    def test_literal_match(self):
        assert matches(DOC, {"year": 2021})
        assert not matches(DOC, {"year": 2020})

    def test_nested_path(self):
        assert matches(DOC, {"meta.venue": "EDBT"})

    def test_array_contains(self):
        assert matches(DOC, {"tags": "vaccine"})
        assert not matches(DOC, {"tags": "masks"})

    def test_whole_array_equality(self):
        assert matches(DOC, {"tags": ["vaccine", "efficacy"]})

    def test_none_matches_missing_field(self):
        assert matches(DOC, {"absent": None})
        assert matches(DOC, {"doi": None})

    def test_empty_query_matches_everything(self):
        assert matches(DOC, {})


class TestComparisons:
    def test_gt_gte_lt_lte(self):
        assert matches(DOC, {"year": {"$gt": 2020}})
        assert matches(DOC, {"year": {"$gte": 2021}})
        assert matches(DOC, {"year": {"$lt": 2022}})
        assert matches(DOC, {"year": {"$lte": 2021}})
        assert not matches(DOC, {"year": {"$gt": 2021}})

    def test_ne(self):
        assert matches(DOC, {"year": {"$ne": 1999}})
        assert not matches(DOC, {"year": {"$ne": 2021}})

    def test_in_nin(self):
        assert matches(DOC, {"year": {"$in": [2020, 2021]}})
        assert matches(DOC, {"year": {"$nin": [1999]}})
        assert matches(DOC, {"tags": {"$in": ["vaccine", "zzz"]}})

    def test_in_requires_list(self):
        with pytest.raises(QueryError):
            matches(DOC, {"year": {"$in": 2021}})

    def test_cross_type_comparison_never_matches(self):
        assert not matches(DOC, {"title": {"$gt": 5}})

    def test_range_query(self):
        assert matches(DOC, {"score": {"$gte": 4, "$lt": 5}})

    def test_missing_field_fails_gt(self):
        assert not matches(DOC, {"absent": {"$gt": 0}})

    def test_missing_field_satisfies_ne(self):
        assert matches(DOC, {"absent": {"$ne": 5}})


class TestElementOperators:
    def test_exists(self):
        assert matches(DOC, {"title": {"$exists": True}})
        assert matches(DOC, {"absent": {"$exists": False}})
        assert not matches(DOC, {"absent": {"$exists": True}})

    def test_type(self):
        assert matches(DOC, {"year": {"$type": "int"}})
        assert matches(DOC, {"title": {"$type": "string"}})
        assert matches(DOC, {"tags": {"$type": "array"}})
        assert matches(DOC, {"retracted": {"$type": "bool"}})
        assert not matches(DOC, {"retracted": {"$type": "int"}})

    def test_size(self):
        assert matches(DOC, {"tags": {"$size": 2}})
        assert not matches(DOC, {"tags": {"$size": 3}})


class TestStringAndArray:
    def test_regex(self):
        assert matches(DOC, {"title": {"$regex": "efficacy"}})
        assert matches(DOC, {"title": {"$regex": "VACCINE",
                                       "$options": "i"}})
        assert not matches(DOC, {"title": {"$regex": "^efficacy"}})

    def test_regex_over_array(self):
        assert matches(DOC, {"tags": {"$regex": "^vac"}})

    def test_all(self):
        assert matches(DOC, {"tags": {"$all": ["vaccine", "efficacy"]}})
        assert not matches(DOC, {"tags": {"$all": ["vaccine", "zzz"]}})

    def test_elem_match(self):
        query = {"authors": {"$elemMatch": {"name": "smith",
                                            "cites": {"$gt": 5}}}}
        assert matches(DOC, query)
        bad = {"authors": {"$elemMatch": {"name": "jones",
                                          "cites": {"$gt": 5}}}}
        assert not matches(DOC, bad)


class TestLogical:
    def test_and(self):
        assert matches(DOC, {"$and": [{"year": 2021}, {"meta.venue": "EDBT"}]})

    def test_or(self):
        assert matches(DOC, {"$or": [{"year": 1999}, {"year": 2021}]})
        assert not matches(DOC, {"$or": [{"year": 1999}, {"year": 1998}]})

    def test_nor(self):
        assert matches(DOC, {"$nor": [{"year": 1999}]})
        assert not matches(DOC, {"$nor": [{"year": 2021}]})

    def test_field_not(self):
        assert matches(DOC, {"year": {"$not": {"$lt": 2000}}})
        assert not matches(DOC, {"year": {"$not": {"$gte": 2000}}})

    def test_where(self):
        assert matches(DOC, {"$where": lambda d: d["year"] % 2 == 1})


class TestErrors:
    def test_unknown_operator(self):
        with pytest.raises(QueryError):
            matches(DOC, {"year": {"$bogus": 1}})

    def test_unknown_toplevel_operator(self):
        with pytest.raises(QueryError):
            matches(DOC, {"$bogus": []})

    def test_query_must_be_dict(self):
        with pytest.raises(QueryError):
            matches(DOC, ["not", "a", "dict"])


class TestHelpers:
    def test_make_predicate(self):
        predicate = make_predicate({"year": {"$gte": 2021}})
        assert predicate(DOC)
        assert not predicate({"year": 2000})

    def test_used_paths(self):
        query = {
            "a": 1,
            "$or": [{"b.c": 2}, {"d": {"$gt": 1}}],
        }
        assert used_paths(query) == {"a", "b.c", "d"}

    def test_equality_constraints(self):
        query = {"a": 1, "b": {"$eq": 2}, "c": {"$gt": 3}, "$or": []}
        assert equality_constraints(query) == {"a": 1, "b": 2}


@given(st.integers(), st.integers())
def test_gt_lt_are_consistent(value, bound):
    doc = {"x": value}
    gt = matches(doc, {"x": {"$gt": bound}})
    lte = matches(doc, {"x": {"$lte": bound}})
    assert gt != lte


@given(st.dictionaries(st.sampled_from(["a", "b", "c"]),
                       st.integers(-5, 5), max_size=3),
       st.dictionaries(st.sampled_from(["a", "b", "c"]),
                       st.integers(-5, 5), max_size=3))
def test_literal_query_matches_iff_subset(doc, query):
    expected = all(key in doc and doc[key] == val
                   for key, val in query.items())
    assert matches(doc, query) == expected

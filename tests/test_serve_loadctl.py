"""Adaptive load control: cost gate, fan-out budgets, AIMD controller.

Three layers under test:

* :func:`estimate_pipeline_cost` — the worst-case request pricer the
  serving tier consults before any shard fan-out;
* :class:`FanoutBudget` / :func:`budget_scope` — the per-request cap on
  concurrent fan-out tasks, ambient through the docstore;
* :class:`LoadController` — the AIMD width controller, driven here with
  an injectable clock, plus its end-to-end wiring through
  :class:`QueryService` (cost rejections, budget clamps, stats fields,
  and a width-flip/shutdown stress run that doubles as a race test
  under ``REPRO_RACECHECK=1``).
"""

from __future__ import annotations

import os
import threading
import time

import pytest

from repro.analysis.pipeline_check import estimate_pipeline_cost
from repro.api.system import CovidKG, CovidKGConfig
from repro.corpus.generator import CorpusGenerator, GeneratorConfig
from repro.docstore import executor as executor_module
from repro.docstore.executor import (
    FanoutBudget,
    budget_scope,
    current_budget,
    scatter,
    shutdown_executor,
)
from repro.errors import RequestTooExpensiveError, ServiceOverloadedError
from repro.serve.loadctl import LoadControlConfig, LoadController
from repro.serve.service import QueryService, ServeConfig


@pytest.fixture(autouse=True)
def _fresh_executor(monkeypatch):
    monkeypatch.setenv(executor_module.WIDTH_ENV, "4")
    shutdown_executor()
    yield
    shutdown_executor()


@pytest.fixture(scope="module")
def system():
    papers = CorpusGenerator(GeneratorConfig(
        seed=47, papers_per_week=15, tables_per_paper=(1, 2),
    )).papers(30)
    kg = CovidKG(CovidKGConfig(num_shards=3))
    kg.ingest(papers)
    return kg


# -- cost estimation -------------------------------------------------------

class TestEstimatePipelineCost:
    def test_match_only_costs_one_touch_per_document(self):
        estimate = estimate_pipeline_cost([{"$match": {}}], [10, 20, 30])
        assert estimate.documents_in == 60
        assert estimate.documents_out == 60
        assert estimate.total_cost == 60
        assert [s.stage for s in estimate.stages] == ["$match"]

    def test_bare_int_is_a_single_shard(self):
        assert estimate_pipeline_cost([{"$match": {}}], 25).total_cost == 25

    def test_empty_pipeline_is_free(self):
        estimate = estimate_pipeline_cost([], [100])
        assert estimate.total_cost == 0
        assert estimate.documents_out == estimate.documents_in == 100

    def test_topk_sort_prices_below_full_sort(self):
        full = estimate_pipeline_cost([{"$sort": {"score": -1}}], [1000])
        topk = estimate_pipeline_cost(
            [{"$sort": {"score": -1}}, {"$limit": 10}], [1000]
        )
        assert topk.total_cost < full.total_cost
        assert topk.documents_out == 10
        assert topk.stages[0].stage == "$sort(top-k)"
        # The folded $limit is priced inside the sort stage.
        assert len(topk.stages) == 1

    def test_skip_and_limit_both_fold_into_topk(self):
        estimate = estimate_pipeline_cost(
            [{"$sort": {"score": -1}}, {"$skip": 10}, {"$limit": 10}],
            [500],
        )
        assert len(estimate.stages) == 1
        assert estimate.documents_out == 10

    def test_function_stage_carries_its_factor(self):
        estimate = estimate_pipeline_cost(
            [{"$function": {"name": "rank", "as": "score"}}], [100]
        )
        assert estimate.total_cost == pytest.approx(400.0)
        assert estimate.documents_out == 100

    def test_unwind_fans_documents_out(self):
        estimate = estimate_pipeline_cost([{"$unwind": "$tables"}], [100])
        assert estimate.documents_out > 100

    def test_count_collapses_to_one_document(self):
        estimate = estimate_pipeline_cost([{"$count": "n"}], [10])
        assert estimate.documents_out == 1

    def test_facet_replays_input_per_subpipeline(self):
        estimate = estimate_pipeline_cost(
            [{"$facet": {"a": [{"$match": {}}], "b": [{"$match": {}}]}}],
            [50],
        )
        assert estimate.total_cost == pytest.approx(150.0)  # 50 + 50 + 50
        assert estimate.documents_out == 1

    def test_search_pipeline_shape_prices_end_to_end(self, system):
        engine = system.all_fields
        estimate = estimate_pipeline_cost(
            engine.pipeline_plan(page=1), engine.shard_document_counts()
        )
        assert estimate.documents_in == len(system.store)
        assert estimate.total_cost > estimate.documents_in
        assert estimate.documents_out <= 10  # one page


# -- fan-out budgets -------------------------------------------------------

class TestFanoutBudget:
    def test_grant_within_limit_is_free(self):
        budget = FanoutBudget(4)
        assert budget.grant(3) == 3
        assert budget.clamps == 0

    def test_grant_clamps_and_reports(self):
        clamped: list[tuple[int, int]] = []
        budget = FanoutBudget(2, on_clamp=lambda r, g: clamped.append((r, g)))
        assert budget.grant(5) == 2
        assert budget.clamps == 1
        assert clamped == [(5, 2)]

    def test_nonpositive_limit_rejected(self):
        with pytest.raises(ValueError):
            FanoutBudget(0)
        with pytest.raises(ValueError):
            FanoutBudget(-1)

    def test_budget_scope_is_ambient_and_nests(self):
        outer = FanoutBudget(3)
        assert current_budget() is None
        with budget_scope(outer):
            assert current_budget() is outer
            with budget_scope(None):
                assert current_budget() is None
            assert current_budget() is outer
        assert current_budget() is None

    def test_budget_caps_concurrent_scatter_tasks(self):
        active = 0
        peak = 0
        gauge = threading.Lock()

        def task():
            nonlocal active, peak
            with gauge:
                active += 1
                peak = max(peak, active)
            time.sleep(0.02)
            with gauge:
                active -= 1
            return 1

        budget = FanoutBudget(2)
        with budget_scope(budget):
            results = scatter([task] * 6)
        assert results == [1] * 6
        assert peak <= 2
        assert budget.clamps == 1

    def test_windowed_scatter_keeps_task_order(self):
        def make(index):
            def task():
                time.sleep(0.01 * (5 - index))  # later tasks finish first
                return index
            return task

        results = scatter([make(i) for i in range(6)],
                          budget=FanoutBudget(2))
        assert results == list(range(6))

    def test_windowed_scatter_stops_submitting_and_quiesces_on_error(self):
        release = threading.Event()
        ran = [False] * 6
        finished: list[bool] = [False]

        def blocker():
            ran[0] = True
            release.wait(timeout=5.0)
            finished[0] = True
            return 0

        def failer():
            ran[1] = True
            raise RuntimeError("boom")

        def make(index):
            def task():
                ran[index] = True
                return index
            return task

        tasks = [blocker, failer] + [make(i) for i in range(2, 6)]
        threading.Timer(0.2, release.set).start()
        with pytest.raises(RuntimeError, match="boom"):
            scatter(tasks, budget=FanoutBudget(2))
        assert finished[0], "in-flight window did not drain before raise"
        assert ran[2:] == [False] * 4, \
            "tasks were submitted after the first failure"


# -- the AIMD controller ---------------------------------------------------

class _Clock:
    def __init__(self) -> None:
        self.now = 0.0

    def __call__(self) -> float:
        return self.now

    def advance(self, seconds: float) -> None:
        self.now += seconds


def _controller(**overrides):
    config = LoadControlConfig(**{
        "floor": 1, "ceiling": 8, "cooldown_seconds": 0.25, **overrides,
    })
    clock = _Clock()
    return LoadController(config, clock=clock), clock


class TestLoadController:
    def test_starts_at_the_ceiling(self):
        controller, _ = _controller()
        assert controller.effective_width() == 8

    def test_ceiling_defaults_to_executor_width(self):
        controller = LoadController(LoadControlConfig())
        assert controller.ceiling == 4  # the fixture's REPRO_EXECUTOR_WIDTH

    def test_floor_must_be_positive(self):
        with pytest.raises(ValueError):
            LoadController(LoadControlConfig(floor=0))

    def test_full_queue_halves_width_down_to_the_floor(self):
        controller, clock = _controller()
        assert controller.decide(8, 8) == "shrink"
        assert controller.effective_width() == 4
        assert controller.decide(8, 8) is None  # cooldown
        clock.advance(0.3)
        assert controller.decide(8, 8) == "shrink"
        clock.advance(0.3)
        assert controller.decide(8, 8) == "shrink"
        assert controller.effective_width() == 1
        clock.advance(0.3)
        assert controller.decide(8, 8) is None  # at the floor: shed, not shrink
        assert controller.shrinks == 3

    def test_high_fanout_p95_is_hot_even_with_an_empty_queue(self):
        controller, _ = _controller(target_p95_seconds=0.01)
        for _ in range(10):
            controller.observe_fanout(1.0)
        assert controller.decide(0, 64) == "shrink"

    def test_calm_tier_grows_additively_back_to_the_ceiling(self):
        controller, clock = _controller()
        controller.on_shed()  # 8 -> 4
        width = 4
        while width < 8:
            clock.advance(0.3)
            assert controller.decide(0, 64) == "grow"
            width += 1
            assert controller.effective_width() == width
        clock.advance(0.3)
        assert controller.decide(0, 64) is None  # at the ceiling
        assert controller.grows == 4

    def test_shed_shrinks_immediately_ignoring_cooldown(self):
        controller, _ = _controller()
        assert controller.decide(8, 8) == "shrink"  # 8 -> 4, starts cooldown
        controller.on_shed()  # no cooldown wait: 4 -> 2
        assert controller.effective_width() == 2
        assert controller.shed_shrinks == 1

    def test_shed_at_the_floor_is_counted_not_shrunk(self):
        controller, _ = _controller(floor=2)
        controller.on_shed()  # 8 -> 4
        controller.on_shed()  # 4 -> 2 (the floor)
        controller.on_shed()  # stays: counted
        assert controller.effective_width() == 2
        assert controller.sheds_at_floor == 1

    def test_budget_clamps_feed_back_into_the_controller(self):
        controller, _ = _controller()
        controller.on_shed()  # width 4
        budget = controller.budget()
        assert budget.grant(8) == 4
        assert controller.snapshot()["budget_clamps"] == 1

    def test_snapshot_carries_every_counter(self):
        controller, clock = _controller()
        controller.observe_fanout(0.002)
        controller.decide(8, 8)
        clock.advance(0.3)
        controller.decide(0, 64)
        snapshot = controller.snapshot()
        assert snapshot["enabled"] is True
        assert snapshot["floor"] == 1 and snapshot["ceiling"] == 8
        assert snapshot["decisions"] == 2
        assert snapshot["width_changes"] == \
            snapshot["grows"] + snapshot["shrinks"]
        assert snapshot["ewma_p95_ms"] == pytest.approx(2.0)
        assert snapshot["window_samples"] == 1

    def test_sample_window_is_bounded(self):
        controller, _ = _controller(window=8)
        for index in range(100):
            controller.observe_fanout(float(index))
        assert controller.snapshot()["window_samples"] == 8


# -- QueryService integration ----------------------------------------------

class TestServiceCostGate:
    def test_over_budget_request_rejected_before_fanout(self, system):
        with QueryService(system,
                          ServeConfig(max_request_cost=0.5)) as service:
            with pytest.raises(RequestTooExpensiveError):
                service.query("all_fields", query="vaccine")
            stats = service.stats()
            assert stats["cost_rejected"] >= 1
            assert stats["max_request_cost"] == 0.5
            assert stats["load_control"] == {"enabled": False}

    def test_rejection_is_negative_cached(self, system):
        with QueryService(system,
                          ServeConfig(max_request_cost=0.5)) as service:
            with pytest.raises(RequestTooExpensiveError):
                service.query("all_fields", query="vaccine")
            with pytest.raises(RequestTooExpensiveError):
                service.query("all_fields", query="vaccine")
            stats = service.stats()
            assert stats["negative_hits"] >= 1
            assert stats["cost_rejected"] == 1  # priced once, replayed after

    def test_generous_budget_serves_normally(self, system):
        with QueryService(system,
                          ServeConfig(max_request_cost=1e9)) as service:
            result = service.query("all_fields", query="vaccine")
            assert result.value.total_matches >= 0
            assert service.stats()["cost_rejected"] == 0

    def test_every_engine_is_priced(self, system):
        with QueryService(system,
                          ServeConfig(max_request_cost=0.0)) as service:
            for engine, params in [
                ("all_fields", {"query": "vaccine"}),
                ("title_abstract", {"abstract": "vaccine"}),
                ("table", {"query": "dosage"}),
                ("kg", {"query": "side effects"}),
                ("meta_profile", {}),
            ]:
                with pytest.raises(RequestTooExpensiveError):
                    service.query(engine, **params)


class TestServiceAdaptiveWidth:
    def test_overloaded_tier_narrows_and_clamps_fanout(self, system):
        config = ServeConfig(
            num_workers=2,
            load_control=LoadControlConfig(
                floor=1, ceiling=4, cooldown_seconds=0.0,
                target_p95_seconds=0.001,
            ),
        )
        with QueryService(system, config) as service:
            service._dispatch["all_fields"] = \
                lambda **params: sum(scatter([lambda: 1] * 8))
            assert service.loadctl is not None
            for index in range(3):
                # Saturated shards: every fan-out sample blows the target.
                for _ in range(8):
                    service.loadctl.observe_fanout(1.0)
                result = service.query("all_fields", query=f"hot {index}")
                assert result.value == 8
            stats = service.stats()
            control = stats["load_control"]
            assert control["enabled"] is True
            assert control["width"] == 1
            assert control["shrinks"] >= 2
            assert control["width_changes"] >= 2
            assert control["budget_clamps"] >= 1
            assert stats["admission"]["effective_width"] == 1

    def test_shed_requests_force_an_immediate_shrink(self, system):
        config = ServeConfig(
            num_workers=1, max_queue=1,
            load_control=LoadControlConfig(floor=1, ceiling=4,
                                           cooldown_seconds=60.0),
        )
        with QueryService(system, config) as service:
            release = threading.Event()
            started = threading.Event()

            def occupy_worker():
                started.set()
                release.wait(timeout=10)

            blocker = service._pool.submit(occupy_worker)
            assert started.wait(timeout=5)
            with pytest.raises(ServiceOverloadedError):
                for index in range(8):
                    service.submit("all_fields", query=f"flood {index}")
            release.set()
            blocker.result(timeout=5)
            control = service.stats()["load_control"]
            assert control["shed_shrinks"] >= 1
            assert control["width"] < 4

    def test_adaptive_service_survives_width_flips_and_shutdowns(
            self, system):
        """Stress the controller while the executor width changes and
        pool rebuilds race underneath it.

        Under ``REPRO_RACECHECK=1`` the session gate turns this into a
        lock-order race test too.
        """
        config = ServeConfig(
            num_workers=4, max_queue=64,
            load_control=LoadControlConfig(floor=1, ceiling=4,
                                           cooldown_seconds=0.0),
        )
        errors: list[BaseException] = []
        with QueryService(system, config) as service:
            service._dispatch["all_fields"] = \
                lambda **params: sum(scatter([lambda: 1] * 6))
            stop = threading.Event()

            def flipper():
                widths = ["2", "4", "3", "5"]
                index = 0
                while not stop.is_set():
                    os.environ[executor_module.WIDTH_ENV] = \
                        widths[index % len(widths)]
                    if index % 7 == 3:
                        shutdown_executor()
                    else:
                        executor_module.get_executor()  # force a rebuild
                    index += 1
                    time.sleep(0.002)

            def reader(seed):
                try:
                    for index in range(25):
                        result = service.query(
                            "all_fields", query=f"stress {seed} {index}"
                        )
                        assert result.value == 6
                except BaseException as exc:  # noqa: BLE001 - recorded
                    errors.append(exc)

            flip = threading.Thread(target=flipper)
            readers = [threading.Thread(target=reader, args=(seed,))
                       for seed in range(4)]
            flip.start()
            for thread in readers:
                thread.start()
            for thread in readers:
                thread.join(timeout=60)
                assert not thread.is_alive()
            stop.set()
            flip.join(timeout=10)
            assert not flip.is_alive()
            assert not errors, f"stress raised: {errors!r}"
            assert service.stats()["load_control"]["decisions"] >= 1


class TestServeStatsCliAdaptive:
    def test_adaptive_and_max_cost_flags(self, tmp_path, capsys):
        from repro.api.persistence import save_system
        from repro.cli import main

        papers = CorpusGenerator(GeneratorConfig(
            seed=48, papers_per_week=15, tables_per_paper=(1, 2),
        )).papers(12)
        kg = CovidKG(CovidKGConfig(num_shards=2))
        kg.ingest(papers)
        save_system(kg, tmp_path / "sys")

        exit_code = main([
            "serve-stats", "--system", str(tmp_path / "sys"),
            "--requests", "8", "--workers", "2", "--adaptive",
            "--max-cost", "1000000", "vaccine",
        ])
        out = capsys.readouterr().out
        assert exit_code == 0
        assert "load_control.enabled: True" in out
        assert "load_control.width:" in out
        assert "admission.effective_width:" in out
        assert "cost_rejected: 0" in out

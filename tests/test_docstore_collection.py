"""Tests for Collection CRUD, cursors, update operators, and indexes."""

import pytest
from hypothesis import given
from hypothesis import strategies as st

from repro.docstore.collection import Collection
from repro.docstore.documents import ObjectId
from repro.errors import DocumentError, DuplicateKeyError


@pytest.fixture()
def papers():
    collection = Collection("papers")
    collection.insert_many([
        {"title": "masks", "year": 2020, "cites": 50, "tags": ["ppe"]},
        {"title": "vaccines", "year": 2021, "cites": 120, "tags": ["mrna"]},
        {"title": "variants", "year": 2021, "cites": 80,
         "tags": ["mrna", "delta"]},
        {"title": "ventilators", "year": 2020, "cites": 10, "tags": []},
    ])
    return collection


class TestInsert:
    def test_insert_assigns_object_id(self):
        collection = Collection()
        doc_id = collection.insert_one({"x": 1})
        assert isinstance(doc_id, ObjectId)
        assert collection.find_by_id(doc_id)["x"] == 1

    def test_insert_respects_explicit_id(self):
        collection = Collection()
        collection.insert_one({"_id": "custom", "x": 1})
        assert collection.find_by_id("custom")["x"] == 1

    def test_duplicate_id_rejected(self):
        collection = Collection()
        collection.insert_one({"_id": "a"})
        with pytest.raises(DuplicateKeyError):
            collection.insert_one({"_id": "a"})

    def test_insert_copies_input(self):
        collection = Collection()
        original = {"nested": {"v": 1}}
        doc_id = collection.insert_one(original)
        original["nested"]["v"] = 999
        assert collection.find_by_id(doc_id)["nested"]["v"] == 1

    def test_reads_are_copies(self, papers):
        doc = papers.find_one({"title": "masks"})
        doc["title"] = "mutated"
        assert papers.find_one({"title": "masks"}) is not None


class TestFind:
    def test_find_all(self, papers):
        assert len(papers.find()) == 4

    def test_find_with_filter(self, papers):
        assert len(papers.find({"year": 2021})) == 2

    def test_find_one_returns_none_when_absent(self, papers):
        assert papers.find_one({"title": "nope"}) is None

    def test_sort_ascending_and_descending(self, papers):
        asc = [d["cites"] for d in papers.find().sort("cites")]
        desc = [d["cites"] for d in papers.find().sort("cites", -1)]
        assert asc == sorted(asc)
        assert desc == sorted(desc, reverse=True)

    def test_multi_key_sort(self, papers):
        results = papers.find().sort([("year", 1), ("cites", -1)]).to_list()
        assert [(d["year"], d["cites"]) for d in results] == [
            (2020, 50), (2020, 10), (2021, 120), (2021, 80),
        ]

    def test_skip_limit(self, papers):
        page = papers.find().sort("cites").skip(1).limit(2).to_list()
        assert [d["cites"] for d in page] == [50, 80]

    def test_projection_inclusion(self, papers):
        doc = papers.find_one({"title": "masks"}, {"title": 1, "_id": 0})
        assert doc == {"title": "masks"}

    def test_projection_exclusion(self, papers):
        doc = papers.find_one({"title": "masks"}, {"tags": 0, "_id": 0})
        assert doc == {"title": "masks", "year": 2020, "cites": 50}

    def test_count_and_len(self, papers):
        assert papers.count() == 4
        assert papers.count({"year": 2020}) == 2
        assert len(papers) == 4

    def test_distinct(self, papers):
        assert set(papers.distinct("year")) == {2020, 2021}
        assert set(papers.distinct("tags")) == {"ppe", "mrna", "delta"}


class TestUpdate:
    def test_set_and_unset(self, papers):
        papers.update_one({"title": "masks"},
                          {"$set": {"reviewed": True},
                           "$unset": {"tags": ""}})
        doc = papers.find_one({"title": "masks"})
        assert doc["reviewed"] is True
        assert "tags" not in doc

    def test_inc_and_mul(self, papers):
        papers.update_one({"title": "masks"}, {"$inc": {"cites": 5}})
        papers.update_one({"title": "masks"}, {"$mul": {"cites": 2}})
        assert papers.find_one({"title": "masks"})["cites"] == 110

    def test_inc_creates_missing_field(self, papers):
        papers.update_one({"title": "masks"}, {"$inc": {"downloads": 3}})
        assert papers.find_one({"title": "masks"})["downloads"] == 3

    def test_min_max(self, papers):
        papers.update_one({"title": "masks"}, {"$min": {"cites": 10}})
        assert papers.find_one({"title": "masks"})["cites"] == 10
        papers.update_one({"title": "masks"}, {"$max": {"cites": 99}})
        assert papers.find_one({"title": "masks"})["cites"] == 99

    def test_push_and_each(self, papers):
        papers.update_one({"title": "masks"}, {"$push": {"tags": "new"}})
        papers.update_one({"title": "masks"},
                          {"$push": {"tags": {"$each": ["a", "b"]}}})
        assert papers.find_one({"title": "masks"})["tags"] == [
            "ppe", "new", "a", "b",
        ]

    def test_add_to_set(self, papers):
        papers.update_one({"title": "masks"}, {"$addToSet": {"tags": "ppe"}})
        assert papers.find_one({"title": "masks"})["tags"] == ["ppe"]

    def test_pull(self, papers):
        papers.update_one({"title": "variants"}, {"$pull": {"tags": "mrna"}})
        assert papers.find_one({"title": "variants"})["tags"] == ["delta"]

    def test_pop(self, papers):
        papers.update_one({"title": "variants"}, {"$pop": {"tags": 1}})
        assert papers.find_one({"title": "variants"})["tags"] == ["mrna"]

    def test_rename(self, papers):
        papers.update_one({"title": "masks"}, {"$rename": {"cites": "c"}})
        doc = papers.find_one({"title": "masks"})
        assert doc["c"] == 50 and "cites" not in doc

    def test_update_many(self, papers):
        modified = papers.update_many({"year": 2021},
                                      {"$set": {"recent": True}})
        assert modified == 2
        assert papers.count({"recent": True}) == 2

    def test_update_rejects_plain_document(self, papers):
        with pytest.raises(DocumentError):
            papers.update_one({"title": "masks"}, {"title": "replaced"})

    def test_update_rejects_id_change(self, papers):
        with pytest.raises(DocumentError):
            papers.update_one({"title": "masks"}, {"$set": {"_id": "x"}})

    def test_replace_one(self, papers):
        papers.replace_one({"title": "masks"}, {"title": "replaced"})
        assert papers.find_one({"title": "replaced"}) is not None
        assert papers.find_one({"title": "masks"}) is None


class TestDelete:
    def test_delete_one(self, papers):
        assert papers.delete_one({"year": 2020}) == 1
        assert papers.count({"year": 2020}) == 1

    def test_delete_many(self, papers):
        assert papers.delete_many({"year": 2021}) == 2
        assert papers.count() == 2

    def test_delete_nothing(self, papers):
        assert papers.delete_many({"year": 1900}) == 0


class TestIndexes:
    def test_index_accelerates_equality(self, papers):
        papers.create_index("year")
        papers.scan_count = 0
        papers.find({"year": 2021}).to_list()
        assert papers.scan_count == 2  # only the indexed bucket was scanned

    def test_unindexed_query_scans_everything(self, papers):
        papers.scan_count = 0
        papers.find({"cites": {"$gt": 0}}).to_list()
        assert papers.scan_count == 4

    def test_index_stays_consistent_after_update(self, papers):
        papers.create_index("year")
        papers.update_one({"title": "masks"}, {"$set": {"year": 2022}})
        assert {d["title"] for d in papers.find({"year": 2022})} == {"masks"}
        assert papers.count({"year": 2020}) == 1

    def test_index_stays_consistent_after_delete(self, papers):
        papers.create_index("year")
        papers.delete_many({"year": 2020})
        assert papers.count({"year": 2020}) == 0

    def test_unique_index_rejects_duplicates(self):
        collection = Collection()
        collection.create_index("doi", unique=True)
        collection.insert_one({"doi": "10.1/a"})
        with pytest.raises(DuplicateKeyError):
            collection.insert_one({"doi": "10.1/a"})
        # Failed insert must not leave ghosts behind.
        assert collection.count() == 1

    def test_multikey_index_over_arrays(self, papers):
        papers.create_index("tags")
        papers.scan_count = 0
        results = papers.find({"tags": "mrna"}).to_list()
        assert len(results) == 2
        assert papers.scan_count == 2

    def test_text_index_lookup(self, papers):
        index = papers.create_text_index(["title"])
        assert len(index.lookup("vaccine")) == 1  # stems to 'vaccin'
        assert len(index.lookup("vaccines")) == 1


class TestStorage:
    def test_storage_bytes_grows_with_documents(self):
        collection = Collection()
        empty = collection.storage_bytes()
        collection.insert_one({"body": "x" * 1000})
        assert collection.storage_bytes() > empty + 900


@given(st.lists(st.integers(-100, 100), min_size=1, max_size=30))
def test_sort_matches_python_sorted(values):
    collection = Collection()
    collection.insert_many([{"v": value} for value in values])
    result = [d["v"] for d in collection.find().sort("v")]
    assert result == sorted(values)


@given(st.lists(st.integers(0, 10), min_size=1, max_size=30),
       st.integers(0, 10))
def test_delete_many_removes_exactly_matching(values, target):
    collection = Collection()
    collection.insert_many([{"v": value} for value in values])
    deleted = collection.delete_many({"v": target})
    assert deleted == values.count(target)
    assert collection.count() == len(values) - deleted

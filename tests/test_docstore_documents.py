"""Tests for document primitives: ObjectId, deep path access."""

import pytest
from hypothesis import given
from hypothesis import strategies as st

from repro.docstore.documents import (
    ObjectId,
    deep_get,
    deep_set,
    deep_unset,
    document_bytes,
    path_exists,
    validate_document,
)
from repro.errors import DocumentError


class TestObjectId:
    def test_ids_are_unique_and_increasing(self):
        first, second = ObjectId(), ObjectId()
        assert first != second
        assert first < second

    def test_string_roundtrip(self):
        oid = ObjectId()
        assert ObjectId.parse(str(oid)) == oid

    def test_equality_with_string_form(self):
        oid = ObjectId()
        assert oid == str(oid)

    def test_parse_rejects_garbage(self):
        with pytest.raises(DocumentError):
            ObjectId.parse("not-an-oid")

    def test_hashable(self):
        oid = ObjectId()
        assert oid in {oid}


class TestDeepGet:
    DOC = {
        "title": "paper",
        "meta": {"year": 2021, "venue": {"name": "EDBT"}},
        "authors": [{"name": "a"}, {"name": "b"}],
        "scores": [1, 2, 3],
    }

    def test_top_level(self):
        assert deep_get(self.DOC, "title") == "paper"

    def test_nested(self):
        assert deep_get(self.DOC, "meta.venue.name") == "EDBT"

    def test_array_index(self):
        assert deep_get(self.DOC, "authors.1.name") == "b"
        assert deep_get(self.DOC, "scores.0") == 1

    def test_array_fanout(self):
        assert deep_get(self.DOC, "authors.name") == ["a", "b"]

    def test_missing_returns_default(self):
        assert deep_get(self.DOC, "meta.absent", "fallback") == "fallback"
        assert deep_get(self.DOC, "absent.deeper") is None

    def test_index_out_of_range(self):
        assert deep_get(self.DOC, "scores.99") is None

    def test_path_exists(self):
        assert path_exists(self.DOC, "meta.year")
        assert not path_exists(self.DOC, "meta.month")
        assert path_exists({"x": None}, "x")  # None still exists


class TestDeepSet:
    def test_set_creates_intermediates(self):
        doc = {}
        deep_set(doc, "a.b.c", 1)
        assert doc == {"a": {"b": {"c": 1}}}

    def test_set_into_list(self):
        doc = {"items": [{"v": 1}]}
        deep_set(doc, "items.0.v", 2)
        assert doc["items"][0]["v"] == 2

    def test_set_extends_list(self):
        doc = {}
        deep_set(doc, "items.2", "x")
        assert doc["items"] == [None, None, "x"]

    def test_set_overwrites_scalar_intermediate(self):
        doc = {"a": 5}
        deep_set(doc, "a.b", 1)
        assert doc == {"a": {"b": 1}}

    def test_non_numeric_list_part_raises(self):
        doc = {"items": [1, 2]}
        with pytest.raises(DocumentError):
            deep_set(doc, "items.bad", 1)


class TestDeepUnset:
    def test_unset_removes(self):
        doc = {"a": {"b": 1, "c": 2}}
        assert deep_unset(doc, "a.b")
        assert doc == {"a": {"c": 2}}

    def test_unset_missing_is_noop(self):
        doc = {"a": 1}
        assert not deep_unset(doc, "x.y")
        assert doc == {"a": 1}

    def test_unset_list_element(self):
        doc = {"items": [1, 2, 3]}
        assert deep_unset(doc, "items.1")
        assert doc["items"] == [1, 3]


class TestValidate:
    def test_rejects_non_dict(self):
        with pytest.raises(DocumentError):
            validate_document([1, 2])

    def test_rejects_dollar_keys(self):
        with pytest.raises(DocumentError):
            validate_document({"$bad": 1})

    def test_rejects_non_string_keys(self):
        with pytest.raises(DocumentError):
            validate_document({1: "x"})

    def test_accepts_normal_document(self):
        assert validate_document({"ok": 1}) == {"ok": 1}


def test_document_bytes_counts_serialized_size():
    small = document_bytes({"a": 1})
    large = document_bytes({"a": 1, "text": "x" * 100})
    assert large > small + 90


_json_scalars = st.one_of(
    st.none(), st.booleans(), st.integers(), st.text(max_size=10)
)


@given(st.dictionaries(st.text(alphabet="abc", min_size=1, max_size=3),
                       _json_scalars, max_size=5),
       st.text(alphabet="xyz", min_size=1, max_size=3),
       _json_scalars)
def test_deep_set_then_get_roundtrip(doc, key, value):
    deep_set(doc, key, value)
    assert deep_get(doc, key) == value

"""Gradient checks and behaviour tests for GRU, LSTM, Bidirectional."""

import numpy as np
import pytest

from repro.errors import ModelError
from repro.neural.recurrent import GRU, LSTM, Bidirectional

RNG = np.random.default_rng(7)


def numeric_grad(function, array, epsilon=1e-6):
    grad = np.zeros_like(array)
    flat = array.reshape(-1)
    grad_flat = grad.reshape(-1)
    for i in range(flat.size):
        original = flat[i]
        flat[i] = original + epsilon
        upper = function()
        flat[i] = original - epsilon
        lower = function()
        flat[i] = original
        grad_flat[i] = (upper - lower) / (2 * epsilon)
    return grad


def check_recurrent_gradients(layer, inputs, atol=1e-5):
    def loss():
        return float(layer.forward(inputs).sum())

    out = layer.forward(inputs)
    layer.zero_grads()
    analytic_input = layer.backward(np.ones_like(out))
    numeric_input = numeric_grad(loss, inputs)
    np.testing.assert_allclose(analytic_input, numeric_input, atol=atol,
                               err_msg="input gradient mismatch")

    layer.forward(inputs)
    layer.zero_grads()
    layer.backward(np.ones_like(out))
    for index, (param, grad) in enumerate(zip(layer.params, layer.grads)):
        numeric = numeric_grad(loss, param)
        np.testing.assert_allclose(
            grad, numeric, atol=atol,
            err_msg=f"param {index} gradient mismatch",
        )


class TestGRU:
    def test_output_shapes(self):
        layer = GRU(3, 5, return_sequences=True)
        x = RNG.normal(size=(2, 4, 3))
        assert layer.forward(x).shape == (2, 4, 5)
        last = GRU(3, 5, return_sequences=False)
        assert last.forward(x).shape == (2, 5)

    def test_gradients_sequences(self):
        check_recurrent_gradients(GRU(2, 3, seed=1),
                                  RNG.normal(size=(2, 3, 2)))

    def test_gradients_last_state(self):
        check_recurrent_gradients(
            GRU(2, 3, return_sequences=False, seed=2),
            RNG.normal(size=(2, 3, 2)),
        )

    def test_rejects_bad_shape(self):
        with pytest.raises(ModelError):
            GRU(3, 4).forward(RNG.normal(size=(2, 3)))

    def test_deterministic_given_seed(self):
        x = RNG.normal(size=(1, 3, 2))
        out1 = GRU(2, 3, seed=5).forward(x)
        out2 = GRU(2, 3, seed=5).forward(x)
        np.testing.assert_array_equal(out1, out2)

    def test_hidden_states_bounded(self):
        # GRU hidden state is a convex combo of tanh outputs: |h| <= 1.
        layer = GRU(2, 4)
        out = layer.forward(RNG.normal(size=(3, 10, 2)) * 5)
        assert np.all(np.abs(out) <= 1.0 + 1e-9)


class TestLSTM:
    def test_output_shapes(self):
        layer = LSTM(3, 5, return_sequences=True)
        x = RNG.normal(size=(2, 4, 3))
        assert layer.forward(x).shape == (2, 4, 5)
        last = LSTM(3, 5, return_sequences=False)
        assert last.forward(x).shape == (2, 5)

    def test_gradients_sequences(self):
        check_recurrent_gradients(LSTM(2, 3, seed=3),
                                  RNG.normal(size=(2, 3, 2)))

    def test_gradients_last_state(self):
        check_recurrent_gradients(
            LSTM(2, 3, return_sequences=False, seed=4),
            RNG.normal(size=(2, 3, 2)),
        )

    def test_forget_bias_initialized_to_one(self):
        layer = LSTM(2, 3)
        np.testing.assert_array_equal(layer.bias[3:6], 1.0)

    def test_backward_before_forward_raises(self):
        with pytest.raises(ModelError):
            LSTM(2, 3).backward(np.ones((1, 2, 3)))


class TestBidirectional:
    def test_output_concatenates_directions(self):
        layer = Bidirectional.gru(3, 4)
        x = RNG.normal(size=(2, 5, 3))
        assert layer.forward(x).shape == (2, 5, 8)

    def test_gradients(self):
        check_recurrent_gradients(Bidirectional.gru(2, 2, seed=6),
                                  RNG.normal(size=(2, 3, 2)))

    def test_lstm_flavor(self):
        layer = Bidirectional.lstm(3, 4)
        assert layer.forward(RNG.normal(size=(1, 2, 3))).shape == (1, 2, 8)

    def test_backward_direction_sees_future(self):
        # Zero out everything except the LAST time step; the backward
        # direction's FIRST output must still react.
        layer = Bidirectional.gru(1, 2, seed=8)
        x = np.zeros((1, 4, 1))
        base = layer.forward(x)
        x2 = x.copy()
        x2[0, -1, 0] = 1.0
        changed = layer.forward(x2)
        # Forward-direction first step cannot see the change...
        np.testing.assert_allclose(base[0, 0, :2], changed[0, 0, :2])
        # ...but the backward direction can.
        assert not np.allclose(base[0, 0, 2:], changed[0, 0, 2:])

    def test_requires_sequence_sublayers(self):
        with pytest.raises(ModelError):
            Bidirectional(GRU(2, 2, return_sequences=False),
                          GRU(2, 2, return_sequences=True))

"""Tests for the table data model."""

import pytest
from hypothesis import given
from hypothesis import strategies as st

from repro.errors import ParseError
from repro.tables.model import Cell, Row, Table

GRID = [
    ["Vaccine", "Dose", "Efficacy"],
    ["Pfizer", "2", "95%"],
    ["Moderna", "2", "94%"],
]


def sample_table():
    return Table.from_grid(GRID, caption="Vaccine efficacy", header_rows=1,
                           paper_id="p1", table_id="t0")


class TestConstruction:
    def test_from_grid_labels_header_rows(self):
        table = sample_table()
        assert table.rows[0].is_metadata is True
        assert table.rows[1].is_metadata is False

    def test_dimensions(self):
        table = sample_table()
        assert table.num_rows == 3
        assert table.num_columns == 3

    def test_ragged_table_columns(self):
        table = Table.from_grid([["a"], ["b", "c", "d"]])
        assert table.num_columns == 3

    def test_empty_table(self):
        table = Table()
        assert table.num_rows == 0
        assert table.num_columns == 0


class TestAccess:
    def test_column(self):
        table = sample_table()
        assert table.column(0) == ["Vaccine", "Pfizer", "Moderna"]

    def test_column_pads_short_rows(self):
        table = Table.from_grid([["a", "b"], ["c"]])
        assert table.column(1) == ["b", ""]

    def test_column_out_of_range(self):
        with pytest.raises(ParseError):
            sample_table().column(5)

    def test_transposed(self):
        table = sample_table()
        flipped = table.transposed()
        assert flipped.rows[0].texts == ["Vaccine", "Pfizer", "Moderna"]
        assert flipped.num_rows == 3
        assert flipped.caption == table.caption

    def test_all_text_includes_caption_and_cells(self):
        text = sample_table().all_text()
        assert "Vaccine efficacy" in text
        assert "Pfizer" in text

    def test_iter_cells(self):
        assert len(list(sample_table().iter_cells())) == 9


class TestSerialization:
    def test_roundtrip(self):
        table = sample_table()
        restored = Table.from_json(table.to_json())
        assert restored.row_texts() == table.row_texts()
        assert restored.caption == table.caption
        assert restored.paper_id == "p1"
        assert restored.rows[0].is_metadata is True

    def test_cell_json_is_minimal(self):
        assert Cell("x").to_json() == {"text": "x"}
        assert Cell("x", colspan=2, is_header=True).to_json() == {
            "text": "x", "colspan": 2, "is_header": True,
        }

    def test_cell_from_plain_string(self):
        assert Cell.from_json("hello").text == "hello"

    def test_row_from_texts(self):
        row = Row.from_texts(["a", "b"], is_metadata=True)
        assert row.texts == ["a", "b"]
        assert row.is_metadata is True


@given(st.lists(st.lists(st.text(max_size=8), min_size=1, max_size=5),
                min_size=1, max_size=6))
def test_json_roundtrip_preserves_grid(grid):
    table = Table.from_grid(grid)
    assert Table.from_json(table.to_json()).row_texts() == grid


@given(st.lists(st.lists(st.text(alphabet="ab", min_size=1, max_size=3),
                         min_size=2, max_size=4),
                min_size=2, max_size=5))
def test_double_transpose_on_rectangular_grid(grid):
    width = max(len(row) for row in grid)
    rectangular = [row + [""] * (width - len(row)) for row in grid]
    table = Table.from_grid(rectangular)
    assert table.transposed().transposed().row_texts() == rectangular

"""Unit tests for the serving tier's result cache."""

import pytest

from repro.serve.cache import (
    ResultCache,
    canonical_params,
    canonical_text,
    request_key,
)


class TestCanonicalization:
    def test_whitespace_and_case_fold(self):
        assert canonical_text("  Vaccine   SIDE\teffects ") == \
            "vaccine side effects"

    def test_params_sorted_and_none_dropped(self):
        a = canonical_params({"title": "Covid ", "abstract": None})
        b = canonical_params({"abstract": None, "title": "covid"})
        c = canonical_params({"title": "covid"})
        assert a == b == c

    def test_request_key_distinguishes_engines_and_pages(self):
        base = request_key("all_fields", {"query": "covid", "page": 1})
        assert request_key("table", {"query": "covid", "page": 1}) != base
        assert request_key("all_fields",
                           {"query": "covid", "page": 2}) != base

    def test_non_string_params_pass_through(self):
        key = request_key("kg", {"query": "covid", "top_k": 5})
        assert ("top_k", 5) in key[1]


class TestResultCache:
    def test_miss_then_hit(self):
        cache = ResultCache(max_entries=4)
        key = request_key("all_fields", {"query": "covid", "page": 1})
        hit, _ = cache.get(key, (1,))
        assert not hit
        cache.put(key, (1,), "page-one")
        hit, value = cache.get(key, (1,))
        assert hit and value == "page-one"
        assert cache.stats.hits == 1
        assert cache.stats.misses == 1

    def test_version_mismatch_invalidates(self):
        cache = ResultCache()
        key = request_key("all_fields", {"query": "covid", "page": 1})
        cache.put(key, (1,), "stale")
        hit, value = cache.get(key, (2,))
        assert not hit and value is None
        assert cache.stats.invalidations == 1
        # The stale entry is evicted, not resurrected at the old version.
        hit, _ = cache.get(key, (1,))
        assert not hit

    def test_lru_eviction_order(self):
        cache = ResultCache(max_entries=2)
        cache.put(("e", ("a",)), (0,), 1)
        cache.put(("e", ("b",)), (0,), 2)
        cache.get(("e", ("a",)), (0,))  # touch "a": "b" becomes LRU
        cache.put(("e", ("c",)), (0,), 3)
        assert ("e", ("a",)) in cache
        assert ("e", ("b",)) not in cache
        assert ("e", ("c",)) in cache
        assert cache.stats.evictions == 1

    def test_ttl_expiry(self):
        clock = [0.0]
        cache = ResultCache(ttl_seconds=10.0, clock=lambda: clock[0])
        cache.put(("e", ("q",)), (0,), "fresh")
        clock[0] = 9.9
        assert cache.get(("e", ("q",)), (0,))[0]
        clock[0] = 10.1
        hit, _ = cache.get(("e", ("q",)), (0,))
        assert not hit
        assert cache.stats.expirations == 1

    def test_bad_capacity_rejected(self):
        with pytest.raises(ValueError):
            ResultCache(max_entries=0)

    def test_clear(self):
        cache = ResultCache()
        cache.put(("e", ("q",)), (0,), 1)
        cache.clear()
        assert len(cache) == 0


class TestNegativeInvalidation:
    """Every lookup path drops a negative the moment versions move.

    Regression suite for the staleness sweep: ``get`` and ``claim``
    used to disagree about stale negatives, so a fixed document could
    keep replaying a cached error on one engine path but not another.
    Both now funnel through one invalidation point.
    """

    def _negative(self, cache, key, versions):
        status, flight = cache.claim(key, versions)
        assert status == "leader"
        cache.fail(flight, ValueError("bad query"), negative=True,
                   versions=versions)
        return flight

    def test_claim_replays_fresh_negative(self):
        cache = ResultCache()
        key = request_key("kg_query", {"query": "MATCH ("})
        self._negative(cache, key, (1,))
        status, exc = cache.claim(key, (1,))
        assert status == "negative"
        assert isinstance(exc, ValueError)
        assert cache.stats.negative_hits == 1

    def test_version_bump_unnegatives_claim_path(self):
        cache = ResultCache()
        key = request_key("kg_query", {"query": "MATCH ("})
        self._negative(cache, key, (1,))
        # The document was fixed: the ingest bumped the counters, so
        # the next claim must recompute, not replay the stale failure.
        status, _ = cache.claim(key, (2,))
        assert status == "leader"
        assert cache.stats.negative_hits == 0
        # And the stale entry is gone even for the old snapshot.
        status, _ = cache.claim(key, (1,))
        assert status == "leader"

    def test_version_bump_unnegatives_get_path(self):
        cache = ResultCache()
        key = request_key("all_fields", {"query": "covid"})
        self._negative(cache, key, (1,))
        hit, _ = cache.get(key, (2,))  # positive-only lookup path
        assert not hit
        # get() dropped the stale negative as a side effect; the claim
        # path agrees instead of replaying it.
        status, _ = cache.claim(key, (1,))
        assert status == "leader"

    def test_successful_put_supersedes_negative(self):
        cache = ResultCache()
        key = request_key("all_fields", {"query": "covid"})
        self._negative(cache, key, (1,))
        cache.put(key, (1,), "recovered")
        status, value = cache.claim(key, (1,))
        assert status == "hit"
        assert value == "recovered"

    def test_negative_stamped_with_execution_time_versions(self):
        cache = ResultCache()
        key = request_key("kg_query", {"query": "MATCH ("})
        status, flight = cache.claim(key, (1,))
        assert status == "leader"
        # An ingest landed between claim and execution; the failure was
        # observed at (2,).  Stamping it with the stale claim-time
        # snapshot would make it dead on arrival.
        cache.fail(flight, ValueError("still bad"), negative=True,
                   versions=(2,))
        status, _ = cache.claim(key, (2,))
        assert status == "negative"
        status, _ = cache.claim(key, (1,))
        assert status == "leader"

    def test_negative_expires_by_ttl(self):
        now = [0.0]
        cache = ResultCache(negative_ttl_seconds=5.0,
                            clock=lambda: now[0])
        key = request_key("kg_query", {"query": "MATCH ("})
        self._negative(cache, key, (1,))
        now[0] = 6.0
        status, _ = cache.claim(key, (1,))
        assert status == "leader"

"""Consistent-hash ring: determinism, balance, minimal disruption."""

from __future__ import annotations

import pytest

from repro.cluster.ring import HashRing, stable_hash


def _keys(count):
    return [f"/v1/search/all_fields?query=q{i}".encode()
            for i in range(count)]


class TestStableHash:
    def test_deterministic_across_instances(self):
        assert stable_hash(b"covid") == stable_hash(b"covid")
        assert stable_hash(b"covid") != stable_hash(b"covid ")

    def test_64_bit_range(self):
        for key in (b"", b"a", b"long key " * 100):
            assert 0 <= stable_hash(key) < 2**64


class TestHashRing:
    def test_empty_ring_routes_nowhere(self):
        ring = HashRing()
        assert ring.route(b"anything") is None
        assert ring.preference(b"anything") == []
        assert len(ring) == 0

    def test_vnodes_validated(self):
        with pytest.raises(ValueError):
            HashRing(vnodes=0)

    def test_membership(self):
        ring = HashRing(["r0", "r1"])
        assert "r0" in ring and "r2" not in ring
        ring.add("r2")
        assert len(ring) == 3
        ring.add("r2")  # idempotent
        assert len(ring) == 3
        ring.remove("r2")
        ring.remove("r2")  # idempotent
        assert len(ring) == 2

    def test_same_key_same_replica(self):
        ring = HashRing(["r0", "r1", "r2"])
        for key in _keys(50):
            assert ring.route(key) == ring.route(key)

    def test_two_rings_agree(self):
        # Replica order must not matter: every process builds the same
        # ring from the same membership.
        one = HashRing(["r0", "r1", "r2"])
        other = HashRing(["r2", "r0", "r1"])
        for key in _keys(200):
            assert one.route(key) == other.route(key)

    def test_preference_lists_are_distinct_and_stable(self):
        ring = HashRing(["r0", "r1", "r2", "r3"])
        for key in _keys(20):
            preference = ring.preference(key)
            assert len(preference) == 4
            assert len(set(preference)) == 4
            assert ring.preference(key, 2) == preference[:2]

    def test_failover_target_is_next_preference(self):
        # The clockwise successor takes over a removed replica's keys —
        # the property that makes failover land on an L1 that will stay
        # the key's owner.
        ring = HashRing(["r0", "r1", "r2"])
        for key in _keys(100):
            preference = ring.preference(key)
            ring_after = HashRing(["r0", "r1", "r2"])
            ring_after.remove(preference[0])
            assert ring_after.route(key) == preference[1]

    def test_removal_moves_only_the_removed_replicas_keys(self):
        ring = HashRing(["r0", "r1", "r2", "r3"])
        keys = _keys(500)
        before = {key: ring.route(key) for key in keys}
        ring.remove("r1")
        moved = sum(1 for key in keys if ring.route(key) != before[key])
        owned = sum(1 for owner in before.values() if owner == "r1")
        assert moved == owned  # survivors' keys never reshuffle

    def test_spread_is_roughly_balanced(self):
        ring = HashRing(["r0", "r1", "r2", "r3"])
        counts = ring.spread(_keys(2000))
        assert sum(counts.values()) == 2000
        for owner, count in counts.items():
            # 64 vnodes keeps every replica within a loose band of the
            # 500-key fair share.
            assert 250 <= count <= 800, (owner, counts)

    def test_single_replica_owns_everything(self):
        ring = HashRing(["only"])
        counts = ring.spread(_keys(100))
        assert counts == {"only": 100}

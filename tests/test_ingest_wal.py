"""WAL framing, replay, and the crash-after-every-prefix property.

The durability contract under test: a batch is visible after replay iff
its ``commit`` record survived — a crash at *any* byte offset during a
batch write yields either the whole batch or none of it, never a
partial one.
"""

import json

import pytest

from repro.errors import WalCorruptionError
from repro.ingest.wal import (
    WriteAheadLog,
    encode_record,
    iter_frames,
    scan_segment,
)


def _paper(i):
    return {"paper_id": f"wal-{i:03d}", "title": f"paper {i}",
            "body": "x" * 40}


def _write_batches(directory, batches, *, segment_bytes=200,
                   commit_last=True):
    """Write ``batches`` (lists of papers); optionally leave the last
    batch uncommitted (the crash tail)."""
    wal = WriteAheadLog(directory, max_segment_bytes=segment_bytes)
    for number, batch in enumerate(batches, start=1):
        last = number == len(batches)
        batch_id = f"batch-{number}"
        wal.begin_batch(batch_id)
        for paper in batch:
            wal.append_document(batch_id, paper)
        if commit_last or not last:
            wal.commit_batch(batch_id, len(batch))
    wal.close()
    return wal


class TestFraming:
    def test_roundtrip(self):
        record = {"kind": "doc", "batch": "b", "paper": _paper(1)}
        data = encode_record(record)
        records, consumed = scan_segment(data)
        assert records == [record]
        assert consumed == len(data)

    def test_torn_payload_stops_scan(self):
        good = encode_record({"kind": "begin", "batch": "b"})
        torn = encode_record({"kind": "doc", "batch": "b"})[:-3]
        records, consumed = scan_segment(good + torn)
        assert records == [{"kind": "begin", "batch": "b"}]
        assert consumed == len(good)

    def test_crc_mismatch_stops_scan(self):
        good = encode_record({"kind": "begin", "batch": "b"})
        bad = bytearray(encode_record({"kind": "doc", "batch": "b"}))
        bad[-1] ^= 0xFF  # flip a payload bit: CRC no longer matches
        records, consumed = scan_segment(good + bytes(bad))
        assert records == [{"kind": "begin", "batch": "b"}]
        assert consumed == len(good)

    def test_iter_frames_matches_scan(self):
        data = b"".join(encode_record({"kind": "begin",
                                       "batch": str(i)})
                        for i in range(3))
        assert len(list(iter_frames(data))) == 3


class TestReplay:
    def test_committed_batches_in_order(self, tmp_path):
        _write_batches(tmp_path, [[_paper(1), _paper(2)], [_paper(3)]])
        state = WriteAheadLog(tmp_path).replay()
        assert [b.batch_id for b in state.batches] == \
            ["batch-1", "batch-2"]
        assert [p["paper_id"] for p in state.batches[0].papers] == \
            ["wal-001", "wal-002"]
        assert state.torn_batches == 0
        assert state.segments >= 2  # tiny segments force rotation

    def test_uncommitted_tail_is_dropped(self, tmp_path):
        _write_batches(tmp_path, [[_paper(1)], [_paper(2), _paper(3)]],
                       commit_last=False)
        state = WriteAheadLog(tmp_path).replay()
        assert [b.batch_id for b in state.batches] == ["batch-1"]
        assert state.torn_batches == 1

    def test_rollback_record_rewinds_replay(self, tmp_path):
        wal = _write_batches(tmp_path, [[_paper(1)], [_paper(2)]],
                             segment_bytes=100_000)
        wal = WriteAheadLog(tmp_path, max_segment_bytes=100_000)
        wal.log_rollback(1)
        wal.close()
        state = WriteAheadLog(tmp_path).replay()
        assert [b.batch_id for b in state.batches] == ["batch-1"]

    def test_commit_count_mismatch_is_corruption(self, tmp_path):
        wal = WriteAheadLog(tmp_path)
        wal.begin_batch("b")
        wal.append_document("b", _paper(1))
        wal.commit_batch("b", 2)  # claims 2 docs, logged 1
        wal.close()
        with pytest.raises(WalCorruptionError):
            WriteAheadLog(tmp_path).replay()

    def test_commit_without_begin_is_corruption(self, tmp_path):
        path = tmp_path / "wal-00000001.seg"
        path.write_bytes(encode_record(
            {"kind": "commit", "batch": "ghost", "count": 0}))
        with pytest.raises(WalCorruptionError):
            WriteAheadLog(tmp_path).replay()

    def test_unknown_kind_is_corruption(self, tmp_path):
        path = tmp_path / "wal-00000001.seg"
        path.write_bytes(encode_record({"kind": "gremlin"}))
        with pytest.raises(WalCorruptionError):
            WriteAheadLog(tmp_path).replay()

    def test_mid_log_tear_refuses_to_drop_history(self, tmp_path):
        _write_batches(tmp_path, [[_paper(1)], [_paper(2)]])
        segments = sorted(tmp_path.iterdir())
        assert len(segments) >= 2
        first = segments[0]
        first.write_bytes(first.read_bytes()[:-2])  # tear a non-tail seg
        with pytest.raises(WalCorruptionError):
            WriteAheadLog(tmp_path).replay()

    def test_truncate_drops_all_segments(self, tmp_path):
        wal = _write_batches(tmp_path, [[_paper(1)]])
        wal = WriteAheadLog(tmp_path)
        wal.truncate()
        assert wal.segment_paths() == []
        assert wal.replay().batches == []

    def test_reopen_truncates_torn_tail_before_appending(self, tmp_path):
        """Post-crash appends must not land after torn garbage bytes —
        replay stops at the tear, so every later fsynced batch would be
        silently dropped."""
        _write_batches(tmp_path, [[_paper(1)]], segment_bytes=100_000)
        last = sorted(tmp_path.iterdir())[-1]
        torn = encode_record({"kind": "begin", "batch": "crash"})[:-3]
        with open(last, "ab") as handle:
            handle.write(torn)
        wal = WriteAheadLog(tmp_path, max_segment_bytes=100_000)
        wal.begin_batch("after-crash")
        wal.append_document("after-crash", _paper(2))
        wal.commit_batch("after-crash", 1)
        wal.close()
        state = WriteAheadLog(tmp_path).replay()
        assert [b.batch_id for b in state.batches] == \
            ["batch-1", "after-crash"]

    def test_reopen_after_torn_tail_with_rotation_stays_replayable(
            self, tmp_path):
        """A post-recovery rotation must not turn the (now truncated)
        tear into mid-log corruption that fails the next boot."""
        _write_batches(tmp_path, [[_paper(1)]], segment_bytes=120)
        last = sorted(tmp_path.iterdir())[-1]
        with open(last, "ab") as handle:
            handle.write(b"\xff" * 9)  # garbage shorter than a frame
        wal = WriteAheadLog(tmp_path, max_segment_bytes=120)
        wal.begin_batch("after-crash")
        for i in range(2, 6):
            wal.append_document("after-crash", _paper(i))
        wal.commit_batch("after-crash", 4)
        wal.close()
        state = WriteAheadLog(tmp_path).replay()
        assert [b.batch_id for b in state.batches] == \
            ["batch-1", "after-crash"]

    def test_reopen_appends_to_last_segment(self, tmp_path):
        _write_batches(tmp_path, [[_paper(1)]], segment_bytes=100_000)
        wal = WriteAheadLog(tmp_path, max_segment_bytes=100_000)
        wal.begin_batch("later")
        wal.append_document("later", _paper(2))
        wal.commit_batch("later", 1)
        wal.close()
        state = WriteAheadLog(tmp_path).replay()
        assert [b.batch_id for b in state.batches] == \
            ["batch-1", "later"]


class TestCrashAfterEveryPrefix:
    """Kill the writer after every byte of a multi-segment batch write."""

    def _logical_log(self, directory):
        """The concatenated logical byte stream, in segment order."""
        parts = []
        for path in sorted(directory.iterdir()):
            parts.append((path, path.read_bytes()))
        return parts

    def _truncate_to_prefix(self, source_parts, target_dir, keep):
        """Materialize the first ``keep`` logical bytes as segments."""
        remaining = keep
        for path, data in source_parts:
            take = min(len(data), remaining)
            if take > 0:
                (target_dir / path.name).write_bytes(data[:take])
            remaining -= take
            if remaining <= 0:
                break

    def test_whole_batch_or_nothing_at_every_prefix(self, tmp_path):
        source = tmp_path / "full"
        source.mkdir()
        batches = [
            [_paper(1), _paper(2)],
            [_paper(3), _paper(4), _paper(5)],
        ]
        # ~100-byte segments force each batch across several files, so
        # prefixes also simulate crashes exactly on segment boundaries.
        _write_batches(source, batches, segment_bytes=100)
        parts = self._logical_log(source)
        total = sum(len(data) for _, data in parts)
        assert total > 400  # the sweep below is a real prefix walk

        expected_sets = [
            set(),
            {"wal-001", "wal-002"},
            {"wal-001", "wal-002", "wal-003", "wal-004", "wal-005"},
        ]
        seen_states = set()
        for keep in range(total + 1):
            crash_dir = tmp_path / f"crash-{keep}"
            crash_dir.mkdir()
            self._truncate_to_prefix(parts, crash_dir, keep)
            state = WriteAheadLog(crash_dir).replay()
            visible = {p["paper_id"] for b in state.batches
                       for p in b.papers}
            assert visible in expected_sets, (
                f"prefix {keep}/{total}: partial batch visible: "
                f"{sorted(visible)}"
            )
            seen_states.add(len(state.batches))
        # The sweep actually crossed both durability points.
        assert seen_states == {0, 1, 2}

    def test_recover_and_continue_at_every_prefix(self, tmp_path):
        """After a crash at any byte offset, the reopened log accepts a
        new committed batch and replay sees it — torn tail bytes never
        hide data committed after recovery."""
        source = tmp_path / "full"
        source.mkdir()
        _write_batches(source, [[_paper(1)], [_paper(2)]],
                       segment_bytes=100, commit_last=False)
        parts = self._logical_log(source)
        total = sum(len(data) for _, data in parts)
        for keep in range(0, total + 1, 5):
            crash_dir = tmp_path / f"recover-{keep}"
            crash_dir.mkdir()
            self._truncate_to_prefix(parts, crash_dir, keep)
            wal = WriteAheadLog(crash_dir, max_segment_bytes=100)
            wal.begin_batch("recovery")
            wal.append_document("recovery", _paper(9))
            wal.commit_batch("recovery", 1)
            wal.close()
            state = WriteAheadLog(crash_dir).replay()
            ids = [b.batch_id for b in state.batches]
            assert ids and ids[-1] == "recovery", (
                f"prefix {keep}/{total}: recovery batch lost: {ids}")

    def test_prefix_with_flipped_tail_byte_never_gains_docs(self,
                                                            tmp_path):
        """Bit rot in the torn tail must not resurrect extra papers."""
        source = tmp_path / "full"
        source.mkdir()
        _write_batches(source, [[_paper(1)], [_paper(2)]],
                       segment_bytes=100, commit_last=False)
        parts = self._logical_log(source)
        total = sum(len(data) for _, data in parts)
        for keep in range(0, total + 1, 7):
            crash_dir = tmp_path / f"rot-{keep}"
            crash_dir.mkdir()
            self._truncate_to_prefix(parts, crash_dir, keep)
            segments = sorted(crash_dir.iterdir())
            if segments:
                last = segments[-1]
                data = bytearray(last.read_bytes())
                if data:
                    data[-1] ^= 0x55
                    last.write_bytes(bytes(data))
            try:
                state = WriteAheadLog(crash_dir).replay()
            except WalCorruptionError:
                continue  # strict refusal is an acceptable outcome
            visible = {p["paper_id"] for b in state.batches
                       for p in b.papers}
            assert visible in (set(), {"wal-001"})


def test_records_are_canonical_json(tmp_path):
    """Frames decode as plain JSON (tooling can read the WAL directly)."""
    wal = WriteAheadLog(tmp_path)
    wal.begin_batch("b")
    wal.append_document("b", _paper(7))
    wal.commit_batch("b", 1)
    wal.close()
    raw = b"".join(p.read_bytes() for p in wal.segment_paths())
    kinds = [r["kind"] for r in iter_frames(raw)]
    assert kinds == ["begin", "doc", "commit"]
    payload = json.dumps({"kind": "begin", "batch": "b"},
                         separators=(",", ":"), sort_keys=True)
    assert payload.encode() in raw

"""The shared cross-process result cache: protocol, server, client, L2.

Everything runs against real sockets on ephemeral ports (the protocol
is exercised on the wire, not through mocks); the L2 integration tests
run two independent :class:`QueryService` instances — two "replicas" —
against one cache server and assert a page computed by one is served
by the other without recomputation, and never across an ingest commit.
"""

from __future__ import annotations

import pickle
import socket
import threading

import pytest

from repro.api.system import CovidKG, CovidKGConfig
from repro.cluster import protocol as wire
from repro.cluster.cacheclient import SharedCacheClient, parse_address
from repro.cluster.cacheserver import SharedCacheServer
from repro.corpus.generator import CorpusGenerator, GeneratorConfig
from repro.errors import GatewayError
from repro.serve.service import QueryService, ServeConfig


def _corpus(seed, count, start=0):
    papers = CorpusGenerator(GeneratorConfig(
        seed=seed, papers_per_week=15, tables_per_paper=(1, 2),
    )).papers(start + count)
    return papers[start:]


def _page_ids(results):
    return [(hit.paper_id, hit.score) for hit in results]


# -- wire protocol ---------------------------------------------------------

class TestProtocol:
    def test_frame_roundtrip(self):
        body = wire.pack_frame(wire.OP_PUT, b"engine", b"key", b"value")
        op, fields = wire.unpack_frame(body[4:])
        assert op == wire.OP_PUT
        assert fields == [b"engine", b"key", b"value"]

    def test_empty_fields_roundtrip(self):
        body = wire.pack_frame(wire.OP_PING)
        op, fields = wire.unpack_frame(body[4:])
        assert op == wire.OP_PING and fields == []

    def test_versions_roundtrip(self):
        for versions in ((), (0,), (1, 2, 3), (2**40, -1)):
            packed = wire.pack_versions(versions)
            assert wire.unpack_versions(packed) == versions

    def test_truncated_frame_rejected(self):
        body = wire.pack_frame(wire.OP_GET, b"engine", b"key")
        with pytest.raises(wire.ProtocolError):
            wire.unpack_frame(body[4:-1])

    def test_garbage_rejected(self):
        with pytest.raises(wire.ProtocolError):
            wire.unpack_frame(b"")

    def test_server_rejects_oversized_frame_header(self):
        with SharedCacheServer() as server:
            with socket.create_connection(
                    ("127.0.0.1", server.port), timeout=5.0) as sock:
                sock.sendall((wire.MAX_FRAME_BYTES + 1).to_bytes(4, "big"))
                reply = sock.recv(4096)
        # The server answered with an error frame and closed.
        assert reply == b"" or wire.OP_ERROR.to_bytes(1, "big") in reply


# -- server operations -----------------------------------------------------

class TestCacheServer:
    def test_get_put_version_equality(self):
        with SharedCacheServer() as server, \
                SharedCacheClient(server.address) as client:
            versions = (3, 7)
            assert client.get("all_fields", ("q",), versions) == \
                (False, None)
            assert client.put("all_fields", ("q",), versions, [1, 2])
            assert client.get("all_fields", ("q",), versions) == \
                (True, [1, 2])
            # A reader still on the old snapshot misses but must not
            # destroy the entry the caught-up replicas are using.
            assert client.get("all_fields", ("q",), (2, 7)) == \
                (False, None)
            assert client.get("all_fields", ("q",), versions)[0]
            # A reader from the future proves the entry stale for all.
            assert client.get("all_fields", ("q",), (4, 7)) == \
                (False, None)
            assert client.get("all_fields", ("q",), versions) == \
                (False, None)

    def test_invalidate_purges_only_stale_entries_of_engine(self):
        with SharedCacheServer() as server, \
                SharedCacheClient(server.address) as client:
            client.put("kg", ("a",), (1,), "old")
            client.put("kg", ("b",), (2,), "new")
            client.put("table", ("c",), (1,), "other-engine")
            assert client.invalidate("kg", (2,)) == 1
            assert client.get("kg", ("b",), (2,)) == (True, "new")
            assert client.get("table", ("c",), (1,)) == \
                (True, "other-engine")

    def test_lru_eviction(self):
        with SharedCacheServer(max_entries=2) as server, \
                SharedCacheClient(server.address) as client:
            client.put("kg", ("a",), (1,), "a")
            client.put("kg", ("b",), (1,), "b")
            client.get("kg", ("a",), (1,))  # refresh a
            client.put("kg", ("c",), (1,), "c")  # evicts b
            assert client.get("kg", ("a",), (1,))[0]
            assert not client.get("kg", ("b",), (1,))[0]
            assert client.get("kg", ("c",), (1,))[0]

    def test_ttl_expiry(self):
        clock = [0.0]
        server = SharedCacheServer(ttl_seconds=10.0,
                                   clock=lambda: clock[0]).start()
        try:
            with SharedCacheClient(server.address) as client:
                client.put("kg", ("a",), (1,), "a")
                assert client.get("kg", ("a",), (1,))[0]
                clock[0] = 11.0
                assert not client.get("kg", ("a",), (1,))[0]
                assert server.stats_snapshot()["expirations"] == 1
        finally:
            server.stop()

    def test_registry_roundtrip(self):
        with SharedCacheServer() as server, \
                SharedCacheClient(server.address) as client:
            assert client.list_replicas() == []
            assert client.register("r1", "127.0.0.1", 9001, pid=7)
            assert client.register("r0", "127.0.0.1", 9000, pid=6)
            replicas = client.list_replicas()
            assert [r["replica_id"] for r in replicas] == ["r0", "r1"]
            assert client.deregister("r1")
            assert len(client.list_replicas()) == 1

    def test_stats_exposed(self):
        with SharedCacheServer() as server, \
                SharedCacheClient(server.address) as client:
            client.put("kg", ("a",), (1,), "a")
            client.get("kg", ("a",), (1,))
            stats = client.server_stats()
            assert stats["puts"] == 1 and stats["hits"] == 1
            assert stats["entries"] == 1

    def test_concurrent_clients(self):
        with SharedCacheServer() as server:
            errors = []

            def hammer(worker):
                try:
                    with SharedCacheClient(server.address) as client:
                        for i in range(50):
                            key = (f"w{worker}", i % 5)
                            client.put("kg", key, (1,), [worker, i])
                            hit, value = client.get("kg", key, (1,))
                            assert hit and value[0] == worker
                except Exception as exc:  # pragma: no cover - fail path
                    errors.append(exc)

            threads = [threading.Thread(target=hammer, args=(w,))
                       for w in range(4)]
            for thread in threads:
                thread.start()
            for thread in threads:
                thread.join()
            assert not errors


# -- client degradation ----------------------------------------------------

class TestCacheClientDegradation:
    def test_bad_address_rejected(self):
        with pytest.raises(GatewayError):
            parse_address("nonsense")
        with pytest.raises(GatewayError):
            parse_address("host:notaport")
        assert parse_address("10.0.0.1:8200") == ("10.0.0.1", 8200)

    def test_dead_server_degrades_to_miss(self):
        # Grab a port that nothing listens on.
        probe = socket.socket()
        probe.bind(("127.0.0.1", 0))
        port = probe.getsockname()[1]
        probe.close()
        client = SharedCacheClient(f"127.0.0.1:{port}", timeout=0.5)
        assert client.get("kg", ("a",), (1,)) == (False, None)
        assert client.put("kg", ("a",), (1,), "x") is False
        assert client.invalidate("kg", (1,)) == 0
        assert not client.ping()
        stats = client.stats_snapshot()
        assert stats["errors"] >= 1

    def test_breaker_skips_io_then_recovers(self):
        clock = [0.0]
        with SharedCacheServer() as server:
            client = SharedCacheClient(server.address, timeout=0.5,
                                       breaker_seconds=5.0,
                                       clock=lambda: clock[0])
            client.put("kg", ("a",), (1,), "x")
            client._trip_breaker()
            # Breaker open: no socket traffic, straight misses.
            assert client.get("kg", ("a",), (1,)) == (False, None)
            assert client.stats_snapshot()["breaker_skips"] == 1
            clock[0] = 6.0  # window lapsed: traffic resumes
            assert client.get("kg", ("a",), (1,)) == (True, "x")
            client.close()

    def test_server_restart_is_one_retry_not_an_error(self):
        server = SharedCacheServer().start()
        address, port = server.address, server.port
        client = SharedCacheClient(address, timeout=1.0)
        client.put("kg", ("a",), (1,), "x")
        server.stop()
        server2 = SharedCacheServer(port=port).start()
        try:
            # The persistent socket died with the old server; the call
            # must transparently retry on a fresh connection.
            assert client.ping()
        finally:
            client.close()
            server2.stop()

    def test_oversized_value_skipped_without_io(self):
        with SharedCacheServer() as server, \
                SharedCacheClient(server.address) as client:
            blob = b"x" * (wire.MAX_FRAME_BYTES + 1)
            assert client.put("kg", ("big",), (1,), blob) is False
            assert not client.get("kg", ("big",), (1,))[0]

    def test_oversized_key_degrades_without_dropping_connection(self):
        """A huge repr'd key must not nuke the healthy connection.

        An oversized frame is a deterministic client-side condition:
        the call degrades to a miss/no-op, but the persistent socket
        stays up and the breaker stays closed for everyone else.
        """
        with SharedCacheServer() as server, \
                SharedCacheClient(server.address) as client:
            client.put("kg", ("a",), (1,), "x")
            connects = client.stats_snapshot()["connects"]
            big_key = ("k" * wire.MAX_FRAME_BYTES,)
            assert client.put("kg", big_key, (1,), "v") is False
            assert client.get("kg", big_key, (1,)) == (False, None)
            # The healthy entry still answers on the same connection,
            # immediately — no reconnect, no breaker window.
            assert client.get("kg", ("a",), (1,)) == (True, "x")
            stats = client.stats_snapshot()
            assert stats["connects"] == connects
            assert stats["breaker_skips"] == 0

    def test_unpicklable_value_counts_as_error(self):
        with SharedCacheServer() as server, \
                SharedCacheClient(server.address) as client:
            assert client.put("kg", ("t",), (1,), threading.Lock()) \
                is False
            assert client.stats_snapshot()["errors"] == 1

    def test_corrupt_cached_blob_degrades_to_miss(self):
        with SharedCacheServer() as server, \
                SharedCacheClient(server.address) as client:
            # Another (buggy) writer stored bytes that do not unpickle.
            with server._lock:
                server._entries[(b"kg", repr(("bad",)).encode())] = \
                    ((1,), b"not a pickle", float("inf"))
            assert client.get("kg", ("bad",), (1,)) == (False, None)

    def test_value_roundtrip_preserves_rich_objects(self):
        with SharedCacheServer() as server, \
                SharedCacheClient(server.address) as client:
            value = {"nested": [(1, "a"), (2, "b")], "flag": True}
            client.put("kg", ("rich",), (1,), value)
            assert client.get("kg", ("rich",), (1,)) == (True, value)
            # and it really crossed the wire pickled
            blob = pickle.dumps(value,
                                protocol=pickle.HIGHEST_PROTOCOL)
            assert len(blob) > 0


# -- the serve tier's L2 ---------------------------------------------------

@pytest.fixture(scope="module")
def cache_server():
    with SharedCacheServer() as server:
        yield server


def _replica(cache_server, seed=31, count=24):
    """One 'replica': an independent system + service sharing the L2."""
    system = CovidKG(CovidKGConfig(num_shards=2))
    system.ingest(_corpus(seed, count))
    return QueryService(system, ServeConfig(
        num_workers=2, shared_cache=cache_server.address))


class TestServiceSharedL2:
    def test_page_computed_once_served_everywhere(self, cache_server):
        replica_a = _replica(cache_server)
        replica_b = _replica(cache_server)
        try:
            first = replica_a.query("all_fields", query="vaccine")
            assert not first.cached and not first.shared
            # Replica B never computed this page; it must arrive from
            # the shared cache, not from B's own L1.
            second = replica_b.query("all_fields", query="vaccine")
            assert second.cached and second.shared
            assert _page_ids(second.value) == _page_ids(first.value)
            # ... and B's L1 now holds it: the third read is local.
            third = replica_b.query("all_fields", query="vaccine")
            assert third.cached and not third.shared
        finally:
            replica_a.close()
            replica_b.close()

    def test_ingest_commit_blocks_stale_shared_pages(self, cache_server):
        replica_a = _replica(cache_server, seed=77)
        replica_b = _replica(cache_server, seed=77)
        try:
            replica_a.query("all_fields", query="antibody")
            # A commits a batch; its version counters move and it
            # broadcasts the new snapshot.
            replica_a.ingest(_corpus(77, 4, start=24))
            fresh_a = replica_a.query("all_fields", query="antibody")
            assert not fresh_a.shared  # recomputed post-commit
            # B is still on the old corpus: it must not be handed A's
            # post-commit page (version snapshots differ), nor may A be
            # handed B's pre-commit one.
            result_b = replica_b.query("all_fields", query="antibody")
            assert not result_b.shared
            assert result_b.versions != fresh_a.versions
            # Once B applies the same batch, the snapshots converge and
            # sharing resumes.
            replica_b.ingest(_corpus(77, 4, start=24))
            caught_up = replica_b.query("all_fields", query="antibody")
            assert caught_up.versions == fresh_a.versions
        finally:
            replica_a.close()
            replica_b.close()

    def test_service_stats_report_shared_tier(self, cache_server):
        service = _replica(cache_server, seed=5, count=12)
        try:
            service.query("all_fields", query="protein")
            shared = service.stats()["cache"]["shared"]
            assert shared["puts"] >= 1
        finally:
            service.close()

    def test_service_without_shared_cache_reports_disabled(self):
        system = CovidKG(CovidKGConfig(num_shards=1))
        system.ingest(_corpus(9, 8))
        with QueryService(system, ServeConfig(num_workers=1)) as service:
            assert service.stats()["cache"]["shared"] == \
                {"enabled": False}
            assert service.shared_cache is None

    def test_degraded_cache_never_fails_a_query(self):
        # Shared cache address points at nothing: every query must
        # still answer, just without the L2.
        probe = socket.socket()
        probe.bind(("127.0.0.1", 0))
        port = probe.getsockname()[1]
        probe.close()
        system = CovidKG(CovidKGConfig(num_shards=1))
        system.ingest(_corpus(9, 8))
        with QueryService(system, ServeConfig(
                num_workers=1, shared_cache=f"127.0.0.1:{port}",
                shared_cache_timeout=0.3)) as service:
            result = service.query("all_fields", query="protein")
            assert result.value is not None
            assert not result.shared

"""Tests for losses, optimizers, metrics, and the Sequential model."""

import numpy as np
import pytest

from repro.errors import ModelError
from repro.neural.layers import Dense, Embedding, Flatten
from repro.neural.losses import BinaryCrossEntropy, MeanSquaredError
from repro.neural.metrics import accuracy, binary_metrics, f1_score, precision_recall
from repro.neural.model import Sequential, batches
from repro.neural.optimizers import SGD, Adam
from repro.neural.recurrent import GRU

RNG = np.random.default_rng(11)


class TestLosses:
    def test_bce_perfect_prediction_is_near_zero(self):
        loss = BinaryCrossEntropy()
        assert loss.forward(np.array([0.999, 0.001]),
                            np.array([1.0, 0.0])) < 0.01

    def test_bce_wrong_prediction_is_large(self):
        loss = BinaryCrossEntropy()
        assert loss.forward(np.array([0.01]), np.array([1.0])) > 4.0

    def test_bce_gradient_matches_numeric(self):
        loss = BinaryCrossEntropy()
        probs = np.array([0.3, 0.7, 0.5])
        targets = np.array([1.0, 0.0, 1.0])
        analytic = loss.backward(probs, targets)
        eps = 1e-7
        for i in range(3):
            bumped = probs.copy()
            bumped[i] += eps
            numeric = (loss.forward(bumped, targets)
                       - loss.forward(probs, targets)) / eps
            assert abs(analytic[i] - numeric) < 1e-4

    def test_bce_shape_mismatch(self):
        with pytest.raises(ModelError):
            BinaryCrossEntropy().forward(np.zeros(2), np.zeros(3))

    def test_mse(self):
        loss = MeanSquaredError()
        assert loss.forward(np.array([1.0, 2.0]), np.array([1.0, 4.0])) == 2.0
        np.testing.assert_allclose(
            loss.backward(np.array([1.0, 2.0]), np.array([1.0, 4.0])),
            [0.0, -2.0],
        )


class TestOptimizers:
    def quadratic_descent(self, optimizer, steps=200):
        param = np.array([5.0])
        for _ in range(steps):
            grad = 2.0 * param  # d/dx of x^2
            optimizer.step([param], [grad])
        return abs(float(param[0]))

    def test_sgd_converges_on_quadratic(self):
        assert self.quadratic_descent(SGD(learning_rate=0.1)) < 1e-3

    def test_sgd_momentum_converges(self):
        assert self.quadratic_descent(
            SGD(learning_rate=0.05, momentum=0.9)
        ) < 1e-2

    def test_adam_converges_on_quadratic(self):
        assert self.quadratic_descent(Adam(learning_rate=0.1), 400) < 1e-2

    def test_clipping_bounds_update(self):
        param = np.array([0.0])
        SGD(learning_rate=1.0, clip_norm=1.0).step(
            [param], [np.array([100.0])]
        )
        assert abs(param[0]) <= 1.0 + 1e-9

    def test_invalid_learning_rate(self):
        with pytest.raises(ModelError):
            SGD(learning_rate=0.0)
        with pytest.raises(ModelError):
            Adam(learning_rate=-1.0)


class TestMetrics:
    def test_perfect(self):
        truth = np.array([1, 0, 1, 0])
        assert f1_score(truth, truth) == 1.0
        assert accuracy(truth, truth) == 1.0

    def test_precision_recall_asymmetry(self):
        truth = np.array([1, 1, 1, 0])
        predicted = np.array([1, 0, 0, 0])
        precision, recall = precision_recall(truth, predicted)
        assert precision == 1.0
        assert recall == pytest.approx(1 / 3)

    def test_undefined_cases_are_zero(self):
        precision, recall = precision_recall(
            np.array([0, 0]), np.array([0, 0])
        )
        assert precision == 0.0 and recall == 0.0
        assert f1_score(np.array([0, 0]), np.array([0, 0])) == 0.0

    def test_binary_metrics_keys(self):
        metrics = binary_metrics(np.array([1, 0]), np.array([1, 1]))
        assert set(metrics) == {"precision", "recall", "f1", "accuracy"}

    def test_shape_mismatch(self):
        with pytest.raises(ModelError):
            f1_score(np.array([1]), np.array([1, 0]))


class TestBatches:
    def test_covers_all_indices(self):
        seen = [i for batch in batches(10, 3) for i in batch]
        assert sorted(seen) == list(range(10))

    def test_shuffled_when_rng_given(self):
        rng = np.random.default_rng(0)
        order = [i for batch in batches(100, 10, rng) for i in batch]
        assert order != list(range(100))
        assert sorted(order) == list(range(100))


class TestSequential:
    def test_learns_linearly_separable_data(self):
        x = RNG.normal(size=(200, 2))
        y = (x[:, 0] + x[:, 1] > 0).astype(float)
        model = Sequential(
            [Dense(2, 8, activation="relu", seed=1),
             Dense(8, 1, activation="sigmoid", seed=2)],
            optimizer=Adam(learning_rate=0.05),
        )
        history = model.fit(x, y, epochs=30, batch_size=32)
        assert history.losses[-1] < history.losses[0]
        assert model.evaluate(x, y)["accuracy"] > 0.95

    def test_learns_sequence_task_with_gru(self):
        # Classify whether a 0/1 sequence contains token "2" anywhere.
        rng = np.random.default_rng(3)
        x = rng.integers(0, 2, size=(300, 6))
        positives = rng.random(300) < 0.5
        for i in np.flatnonzero(positives):
            x[i, rng.integers(6)] = 2
        y = positives.astype(float)
        model = Sequential(
            [Embedding(3, 8, seed=4),
             GRU(8, 8, return_sequences=False, seed=5),
             Dense(8, 1, activation="sigmoid", seed=6)],
            optimizer=Adam(learning_rate=0.02, clip_norm=5.0),
        )
        model.fit(x, y, epochs=15, batch_size=32)
        assert model.evaluate(x, y)["f1"] > 0.9

    def test_predict_proba_in_unit_interval(self):
        model = Sequential([Dense(3, 1, activation="sigmoid")])
        probs = model.predict_proba(RNG.normal(size=(10, 3)))
        assert np.all((probs >= 0) & (probs <= 1))
        assert probs.shape == (10,)

    def test_history_records_time(self):
        model = Sequential([Dense(2, 1, activation="sigmoid")])
        history = model.fit(RNG.normal(size=(10, 2)),
                            RNG.integers(0, 2, 10).astype(float),
                            epochs=2)
        assert len(history.seconds) == 2
        assert history.total_seconds > 0

    def test_empty_layer_list_rejected(self):
        with pytest.raises(ModelError):
            Sequential([])

    def test_num_parameters(self):
        model = Sequential([Dense(3, 2), Flatten()])
        assert model.num_parameters() == 3 * 2 + 2

    def test_mismatched_lengths_rejected(self):
        model = Sequential([Dense(2, 1, activation="sigmoid")])
        with pytest.raises(ModelError):
            model.fit(np.zeros((5, 2)), np.zeros(4))

"""Differential test: cluster serving must equal single-process serving.

Boots a *real* cluster — two replica gateway subprocesses over common
shards, shared cache, router — and holds its answers against an
identically built single-process system, across an ingest commit.  The
property under test is the shared cache's invalidation contract: after
a commit fans out, no replica may ever serve a pre-commit cached page,
whether the page would come from its own L1 or from the shared tier
another replica warmed.
"""

from __future__ import annotations

import pytest

from repro.api.system import CovidKG, CovidKGConfig
from repro.cluster.runner import ClusterConfig, ClusterRunner
from repro.corpus.generator import CorpusGenerator, GeneratorConfig
from repro.gateway import GatewayClient

SEED = 11
BASE_PAPERS = 20
SHARDS = 2
QUERY = "vaccine trial"


def _papers(count, start=0):
    # Mirrors ClusterRunner._build_system's generator settings so the
    # reference system and the cluster serve the same corpus.
    papers = CorpusGenerator(GeneratorConfig(
        seed=SEED, papers_per_week=25,
    )).papers(start + count)
    return papers[start:]


def _served_ids(response):
    payload = response.json()
    assert response.status == 200, response.text
    return ([hit["paper_id"] for hit in payload["value"]["results"]],
            payload["value"]["total_matches"])


def _direct_ids(results):
    return ([hit.paper_id for hit in results.results],
            results.total_matches)


@pytest.fixture(scope="module")
def cluster():
    config = ClusterConfig(replicas=2, generate=BASE_PAPERS,
                           shards=SHARDS, seed=SEED, workers=2,
                           probe_interval=0.1)
    with ClusterRunner(config) as runner:
        yield runner


@pytest.fixture(scope="module")
def reference():
    system = CovidKG(CovidKGConfig(num_shards=SHARDS))
    system.ingest(_papers(BASE_PAPERS))
    return system


def _replica_clients(runner):
    with GatewayClient("127.0.0.1", runner.router_port) as router:
        records = router.get("/v1/cluster").json()["replicas"]
    return {record["replica_id"]:
            GatewayClient(record["host"], record["port"])
            for record in records}


def test_cluster_never_serves_a_pre_commit_page(cluster, reference):
    router = GatewayClient("127.0.0.1", cluster.router_port)
    replicas = _replica_clients(cluster)
    try:
        # Pre-commit: the routed answer matches the reference system.
        before = _served_ids(router.search("all_fields", query=QUERY))
        assert before == _direct_ids(reference.search(QUERY, page=1))
        # Warm the page everywhere: each replica's L1 and the shared
        # cache now hold the pre-commit result.
        for client in replicas.values():
            assert _served_ids(
                client.search("all_fields", query=QUERY)) == before
        # Commit a batch through the router (fans out to every
        # replica) and apply the same batch to the reference.
        batch = _papers(6, start=BASE_PAPERS)
        response = router.ingest(batch)
        assert response.status == 200, response.text
        assert response.headers["x-cluster-write-replicas"] == "2"
        reference.ingest(batch)
        after = _direct_ids(reference.search(QUERY, page=1))
        assert after != before, (
            "the ingested batch must change this page for the "
            "differential to mean anything")
        # Post-commit, *immediately* and repeatedly: every replica and
        # the routed path must serve the post-commit page.  A stale L1
        # entry or a shared-cache hit stamped with the old version
        # snapshot would surface here as `before`.
        for _ in range(3):
            for replica_id, client in replicas.items():
                served = _served_ids(
                    client.search("all_fields", query=QUERY))
                assert served == after, (
                    f"replica {replica_id} served a pre-commit page "
                    f"after the ingest committed")
            assert _served_ids(
                router.search("all_fields", query=QUERY)) == after
    finally:
        router.close()
        for client in replicas.values():
            client.close()


def test_replicas_share_post_commit_pages(cluster):
    """After the differential above, the shared tier still works: a
    page computed by one replica is handed to the other without
    recomputation (both sit on the same post-commit snapshot)."""
    replicas = _replica_clients(cluster)
    try:
        clients = list(replicas.values())
        fresh_query = "antibody response"
        first = clients[0].search("all_fields", query=fresh_query)
        assert first.status == 200
        assert not first.json()["cached"]
        second = clients[1].search("all_fields", query=fresh_query)
        assert second.status == 200
        assert second.json()["cached"], (
            "the second replica should have received the page from "
            "the shared cache, not recomputed it")
        assert second.json()["value"] == first.json()["value"]
        assert second.json()["versions"] == first.json()["versions"]
    finally:
        for client in replicas.values():
            client.close()


def test_healthz_reports_cluster_feed(cluster):
    """Replica healthz carries what the router and operators feed on:
    version counters, WAL replay state, admission width."""
    replicas = _replica_clients(cluster)
    try:
        payloads = {replica_id: client.healthz().json()
                    for replica_id, client in replicas.items()}
        versions = {tuple(sorted(payload["versions"].items()))
                    for payload in payloads.values()}
        assert len(versions) == 1, (
            "replicas diverged after lockstep ingest: "
            f"{payloads}")
        for payload in payloads.values():
            assert payload["ingest"]["attached"] is True
            assert payload["ingest"]["replaying"] is False
            assert payload["admission"]["effective_width"] >= 1
    finally:
        for client in replicas.values():
            client.close()

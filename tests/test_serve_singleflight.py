"""Single-flight miss collapsing and negative caching in the serve tier."""

import threading

import pytest

from repro.api.system import CovidKG, CovidKGConfig
from repro.corpus.generator import CorpusGenerator, GeneratorConfig
from repro.errors import QueryError
from repro.serve.cache import ResultCache
from repro.serve.service import QueryService, ServeConfig

VERSIONS = (1,)


class FakeClock:
    def __init__(self):
        self.now = 1000.0

    def __call__(self):
        return self.now

    def advance(self, seconds):
        self.now += seconds


@pytest.fixture()
def clock():
    return FakeClock()


@pytest.fixture()
def cache(clock):
    return ResultCache(max_entries=8, ttl_seconds=100.0,
                       negative_ttl_seconds=5.0, clock=clock)


class TestClaim:
    def test_leader_then_hit(self, cache):
        status, flight = cache.claim("k", VERSIONS)
        assert status == "leader"
        cache.complete(flight, VERSIONS, "value")
        assert cache.claim("k", VERSIONS) == ("hit", "value")
        assert cache.inflight == 0

    def test_second_claim_is_follower(self, cache):
        _, flight = cache.claim("k", VERSIONS)
        status, other = cache.claim("k", VERSIONS)
        assert status == "follower"
        assert other is flight
        assert cache.stats.collapsed == 1
        cache.complete(flight, VERSIONS, "v")
        assert flight.future.result(timeout=1) == "v"

    def test_version_change_makes_new_leader(self, cache):
        _, flight = cache.claim("k", VERSIONS)
        status, newer = cache.claim("k", (2,))
        assert status == "leader"
        assert newer is not flight
        # The superseded flight completes without clobbering its successor.
        cache.complete(flight, VERSIONS, "old")
        assert cache.inflight == 1

    def test_transient_failure_not_cached(self, cache):
        _, flight = cache.claim("k", VERSIONS)
        cache.fail(flight, RuntimeError("shard flapped"))
        with pytest.raises(RuntimeError):
            flight.future.result(timeout=1)
        status, _ = cache.claim("k", VERSIONS)
        assert status == "leader"  # next request recomputes

    def test_negative_failure_replayed(self, cache):
        _, flight = cache.claim("k", VERSIONS)
        error = QueryError("malformed")
        cache.fail(flight, error, negative=True)
        status, replayed = cache.claim("k", VERSIONS)
        assert status == "negative"
        assert replayed is error
        assert cache.stats.negative_hits == 1

    def test_negative_entry_expires(self, cache, clock):
        _, flight = cache.claim("k", VERSIONS)
        cache.fail(flight, QueryError("bad"), negative=True)
        clock.advance(5.1)  # past negative_ttl_seconds=5.0
        status, _ = cache.claim("k", VERSIONS)
        assert status == "leader"

    def test_negative_entry_invalidated_by_version(self, cache):
        _, flight = cache.claim("k", VERSIONS)
        cache.fail(flight, QueryError("bad"), negative=True)
        status, _ = cache.claim("k", (2,))
        assert status == "leader"  # data changed: retry for real

    def test_positive_ttl_still_applies(self, cache, clock):
        _, flight = cache.claim("k", VERSIONS)
        cache.complete(flight, VERSIONS, "v")
        clock.advance(100.1)
        status, _ = cache.claim("k", VERSIONS)
        assert status == "leader"
        assert cache.stats.expirations == 1


def _corpus(count=30):
    return CorpusGenerator(GeneratorConfig(
        seed=41, papers_per_week=15, tables_per_paper=(0, 1),
    )).papers(count)


@pytest.fixture(scope="module")
def system():
    kg = CovidKG(CovidKGConfig(num_shards=2))
    kg.ingest(_corpus())
    return kg


class TestServiceSingleFlight:
    def test_concurrent_identical_misses_compute_once(self, system):
        hammer = 12
        computations = []
        release = threading.Event()
        entered = threading.Event()

        with QueryService(system, ServeConfig(num_workers=2)) as service:
            real = service._dispatch["all_fields"]

            def slow(query, page=1):
                computations.append(query)
                entered.set()
                assert release.wait(timeout=30)
                return real(query=query, page=page)

            service._dispatch["all_fields"] = slow
            futures = [
                service.submit("all_fields", query="vaccine")
                for _ in range(hammer)
            ]
            assert entered.wait(timeout=10)  # leader is inside the engine
            release.set()
            results = [future.result(timeout=30) for future in futures]
            stats = service.stats()

        # Exactly one underlying computation for N identical misses.
        assert len(computations) == 1
        leaders = [r for r in results if not r.collapsed and not r.cached]
        followers = [r for r in results if r.collapsed]
        assert len(leaders) == 1
        assert len(followers) == hammer - 1
        values = {tuple(hit.paper_id for hit in r.value) for r in results}
        assert len(values) == 1  # everyone saw the same page
        assert stats["collapsed_misses"] == hammer - 1
        assert stats["cache"]["collapsed"] == hammer - 1
        assert stats["cache"]["misses"] == 1

    def test_followers_share_leader_failure(self, system):
        release = threading.Event()
        entered = threading.Event()

        with QueryService(system, ServeConfig(num_workers=2)) as service:
            def explode(query, page=1):
                entered.set()
                assert release.wait(timeout=30)
                raise RuntimeError("backend down")

            service._dispatch["all_fields"] = explode
            futures = [
                service.submit("all_fields", query="variant")
                for _ in range(4)
            ]
            assert entered.wait(timeout=10)
            release.set()
            for future in futures:
                with pytest.raises(RuntimeError, match="backend down"):
                    future.result(timeout=30)
            # Transient failure: nothing cached, next claim recomputes.
            assert service.cache.inflight == 0

    def test_negative_caching_replays_query_errors(self, system):
        computations = []

        with QueryService(system, ServeConfig(num_workers=2)) as service:
            def bad_request(query, page=1):
                computations.append(query)
                raise QueryError("unbalanced quotes")

            service._dispatch["all_fields"] = bad_request
            with pytest.raises(QueryError):
                service.query("all_fields", query='"broken')
            for _ in range(3):  # replayed from the negative cache
                with pytest.raises(QueryError, match="unbalanced quotes"):
                    service.query("all_fields", query='"broken')
            stats = service.stats()

        assert len(computations) == 1
        assert stats["negative_hits"] == 3
        assert stats["cache"]["negative_hits"] == 3

    def test_fanout_latency_observed_on_sharded_search(self):
        system = CovidKG(CovidKGConfig(num_shards=2, search_shards=3))
        system.ingest(_corpus(20))
        with QueryService(system, ServeConfig(num_workers=2)) as service:
            service.query("all_fields", query="vaccine")
            stats = service.stats()
        assert stats["latency"]["shard_fanout"]["count"] > 0

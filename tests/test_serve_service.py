"""Integration tests for the QueryService serving tier."""

import random
import threading

import pytest

from repro.api.system import CovidKG, CovidKGConfig
from repro.corpus.generator import CorpusGenerator, GeneratorConfig
from repro.errors import (
    QueryError,
    ServiceClosedError,
    ServiceOverloadedError,
)
from repro.serve.service import QueryService, ServeConfig


def _corpus(seed, count, start=0):
    """``count`` papers; ``start`` offsets ids so batches never collide
    (the generator numbers paper_ids sequentially regardless of seed)."""
    papers = CorpusGenerator(GeneratorConfig(
        seed=seed, papers_per_week=15, tables_per_paper=(1, 2),
    )).papers(start + count)
    return papers[start:]


def _page_ids(results):
    return [(hit.paper_id, hit.score) for hit in results]


@pytest.fixture(scope="module")
def system():
    kg = CovidKG(CovidKGConfig(num_shards=3))
    kg.ingest(_corpus(31, 40))
    return kg


@pytest.fixture()
def service(system):
    with QueryService(system, ServeConfig(num_workers=2)) as svc:
        yield svc


class TestAnswersMatchDirect:
    def test_all_fields(self, service, system):
        direct = system.search("vaccine side effects", page=1)
        served = service.query("all_fields",
                               query="vaccine side effects", page=1)
        assert _page_ids(served.value) == _page_ids(direct)
        assert served.value.total_matches == direct.total_matches

    def test_title_abstract(self, service, system):
        direct = system.search_fields(abstract="vaccine")
        served = service.query("title_abstract", abstract="vaccine")
        assert _page_ids(served.value) == _page_ids(direct)

    def test_table(self, service, system):
        direct = system.search_tables("dosage")
        served = service.query("table", query="dosage")
        assert _page_ids(served.value) == _page_ids(direct)

    def test_kg(self, service, system):
        direct = system.search_graph("side effects", top_k=5)
        served = service.query("kg", query="side effects", top_k=5)
        assert [h.node.node_id for h in served.value] == \
            [h.node.node_id for h in direct]

    def test_meta_profile(self, service, system):
        direct = system.meta_profile()
        served = service.query("meta_profile")
        assert served.value.to_json() == direct.to_json()

    def test_unknown_engine_rejected(self, service):
        with pytest.raises(QueryError):
            service.query("regex_all_the_things", query="x")


class TestCaching:
    def test_normalized_repeats_hit(self, service):
        cold = service.query("all_fields", query="vaccine")
        warm = service.query("all_fields", query="  VACCINE ")
        assert not cold.cached and warm.cached
        assert _page_ids(warm.value) == _page_ids(cold.value)
        stats = service.stats()
        assert stats["cache"]["hits"] >= 1
        assert stats["cache"]["misses"] >= 1

    def test_pages_cached_separately(self, service):
        one = service.query("all_fields", query="covid", page=1)
        two = service.query("all_fields", query="covid", page=2)
        assert not two.cached
        assert _page_ids(one.value) != _page_ids(two.value)

    def test_stats_report_latency_percentiles(self, service):
        for _ in range(5):
            service.query("all_fields", query="vaccine")
        latency = service.stats()["latency"]
        assert latency["overall"]["count"] >= 5
        for label in ("p50_ms", "p95_ms", "p99_ms"):
            assert latency["overall"][label] is not None
            assert latency["overall"][label] >= 0.0


class TestInvalidation:
    def test_cached_result_refreshes_after_ingest(self):
        """The acceptance-criterion test: pre-ingest cache entries must
        not survive an ingest that adds a matching paper."""
        system = CovidKG(CovidKGConfig(num_shards=2))
        system.ingest(_corpus(77, 20))
        with QueryService(system) as svc:
            query = "vaccine side effects"
            before = svc.query("all_fields", query=query)
            assert svc.query("all_fields", query=query).cached

            new_batch = _corpus(78, 5, start=20)
            svc.ingest(new_batch)

            after = svc.query("all_fields", query=query)
            assert not after.cached, \
                "ingest must invalidate the cached page"
            direct = system.search(query)
            assert _page_ids(after.value) == _page_ids(direct)
            assert after.value.total_matches >= before.value.total_matches
            assert svc.stats()["cache"]["invalidations"] >= 1

    def test_kg_results_refresh_after_fusion_writes(self):
        system = CovidKG(CovidKGConfig(num_shards=2))
        system.ingest(_corpus(79, 10))
        with QueryService(system) as svc:
            svc.query("kg", query="side effects")
            assert svc.query("kg", query="side effects").cached
            svc.ingest(_corpus(80, 5, start=10))
            refreshed = svc.query("kg", query="side effects")
            assert not refreshed.cached
            direct = system.search_graph("side effects")
            assert [h.node.node_id for h in refreshed.value] == \
                [h.node.node_id for h in direct]


class TestAdmissionControl:
    def test_overload_sheds_instead_of_hanging(self, system):
        config = ServeConfig(num_workers=1, max_queue=2)
        with QueryService(system, config) as svc:
            release = threading.Event()
            started = threading.Event()

            def occupy_worker():
                started.set()
                release.wait(timeout=10)

            blocker = svc._pool.submit(occupy_worker)
            assert started.wait(timeout=5)
            with pytest.raises(ServiceOverloadedError):
                for i in range(8):  # distinct queries: no cache hits
                    svc.submit("all_fields", query=f"vaccine {i}")
            release.set()
            blocker.result(timeout=5)
            assert svc.stats()["shed"] >= 1

    def test_closed_service_rejects(self, system):
        svc = QueryService(system)
        svc.close()
        with pytest.raises(ServiceClosedError):
            svc.query("all_fields", query="vaccine")
        with pytest.raises(ServiceClosedError):
            svc.ingest([])


class TestConcurrentWorkload:
    def test_concurrent_mixed_reads_and_ingest(self):
        """Property-style: under a racing read/ingest workload the
        service must stay exception-free, and once quiescent every
        query must answer exactly as the bare system does."""
        system = CovidKG(CovidKGConfig(num_shards=2))
        system.ingest(_corpus(90, 15))
        batches = [_corpus(91 + i, 4, start=15 + 4 * i)
                   for i in range(3)]
        queries = ["vaccine", "side effects", "dosage symptoms",
                   "covid children", "pfizer trial"]
        errors = []
        served_pages = []

        with QueryService(system, ServeConfig(num_workers=4)) as svc:
            def reader(seed):
                rng = random.Random(seed)
                try:
                    for _ in range(25):
                        query = rng.choice(queries)
                        result = svc.query("all_fields", query=query,
                                           page=1)
                        served_pages.append(
                            (query, result.versions,
                             _page_ids(result.value))
                        )
                except Exception as exc:  # noqa: BLE001 - recorded
                    errors.append(exc)

            def writer():
                try:
                    for batch in batches:
                        svc.ingest(batch)
                except Exception as exc:  # noqa: BLE001 - recorded
                    errors.append(exc)

            threads = [threading.Thread(target=reader, args=(s,))
                       for s in range(4)]
            threads.append(threading.Thread(target=writer))
            for thread in threads:
                thread.start()
            for thread in threads:
                thread.join(timeout=120)
            assert not any(t.is_alive() for t in threads)
            assert not errors, f"workload raised: {errors!r}"

            # Same query + same data-version snapshot => identical page,
            # no matter which thread served it or whether it was cached.
            by_key = {}
            for query, versions, page in served_pages:
                key = (query, versions)
                assert by_key.setdefault(key, page) == page

            # Quiescent equivalence: the served answer is exactly the
            # direct CovidKG answer for every query in the mix.
            for query in queries:
                served = svc.query("all_fields", query=query, page=1)
                direct = system.search(query, page=1)
                assert _page_ids(served.value) == _page_ids(direct)
                assert served.value.total_matches == direct.total_matches


class TestServeStatsCli:
    def test_serve_stats_verb(self, tmp_path, capsys):
        from repro.api.persistence import save_system
        from repro.cli import main

        system = CovidKG(CovidKGConfig(num_shards=2))
        system.ingest(_corpus(55, 12))
        save_system(system, tmp_path / "sys")

        exit_code = main([
            "serve-stats", "--system", str(tmp_path / "sys"),
            "--requests", "10", "--workers", "2", "vaccine",
        ])
        out = capsys.readouterr().out
        assert exit_code == 0
        assert "cache.hits" in out
        assert "latency.overall.p95_ms" in out
        assert "matches for 'vaccine'" in out

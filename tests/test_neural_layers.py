"""Tests for feed-forward layers, including numerical gradient checks."""

import numpy as np
import pytest

from repro.errors import ModelError
from repro.neural.layers import (
    BatchNorm,
    Dense,
    Dropout,
    Embedding,
    Flatten,
    GlobalAveragePooling,
)

RNG = np.random.default_rng(42)


def numeric_grad(function, array, epsilon=1e-6):
    """Central-difference gradient of scalar ``function`` w.r.t. ``array``."""
    grad = np.zeros_like(array)
    flat = array.reshape(-1)
    grad_flat = grad.reshape(-1)
    for i in range(flat.size):
        original = flat[i]
        flat[i] = original + epsilon
        upper = function()
        flat[i] = original - epsilon
        lower = function()
        flat[i] = original
        grad_flat[i] = (upper - lower) / (2 * epsilon)
    return grad


def check_layer_gradients(layer, inputs, atol=1e-5):
    """Verify backward() against numerical gradients of sum(forward())."""
    upstream = np.ones_like(layer.forward(inputs, training=False))
    layer.zero_grads()
    analytic_input_grad = layer.backward(upstream)

    numeric_input_grad = numeric_grad(
        lambda: float(layer.forward(inputs, training=False).sum()), inputs
    )
    np.testing.assert_allclose(
        analytic_input_grad, numeric_input_grad, atol=atol,
        err_msg="input gradient mismatch",
    )
    layer.forward(inputs, training=False)
    layer.zero_grads()
    layer.backward(upstream)
    for param, grad in zip(layer.params, layer.grads):
        numeric = numeric_grad(
            lambda: float(layer.forward(inputs, training=False).sum()), param
        )
        np.testing.assert_allclose(
            grad, numeric, atol=atol, err_msg="param gradient mismatch",
        )


class TestDense:
    def test_output_shape_2d(self):
        layer = Dense(4, 3)
        assert layer.forward(RNG.normal(size=(5, 4))).shape == (5, 3)

    def test_output_shape_3d(self):
        layer = Dense(4, 3)
        assert layer.forward(RNG.normal(size=(5, 7, 4))).shape == (5, 7, 3)

    def test_gradients_linear(self):
        check_layer_gradients(Dense(4, 3), RNG.normal(size=(5, 4)))

    def test_gradients_relu(self):
        check_layer_gradients(
            Dense(4, 3, activation="relu"),
            RNG.normal(size=(5, 4)) + 0.05,  # keep away from the kink
        )

    def test_gradients_sigmoid(self):
        check_layer_gradients(Dense(4, 2, activation="sigmoid"),
                              RNG.normal(size=(5, 4)))

    def test_gradients_tanh(self):
        check_layer_gradients(Dense(4, 2, activation="tanh"),
                              RNG.normal(size=(5, 4)))

    def test_gradients_3d_input(self):
        check_layer_gradients(Dense(3, 2), RNG.normal(size=(2, 4, 3)))

    def test_unknown_activation(self):
        with pytest.raises(ModelError):
            Dense(3, 2, activation="swish")


class TestEmbedding:
    def test_lookup_shape(self):
        layer = Embedding(10, 6)
        out = layer.forward(np.array([[1, 2], [3, 4]]))
        assert out.shape == (2, 2, 6)

    def test_lookup_values(self):
        layer = Embedding(10, 6)
        out = layer.forward(np.array([[3]]))
        np.testing.assert_array_equal(out[0, 0], layer.weights[3])

    def test_out_of_range_rejected(self):
        layer = Embedding(5, 2)
        with pytest.raises(ModelError):
            layer.forward(np.array([[7]]))

    def test_gradient_accumulates_per_index(self):
        layer = Embedding(5, 3)
        layer.forward(np.array([[1, 1, 2]]))
        layer.zero_grads()
        layer.backward(np.ones((1, 3, 3)))
        np.testing.assert_allclose(layer.grads[0][1], [2.0, 2.0, 2.0])
        np.testing.assert_allclose(layer.grads[0][2], [1.0, 1.0, 1.0])
        np.testing.assert_allclose(layer.grads[0][0], [0.0, 0.0, 0.0])

    def test_pretrained_weights(self):
        weights = RNG.normal(size=(4, 2))
        layer = Embedding(4, 2, weights=weights)
        np.testing.assert_array_equal(
            layer.forward(np.array([[2]]))[0, 0], weights[2]
        )

    def test_frozen_embedding_has_no_params(self):
        layer = Embedding(4, 2, trainable=False)
        assert layer.params == []

    def test_shape_mismatch_rejected(self):
        with pytest.raises(ModelError):
            Embedding(4, 2, weights=np.zeros((3, 2)))


class TestDropout:
    def test_identity_at_inference(self):
        layer = Dropout(0.5)
        x = RNG.normal(size=(4, 4))
        np.testing.assert_array_equal(layer.forward(x, training=False), x)

    def test_zeroes_at_training(self):
        layer = Dropout(0.5, seed=1)
        x = np.ones((100, 100))
        out = layer.forward(x, training=True)
        zero_fraction = np.mean(out == 0.0)
        assert 0.4 < zero_fraction < 0.6

    def test_inverted_scaling_preserves_expectation(self):
        layer = Dropout(0.3, seed=2)
        x = np.ones((200, 200))
        out = layer.forward(x, training=True)
        assert abs(out.mean() - 1.0) < 0.05

    def test_backward_uses_same_mask(self):
        layer = Dropout(0.5, seed=3)
        x = np.ones((10, 10))
        out = layer.forward(x, training=True)
        grad = layer.backward(np.ones_like(x))
        np.testing.assert_array_equal(grad == 0.0, out == 0.0)

    def test_invalid_rate(self):
        with pytest.raises(ModelError):
            Dropout(1.0)


class TestBatchNorm:
    def test_normalizes_batch(self):
        layer = BatchNorm(3)
        x = RNG.normal(loc=5.0, scale=3.0, size=(64, 3))
        out = layer.forward(x, training=True)
        np.testing.assert_allclose(out.mean(axis=0), 0.0, atol=1e-7)
        np.testing.assert_allclose(out.std(axis=0), 1.0, atol=1e-2)

    def test_running_stats_used_at_inference(self):
        layer = BatchNorm(2, momentum=0.0)  # running stats = last batch
        x = RNG.normal(size=(32, 2))
        layer.forward(x, training=True)
        single = layer.forward(x[:1], training=False)
        assert np.all(np.isfinite(single))

    def test_gradients(self):
        layer = BatchNorm(3)
        x = RNG.normal(size=(8, 3))

        def loss():
            return float((layer.forward(x, training=True) ** 2).sum())

        out = layer.forward(x, training=True)
        layer.zero_grads()
        analytic = layer.backward(2.0 * out)
        numeric = numeric_grad(loss, x)
        np.testing.assert_allclose(analytic, numeric, atol=1e-4)


class TestShaping:
    def test_flatten_roundtrip(self):
        layer = Flatten()
        x = RNG.normal(size=(2, 3, 4))
        out = layer.forward(x)
        assert out.shape == (2, 12)
        assert layer.backward(out).shape == (2, 3, 4)

    def test_global_average_pooling(self):
        layer = GlobalAveragePooling()
        x = np.arange(24, dtype=float).reshape(2, 3, 4)
        out = layer.forward(x)
        np.testing.assert_allclose(out, x.mean(axis=1))
        grad = layer.backward(np.ones((2, 4)))
        np.testing.assert_allclose(grad, np.full((2, 3, 4), 1 / 3))

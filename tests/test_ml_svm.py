"""Tests for the from-scratch SVMs."""

import numpy as np
import pytest

from repro.errors import ModelError, NotFittedError
from repro.ml.svm import KernelSVM, LinearSVM

RNG = np.random.default_rng(13)


def linearly_separable(n=200, gap=1.0):
    x = RNG.normal(size=(n, 2))
    y = (x[:, 0] - x[:, 1] > 0).astype(int)
    x[y == 1] += gap
    x[y == 0] -= gap
    return x, y


def xor_dataset(n=200):
    x = RNG.uniform(-1, 1, size=(n, 2))
    y = ((x[:, 0] > 0) ^ (x[:, 1] > 0)).astype(int)
    return x * 2.0, y


class TestLinearSVM:
    def test_separates_linear_data(self):
        x, y = linearly_separable()
        model = LinearSVM(epochs=30).fit(x, y)
        assert np.mean(model.predict(x) == y) > 0.97

    def test_decision_function_sign_matches_predict(self):
        x, y = linearly_separable()
        model = LinearSVM().fit(x, y)
        scores = model.decision_function(x)
        np.testing.assert_array_equal(model.predict(x), (scores >= 0))

    def test_deterministic_given_seed(self):
        x, y = linearly_separable()
        a = LinearSVM(seed=9).fit(x, y)
        b = LinearSVM(seed=9).fit(x, y)
        np.testing.assert_array_equal(a.weights, b.weights)

    def test_unfitted_raises(self):
        with pytest.raises(NotFittedError):
            LinearSVM().predict(np.zeros((1, 2)))

    def test_rejects_bad_inputs(self):
        with pytest.raises(ModelError):
            LinearSVM(regularization=0)
        with pytest.raises(ModelError):
            LinearSVM(epochs=0)
        with pytest.raises(ModelError):
            LinearSVM().fit(np.zeros((2, 2)), np.array([0, 2]))
        with pytest.raises(ModelError):
            LinearSVM().fit(np.zeros((0, 2)), np.zeros(0))
        with pytest.raises(ModelError):
            LinearSVM().fit(np.zeros(4), np.zeros(4))

    def test_accepts_pm_one_labels(self):
        x, y = linearly_separable()
        model = LinearSVM().fit(x, np.where(y == 1, 1, -1))
        assert np.mean(model.predict(x) == y) > 0.95


class TestKernelSVM:
    def test_rbf_solves_xor(self):
        x, y = xor_dataset()
        model = KernelSVM(kernel="rbf", gamma=1.0, epochs=40).fit(x, y)
        assert np.mean(model.predict(x) == y) > 0.9

    def test_linear_svm_fails_xor(self):
        # Sanity: XOR really needs the kernel.
        x, y = xor_dataset()
        linear = LinearSVM(epochs=40).fit(x, y)
        assert np.mean(linear.predict(x) == y) < 0.75

    def test_sigmoid_kernel_separates_linear_data(self):
        x, y = linearly_separable()
        model = KernelSVM(kernel="sigmoid", gamma=0.5, epochs=40).fit(x, y)
        assert np.mean(model.predict(x) == y) > 0.9

    def test_unknown_kernel(self):
        with pytest.raises(ModelError):
            KernelSVM(kernel="poly")

    def test_unfitted_raises(self):
        with pytest.raises(NotFittedError):
            KernelSVM().decision_function(np.zeros((1, 2)))

"""Unit and property tests for repro.text.tokenizer."""

from hypothesis import given
from hypothesis import strategies as st

from repro.text.tokenizer import QueryToken, sentences, tokenize, tokenize_query


class TestTokenize:
    def test_basic_words(self):
        assert tokenize("Masks reduce transmission") == [
            "masks", "reduce", "transmission",
        ]

    def test_hyphenated_terms_stay_joined(self):
        assert tokenize("COVID-19 side-effects") == ["covid-19", "side-effects"]

    def test_decimals_survive(self):
        assert tokenize("efficacy was 94.5 percent") == [
            "efficacy", "was", "94.5", "percent",
        ]

    def test_punctuation_is_dropped(self):
        assert tokenize("fever, cough; fatigue!") == ["fever", "cough", "fatigue"]

    def test_empty_and_whitespace(self):
        assert tokenize("") == []
        assert tokenize("   \t\n ") == []

    def test_case_preserved_when_requested(self):
        assert tokenize("mRNA Vaccine", lowercase=False) == ["mRNA", "Vaccine"]

    def test_slash_joined_token(self):
        assert tokenize("mm/dd/yy format") == ["mm/dd/yy", "format"]


class TestSentences:
    def test_split_on_terminal_punctuation(self):
        text = "Masks work. Vaccines work too! Do boosters help? Yes."
        assert sentences(text) == [
            "Masks work.", "Vaccines work too!", "Do boosters help?", "Yes.",
        ]

    def test_single_sentence(self):
        assert sentences("One sentence only") == ["One sentence only"]

    def test_empty(self):
        assert sentences("") == []

    def test_abbreviation_not_split_before_lowercase(self):
        # The lookahead requires an upper-case/numeral start for a split.
        assert sentences("approx. five days later") == [
            "approx. five days later",
        ]


class TestTokenizeQuery:
    def test_plain_terms(self):
        tokens = tokenize_query("masks ventilators")
        assert tokens == [
            QueryToken("masks", exact=False),
            QueryToken("ventilators", exact=False),
        ]

    def test_quoted_phrase_is_exact(self):
        tokens = tokenize_query('"mechanical ventilation"')
        assert tokens == [QueryToken("mechanical ventilation", exact=True)]

    def test_mixed_order_is_preserved(self):
        tokens = tokenize_query('masks "icu beds" oxygen')
        assert [t.text for t in tokens] == ["masks", "icu beds", "oxygen"]
        assert [t.exact for t in tokens] == [False, True, False]

    def test_empty_quotes_are_ignored(self):
        assert tokenize_query('masks ""') == [QueryToken("masks", exact=False)]

    def test_phrase_words_property(self):
        token = QueryToken("mechanical ventilation", exact=True)
        assert token.words == ["mechanical", "ventilation"]

    def test_empty_query(self):
        assert tokenize_query("") == []


@given(st.text(max_size=200))
def test_tokenize_never_raises_and_lowercases(text):
    for token in tokenize(text):
        assert token == token.lower()
        assert token  # never empty


@given(st.text(max_size=200))
def test_query_tokens_roundtrip_types(text):
    for token in tokenize_query(text):
        assert isinstance(token, QueryToken)
        assert token.text == token.text.lower()

"""Run the doctest examples embedded in public-module docstrings."""

import doctest

import pytest

import repro.docstore.documents
import repro.docstore.matching
import repro.serve.service
import repro.text.normalize
import repro.text.stemmer
import repro.text.tokenizer

MODULES = [
    repro.docstore.documents,
    repro.docstore.matching,
    repro.serve.service,
    repro.text.normalize,
    repro.text.stemmer,
    repro.text.tokenizer,
]


@pytest.mark.parametrize(
    "module", MODULES, ids=[module.__name__ for module in MODULES]
)
def test_module_doctests(module):
    results = doctest.testmod(
        module, optionflags=doctest.NORMALIZE_WHITESPACE
    )
    assert results.failed == 0, f"{results.failed} doctest failures"
    assert results.attempted > 0, "module lost its doctest examples"

"""End-to-end tests for the asyncio HTTP gateway.

Every test here talks to a real socket on an ephemeral port via
:class:`BackgroundGateway` + the stdlib :class:`GatewayClient` — no
mocked transports — so keep-alive reuse, backpressure, overload
shedding, and graceful drain are exercised exactly as a deployment
would see them.  The suite also runs under ``REPRO_RACECHECK=1`` in CI
(the gateway metrics and the serving tier share instrumented locks).
"""

from __future__ import annotations

import threading
import time
from pathlib import Path

import pytest

from repro.api.system import CovidKG, CovidKGConfig
from repro.corpus.generator import CorpusGenerator, GeneratorConfig
from repro.errors import ReproError
from repro.gateway import (
    ERROR_STATUS,
    BackgroundGateway,
    GatewayClient,
    all_error_classes,
    map_error,
)
from repro.serve.loadctl import LoadControlConfig
from repro.serve.service import GatewayConfig, QueryService, ServeConfig

REPO_ROOT = Path(__file__).resolve().parent.parent


def _corpus(seed, count):
    return CorpusGenerator(GeneratorConfig(
        seed=seed, papers_per_week=15, tables_per_paper=(1, 2),
    )).papers(count)


def _page_ids(results):
    return [hit.paper_id for hit in results]


@pytest.fixture(scope="module")
def system():
    kg = CovidKG(CovidKGConfig(num_shards=2))
    kg.ingest(_corpus(53, 24))
    return kg


@pytest.fixture(scope="module")
def gateway(system):
    with QueryService(system, ServeConfig(num_workers=2)) as service:
        with BackgroundGateway(service) as gw:
            yield gw


@pytest.fixture()
def client(gateway):
    with GatewayClient("127.0.0.1", gateway.port) as cl:
        yield cl


def _slow_dispatch(delay):
    def dispatch(query, page=1):
        time.sleep(delay)
        return {"query": query, "page": page}
    return dispatch


class _SlowHarness:
    """A gateway over a deliberately tiny, slow service."""

    def __init__(self, system, *, delay=0.3, num_workers=1,
                 max_queue=8, gateway_config=None, load_control=None):
        self.service = QueryService(system, ServeConfig(
            num_workers=num_workers, max_queue=max_queue,
            load_control=load_control,
        ))
        self.service._dispatch["all_fields"] = _slow_dispatch(delay)
        self.gw = BackgroundGateway(self.service, gateway_config)

    def __enter__(self):
        self.gw.start()
        return self

    def __exit__(self, *exc_info):
        try:
            self.gw.stop()
        finally:
            self.service.close()

    @property
    def port(self):
        return self.gw.port


def _get_in_thread(port, path, params=None, timeout=30.0):
    """Run one GET on its own connection in a thread; join for result."""
    box = {}

    def run():
        try:
            with GatewayClient("127.0.0.1", port,
                               timeout=timeout) as cl:
                box["response"] = cl.get(path, params=params)
        except BaseException as exc:  # noqa: BLE001 - surfaced via box
            box["error"] = exc

    thread = threading.Thread(target=run, daemon=True)
    thread.start()
    return thread, box


# -- routing ---------------------------------------------------------------

class TestRouting:
    def test_healthz(self, client):
        response = client.healthz()
        assert response.status == 200
        payload = response.json()
        assert payload["status"] == "ok"
        # The cluster router feeds on these: data-version counters,
        # ingest replay state, and the admission effective width.
        assert set(payload["versions"]) == {
            "store", "kg", "all_fields", "title_abstract", "table"}
        assert payload["ingest"]["attached"] is False
        assert payload["ingest"]["replaying"] is False
        assert payload["admission"]["effective_width"] >= 1
        assert response.request_id

    def test_head_healthz_has_headers_but_no_body(self, client):
        response = client.request("HEAD", "/v1/healthz")
        assert response.status == 200
        assert int(response.headers["content-length"]) > 0
        assert response.body == b""

    def test_all_fields_matches_direct(self, client, system):
        direct = system.search("vaccine side effects", page=1)
        response = client.search("all_fields",
                                 query="vaccine side effects", page=1)
        assert response.status == 200
        payload = response.json()
        assert payload["engine"] == "all_fields"
        served_ids = [hit["paper_id"] for hit in
                      payload["value"]["results"]]
        assert served_ids == _page_ids(direct)
        assert payload["value"]["total_matches"] == \
            direct.total_matches

    def test_title_abstract_matches_direct(self, client, system):
        direct = system.search_fields(abstract="vaccine")
        response = client.search("title_abstract", abstract="vaccine")
        assert response.status == 200
        served_ids = [hit["paper_id"] for hit in
                      response.json()["value"]["results"]]
        assert served_ids == _page_ids(direct)

    def test_table_matches_direct(self, client, system):
        direct = system.search_tables("dosage")
        response = client.search("table", query="dosage")
        assert response.status == 200
        served_ids = [hit["paper_id"] for hit in
                      response.json()["value"]["results"]]
        assert served_ids == _page_ids(direct)

    def test_kg_matches_direct(self, client, system):
        direct = system.search_graph("side effects", top_k=5)
        response = client.kg_search("side effects", top_k=5)
        assert response.status == 200
        served = response.json()["value"]
        assert [hit["label"] for hit in served] == \
            [hit.node.label for hit in direct]

    def test_repeat_query_is_served_from_cache(self, client):
        cold = client.search("all_fields", query="quarantine policy")
        warm = client.search("all_fields", query="quarantine policy")
        assert cold.status == warm.status == 200
        assert warm.json()["cached"]

    def test_keep_alive_reuses_one_connection(self, gateway):
        with GatewayClient("127.0.0.1", gateway.port) as cl:
            for _ in range(5):
                assert cl.healthz().status == 200
            assert cl.search("all_fields", query="covid").status == 200
            assert cl.connects == 1

    def test_pipelined_requests_answered_in_order(self, client):
        raw = (b"GET /v1/healthz HTTP/1.1\r\nHost: x\r\n\r\n"
               b"GET /v1/stats HTTP/1.1\r\nHost: x\r\n\r\n")
        client.send_raw_nowait(raw)
        first = client.read_response()
        second = client.read_response()
        assert first.json()["status"] == "ok"
        assert "gateway" in second.json()

    def test_stats_nests_gateway_and_service(self, client):
        client.healthz()
        stats = client.stats()
        assert stats["gateway"]["requests"]["healthz"] >= 1
        assert stats["gateway"]["connections"]["open"] >= 1
        assert "requests" in stats["service"]
        assert "cache" in stats["service"]

    def test_metrics_exposition(self, client):
        client.search("all_fields", query="covid")
        text = client.metrics_text()
        assert "# TYPE covidkg_gateway_connections_open gauge" in text
        assert "covidkg_gateway_requests_total" in text
        assert 'endpoint="search.all_fields"' in text
        assert "covidkg_service_shed_total" in text
        assert "covidkg_admission_effective_width" in text

    def test_serve_stats_cli_reads_a_live_gateway(self, gateway,
                                                  capsys):
        from repro.cli import main
        rc = main(["serve-stats",
                   "--url", f"http://127.0.0.1:{gateway.port}"])
        captured = capsys.readouterr()
        assert rc == 0
        assert "gateway.requests.healthz" in captured.out
        assert "service.cache" in captured.out


# -- protocol and validation errors ----------------------------------------

class TestProtocolErrors:
    def test_unknown_route_is_404(self, client):
        response = client.get("/v1/nope")
        assert response.status == 404
        error = response.json()["error"]
        assert error["code"] == "not_found"
        assert error["request_id"] == response.request_id

    def test_missing_required_param_is_400(self, client):
        response = client.get("/v1/search/all_fields")
        assert response.status == 400
        assert response.json()["error"]["code"] == "bad_request"

    def test_invalid_page_is_400(self, client):
        response = client.search("all_fields", query="covid",
                                 page="minus one")
        assert response.status == 400

    def test_malformed_request_line_is_400_and_closes(self, client):
        response = client.send_raw(b"NONSENSE\r\n\r\n")
        assert response.status == 400
        assert not response.keep_alive
        assert response.json()["error"]["code"] == "bad_request"

    def test_unsupported_method_is_400(self, client):
        response = client.send_raw(b"BREW /v1/healthz HTTP/1.1\r\n"
                                   b"Host: x\r\n\r\n")
        assert response.status == 400

    def test_oversized_header_is_400(self, client):
        padding = "x" * 20_000  # default max_header_bytes is 16 KiB
        response = client.get("/v1/healthz",
                              headers={"X-Padding": padding})
        assert response.status == 400
        assert not response.keep_alive

    def test_oversized_body_is_413(self, client):
        # Announce a body far past max_body_bytes without sending it:
        # the gateway must answer from the headers alone.
        response = client.send_raw(
            b"POST /v1/healthz HTTP/1.1\r\nHost: x\r\n"
            b"Content-Length: 1000000\r\n\r\n")
        assert response.status == 413
        assert response.json()["error"]["code"] == "request_too_large"

    def test_bad_timeout_param_is_400(self, client):
        response = client.search("all_fields", query="covid",
                                 timeout_ms=-5)
        assert response.status == 400


# -- overload, deadlines, and loop responsiveness --------------------------

class TestOverload:
    def test_saturated_admission_queue_sheds_503(self, system):
        with _SlowHarness(system, delay=0.6, num_workers=1,
                          max_queue=1) as harness:
            # Staggered so the worker pops slow-0 before slow-1
            # arrives: slow-0 occupies the worker, slow-1 the queue ...
            threads = []
            for i in range(2):
                threads.append(_get_in_thread(
                    harness.port, "/v1/search/all_fields",
                    {"query": f"slow {i}"}))
                time.sleep(0.12)
            # ... so this submit is shed synchronously with a 503.
            with GatewayClient("127.0.0.1", harness.port) as cl:
                started = time.monotonic()
                shed = cl.search("all_fields", query="shed me")
                elapsed = time.monotonic() - started
            assert shed.status == 503
            assert shed.json()["error"]["code"] == "service_overloaded"
            assert "retry-after" in shed.headers
            assert elapsed < 0.3, "sheds must be immediate, not hung"
            for thread, box in threads:
                thread.join(timeout=10.0)
                assert box["response"].status == 200

    def test_connection_cap_sheds_and_feeds_load_control(self, system):
        config = GatewayConfig(port=0, max_connections=1)
        with _SlowHarness(system, gateway_config=config,
                          load_control=LoadControlConfig()) as harness:
            with GatewayClient("127.0.0.1", harness.port) as first:
                assert first.healthz().status == 200  # holds the slot
                with GatewayClient("127.0.0.1",
                                   harness.port) as second:
                    shed = second.healthz()
                assert shed.status == 503
                assert shed.json()["error"]["code"] == \
                    "too_many_connections"
                assert "retry-after" in shed.headers
                assert not shed.keep_alive
            control = harness.service.stats()["load_control"]
            assert control["shed_shrinks"] + \
                control["sheds_at_floor"] >= 1
            gw_stats = harness.gw.gateway.metrics.snapshot()
            assert gw_stats["connections"]["shed"] == 1

    def test_deadline_lapsed_in_queue_is_504(self, system):
        with _SlowHarness(system, delay=0.5,
                          num_workers=1) as harness:
            thread, box = _get_in_thread(
                harness.port, "/v1/search/all_fields",
                {"query": "slow occupant"})
            time.sleep(0.15)
            # Queued behind a 0.5s request with a 50ms budget: the
            # deadline lapses before a worker ever picks it up.
            with GatewayClient("127.0.0.1", harness.port) as cl:
                late = cl.search("all_fields", query="impatient",
                                 timeout_ms=50)
            assert late.status == 504
            assert late.json()["error"]["code"] == "deadline_exceeded"
            thread.join(timeout=10.0)
            assert box["response"].status == 200

    def test_timeout_header_is_equivalent_to_the_param(self, system):
        with _SlowHarness(system, delay=0.5,
                          num_workers=1) as harness:
            thread, box = _get_in_thread(
                harness.port, "/v1/search/all_fields",
                {"query": "slow occupant"})
            time.sleep(0.15)
            with GatewayClient("127.0.0.1", harness.port) as cl:
                late = cl.get("/v1/search/all_fields",
                              params={"query": "impatient header"},
                              headers={"X-Timeout-Ms": "50"})
            assert late.status == 504
            thread.join(timeout=10.0)
            assert box["response"].status == 200

    def test_slow_fanout_does_not_delay_healthz(self, system):
        """The acceptance criterion: the loop never blocks, so another
        connection's health probe answers while a slow request runs."""
        with _SlowHarness(system, delay=0.6,
                          num_workers=1) as harness:
            thread, box = _get_in_thread(
                harness.port, "/v1/search/all_fields",
                {"query": "slow fanout"})
            time.sleep(0.1)
            with GatewayClient("127.0.0.1", harness.port) as probe:
                for _ in range(3):
                    started = time.monotonic()
                    response = probe.healthz()
                    elapsed = time.monotonic() - started
                    assert response.status == 200
                    assert elapsed < 0.25, (
                        f"healthz took {elapsed:.3f}s behind a slow "
                        f"fan-out — the event loop blocked")
            thread.join(timeout=10.0)
            assert box["response"].status == 200


# -- graceful drain --------------------------------------------------------

class TestDrain:
    def test_drain_finishes_inflight_then_refuses_new_work(self, system):
        with _SlowHarness(system, delay=0.4,
                          num_workers=1) as harness:
            port = harness.port
            thread, box = _get_in_thread(
                port, "/v1/search/all_fields", {"query": "mid drain"})
            time.sleep(0.1)
            harness.gw.stop()  # drain: must deliver the response first
            thread.join(timeout=10.0)
            assert "error" not in box, box.get("error")
            response = box["response"]
            assert response.status == 200
            assert not response.keep_alive, \
                "a draining gateway must not promise keep-alive"
        with pytest.raises(OSError):
            with GatewayClient("127.0.0.1", port) as cl:
                cl.request("GET", "/v1/healthz", retry_on_stale=False)


# -- client reconnect across a replica restart -----------------------------

class TestClientReconnect:
    def test_stale_get_rides_through_a_replica_restart(self, system):
        """A keep-alive socket dying because the gateway restarted must
        surface as one transparently retried request, not a raw
        ConnectionError — the cluster failover contract."""
        first = QueryService(system, ServeConfig(num_workers=1))
        gw = BackgroundGateway(first).start()
        port = gw.port
        with GatewayClient("127.0.0.1", port,
                           reconnect_wait=5.0) as client:
            assert client.healthz().status == 200  # socket now warm
            gw.stop()
            first.close()

            def restart():
                time.sleep(0.3)  # the restart window the retry rides
                service = QueryService(system,
                                       ServeConfig(num_workers=1))
                replacement = BackgroundGateway(
                    service, GatewayConfig(port=port)).start()
                box["gw"] = replacement
                box["service"] = service

            box = {}
            thread = threading.Thread(target=restart)
            thread.start()
            try:
                response = client.healthz()
                assert response.status == 200
                assert client.connects >= 2  # really reconnected
            finally:
                thread.join(timeout=10.0)
                if "gw" in box:
                    box["gw"].stop()
                    box["service"].close()

    def test_stale_post_is_never_replayed(self, system):
        """POST must surface the transport error: the dead server may
        have committed the batch before the socket broke, and a silent
        replay would commit it twice."""
        first = QueryService(system, ServeConfig(num_workers=1))
        gw = BackgroundGateway(first).start()
        port = gw.port
        with GatewayClient("127.0.0.1", port,
                           reconnect_wait=5.0) as client:
            assert client.healthz().status == 200  # socket now warm
            gw.stop()
            first.close()
            # A fresh replacement is listening on the same port: a
            # replayed POST *would* succeed — which is exactly why the
            # client must refuse to replay it.
            service = QueryService(system, ServeConfig(num_workers=1))
            replacement = BackgroundGateway(
                service, GatewayConfig(port=port)).start()
            try:
                with pytest.raises(OSError):
                    client.ingest([])
                # The same client still works for idempotent requests.
                assert client.healthz().status == 200
            finally:
                replacement.stop()
                service.close()

    def test_fresh_connection_failure_raises_immediately(self):
        probe = __import__("socket").socket()
        probe.bind(("127.0.0.1", 0))
        dead_port = probe.getsockname()[1]
        probe.close()
        client = GatewayClient("127.0.0.1", dead_port,
                               reconnect_wait=5.0)
        started = time.monotonic()
        with pytest.raises(OSError):
            client.get("/v1/healthz")
        # No retry loop on a fresh connection: nothing was in flight.
        assert time.monotonic() - started < 2.0


# -- error mapping ---------------------------------------------------------

class TestErrorMapping:
    def test_mapping_is_exhaustive(self):
        """Every repro error class has an explicit HTTP mapping, so a
        newly added error type can never fall through to a bare 500."""
        missing = [cls.__name__ for cls in all_error_classes()
                   if cls not in ERROR_STATUS]
        assert missing == [], (
            f"add explicit ERROR_STATUS entries for: {missing}")

    def test_subclasses_inherit_via_mro(self):
        class FlakyShard(ReproError):
            pass

        assert map_error(FlakyShard("boom")) == \
            ERROR_STATUS[ReproError]

    def test_unknown_exceptions_default_to_internal(self):
        assert map_error(ValueError("nope")) == (500, "internal")

    def test_statuses_are_plausible_http(self):
        for cls, (status, code) in ERROR_STATUS.items():
            assert 400 <= status <= 599, (cls, status)
            assert code and code == code.lower(), (cls, code)


# -- static analysis -------------------------------------------------------

def test_gateway_package_has_no_blocking_async_findings():
    """REP206 (blocking call in ``async def``) over the gateway code:
    the subsystem that motivated the rule must itself be clean."""
    from repro.analysis.lint import lint_paths
    findings = lint_paths(
        [REPO_ROOT / "src" / "repro" / "gateway"], root=REPO_ROOT)
    assert findings == [], "\n".join(str(f) for f in findings)

"""Differential tests: parallel scatter-gather vs. the serial reference.

``REPRO_EXECUTOR_WIDTH=1`` forces every fan-out down the inline serial
path, which is the reference implementation; the parallel path must
return byte-identical results for every multi-shard operation.
"""

import pytest

from repro.docstore.executor import WIDTH_ENV, shutdown_executor
from repro.docstore.sharding import ShardedCollection
from repro.errors import ShardingError

NUM_SHARDS = 5


def build_store():
    store = ShardedCollection("papers", shard_key="paper_id",
                             num_shards=NUM_SHARDS)
    store.create_index("year")
    store.insert_many([
        {"paper_id": f"p{i:03d}", "year": 2019 + (i % 4),
         "cites": (i * 7) % 23, "group": i % 3}
        for i in range(80)
    ])
    return store


@pytest.fixture(autouse=True)
def clean_pool():
    shutdown_executor()
    yield
    shutdown_executor()


def scrub(value):
    """Drop ``_id`` (a process-global counter differing between builds)."""
    if isinstance(value, dict):
        return {key: scrub(item) for key, item in value.items()
                if key != "_id"}
    if isinstance(value, (list, tuple)):
        return type(value)(scrub(item) for item in value)
    return value


def differential(monkeypatch, operation):
    """Run ``operation`` on the parallel path, then on the serial one."""
    monkeypatch.delenv(WIDTH_ENV, raising=False)
    parallel = operation(build_store())
    monkeypatch.setenv(WIDTH_ENV, "1")
    serial = operation(build_store())
    return scrub(parallel), scrub(serial)


class TestDifferentialReads:
    def test_find_identical(self, monkeypatch):
        parallel, serial = differential(
            monkeypatch,
            lambda store: store.find({"year": {"$gte": 2020}}).to_list(),
        )
        assert parallel == serial
        assert len(parallel) > 0

    def test_find_all_identical(self, monkeypatch):
        parallel, serial = differential(
            monkeypatch, lambda store: store.find().to_list()
        )
        assert parallel == serial
        assert len(parallel) == 80

    def test_count_identical(self, monkeypatch):
        parallel, serial = differential(
            monkeypatch, lambda store: store.count({"group": 1})
        )
        assert parallel == serial > 0

    def test_find_one_targeted(self, monkeypatch):
        parallel, serial = differential(
            monkeypatch, lambda store: store.find_one({"paper_id": "p042"})
        )
        assert parallel == serial
        assert parallel["paper_id"] == "p042"

    def test_find_one_scatter_returns_a_match(self, monkeypatch):
        # Non-targeted find_one races shards: any matching document is a
        # correct answer, so assert the contract rather than identity.
        monkeypatch.delenv(WIDTH_ENV, raising=False)
        store = build_store()
        hit = store.find_one({"group": 2})
        assert hit is not None and hit["group"] == 2
        assert store.find_one({"year": 1900}) is None

    def test_aggregate_ranked_page_identical(self, monkeypatch):
        stages = [
            {"$match": {"year": {"$gte": 2020}}},
            {"$project": {"paper_id": 1, "cites": 1, "year": 1}},
            {"$sort": {"cites": -1, "paper_id": 1}},
            {"$skip": 5},
            {"$limit": 10},
        ]
        parallel, serial = differential(
            monkeypatch, lambda store: store.aggregate(stages).documents
        )
        assert parallel == serial
        assert len(parallel) == 10

    def test_aggregate_full_sort_identical(self, monkeypatch):
        stages = [
            {"$match": {"group": {"$in": [0, 2]}}},
            {"$sort": {"cites": -1, "paper_id": 1}},
        ]
        parallel, serial = differential(
            monkeypatch, lambda store: store.aggregate(stages).documents
        )
        assert parallel == serial

    def test_aggregate_group_suffix_identical(self, monkeypatch):
        stages = [
            {"$match": {"year": {"$gte": 2019}}},
            {"$group": {"_id": "$group", "total": {"$sum": "$cites"}}},
            {"$sort": {"_id": 1}},
        ]
        parallel, serial = differential(
            monkeypatch, lambda store: store.aggregate(stages).documents
        )
        assert parallel == serial


class TestDifferentialWrites:
    def test_update_many_identical(self, monkeypatch):
        def operation(store):
            updated = store.update_many({"group": 0},
                                        {"$set": {"flag": True}})
            return updated, store.find({"flag": True}).to_list()

        parallel, serial = differential(monkeypatch, operation)
        assert parallel == serial
        assert parallel[0] > 0

    def test_delete_many_identical(self, monkeypatch):
        def operation(store):
            deleted = store.delete_many({"year": 2019})
            return deleted, store.count()

        parallel, serial = differential(monkeypatch, operation)
        assert parallel == serial

    def test_rebalance_identical(self, monkeypatch):
        def operation(store):
            store.rebalance(NUM_SHARDS + 3)
            return sorted(doc["paper_id"] for doc in store.find().to_list())

        parallel, serial = differential(monkeypatch, operation)
        assert parallel == serial
        assert len(parallel) == 80


class TestInsertManyGrouping:
    def test_ids_in_batch_order(self):
        store = ShardedCollection("t", shard_key="k", num_shards=4)
        docs = [{"k": f"key{i}", "n": i} for i in range(20)]
        ids = store.insert_many(docs)
        assert len(ids) == 20
        for i, doc_id in enumerate(ids):
            found = store.find_one({"_id": doc_id})
            assert found["n"] == i

    def test_bulk_insert_per_shard(self, monkeypatch):
        # One Collection.insert_many call per touched shard, not one
        # routed insert per document.
        store = ShardedCollection("t", shard_key="k", num_shards=4)
        calls = []
        for shard in store.shards:
            original = shard.insert_many

            def counting(batch, _original=original, _name=shard.name):
                calls.append((_name, len(list(batch))))
                return _original(batch)

            monkeypatch.setattr(shard, "insert_many", counting)
        store.insert_many([{"k": f"key{i}"} for i in range(40)])
        assert len(calls) <= 4
        assert sum(count for _, count in calls) == 40

    def test_missing_shard_key_keeps_prior_inserts(self):
        store = ShardedCollection("t", shard_key="k", num_shards=4)
        batch = [{"k": "a"}, {"k": "b"}, {"wrong": 1}, {"k": "c"}]
        with pytest.raises(ShardingError):
            store.insert_many(batch)
        # Documents before the bad one landed; the ones after did not.
        assert store.count() == 2
        assert store.find_one({"k": "a"}) is not None
        assert store.find_one({"k": "b"}) is not None
        assert store.find_one({"k": "c"}) is None

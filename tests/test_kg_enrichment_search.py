"""Tests for enrichment, KG search, and meta-profiles."""

import pytest

from repro.corpus.generator import CorpusGenerator, GeneratorConfig
from repro.errors import GraphError, QueryError
from repro.kg.enrichment import EnrichmentPipeline, document_vector
from repro.kg.fusion import FusionEngine
from repro.kg.matching import NodeMatcher
from repro.kg.metaprofile import (
    build_side_effect_profile,
    extract_side_effect_records,
)
from repro.kg.ontology import seed_covid_graph
from repro.kg.review import ExpertReviewQueue
from repro.kg.search import KGSearchEngine


@pytest.fixture(scope="module")
def papers():
    config = GeneratorConfig(seed=11, papers_per_week=20,
                             tables_per_paper=(1, 3))
    return CorpusGenerator(config).papers(60)


@pytest.fixture()
def pipeline():
    graph = seed_covid_graph()
    matcher = NodeMatcher(graph)  # term matching only (no embeddings)
    queue = ExpertReviewQueue()
    engine = FusionEngine(graph, matcher, review_queue=queue)
    return graph, EnrichmentPipeline(engine)


class TestExtraction:
    def test_extracts_subtrees_from_tables(self, papers, pipeline):
        _, enrichment = pipeline
        total = sum(
            len(enrichment.extract_subtrees(paper)) for paper in papers
        )
        assert total > 20

    def test_extraction_recovers_ground_truth_vaccines(self, papers,
                                                       pipeline):
        _, enrichment = pipeline
        for paper in papers:
            extracted_vaccines = {
                child.label
                for subtree in enrichment.extract_subtrees(paper)
                if subtree.category == "vaccines"
                for child in subtree.children
            }
            truth = set(paper["ground_truth"]["vaccines"])
            # Extraction is table+pattern based; everything it finds must
            # be a true mention.
            assert extracted_vaccines <= truth or not extracted_vaccines

    def test_extraction_never_reads_ground_truth(self, papers, pipeline):
        _, enrichment = pipeline
        stripped = {
            key: value
            for key, value in papers[0].items()
            if key != "ground_truth"
        }
        # Must not raise, and must extract the same subtrees.
        with_truth = enrichment.extract_subtrees(papers[0])
        without = enrichment.extract_subtrees(stripped)
        assert [s.to_json() for s in with_truth] == [
            s.to_json() for s in without
        ]


class TestEnrichment:
    def test_enrich_grows_graph(self, papers, pipeline):
        graph, enrichment = pipeline
        before = len(graph)
        report = enrichment.enrich(papers)
        assert report.subtrees > 0
        assert len(graph) >= before
        actions = report.actions()
        assert actions.get("merged", 0) > 0

    def test_enriched_nodes_carry_provenance(self, papers, pipeline):
        graph, enrichment = pipeline
        enrichment.enrich(papers)
        vaccines = graph.find_by_label("Vaccines")[0]
        papers_linked = graph.papers_for(vaccines.node_id)
        assert len(papers_linked) > 0

    def test_clustering_produces_requested_clusters(self, papers, pipeline):
        _, enrichment = pipeline
        clusters, assignments = enrichment.cluster_topics(
            papers, num_clusters=4, seed=1
        )
        assert len(clusters) == 4
        assert len(assignments) == len(papers)
        assert sum(len(c.paper_ids) for c in clusters) == len(papers)
        assert all(c.top_terms for c in clusters if c.paper_ids)

    def test_enrich_with_clusters(self, papers, pipeline):
        _, enrichment = pipeline
        report = enrichment.enrich(papers[:30], num_clusters=3)
        assert len(report.clusters) == 3


class TestDocumentVector:
    def test_unit_norm(self):
        import numpy as np
        vector = document_vector("masks and vaccines")
        assert np.isclose(np.linalg.norm(vector), 1.0)

    def test_empty_text_is_zero(self):
        import numpy as np
        assert np.linalg.norm(document_vector("")) == 0.0

    def test_similar_texts_closer_than_different(self):
        import numpy as np
        a = document_vector("vaccine dose efficacy antibody")
        b = document_vector("vaccine dose antibody titer")
        c = document_vector("ventilator oxygen icu airway")
        assert float(a @ b) > float(a @ c)


class TestKGSearch:
    def test_search_finds_node_with_path(self):
        graph = seed_covid_graph()
        engine = KGSearchEngine(graph)
        hits = engine.search("pfizer")
        assert hits
        top = hits[0]
        assert top.node.label == "Pfizer"
        assert top.path_labels[0] == "COVID-19"
        assert top.rendered_path().endswith("[[Pfizer]]")

    def test_search_is_stemmed(self):
        graph = seed_covid_graph()
        hits = KGSearchEngine(graph).search("vaccinations")
        assert any(hit.node.label == "Vaccines" for hit in hits)

    def test_multi_term_coverage_ranking(self):
        graph = seed_covid_graph()
        hits = KGSearchEngine(graph).search("children side effects")
        assert hits[0].node.label == "Children side-effects"

    def test_search_returns_provenance_papers(self):
        graph = seed_covid_graph()
        vaccines = graph.find_by_label("Vaccines")[0]
        graph.node(vaccines.node_id).add_provenance("p77")
        hits = KGSearchEngine(graph).search("vaccines")
        assert "p77" in hits[0].papers

    def test_empty_query_rejected(self):
        with pytest.raises(QueryError):
            KGSearchEngine(seed_covid_graph()).search("  ")

    def test_browse_payload(self):
        graph = seed_covid_graph()
        engine = KGSearchEngine(graph)
        vaccines = graph.find_by_label("Vaccines")[0]
        payload = engine.browse(vaccines.node_id)
        assert payload["node"]["label"] == "Vaccines"
        assert payload["parent"]["label"] == "COVID-19"
        assert any(
            child["label"] == "Pfizer" for child in payload["children"]
        )


class TestMetaProfile:
    def test_extract_records_from_generated_tables(self, papers):
        records = [
            record
            for paper in papers
            for record in extract_side_effect_records(paper)
        ]
        assert records
        assert all(record.dose in (1, 2) for record in records)
        assert all(0 <= record.rate <= 100 for record in records)

    def test_profile_layers_and_sources(self, papers):
        profile = build_side_effect_profile(papers)
        assert profile.layers == ("vaccine", "dosage", "paper")
        assert profile.num_sources >= len(profile.papers)
        grouped = profile.group()
        assert set(grouped) == set(profile.vaccines)

    def test_figure6_shape_three_papers(self, papers):
        # Figure 6: a profile from 3 papers summarizing 9 sources.
        with_tables = [
            paper for paper in papers
            if extract_side_effect_records(paper)
        ][:3]
        profile = build_side_effect_profile(with_tables)
        assert len(profile.papers) == len(with_tables)
        assert profile.num_sources >= 3

    def test_rate_queries(self, papers):
        profile = build_side_effect_profile(papers)
        vaccine = profile.vaccines[0]
        top = profile.top_effects(vaccine, top_k=3)
        assert top
        effect = top[0][0]
        assert profile.mean_rate(vaccine, effect) is not None
        assert profile.mean_rate(vaccine, "nonexistent effect") is None

    def test_no_side_effect_tables_raises(self):
        with pytest.raises(GraphError):
            build_side_effect_profile([{
                "paper_id": "x", "tables": [],
            }])

    def test_json_export(self, papers):
        profile = build_side_effect_profile(papers)
        data = profile.to_json()
        assert data["layers"] == ["vaccine", "dosage", "paper"]
        assert len(data["records"]) == len(profile.records)

"""The consistent-hash router over real in-process replica gateways.

Each "replica" is an independent system + QueryService behind a
:class:`BackgroundGateway` on its own ephemeral port; the router runs
in front of them exactly as ``repro-covidkg cluster`` wires it (minus
the subprocess boundary, which ``test_cluster_invalidation`` covers).
"""

from __future__ import annotations

import socket
import time

import pytest

from repro.api.system import CovidKG, CovidKGConfig
from repro.cluster.router import ReplicaSpec, Router, RouterConfig
from repro.corpus.generator import CorpusGenerator, GeneratorConfig
from repro.gateway import BackgroundGateway, GatewayClient
from repro.serve.service import QueryService, ServeConfig

SEED = 41
BASE_PAPERS = 24


def _corpus(count, start=0):
    papers = CorpusGenerator(GeneratorConfig(
        seed=SEED, papers_per_week=15, tables_per_paper=(1, 2),
    )).papers(start + count)
    return papers[start:]


def _page_ids(payload):
    return [hit["paper_id"] for hit in payload["value"]["results"]]


def _wait_until(predicate, timeout=8.0, interval=0.05):
    deadline = time.monotonic() + timeout
    while time.monotonic() < deadline:
        if predicate():
            return True
        time.sleep(interval)
    return False


class _Replica:
    """One in-process replica: its own system, service, and gateway."""

    def __init__(self, replica_id):
        self.replica_id = replica_id
        self.system = CovidKG(CovidKGConfig(num_shards=2))
        self.system.ingest(_corpus(BASE_PAPERS))
        self.service = QueryService(self.system,
                                    ServeConfig(num_workers=2))
        self.gateway = BackgroundGateway(self.service)

    def start(self):
        self.gateway.start()
        return self

    def spec(self):
        return ReplicaSpec(self.replica_id, "127.0.0.1",
                           self.gateway.port)

    def stop(self):
        try:
            self.gateway.stop()
        finally:
            self.service.close()


@pytest.fixture()
def cluster():
    replicas = [_Replica(f"r{i}").start() for i in range(3)]
    router = Router([replica.spec() for replica in replicas],
                    RouterConfig(probe_interval=0.1,
                                 fail_threshold=2)).start()
    try:
        yield router, {replica.replica_id: replica
                       for replica in replicas}
    finally:
        router.stop()
        for replica in replicas:
            replica.stop()


@pytest.fixture()
def client(cluster):
    router, _ = cluster
    with GatewayClient("127.0.0.1", router.port) as cl:
        yield cl


def _states(router):
    return {state["replica_id"]: state
            for state in router.cluster_snapshot()["replicas"]}


class TestRouting:
    def test_routed_answer_matches_direct(self, cluster, client):
        _, replicas = cluster
        response = client.search("all_fields", query="vaccine")
        assert response.status == 200
        direct = replicas["r0"].system.search("vaccine", page=1)
        assert _page_ids(response.json()) == \
            [hit.paper_id for hit in direct]

    def test_affinity_same_request_same_replica(self, cluster, client):
        owners = set()
        for _ in range(5):
            response = client.search("all_fields", query="antibody")
            assert response.status == 200
            owners.add(response.headers["x-replica"])
        assert len(owners) == 1
        # ... and repeats are served from that replica's warm L1.
        assert client.search("all_fields",
                             query="antibody").json()["cached"]

    def test_query_param_order_does_not_change_owner(self, cluster,
                                                     client):
        first = client.get("/v1/search/all_fields",
                           params={"query": "spike", "page": "1"})
        second = client.get("/v1/search/all_fields",
                            params={"page": "1", "query": "spike"})
        assert first.headers["x-replica"] == \
            second.headers["x-replica"]

    def test_different_requests_spread_over_replicas(self, cluster,
                                                     client):
        owners = {
            client.search("all_fields",
                          query=f"term{i}").headers["x-replica"]
            for i in range(30)
        }
        assert len(owners) > 1

    def test_router_healthz_and_cluster_snapshot(self, cluster, client):
        router, _ = cluster
        health = client.healthz()
        assert health.status == 200
        assert health.json()["role"] == "router"
        assert health.json()["replicas"] == 3
        snapshot = client.get("/v1/cluster").json()
        assert snapshot["in_ring"] == 3
        assert [s["replica_id"] for s in snapshot["replicas"]] == \
            ["r0", "r1", "r2"]
        # Probes populate per-replica version counters.
        assert _wait_until(lambda: all(
            state["versions"] is not None
            for state in _states(router).values()))

    def test_errors_forwarded_verbatim(self, client):
        response = client.search("all_fields")  # missing query
        assert response.status == 400
        assert response.json()["error"]["code"] == "bad_request"

    def test_malformed_request_is_router_400(self, cluster):
        router, _ = cluster
        with socket.create_connection(("127.0.0.1", router.port),
                                      timeout=5.0) as sock:
            sock.sendall(b"NONSENSE\r\n\r\n")
            reply = sock.recv(65536)
        assert reply.startswith(b"HTTP/1.1 400")


class TestWriteFanout:
    def test_ingest_applies_on_every_replica(self, cluster, client):
        _, replicas = cluster
        before = {replica_id: replica.system.store.version
                  for replica_id, replica in replicas.items()}
        response = client.ingest(_corpus(4, start=BASE_PAPERS))
        assert response.status == 200, response.text
        assert response.headers["x-cluster-write-replicas"] == "3"
        for replica_id, replica in replicas.items():
            assert replica.system.store.version > before[replica_id]
        # All replicas moved in lockstep.
        versions = {replica.system.store.version
                    for replica in replicas.values()}
        assert len(versions) == 1

    def test_rejected_batch_is_rejected_everywhere(self, cluster,
                                                   client):
        _, replicas = cluster
        papers = _corpus(2, start=BASE_PAPERS + 10)
        assert client.ingest(papers).status == 200
        duplicate = client.ingest(papers)  # same paper_ids again
        # 409 from the bare docstore path; a WAL-backed replica would
        # answer 422 from the preflight gate — either way, rejected.
        assert duplicate.status in (409, 422)
        versions = {replica.system.store.version
                    for replica in replicas.values()}
        assert len(versions) == 1  # nobody applied the duplicate


class TestWriteDivergence:
    def test_held_out_replica_missing_a_write_never_rejoins(
            self, cluster, client):
        """A replica out of the ring during a committed write diverged.

        Draining (or WAL-replaying) holds a replica out without stigma,
        but a batch committed while it was out means its corpus is
        permanently behind — it must be barred from rejoining.
        """
        router, replicas = cluster
        target = "r1"
        replicas[target].gateway.gateway._draining = True
        assert _wait_until(
            lambda: not _states(router)[target]["in_ring"])
        response = client.ingest(_corpus(3, start=BASE_PAPERS + 20))
        assert response.status == 200, response.text
        assert response.headers["x-cluster-write-replicas"] == "2"
        state = _states(router)[target]
        assert state["diverged"]
        # Recovering from the drain must not bring it back: its corpus
        # is missing the batch.
        replicas[target].gateway.gateway._draining = False
        time.sleep(0.5)
        state = _states(router)[target]
        assert not state["in_ring"] and state["diverged"]
        assert router.cluster_snapshot()["in_ring"] == 2

    def test_replica_failing_a_committed_write_is_ejected(
            self, cluster, client):
        """Mixed per-replica statuses are divergence, not noise.

        One replica already holds the batch (seeded out-of-band), so
        the fan-out gets a duplicate rejection from it while the other
        two commit — its version history now disagrees with the
        cluster's and it must leave the ring for good.
        """
        router, replicas = cluster
        papers = _corpus(3, start=BASE_PAPERS + 30)
        replicas["r2"].system.ingest(papers)  # out-of-band divergence
        response = client.ingest(papers)
        assert response.status == 200, response.text
        assert response.headers["x-cluster-write-replicas"] == "2"
        state = _states(router)["r2"]
        assert state["diverged"] and not state["in_ring"]
        # Reads keep succeeding on the survivors.
        for i in range(10):
            assert client.search("all_fields",
                                 query=f"mixed{i}").status == 200

    def test_rejected_batch_leaves_membership_untouched(self, cluster,
                                                        client):
        """A batch every replica rejects ejects nobody."""
        router, _ = cluster
        papers = _corpus(2, start=BASE_PAPERS + 40)
        assert client.ingest(papers).status == 200
        assert client.ingest(papers).status in (409, 422)
        assert router.cluster_snapshot()["in_ring"] == 3
        assert not any(state["diverged"]
                       for state in _states(router).values())


class TestBodyLimit:
    def test_oversized_body_is_413_before_buffering(self):
        router = Router([], RouterConfig(
            probe_interval=0.1, max_body_bytes=1024)).start()
        try:
            with GatewayClient("127.0.0.1", router.port) as cl:
                response = cl.request(
                    "POST", "/v1/ingest",
                    headers={"Content-Type": "application/json"},
                    body=b"x" * 4096)
                assert response.status == 413
                assert response.json()["error"]["code"] == \
                    "request_too_large"
        finally:
            router.stop()


class TestFailover:
    def test_killed_replica_ejected_with_zero_failed_requests(
            self, cluster, client):
        router, replicas = cluster
        owner = client.search("all_fields",
                              query="failover").headers["x-replica"]
        replicas[owner].stop()  # the replica vanishes mid-operation
        failures = []
        for i in range(40):
            response = client.search("all_fields", query="failover")
            if response.status != 200:
                failures.append((i, response.status))
            assert response.headers["x-replica"] != owner or \
                response.status == 200
        assert failures == []
        assert _wait_until(
            lambda: not _states(router)[owner]["in_ring"])
        assert _states(router)[owner]["ejected"]
        # Survivors keep serving and the dead replica's range moved.
        new_owner = client.search(
            "all_fields", query="failover").headers["x-replica"]
        assert new_owner != owner

    def test_draining_replica_leaves_ring_without_stigma_and_rejoins(
            self, cluster, client):
        router, replicas = cluster
        target = "r1"
        replicas[target].gateway.gateway._draining = True
        assert _wait_until(
            lambda: not _states(router)[target]["in_ring"])
        state = _states(router)[target]
        assert state["draining"] and not state["ejected"]
        # Requests keep succeeding without the draining replica.
        for i in range(10):
            assert client.search("all_fields",
                                 query=f"drain{i}").status == 200
        replicas[target].gateway.gateway._draining = False
        assert _wait_until(
            lambda: _states(router)[target]["in_ring"])

    def test_replaying_replica_is_held_out_until_recovered(
            self, cluster, client, tmp_path):
        from repro.ingest.engine import IngestEngine

        router, replicas = cluster
        target = "r2"
        replica = replicas[target]
        engine = IngestEngine(replica.system, tmp_path / "ingest")
        try:
            replica.service.attach_ingest(engine)
            with engine._state_lock:
                engine._replaying = True
            assert _wait_until(
                lambda: not _states(router)[target]["in_ring"])
            assert _states(router)[target]["replaying"]
            with engine._state_lock:
                engine._replaying = False
            assert _wait_until(
                lambda: _states(router)[target]["in_ring"])
        finally:
            engine.close()

    def test_all_replicas_down_is_clean_503(self):
        router = Router([], RouterConfig(probe_interval=0.1)).start()
        try:
            with GatewayClient("127.0.0.1", router.port) as cl:
                health = cl.healthz()
                assert health.status == 503
                response = cl.search("all_fields", query="void")
                assert response.status == 503
                assert response.json()["error"]["code"] == \
                    "no_replicas"
                assert "retry-after" in response.headers
        finally:
            router.stop()

"""Tests for the web-table spam classifier and Word2Vec subsampling."""

import numpy as np
import pytest

from repro.corpus.wdc import WdcTableGenerator
from repro.embeddings.word2vec import Word2Vec
from repro.errors import ModelError
from repro.tables.model import Table
from repro.tables.spam import (
    FEATURE_NAMES,
    SpamTableClassifier,
    spam_features,
)
from repro.text.vocabulary import Vocabulary

CLEAN = Table.from_grid([
    ["Vaccine", "Doses", "Efficacy"],
    ["Pfizer", "2", "95"],
    ["Moderna", "2", "94"],
    ["Janssen", "1", "66"],
], header_rows=1)

PROMO_SPAM = Table.from_grid([
    ["BUY NOW cheap deals", "click here FREE", "www.spam.example"],
    ["discount sale offer", "subscribe now", "http://ads.example"],
])

KEYWORD_FARM = Table.from_grid([
    ["covid cure", "covid cure", "covid cure"],
    ["covid cure", "covid cure", "covid cure"],
    ["covid cure", "covid cure", "covid cure"],
])

LAYOUT_GRID = Table.from_grid([
    ["", "", "", ""],
    ["", "menu", "", ""],
    ["", "", "", ""],
])

NAV_STRIP = Table.from_grid([["Home", "About", "Contact", "Blog"]])


class TestSpamFeatures:
    def test_feature_vector_shape_and_range(self):
        for table in (CLEAN, PROMO_SPAM, KEYWORD_FARM, LAYOUT_GRID):
            features = spam_features(table)
            assert features.shape == (len(FEATURE_NAMES),)
            assert np.all((features >= 0.0) & (features <= 1.0))

    def test_clean_table_has_low_features(self):
        features = spam_features(CLEAN)
        assert features.max() < 0.5

    def test_promo_features_fire(self):
        features = dict(zip(FEATURE_NAMES, spam_features(PROMO_SPAM)))
        assert features["promo_fraction"] > 0.5
        assert features["url_fraction"] > 0.2

    def test_repetition_features_fire(self):
        features = dict(zip(FEATURE_NAMES, spam_features(KEYWORD_FARM)))
        assert features["duplicate_cell_fraction"] > 0.7
        assert features["duplicate_row_fraction"] > 0.5

    def test_layout_features_fire(self):
        features = dict(zip(FEATURE_NAMES, spam_features(LAYOUT_GRID)))
        assert features["empty_fraction"] > 0.8
        nav = dict(zip(FEATURE_NAMES, spam_features(NAV_STRIP)))
        assert nav["degenerate_shape"] == 1.0

    def test_empty_table(self):
        features = spam_features(Table())
        assert features[0] == 1.0  # all-empty


class TestHeuristicClassifier:
    def test_clean_passes_spam_caught(self):
        classifier = SpamTableClassifier()
        assert not classifier.is_spam(CLEAN)
        assert classifier.is_spam(PROMO_SPAM)
        assert classifier.is_spam(KEYWORD_FARM)
        assert classifier.is_spam(LAYOUT_GRID)

    def test_wdc_tables_pass(self):
        classifier = SpamTableClassifier()
        generator = WdcTableGenerator(seed=41)
        tables = [generator.generate(i).table for i in range(20)]
        assert classifier.filter_clean(tables) == tables

    def test_filter_clean_removes_spam(self):
        classifier = SpamTableClassifier()
        mixed = [CLEAN, PROMO_SPAM, KEYWORD_FARM]
        assert classifier.filter_clean(mixed) == [CLEAN]


class TestTrainedClassifier:
    def test_svm_upgrade_learns(self):
        generator = WdcTableGenerator(seed=42)
        clean = [generator.generate(i).table for i in range(15)]
        spam = [PROMO_SPAM, KEYWORD_FARM, LAYOUT_GRID, NAV_STRIP] * 4
        classifier = SpamTableClassifier(seed=1).fit(
            clean + spam, [False] * len(clean) + [True] * len(spam)
        )
        assert not classifier.is_spam(clean[0])
        assert classifier.is_spam(PROMO_SPAM)


class TestWord2VecSubsampling:
    SENTENCES = (
        ["the the the the vaccine dose",
         "the the the the antibody titer"] * 20
    )

    def test_subsampling_trains_and_keeps_rare_signal(self):
        vocabulary = Vocabulary.from_texts(self.SENTENCES,
                                           drop_stopwords=False)
        model = Word2Vec(vocabulary, dim=8, seed=2,
                         subsample=1e-2).fit(self.SENTENCES, epochs=5)
        assert np.any(model.vector("vaccine"))

    def test_invalid_threshold(self):
        vocabulary = Vocabulary.from_texts(["a b"], drop_stopwords=False)
        with pytest.raises(ModelError):
            Word2Vec(vocabulary, subsample=0.0)

    def test_subsampling_reduces_frequent_word_updates(self):
        vocabulary = Vocabulary.from_texts(self.SENTENCES,
                                           drop_stopwords=False)
        plain = Word2Vec(vocabulary, dim=8, seed=3).fit(
            self.SENTENCES, epochs=3
        )
        subsampled = Word2Vec(vocabulary, dim=8, seed=3,
                              subsample=1e-3).fit(self.SENTENCES, epochs=3)
        # With aggressive subsampling, "the" moves less from its init.
        init = Word2Vec(vocabulary, dim=8, seed=3)
        the_index = vocabulary.index_of("the")
        plain_shift = np.linalg.norm(
            plain.in_vectors[the_index] - init.in_vectors[the_index]
        )
        sub_shift = np.linalg.norm(
            subsampled.in_vectors[the_index] - init.in_vectors[the_index]
        )
        assert sub_shift < plain_shift

"""Unit and property tests for the Porter stemmer."""

from hypothesis import given
from hypothesis import strategies as st

from repro.text.stemmer import PorterStemmer, stem

# Canonical examples from Porter's 1980 paper.
PORTER_PAPER_CASES = [
    ("caresses", "caress"),
    ("ponies", "poni"),
    ("ties", "ti"),
    ("caress", "caress"),
    ("cats", "cat"),
    ("feed", "feed"),
    ("agreed", "agre"),
    ("plastered", "plaster"),
    ("bled", "bled"),
    ("motoring", "motor"),
    ("sing", "sing"),
    ("conflated", "conflat"),
    ("troubled", "troubl"),
    ("sized", "size"),
    ("hopping", "hop"),
    ("tanned", "tan"),
    ("falling", "fall"),
    ("hissing", "hiss"),
    ("fizzed", "fizz"),
    ("failing", "fail"),
    ("filing", "file"),
    ("happy", "happi"),
    ("sky", "sky"),
    ("relational", "relat"),
    ("conditional", "condit"),
    ("rational", "ration"),
    ("valenci", "valenc"),
    ("hesitanci", "hesit"),
    ("digitizer", "digit"),
    ("conformabli", "conform"),
    ("radicalli", "radic"),
    ("differentli", "differ"),
    ("vileli", "vile"),
    ("analogousli", "analog"),
    ("vietnamization", "vietnam"),
    ("predication", "predic"),
    ("operator", "oper"),
    ("feudalism", "feudal"),
    ("decisiveness", "decis"),
    ("hopefulness", "hope"),
    ("callousness", "callous"),
    ("formaliti", "formal"),
    ("sensitiviti", "sensit"),
    ("sensibiliti", "sensibl"),
    ("triplicate", "triplic"),
    ("formative", "form"),
    ("formalize", "formal"),
    ("electriciti", "electr"),
    ("electrical", "electr"),
    ("hopeful", "hope"),
    ("goodness", "good"),
    ("revival", "reviv"),
    ("allowance", "allow"),
    ("inference", "infer"),
    ("airliner", "airlin"),
    ("gyroscopic", "gyroscop"),
    ("adjustable", "adjust"),
    ("defensible", "defens"),
    ("irritant", "irrit"),
    ("replacement", "replac"),
    ("adjustment", "adjust"),
    ("dependent", "depend"),
    ("adoption", "adopt"),
    ("homologou", "homolog"),
    ("communism", "commun"),
    ("activate", "activ"),
    ("angulariti", "angular"),
    ("homologous", "homolog"),
    ("effective", "effect"),
    ("bowdlerize", "bowdler"),
    ("probate", "probat"),
    ("rate", "rate"),
    ("cease", "ceas"),
    ("controll", "control"),
    ("roll", "roll"),
]


class TestPorterPaperExamples:
    def test_all_paper_cases(self):
        stemmer = PorterStemmer()
        failures = [
            (word, expected, stemmer.stem(word))
            for word, expected in PORTER_PAPER_CASES
            if stemmer.stem(word) != expected
        ]
        assert not failures, f"mis-stemmed: {failures}"


class TestDomainTerms:
    def test_medical_terms_share_stems(self):
        assert stem("vaccinations") == stem("vaccination")
        assert stem("infections") == stem("infection")
        assert stem("ventilators") == stem("ventilator")

    def test_short_words_untouched(self):
        assert stem("as") == "as"
        assert stem("a") == "a"
        assert stem("flu") == "flu"

    def test_stemming_is_case_insensitive(self):
        assert stem("Masks") == stem("masks")


@given(st.text(alphabet=st.characters(min_codepoint=97, max_codepoint=122),
               min_size=1, max_size=30))
def test_stemmer_is_idempotent_on_its_output_for_plurals(word):
    # Porter is not idempotent in general, but stems are never longer than
    # the input and always non-empty for non-empty input.
    result = stem(word)
    assert result
    assert len(result) <= len(word)


@given(st.text(alphabet=st.characters(min_codepoint=97, max_codepoint=122),
               min_size=1, max_size=30))
def test_stemmer_never_raises(word):
    stem(word)
    stem(word.upper())

"""Smoke tests: every shipped example must run cleanly end to end."""

import subprocess
import sys
from pathlib import Path

import pytest

EXAMPLES = Path(__file__).resolve().parent.parent / "examples"

FAST_EXAMPLES = ["kg_fusion.py", "meta_profiles.py"]


@pytest.mark.parametrize("script", FAST_EXAMPLES)
def test_example_runs(script):
    result = subprocess.run(
        [sys.executable, str(EXAMPLES / script)],
        capture_output=True, text=True, timeout=300,
    )
    assert result.returncode == 0, result.stderr[-2000:]
    assert result.stdout.strip(), "example produced no output"


def test_quickstart_runs():
    result = subprocess.run(
        [sys.executable, str(EXAMPLES / "quickstart.py")],
        capture_output=True, text=True, timeout=600,
    )
    assert result.returncode == 0, result.stderr[-2000:]
    assert "system statistics" in result.stdout

"""Tests for KG nodes, the graph container, and the seed ontology."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.errors import GraphError
from repro.kg.graph import KnowledgeGraph
from repro.kg.node import KGNode, normalize_label
from repro.kg.ontology import seed_covid_graph


class TestNormalizeLabel:
    def test_case_and_inflection_insensitive(self):
        assert normalize_label("Vaccines") == normalize_label("vaccine")

    def test_word_order_insensitive(self):
        assert normalize_label("side effects vaccine") == (
            normalize_label("Vaccine side effects")
        )

    def test_different_terms_differ(self):
        assert normalize_label("Vaccines") != normalize_label("Strains")


class TestKGNode:
    def test_provenance_deduplicates(self):
        node = KGNode("n1", "Fever")
        node.add_provenance("p1")
        node.add_provenance("p1")
        node.add_provenance("p2")
        assert node.provenance == ["p1", "p2"]

    def test_json_roundtrip(self):
        node = KGNode("n1", "Fever", parent_id="n0", children=["n2"],
                      provenance=["p1"], category="symptoms",
                      attributes={"rate": 0.5})
        restored = KGNode.from_json(node.to_json())
        assert restored == node


class TestKnowledgeGraph:
    def test_root_exists(self):
        graph = KnowledgeGraph("COVID-19")
        assert graph.root.label == "COVID-19"
        assert len(graph) == 1

    def test_add_node_links_parent_and_child(self):
        graph = KnowledgeGraph()
        child = graph.add_node("Vaccines")
        assert graph.node(child).parent_id == graph.root_id
        assert child in graph.root.children

    def test_add_node_rejects_unknown_parent(self):
        graph = KnowledgeGraph()
        with pytest.raises(GraphError):
            graph.add_node("X", parent_id="n999")

    def test_add_node_rejects_empty_label(self):
        with pytest.raises(GraphError):
            KnowledgeGraph().add_node("   ")

    def test_path_to(self):
        graph = KnowledgeGraph("root")
        a = graph.add_node("a")
        b = graph.add_node("b", a)
        c = graph.add_node("c", b)
        assert [n.label for n in graph.path_to(c)] == ["root", "a", "b", "c"]
        assert graph.depth(c) == 3
        assert graph.depth(graph.root_id) == 0

    def test_find_by_label_normalized(self):
        graph = KnowledgeGraph()
        graph.add_node("Vaccines")
        assert graph.find_by_label("vaccine")
        assert not graph.find_by_label("strain")

    def test_walk_visits_every_node_once(self):
        graph = KnowledgeGraph()
        a = graph.add_node("a")
        graph.add_node("b", a)
        graph.add_node("c", a)
        graph.add_node("d")
        labels = [node.label for node in graph.walk()]
        assert len(labels) == len(graph)
        assert len(set(labels)) == len(labels)

    def test_leaves(self):
        graph = KnowledgeGraph()
        a = graph.add_node("a")
        graph.add_node("b", a)
        leaves = {node.label for node in graph.leaves()}
        assert leaves == {"b"}

    def test_insert_parent(self):
        graph = KnowledgeGraph()
        vaccines = graph.add_node("Vaccines")
        novo = graph.add_node("NovoVac", vaccines)
        inserted = graph.insert_parent("New vaccines", novo)
        assert graph.node(novo).parent_id == inserted
        assert graph.node(inserted).parent_id == vaccines
        assert [n.label for n in graph.path_to(novo)] == [
            "COVID-19", "Vaccines", "New vaccines", "NovoVac",
        ]

    def test_insert_parent_above_root_rejected(self):
        graph = KnowledgeGraph()
        with pytest.raises(GraphError):
            graph.insert_parent("super-root", graph.root_id)

    def test_papers_for_collects_subtree_provenance(self):
        graph = KnowledgeGraph()
        a = graph.add_node("a", provenance="p1")
        graph.add_node("b", a, provenance="p2")
        assert graph.papers_for(a) == ["p1", "p2"]

    def test_json_roundtrip(self):
        graph = seed_covid_graph()
        restored = KnowledgeGraph.from_json(graph.to_json())
        assert len(restored) == len(graph)
        assert restored.root.label == "COVID-19"
        assert {n.label for n in restored.walk()} == {
            n.label for n in graph.walk()
        }

    def test_from_json_rejects_orphans(self):
        graph = KnowledgeGraph()
        graph.add_node("a")
        data = graph.to_json()
        data["nodes"].append({"id": "n99", "label": "orphan",
                              "parent": "n98", "children": []})
        with pytest.raises(GraphError):
            KnowledgeGraph.from_json(data)

    def test_save_load(self, tmp_path):
        graph = seed_covid_graph()
        graph.save(tmp_path / "kg.json")
        restored = KnowledgeGraph.load(tmp_path / "kg.json")
        assert len(restored) == len(graph)

    def test_statistics(self):
        graph = seed_covid_graph()
        stats = graph.statistics()
        assert stats["nodes"] == len(graph)
        assert stats["max_depth"] >= 3
        assert stats["leaves"] > 0


class TestSeedOntology:
    def test_skeleton_is_paper_sized(self):
        skeleton = seed_covid_graph(include_known_entities=False)
        # "an initial, small (10-20 nodes) structural layout"
        assert 10 <= len(skeleton) <= 20

    def test_full_seed_has_known_vaccines(self):
        graph = seed_covid_graph()
        assert graph.find_by_label("Pfizer")
        assert graph.find_by_label("Moderna")

    def test_overlapping_symptom_categorizations_coexist(self):
        graph = seed_covid_graph()
        # "fever" under common symptoms AND under systemic symptoms.
        fevers = graph.find_by_label("fever")
        assert len(fevers) >= 2
        parents = {
            graph.parent(node.node_id).label for node in fevers
        }
        assert len(parents) >= 2

    def test_children_side_effects_separate_from_general(self):
        graph = seed_covid_graph()
        children = graph.find_by_label("Children side-effects")
        assert children
        general = graph.find_by_label("Side-effects")
        assert general
        assert children[0].node_id != general[0].node_id


@settings(deadline=None)
@given(st.lists(st.integers(0, 4), min_size=1, max_size=25))
def test_random_tree_construction_stays_consistent(parent_choices):
    graph = KnowledgeGraph()
    ids = [graph.root_id]
    for i, choice in enumerate(parent_choices):
        parent = ids[choice % len(ids)]
        ids.append(graph.add_node(f"node{i}", parent))
    # Every node reachable, every path terminates at the root.
    assert len(list(graph.walk())) == len(graph)
    for node_id in ids:
        path = graph.path_to(node_id)
        assert path[0].node_id == graph.root_id
        assert path[-1].node_id == node_id

"""The runtime lock-order checker: cycles, fan-out hazards, wrappers."""

from __future__ import annotations

import threading

import pytest

from repro.analysis import racecheck
from repro.analysis.racecheck import (
    TrackedCondition,
    TrackedLock,
    TrackedRLock,
    make_condition,
    make_lock,
    make_rlock,
)


@pytest.fixture()
def checking():
    """Enable instrumentation for one test, restoring state afterwards."""
    previous = racecheck._enabled_override
    racecheck.enable()
    racecheck.reset()
    yield
    racecheck.reset()
    # Restore rather than disable(): under REPRO_RACECHECK=1 the rest of
    # the suite must keep instrumenting the production locks.
    racecheck._enabled_override = previous


def test_factories_return_plain_primitives_when_disabled():
    previous = racecheck._enabled_override
    racecheck.disable()
    try:
        assert isinstance(make_lock("x"), type(threading.Lock()))
        assert isinstance(make_rlock("x"), type(threading.RLock()))
        assert isinstance(make_condition("x"), threading.Condition)
    finally:
        racecheck._enabled_override = previous
        racecheck.reset()


def test_factories_return_tracked_wrappers_when_enabled(checking):
    assert isinstance(make_lock("a"), TrackedLock)
    assert isinstance(make_rlock("b"), TrackedRLock)
    assert isinstance(make_condition("c"), TrackedCondition)


def test_consistent_order_is_clean(checking):
    a, b = make_lock("A"), make_lock("B")
    for _ in range(3):
        with a:
            with b:
                pass
    report = racecheck.report()
    assert report.clean
    assert ("A", "B") in report.edges
    assert report.acquisitions == {"A": 3, "B": 3}


def test_abba_ordering_reports_a_cycle(checking):
    a, b = make_lock("A"), make_lock("B")

    def ab():
        with a:
            with b:
                pass

    def ba():
        with b:
            with a:
                pass

    for target in (ab, ba):  # sequential: records edges, cannot deadlock
        thread = threading.Thread(target=target)
        thread.start()
        thread.join()
    report = racecheck.report()
    assert not report.clean
    assert sorted(report.cycles[0]) == ["A", "B"]
    assert "potential deadlock" in report.summary()


def test_three_lock_cycle_detected(checking):
    a, b, c = make_lock("A"), make_lock("B"), make_lock("C")
    for first, second in ((a, b), (b, c), (c, a)):
        with first:
            with second:
                pass
    report = racecheck.report()
    assert report.cycles
    assert sorted(report.cycles[0]) == ["A", "B", "C"]


def test_fanout_while_holding_a_lock_is_a_violation(checking):
    guard = make_lock("G")
    with guard:
        racecheck.note_fanout("scatter")
    report = racecheck.report()
    violation = report.violations[0]
    assert violation["kind"] == "fanout_while_locked"
    assert violation["locks"] == ["G"]
    assert not report.clean


def test_fanout_with_no_locks_held_is_clean(checking):
    make_lock("G")  # constructed but never held across the fan-out
    racecheck.note_fanout("scatter")
    assert racecheck.report().clean


def test_executor_scatter_reports_held_lock(checking):
    from repro.docstore.executor import scatter

    guard = make_lock("held.during.scatter")
    with guard:
        assert scatter([lambda: 1, lambda: 2]) == [1, 2]
    report = racecheck.report()
    assert any(v["kind"] == "fanout_while_locked"
               for v in report.violations)


def test_reacquiring_a_plain_lock_is_a_self_deadlock(checking):
    # Exercised via the bookkeeping hook: really acquiring twice would
    # hang the test, which is exactly what the checker is for.
    lock = make_lock("L")
    with lock:
        lock._before_acquire()
    report = racecheck.report()
    assert report.violations[0]["kind"] == "self_deadlock"
    assert report.violations[0]["lock"] == "L"


def test_rlock_reentry_is_not_a_violation(checking):
    lock = make_rlock("R")
    with lock:
        with lock:
            pass
    assert racecheck.report().clean


def test_condition_wait_releases_the_held_entry(checking):
    condition = make_condition("C")
    other = make_lock("O")
    hits = []

    def waiter():
        with condition:
            condition.wait(timeout=2.0)
            hits.append("woke")

    thread = threading.Thread(target=waiter)
    thread.start()
    # While the waiter sleeps inside wait(), this thread takes O then C:
    # if wait() left C on the waiter's held stack the graph would later
    # claim C is held across the notify, producing false edges.
    import time

    time.sleep(0.05)
    with other:
        with condition:
            condition.notify_all()
    thread.join()
    assert hits == ["woke"]
    report = racecheck.report()
    assert report.clean
    assert ("O", "C") in report.edges  # the true ordering was recorded


def test_wait_for_roundtrip(checking):
    condition = make_condition("C")
    ready = []

    def producer():
        with condition:
            ready.append(True)
            condition.notify_all()

    thread = threading.Thread(target=producer)
    with condition:
        thread.start()
        assert condition.wait_for(lambda: ready, timeout=2.0)
    thread.join()
    assert racecheck.report().clean


def test_report_as_dict_shape(checking):
    a, b = make_lock("A"), make_lock("B")
    with a:
        with b:
            pass
    payload = racecheck.report().as_dict()
    assert payload["clean"] is True
    assert payload["edges"] == [{"from": "A", "to": "B"}]
    assert payload["acquisitions"] == {"A": 1, "B": 1}


def test_reset_clears_the_graph(checking):
    a, b = make_lock("A"), make_lock("B")
    with a:
        with b:
            pass
    racecheck.reset()
    report = racecheck.report()
    assert report.edges == {} and report.acquisitions == {}


def test_tracked_lock_supports_locked_and_nonblocking_acquire(checking):
    lock = make_lock("L")
    assert lock.acquire(blocking=False)
    assert lock.locked()
    # A second thread's non-blocking attempt fails without recording a
    # self-deadlock (it is a different thread's held stack).
    results = []
    thread = threading.Thread(
        target=lambda: results.append(lock.acquire(blocking=False))
    )
    thread.start()
    thread.join()
    assert results == [False]
    lock.release()
    assert racecheck.report().clean

"""``QueryService``: the concurrent serving tier over a built CovidKG.

Request path (every engine the web front end exposes):

1. the request is **normalized** (case/whitespace-folded, parameters
   sorted) into a cache key ``(engine, canonical params)``;
2. the **result cache** is claimed against the current data-version
   snapshot — a hit returns the stored page without touching the
   aggregation pipelines, a remembered deterministic failure replays
   immediately (negative cache), and a miss on a key already being
   computed *collapses* onto that in-flight computation (single-flight)
   instead of queueing duplicate work;
3. a leader miss is **admitted** to a bounded worker pool (shed with
   :class:`ServiceOverloadedError` when the queue is full, dropped with
   :class:`DeadlineExceededError` when its deadline lapses in queue);
4. execution runs under a reader lock (ingest takes the writer side),
   with transient shard errors retried with backoff;
5. counters and latency histograms record the outcome for
   :meth:`QueryService.stats` — including per-shard fan-out latency,
   observed via the docstore executor's observer hook while the
   service is open.

Invalidation needs no explicit flush: every mutation bumps a version
counter (``Collection``/``ShardedCollection`` on document writes, the
``KnowledgeGraph`` on fusion/node writes), and cached entries remember
the snapshot they were computed under.
"""

from __future__ import annotations

import time
from concurrent.futures import Future
from dataclasses import dataclass, field
from typing import TYPE_CHECKING, Any, Callable

from repro.errors import (
    DeadlineExceededError,
    QueryError,
    RequestTooExpensiveError,
    ServiceClosedError,
    ServiceOverloadedError,
    ShardingError,
)
from repro.analysis.pipeline_check import (
    PipelineCostEstimate,
    estimate_pipeline_cost,
)
from repro.docstore.executor import (
    add_fanout_observer,
    budget_scope,
    executor_width,
    remove_fanout_observer,
)
from repro.serve.admission import ReadWriteLock, WorkerPool, retry_call
from repro.serve.cache import Flight, ResultCache, request_key
from repro.serve.loadctl import LoadControlConfig, LoadController
from repro.serve.metrics import ServiceMetrics

if TYPE_CHECKING:  # pragma: no cover - import cycle guard
    from repro.api.system import CovidKG
    from repro.kg.enrichment import EnrichmentReport

#: Engines a request may target.
ENGINES = ("all_fields", "title_abstract", "table", "kg", "kg_query",
           "meta_profile")


@dataclass
class GatewayConfig:
    """HTTP front-end knobs (see :mod:`repro.gateway`).

    Defined here (rather than in ``repro.gateway``) so ``ServeConfig``
    can carry one without the serve package importing the gateway — the
    dependency points gateway → serve only.
    """

    host: str = "127.0.0.1"
    #: ``0`` binds an ephemeral port (read it back from ``Gateway.port``).
    port: int = 8080
    #: Connections past this cap are answered ``503`` + ``Retry-After``
    #: and closed; the shed is reported to the load controller.
    max_connections: int = 1024
    #: Pipelined requests a single connection may have outstanding; the
    #: reader stops consuming the socket (TCP backpressure) at the cap.
    max_inflight_per_connection: int = 8
    #: Request line + headers may not exceed this many bytes (400).
    max_header_bytes: int = 16384
    #: Request bodies past this are rejected with ``413``.
    max_body_bytes: int = 65536
    #: Keep-alive connections idle past this are closed.
    idle_timeout_seconds: float = 75.0
    #: Graceful drain: in-flight requests get this long to finish after
    #: shutdown is requested; stragglers are cancelled.
    drain_seconds: float = 5.0
    #: ``Retry-After`` value (seconds) sent with connection-cap 503s.
    retry_after_seconds: int = 1
    #: Default per-request deadline when the client sends no
    #: ``timeout_ms`` (``None``: inherit ``ServeConfig`` semantics).
    default_timeout_ms: float | None = None
    #: Emit one structured access-log line per request.
    access_log: bool = True


@dataclass
class ServeConfig:
    """Serving-tier knobs (sized for a laptop; scale up per host)."""

    num_workers: int = 4
    max_queue: int = 64
    cache_entries: int = 512
    cache_ttl_seconds: float = 300.0
    negative_ttl_seconds: float = 30.0
    default_timeout_seconds: float | None = None
    retries: int = 2
    retry_backoff_seconds: float = 0.05
    histogram_capacity: int = 2048
    #: Pre-flight validate every engine's pipeline before shard fan-out
    #: (cheap — O(pipeline size); rejects malformed requests up front).
    validate_pipelines: bool = False
    #: Reject leader requests whose worst-case pipeline cost estimate
    #: (see :func:`repro.analysis.pipeline_check.estimate_pipeline_cost`)
    #: exceeds this many work units — *before* any shard fan-out.
    #: ``None`` disables pricing.
    max_request_cost: float | None = None
    #: Adaptive load control (fan-out budgets sized by an AIMD width
    #: controller).  ``None`` keeps the fixed-width behaviour.
    load_control: LoadControlConfig | None = None
    #: HTTP front-end knobs consumed by :class:`repro.gateway.Gateway`
    #: when this service is exposed over the network.  ``None`` uses
    #: the gateway defaults; the in-process tier ignores it entirely.
    gateway: GatewayConfig | None = None
    #: ``host:port`` of a :class:`repro.cluster.SharedCacheServer` this
    #: replica should use as a cross-process L2 behind its in-process
    #: result cache.  ``None`` (the default) keeps the cache purely
    #: in-process.  The L2 is consulted only by leader misses, on
    #: worker threads, and every cache failure degrades to a miss —
    #: the shared tier can never take the replica down.
    shared_cache: str | None = None
    #: Socket timeout for shared-cache round trips.
    shared_cache_timeout: float = 2.0


@dataclass
class ServedResult:
    """A query answer plus serving metadata.

    ``collapsed`` marks a result obtained by waiting on another
    request's in-flight computation (single-flight follower) rather
    than from the cache or from this request's own execution.
    """

    engine: str
    value: Any
    cached: bool
    seconds: float
    versions: tuple[int, ...] = field(default_factory=tuple)
    collapsed: bool = False
    #: The answer came from the cluster's shared cross-process cache
    #: (an L2 hit published by another replica), not this process's L1
    #: and not a local computation.
    shared: bool = False


class QueryService:
    """Concurrent, cached query serving over one :class:`CovidKG`.

    >>> from repro.api.system import CovidKG
    >>> from repro.corpus.generator import CorpusGenerator
    >>> system = CovidKG()
    >>> _ = system.ingest(CorpusGenerator().papers(8))
    >>> service = QueryService(system)
    >>> page = service.query("all_fields", query="covid")
    >>> page.engine, page.cached
    ('all_fields', False)
    >>> service.query("all_fields", query=" COVID ").cached  # normalized
    True
    >>> service.close()
    """

    def __init__(self, system: "CovidKG",
                 config: ServeConfig | None = None) -> None:
        self.system = system
        self.config = config or ServeConfig()
        self.cache = ResultCache(
            max_entries=self.config.cache_entries,
            ttl_seconds=self.config.cache_ttl_seconds,
            negative_ttl_seconds=self.config.negative_ttl_seconds,
        )
        self.metrics = ServiceMetrics(self.config.histogram_capacity)
        self.loadctl: LoadController | None = None
        if self.config.load_control is not None:
            self.loadctl = LoadController(self.config.load_control)
        self.shared_cache: Any = None
        if self.config.shared_cache:
            # Imported lazily: the serving tier must not drag the
            # cluster package (and through it the gateway) into every
            # in-process deployment.
            from repro.cluster.cacheclient import (  # noqa: PLC0415
                SharedCacheClient,
            )

            self.shared_cache = SharedCacheClient(
                self.config.shared_cache,
                timeout=self.config.shared_cache_timeout,
            )
        self._pool = WorkerPool(
            num_workers=self.config.num_workers,
            max_queue=self.config.max_queue,
        )
        # Writes get their own single worker: an ingest queued on the
        # query pool could sit behind a pool's worth of readers while
        # holding nothing, then deadlock-by-queue when those readers
        # are themselves waiting for pool slots.  One writer thread
        # also serializes batches without holding the write lock in
        # the caller.
        self._ingest_pool = WorkerPool(num_workers=1, max_queue=8,
                                       name="ingest")
        self._data_lock = ReadWriteLock()
        self.ingest_engine: Any = None
        self._closed = False
        if self.config.validate_pipelines:
            for engine in (system.all_fields, system.title_abstract,
                           system.tables):
                engine.validate_pipelines = True
        self._dispatch: dict[str, Callable[..., Any]] = {
            "all_fields": self._run_all_fields,
            "title_abstract": self._run_title_abstract,
            "table": self._run_table,
            "kg": self._run_kg,
            "kg_query": self._run_kg_query,
            "meta_profile": self._run_meta_profile,
        }
        # Observer registration is a *global* side effect on the docstore
        # executor hook — it must come last, after everything above that
        # can raise (WorkerPool rejects bad sizing), or a failed
        # construction strands callbacks into a half-built service.
        add_fanout_observer(self.metrics.record_fanout)
        if self.loadctl is not None:
            try:
                add_fanout_observer(self.loadctl.observe_fanout)
            except BaseException:
                remove_fanout_observer(self.metrics.record_fanout)
                raise

    # -- public API -------------------------------------------------------

    def submit(self, engine: str, *,
               timeout_seconds: float | None = None,
               **params: Any) -> "Future[ServedResult]":
        """Admit one request; returns a future of :class:`ServedResult`.

        Cache hits (and remembered negative results) resolve immediately
        with no queueing; a miss on a key already being computed returns
        a future that collapses onto the in-flight computation.
        ``timeout_seconds`` (or the config default) becomes an absolute
        deadline: a request still queued when it passes fails with
        ``DeadlineExceededError``.
        """
        if self._closed:
            raise ServiceClosedError("service is closed")
        if engine not in self._dispatch:
            raise QueryError(
                f"unknown engine {engine!r}; one of {', '.join(ENGINES)}"
            )
        started = time.monotonic()
        self.metrics.record_request(engine)
        key = request_key(engine, params)
        versions = self._versions(engine)
        status, payload = self.cache.claim(key, versions)
        if status == "hit":
            self.metrics.record_latency(engine,
                                        time.monotonic() - started)
            future: Future = Future()
            future.set_result(ServedResult(
                engine=engine, value=payload, cached=True,
                seconds=time.monotonic() - started, versions=versions,
            ))
            return future
        if status == "negative":
            self.metrics.record_negative_hit()
            future = Future()
            future.set_exception(payload)
            return future
        if status == "follower":
            self.metrics.record_collapsed()
            return self._follow(engine, payload, started, versions)
        return self._lead(engine, params, key, payload, started,
                          timeout_seconds, versions)

    def _follow(self, engine: str, flight: Flight, started: float,
                versions: tuple[int, ...]) -> "Future[ServedResult]":
        """Wrap an in-flight leader computation as this request's future."""
        future: "Future[ServedResult]" = Future()

        def relay(inner: Future) -> None:
            exception = inner.exception()
            if exception is not None:
                future.set_exception(exception)
                return
            seconds = time.monotonic() - started
            self.metrics.record_latency(engine, seconds)
            future.set_result(ServedResult(
                engine=engine, value=inner.result(), cached=False,
                seconds=seconds, versions=versions, collapsed=True,
            ))

        flight.future.add_done_callback(relay)
        return future

    def _lead(self, engine: str, params: dict[str, Any], key: Any,
              flight: Flight, started: float,
              timeout_seconds: float | None,
              versions: tuple[int, ...]) -> "Future[ServedResult]":
        """Queue the leader's computation; settle the flight in all paths."""
        timeout = (timeout_seconds if timeout_seconds is not None
                   else self.config.default_timeout_seconds)
        deadline = None if timeout is None else started + timeout
        if self.config.max_request_cost is not None:
            try:
                estimate = self._estimate_cost(engine, params)
            except QueryError as exc:
                # Pricing itself rejected the request (e.g. KGQL that
                # does not parse).  Deterministic, so negative-cache it
                # — and settle the flight so followers don't hang.
                self.cache.fail(flight, exc, negative=True)
                self.metrics.record_error(engine)
                raise
            if estimate is not None and \
                    estimate.total_cost > self.config.max_request_cost:
                exc = RequestTooExpensiveError(
                    f"estimated pipeline cost {estimate.total_cost:.0f} "
                    f"exceeds budget {self.config.max_request_cost:.0f} "
                    f"(engine {engine!r}, worst-case "
                    f"{estimate.documents_in:.0f} docs in)"
                )
                # Deterministic for this data snapshot: negative-cache
                # it so retries replay the rejection without re-pricing.
                self.cache.fail(flight, exc, negative=True)
                self.metrics.record_cost_rejected()
                raise exc
        if self.loadctl is not None:
            self.loadctl.decide(self._pool.pending, self._pool.max_queue)
        try:
            future = self._pool.submit(
                lambda: self._execute(engine, params, key, started,
                                      deadline, flight),
                deadline=deadline,
            )
        except ServiceOverloadedError as exc:
            # Shed before execution: wake followers so they don't hang.
            self.cache.fail(flight, exc)
            self.metrics.record_shed()
            if self.loadctl is not None:
                self.loadctl.on_shed()
            raise

        def settle_if_dropped(outer: "Future[ServedResult]") -> None:
            # _execute settles the flight before the pool future
            # resolves, so an unsettled flight here means the task
            # never ran (deadline drop in queue, or shutdown cancel).
            if flight.future.done():
                return
            if outer.cancelled():
                self.cache.fail(flight, ServiceClosedError(
                    "service closed before execution"
                ))
                return
            exception = outer.exception()
            if exception is not None:
                self.cache.fail(flight, exception)

        future.add_done_callback(settle_if_dropped)
        future.add_done_callback(self._count_deadline_drop)
        return future

    def _count_deadline_drop(self, future: "Future[ServedResult]") -> None:
        if future.cancelled():
            return
        if isinstance(future.exception(), DeadlineExceededError):
            self.metrics.record_deadline_exceeded()

    def query(self, engine: str, *,
              timeout_seconds: float | None = None,
              **params: Any) -> ServedResult:
        """Synchronous convenience wrapper around :meth:`submit`.

        Deadlines are enforced by the worker pool (a queued request whose
        deadline lapses fails with ``DeadlineExceededError``), so this
        blocks until the pool resolves the future one way or the other.
        """
        return self.submit(engine, timeout_seconds=timeout_seconds,
                           **params).result()

    def ingest(self, papers: list[dict[str, Any]],
               skip_duplicates: bool = False) -> "EnrichmentReport":
        """Ingest under the writer lock; cached results self-invalidate.

        The underlying store/index/KG writes bump their version
        counters, so no cache flush is needed — subsequent lookups see a
        different snapshot and recompute.
        """
        if self._closed:
            raise ServiceClosedError("service is closed")
        with self._data_lock.write_locked():
            report = self.system.ingest(papers,
                                        skip_duplicates=skip_duplicates)
        self.broadcast_versions()
        return report

    def attach_ingest(self, engine: Any) -> "QueryService":
        """Adopt an :class:`~repro.ingest.engine.IngestEngine`.

        The engine takes this service's reader/writer lock, so its
        batch commits exclude queries atomically and its background
        segment merges share the read side with them.
        :meth:`submit_ingest` then routes through the engine — WAL,
        quality gate, snapshots — instead of bare ``system.ingest``.
        """
        engine.use_lock(self._data_lock)
        self.ingest_engine = engine
        return self

    def submit_ingest(self, papers: list[Any], *,
                      skip_duplicates: bool = False,
                      timeout_seconds: float | None = None
                      ) -> "Future[ServedResult]":
        """Admit one ingest batch; returns a future of the receipt.

        Runs on the dedicated single-worker ingest pool — never the
        query pool — under the data write lock.  Admission pricing
        charges :data:`~repro.ingest.engine.INGEST_DOC_COST` work units
        per document against ``max_request_cost``, so one oversized
        batch cannot monopolize the writer any more than an expensive
        query could a reader.
        """
        from repro.ingest.engine import INGEST_DOC_COST  # noqa: PLC0415

        if self._closed:
            raise ServiceClosedError("service is closed")
        started = time.monotonic()
        self.metrics.record_request("ingest")
        if self.config.max_request_cost is not None:
            batch = len(papers) if isinstance(papers, list) else 1
            cost = batch * INGEST_DOC_COST
            if cost > self.config.max_request_cost:
                self.metrics.record_cost_rejected()
                raise RequestTooExpensiveError(
                    f"estimated ingest cost {cost:.0f} exceeds budget "
                    f"{self.config.max_request_cost:.0f} "
                    f"({batch} document(s); split the batch)"
                )
        timeout = (timeout_seconds if timeout_seconds is not None
                   else self.config.default_timeout_seconds)
        deadline = None if timeout is None else started + timeout

        def run() -> ServedResult:
            try:
                value = self._run_ingest(papers, skip_duplicates)
            except Exception:
                self.metrics.record_error("ingest")
                raise
            seconds = time.monotonic() - started
            self.metrics.record_latency("ingest", seconds)
            return ServedResult(engine="ingest", value=value,
                                cached=False, seconds=seconds)

        try:
            return self._ingest_pool.submit(run, deadline=deadline)
        except ServiceOverloadedError:
            self.metrics.record_shed()
            raise

    def _run_ingest(self, papers: list[Any],
                    skip_duplicates: bool) -> dict[str, Any]:
        engine = self.ingest_engine
        if engine is not None:
            receipt = engine.commit_batch(
                papers, skip_duplicates=skip_duplicates)
            self.broadcast_versions()
            return receipt.to_json()
        with self._data_lock.write_locked():
            report = self.system.ingest(papers,
                                        skip_duplicates=skip_duplicates)
        self.broadcast_versions()
        return {
            "accepted": len(papers),
            "subtrees": report.subtrees,
            "versions": {"store": self.system.store.version,
                         "kg": self.system.graph.version},
        }

    def broadcast_versions(self) -> None:
        """Version-counter broadcast after an ingest commit/rollback.

        Announces every engine's current data-version snapshot to the
        cluster's shared cache, which eagerly purges entries stamped
        with a different snapshot.  Pure optimization: the shared
        cache's GET path re-checks version equality on every lookup, so
        correctness never depends on a broadcast arriving.
        """
        shared = self.shared_cache
        if shared is None:
            return
        for engine in ENGINES:
            shared.invalidate(engine, self._versions(engine))

    def health(self) -> dict[str, Any]:
        """The readiness payload ``/v1/healthz`` reports.

        Deliberately cheap (attribute reads and O(1) lock snapshots, no
        histograms) — the gateway answers it on the event loop, and the
        cluster router probes it every few hundred milliseconds.  The
        router uses ``versions`` to spot a replica serving stale data
        and ``ingest.replaying`` to keep a still-recovering replica out
        of the ring.
        """
        system = self.system
        ingest: dict[str, Any] = {
            "attached": self.ingest_engine is not None,
            "pending": self._ingest_pool.pending,
        }
        if self.ingest_engine is not None:
            ingest.update(self.ingest_engine.replay_status())
        else:
            ingest.update({"replaying": False, "replayed_batches": 0})
        return {
            "versions": {
                "store": system.store.version,
                "kg": system.graph.version,
                "all_fields": system.all_fields.collection.version,
                "title_abstract":
                    system.title_abstract.collection.version,
                "table": system.tables.collection.version,
            },
            "ingest": ingest,
            "admission": {
                "effective_width": (self.loadctl.effective_width()
                                    if self.loadctl is not None
                                    else executor_width()),
                "pending": self._pool.pending,
            },
        }

    def stats(self) -> dict[str, Any]:
        """Request, cache, and latency statistics for dashboards/CLI."""
        snapshot = self.metrics.snapshot()
        snapshot["cache"] = {
            **self.cache.stats_snapshot(),
            "entries": len(self.cache),
            "max_entries": self.cache.max_entries,
            "ttl_seconds": self.cache.ttl_seconds,
            "negative_ttl_seconds": self.cache.negative_ttl_seconds,
            "inflight": self.cache.inflight,
            "shared": (self.shared_cache.stats_snapshot()
                       if self.shared_cache is not None
                       else {"enabled": False}),
        }
        snapshot["admission"] = {
            "workers": self._pool.num_workers,
            "max_queue": self._pool.max_queue,
            "pending": self._pool.pending,
            "executor_width": executor_width(),
            "effective_width": (self.loadctl.effective_width()
                                if self.loadctl is not None
                                else executor_width()),
        }
        snapshot["load_control"] = (self.loadctl.snapshot()
                                    if self.loadctl is not None
                                    else {"enabled": False})
        snapshot["max_request_cost"] = self.config.max_request_cost
        snapshot["versions"] = {
            "store": self.system.store.version,
            "kg": self.system.graph.version,
        }
        snapshot["ingest"] = {
            "attached": self.ingest_engine is not None,
            "pending": self._ingest_pool.pending,
            **(self.ingest_engine.stats()
               if self.ingest_engine is not None else {}),
        }
        return snapshot

    def close(self, wait: bool = True) -> None:
        if self._closed:
            return
        self._closed = True
        remove_fanout_observer(self.metrics.record_fanout)
        if self.loadctl is not None:
            remove_fanout_observer(self.loadctl.observe_fanout)
        self._pool.shutdown(wait=wait)
        self._ingest_pool.shutdown(wait=wait)
        if self.shared_cache is not None:
            self.shared_cache.close()

    def __enter__(self) -> "QueryService":
        return self

    def __exit__(self, *exc_info: Any) -> None:
        self.close()

    # -- execution --------------------------------------------------------

    def _versions(self, engine: str) -> tuple[int, ...]:
        """The data-version snapshot a result for ``engine`` depends on."""
        system = self.system
        if engine == "all_fields":
            return (system.all_fields.collection.version,)
        if engine == "title_abstract":
            return (system.title_abstract.collection.version,)
        if engine == "table":
            return (system.tables.collection.version,)
        if engine in ("kg", "kg_query"):
            return (system.graph.version,)
        # meta_profile reads the ingested corpus.
        return (system.store.version,)

    def _estimate_cost(self, engine: str, params: dict[str, Any]
                       ) -> PipelineCostEstimate | None:
        """Worst-case work units for one request, before any fan-out.

        Search engines are priced from their canonical pipeline shape
        against per-shard index sizes; ``kg``/``meta_profile`` are
        priced as one cheap pass over the graph/corpus.  Returns
        ``None`` only for engines with nothing to price (e.g. a
        replaced dispatch entry in tests).
        """
        system = self.system
        try:
            page = max(1, int(params.get("page", 1)))
        except (TypeError, ValueError):
            page = 1
        search_engines = {
            "all_fields": system.all_fields,
            "title_abstract": system.title_abstract,
            "table": system.tables,
        }
        target = search_engines.get(engine)
        if target is not None:
            if engine == "title_abstract":
                queries = [params.get(name)
                           for name in ("title", "abstract", "caption")]
            else:
                queries = [params.get("query")]
            return estimate_pipeline_cost(
                target.pipeline_plan(page=page),
                target.shard_document_counts(),
                function_cost_factor=target.rank_cost_factor(queries),
            )
        if engine == "kg":
            # Graph search scores every node once.
            return estimate_pipeline_cost([{"$match": {}}],
                                          [len(system.graph)])
        if engine == "kg_query":
            # Parse + plan the KGQL (translating NL first) and price
            # the traversal: candidate set × per-hop fan-out × hop
            # bound.  Syntax errors surface here, pre-admission.
            from repro.kgql import (  # noqa: PLC0415
                estimate_kgql_cost, parse, plan_query, translate,
            )
            text = str(params.get("query", ""))
            if params.get("nl"):
                text = translate(text).kgql
            return estimate_kgql_cost(plan_query(parse(text)),
                                      system.graph)
        if engine == "meta_profile":
            # One pass over the ingested corpus.
            return estimate_pipeline_cost([{"$match": {}}],
                                          system.store.shard_sizes())
        return None

    def _execute(self, engine: str, params: dict[str, Any],
                 key: Any, started: float, deadline: float | None,
                 flight: Flight) -> ServedResult:
        runner = self._dispatch[engine]
        budget = None if self.loadctl is None else self.loadctl.budget()
        versions = flight.versions
        shared = self.shared_cache
        if shared is not None:
            # L2 lookup — on this worker thread, never on the event
            # loop, and never under the data lock (the versions
            # snapshot is read under a brief read-lock, the socket
            # round trip happens outside it).  A hit published by
            # another replica skips the whole pipeline; any cache
            # failure is a miss and the compute path below proceeds.
            with self._data_lock.read_locked():
                versions = self._versions(engine)
            hit, value = shared.get(engine, key, versions)
            if hit:
                self.cache.complete(flight, versions, value)
                seconds = time.monotonic() - started
                self.metrics.record_latency(engine, seconds)
                return ServedResult(
                    engine=engine, value=value, cached=True,
                    seconds=seconds, versions=versions, shared=True,
                )
        try:
            with self._data_lock.read_locked(), budget_scope(budget):
                versions = self._versions(engine)
                value = retry_call(
                    lambda: runner(**params),
                    retries=self.config.retries,
                    backoff_seconds=self.config.retry_backoff_seconds,
                    retry_on=(ShardingError,),
                    deadline=deadline,
                    on_retry=self.metrics.record_retry,
                )
        except Exception as exc:
            # A deterministic request error (bad query) is worth
            # remembering; transient failures must stay uncached.  The
            # negative is stamped with the versions read under the read
            # lock — the snapshot the failure was observed against —
            # not the possibly-stale claim-time snapshot.
            self.cache.fail(flight, exc,
                            negative=isinstance(exc, QueryError),
                            versions=versions)
            self.metrics.record_error(engine)
            raise
        self.cache.complete(flight, versions, value)
        if shared is not None:
            # Write-through: publish the freshly computed page so the
            # other replicas' leader misses become one-round-trip hits.
            shared.put(engine, key, versions, value)
        seconds = time.monotonic() - started
        self.metrics.record_latency(engine, seconds)
        return ServedResult(engine=engine, value=value, cached=False,
                            seconds=seconds, versions=versions)

    # -- engine adapters --------------------------------------------------

    def _run_all_fields(self, query: str, page: int = 1) -> Any:
        return self.system.all_fields.search(query, page=page)

    def _run_title_abstract(self, title: str | None = None,
                            abstract: str | None = None,
                            caption: str | None = None,
                            page: int = 1) -> Any:
        return self.system.title_abstract.search(
            title=title, abstract=abstract, caption=caption, page=page,
        )

    def _run_table(self, query: str, page: int = 1) -> Any:
        return self.system.tables.search(query, page=page)

    def _run_kg(self, query: str, top_k: int = 10) -> Any:
        return self.system.search_graph(query, top_k=top_k)

    def _run_kg_query(self, query: str, nl: bool = False) -> Any:
        return self.system.query_graph(query, nl=nl)

    def _run_meta_profile(self) -> Any:
        return self.system.meta_profile()

"""The query-serving subsystem: cache, admission control, metrics.

Wraps a built :class:`~repro.api.system.CovidKG` in a
:class:`~repro.serve.service.QueryService` that answers the web front
end's five request shapes (title/abstract, all-fields, table, KG, and
meta-profile) concurrently, with result caching, bounded admission, and
per-request observability.
"""

from repro.serve.admission import ReadWriteLock, WorkerPool, retry_call
from repro.serve.cache import (
    CacheStats,
    Flight,
    ResultCache,
    canonical_params,
    canonical_text,
    request_key,
)
from repro.serve.loadctl import LoadControlConfig, LoadController
from repro.serve.metrics import (
    GatewayMetrics,
    LatencyHistogram,
    ServiceMetrics,
)
from repro.serve.service import (
    ENGINES,
    GatewayConfig,
    QueryService,
    ServeConfig,
    ServedResult,
)

__all__ = [
    "ENGINES",
    "CacheStats",
    "Flight",
    "GatewayConfig",
    "GatewayMetrics",
    "LatencyHistogram",
    "LoadControlConfig",
    "LoadController",
    "QueryService",
    "ReadWriteLock",
    "ResultCache",
    "ServeConfig",
    "ServedResult",
    "ServiceMetrics",
    "WorkerPool",
    "canonical_params",
    "canonical_text",
    "request_key",
    "retry_call",
]

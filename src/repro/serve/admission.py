"""Admission control: bounded worker pool, deadlines, retry, RW-lock.

The serving tier must degrade predictably under overload.  Three rules:

* the dispatch queue is **bounded** — a request that cannot be queued is
  shed immediately with :class:`ServiceOverloadedError` (fail fast beats
  unbounded queueing, whose latency grows without limit);
* every request may carry a **deadline** — work whose deadline passed
  while it waited is dropped at dequeue with
  :class:`DeadlineExceededError` rather than executed uselessly;
* transient backend errors are **retried with exponential backoff**
  before the failure is surfaced.
"""

from __future__ import annotations

import threading
import time
from concurrent.futures import Future
from queue import Empty, Full, Queue
from typing import Any, Callable

from repro.analysis import racecheck
from repro.errors import (
    DeadlineExceededError,
    ServiceClosedError,
    ServiceOverloadedError,
)

_SHUTDOWN = object()


def retry_call(fn: Callable[[], Any], *, retries: int = 2,
               backoff_seconds: float = 0.05,
               retry_on: tuple[type[BaseException], ...] = (),
               deadline: float | None = None,
               on_retry: Callable[[], None] | None = None,
               sleep: Callable[[float], None] = time.sleep) -> Any:
    """Call ``fn``, retrying transient failures with exponential backoff.

    ``retries`` is the number of *re*-attempts after the first call.  A
    retry never starts past ``deadline`` (monotonic seconds) — the last
    error is raised instead of sleeping through the caller's budget.
    """
    attempt = 0
    while True:
        try:
            return fn()
        except retry_on:
            if attempt >= retries:
                raise
            delay = backoff_seconds * (2 ** attempt)
            if deadline is not None \
                    and time.monotonic() + delay >= deadline:
                raise
            if on_retry is not None:
                on_retry()
            sleep(delay)
            attempt += 1


class ReadWriteLock:
    """Writer-preferring reader/writer lock.

    Queries (readers) share the system; ingest (the writer) gets
    exclusive access.  Waiting writers block new readers so a steady
    query stream cannot starve ingestion.
    """

    def __init__(self) -> None:
        self._condition = racecheck.make_condition("serve.admission.rwlock")
        self._readers = 0
        self._writer = False
        self._writers_waiting = 0

    def acquire_read(self) -> None:
        with self._condition:
            while self._writer or self._writers_waiting:
                self._condition.wait()
            self._readers += 1

    def release_read(self) -> None:
        with self._condition:
            self._readers -= 1
            if self._readers == 0:
                self._condition.notify_all()

    def acquire_write(self) -> None:
        with self._condition:
            self._writers_waiting += 1
            try:
                while self._writer or self._readers:
                    self._condition.wait()
            finally:
                self._writers_waiting -= 1
            self._writer = True

    def release_write(self) -> None:
        with self._condition:
            self._writer = False
            self._condition.notify_all()

    class _Guard:
        def __init__(self, acquire: Callable[[], None],
                     release: Callable[[], None]) -> None:
            self._acquire = acquire
            self._release = release

        def __enter__(self) -> None:
            self._acquire()

        def __exit__(self, *exc_info: Any) -> None:
            self._release()

    def read_locked(self) -> "_Guard":
        return self._Guard(self.acquire_read, self.release_read)

    def write_locked(self) -> "_Guard":
        return self._Guard(self.acquire_write, self.release_write)


class _Task:
    __slots__ = ("fn", "future", "deadline")

    def __init__(self, fn: Callable[[], Any], future: Future,
                 deadline: float | None) -> None:
        self.fn = fn
        self.future = future
        self.deadline = deadline


class WorkerPool:
    """Fixed thread pool behind a bounded admission queue.

    Unlike ``concurrent.futures.ThreadPoolExecutor`` (whose work queue
    is unbounded), :meth:`submit` refuses work the queue cannot hold:
    the caller gets :class:`ServiceOverloadedError` *now* instead of a
    future that languishes.
    """

    def __init__(self, num_workers: int = 4, max_queue: int = 64,
                 name: str = "serve") -> None:
        if num_workers < 1:
            raise ValueError("num_workers must be >= 1")
        if max_queue < 1:
            raise ValueError("max_queue must be >= 1")
        self.num_workers = num_workers
        self.max_queue = max_queue
        self._queue: Queue[Any] = Queue(maxsize=max_queue)
        self._closed = False
        self._lock = racecheck.make_lock("serve.admission.pool")
        self._threads = [
            threading.Thread(target=self._worker_loop,
                             name=f"{name}-worker-{i}", daemon=True)
            for i in range(num_workers)
        ]
        started: list[threading.Thread] = []
        try:
            for thread in self._threads:
                thread.start()
                started.append(thread)
        except BaseException:
            # Thread exhaustion partway through: the threads already
            # started are parked on the queue forever unless each gets
            # a shutdown sentinel — don't strand them behind the raise.
            self._closed = True
            for _ in started:
                self._queue.put(_SHUTDOWN)
            raise

    # -- submission -------------------------------------------------------

    def submit(self, fn: Callable[[], Any],
               deadline: float | None = None) -> Future:
        """Queue ``fn``; shed immediately when the queue is full.

        The closed-check and the enqueue happen under one lock:
        :meth:`shutdown` flips ``_closed`` under the same lock before it
        enqueues the shutdown sentinels, so any task this method admits
        is queued *ahead* of the sentinels and is guaranteed to be run
        (or failed by the shutdown drain) — a future returned here can
        never languish unsettled.
        """
        future: Future = Future()
        task = _Task(fn, future, deadline)
        with self._lock:
            if self._closed:
                raise ServiceClosedError("worker pool is shut down")
            try:
                self._queue.put_nowait(task)
            except Full:
                raise ServiceOverloadedError(
                    f"admission queue full ({self.max_queue} pending); "
                    "request shed"
                ) from None
        return future

    @property
    def pending(self) -> int:
        return self._queue.qsize()

    # -- worker loop ------------------------------------------------------

    def _worker_loop(self) -> None:
        while True:
            item = self._queue.get()
            if item is _SHUTDOWN:
                self._queue.task_done()
                return
            task: _Task = item
            try:
                self._run_task(task)
            finally:
                self._queue.task_done()

    @staticmethod
    def _run_task(task: _Task) -> None:
        if task.deadline is not None \
                and time.monotonic() >= task.deadline:
            task.future.set_exception(DeadlineExceededError(
                "deadline passed while the request waited in the "
                "admission queue"
            ))
            return
        if not task.future.set_running_or_notify_cancel():
            return  # cancelled while queued
        try:
            task.future.set_result(task.fn())
        except BaseException as exc:  # noqa: BLE001 - future carries it
            task.future.set_exception(exc)

    # -- shutdown ---------------------------------------------------------

    def shutdown(self, wait: bool = True) -> None:
        with self._lock:
            if self._closed:
                return
            self._closed = True
        for _ in self._threads:
            self._queue.put(_SHUTDOWN)
        if wait:
            for thread in self._threads:
                thread.join()
            # Defensive: submit() enqueues under the lock ahead of the
            # sentinels, so nothing should be left; fail it if it is.
            while True:
                try:
                    item = self._queue.get_nowait()
                except Empty:
                    break
                if item is not _SHUTDOWN:
                    item.future.set_exception(
                        ServiceClosedError("worker pool shut down before "
                                           "the request ran")
                    )
                self._queue.task_done()

"""Per-request observability: counters and latency histograms.

``QueryService.stats()`` is built from these primitives.  The histogram
keeps a bounded reservoir of recent samples (plus exact count/sum/min/
max), so percentile queries stay O(reservoir) regardless of how many
requests the service has handled.
"""

from __future__ import annotations

from collections import Counter
from typing import Any

from repro.analysis import racecheck

#: Percentiles ``snapshot()`` reports, as (label, fraction).
REPORTED_PERCENTILES = (("p50", 0.50), ("p95", 0.95), ("p99", 0.99))


class LatencyHistogram:
    """Bounded-memory latency tracker with percentile queries.

    Records seconds; reports milliseconds.  The last ``capacity``
    samples form the percentile reservoir — enough resolution for a
    serving dashboard without unbounded growth.
    """

    def __init__(self, capacity: int = 2048) -> None:
        if capacity < 1:
            raise ValueError("capacity must be >= 1")
        self.capacity = capacity
        self._samples: list[float] = []
        self._cursor = 0
        self.count = 0
        self.total = 0.0
        self.min: float | None = None
        self.max: float | None = None
        self._lock = racecheck.make_lock("serve.metrics.histogram")

    def observe(self, seconds: float) -> None:
        with self._lock:
            self.count += 1
            self.total += seconds
            if self.min is None or seconds < self.min:
                self.min = seconds
            if self.max is None or seconds > self.max:
                self.max = seconds
            if len(self._samples) < self.capacity:
                self._samples.append(seconds)
            else:  # ring buffer: overwrite the oldest sample
                self._samples[self._cursor] = seconds
                self._cursor = (self._cursor + 1) % self.capacity

    def percentile(self, fraction: float) -> float | None:
        """Nearest-rank percentile over the reservoir, in seconds."""
        with self._lock:
            if not self._samples:
                return None
            ordered = sorted(self._samples)
        rank = min(len(ordered) - 1,
                   max(0, round(fraction * (len(ordered) - 1))))
        return ordered[rank]

    @property
    def mean(self) -> float | None:
        with self._lock:
            if not self.count:
                return None
            return self.total / self.count

    def snapshot(self) -> dict[str, Any]:
        """Counts and millisecond latency figures for dashboards.

        All fields are read under one lock acquisition, so the snapshot
        is internally consistent — a concurrent ``observe`` can never
        produce a count that disagrees with the mean or max.
        """
        with self._lock:
            count = self.count
            total = self.total
            maximum = self.max
            ordered = sorted(self._samples)
        result: dict[str, Any] = {"count": count}
        result["mean_ms"] = (total / count) * 1000.0 if count else None
        for label, fraction in REPORTED_PERCENTILES:
            if ordered:
                rank = min(len(ordered) - 1,
                           max(0, round(fraction * (len(ordered) - 1))))
                result[f"{label}_ms"] = ordered[rank] * 1000.0
            else:
                result[f"{label}_ms"] = None
        result["max_ms"] = None if maximum is None else maximum * 1000.0
        return result


class GatewayMetrics:
    """Connection gauges and per-endpoint counters for the HTTP gateway.

    The gateway's event loop is single-threaded, but ``/v1/stats`` may
    be rendered while a drain poll or a CLI thread reads the same
    counters, so every update and the snapshot go through one lock —
    the same consistency rule :class:`ServiceMetrics` follows.
    """

    def __init__(self, histogram_capacity: int = 2048) -> None:
        self._lock = racecheck.make_lock("serve.metrics.gateway")
        self.connections_open = 0
        self.connections_peak = 0
        self.connections_total = 0
        #: Connections refused at the global cap (503 + ``Retry-After``).
        self.connections_shed = 0
        self.requests_inflight = 0
        self.requests: Counter[str] = Counter()
        self.responses: Counter[int] = Counter()
        self.parse_errors = 0
        self.latency = LatencyHistogram(histogram_capacity)

    def connection_opened(self) -> None:
        with self._lock:
            self.connections_open += 1
            self.connections_total += 1
            if self.connections_open > self.connections_peak:
                self.connections_peak = self.connections_open

    def connection_closed(self) -> None:
        with self._lock:
            self.connections_open -= 1

    def connection_shed(self) -> None:
        with self._lock:
            self.connections_shed += 1

    def request_started(self, endpoint: str) -> None:
        with self._lock:
            self.requests_inflight += 1
            self.requests[endpoint] += 1

    def request_finished(self, status: int, seconds: float) -> None:
        with self._lock:
            self.requests_inflight -= 1
            self.responses[status] += 1
        self.latency.observe(seconds)

    def record_parse_error(self) -> None:
        with self._lock:
            self.parse_errors += 1

    @property
    def inflight(self) -> int:
        with self._lock:
            return self.requests_inflight

    def snapshot(self) -> dict[str, Any]:
        with self._lock:
            return {
                "connections": {
                    "open": self.connections_open,
                    "peak": self.connections_peak,
                    "total": self.connections_total,
                    "shed": self.connections_shed,
                },
                "requests_inflight": self.requests_inflight,
                "requests": dict(self.requests),
                "responses": {str(status): count for status, count
                              in sorted(self.responses.items())},
                "parse_errors": self.parse_errors,
                "latency": self.latency.snapshot(),
            }


class ServiceMetrics:
    """All counters/histograms for one :class:`QueryService`."""

    def __init__(self, histogram_capacity: int = 2048) -> None:
        self._lock = racecheck.make_lock("serve.metrics.service")
        self._histogram_capacity = histogram_capacity
        self.requests: Counter[str] = Counter()
        self.errors: Counter[str] = Counter()
        self.shed = 0
        self.cost_rejected = 0
        self.deadline_exceeded = 0
        self.retries = 0
        self.collapsed_misses = 0
        self.negative_hits = 0
        self.overall = LatencyHistogram(histogram_capacity)
        #: Per-shard fan-out task latency (fed by the docstore executor's
        #: observer hook while this service is open).
        self.shard_fanout = LatencyHistogram(histogram_capacity)
        self._per_engine: dict[str, LatencyHistogram] = {}

    def record_request(self, engine: str) -> None:
        with self._lock:
            self.requests[engine] += 1

    def record_error(self, engine: str) -> None:
        with self._lock:
            self.errors[engine] += 1

    def record_shed(self) -> None:
        with self._lock:
            self.shed += 1

    def record_cost_rejected(self) -> None:
        """A request priced over the cost budget before any fan-out."""
        with self._lock:
            self.cost_rejected += 1

    def record_deadline_exceeded(self) -> None:
        with self._lock:
            self.deadline_exceeded += 1

    def record_retry(self) -> None:
        with self._lock:
            self.retries += 1

    def record_collapsed(self) -> None:
        """A miss collapsed onto another request's in-flight computation."""
        with self._lock:
            self.collapsed_misses += 1

    def record_negative_hit(self) -> None:
        """A request answered from the negative (known-failure) cache."""
        with self._lock:
            self.negative_hits += 1

    def record_fanout(self, seconds: float) -> None:
        """One per-shard task's wall time inside a scatter-gather."""
        self.shard_fanout.observe(seconds)

    def record_latency(self, engine: str, seconds: float) -> None:
        self.overall.observe(seconds)
        self.histogram(engine).observe(seconds)

    def histogram(self, engine: str) -> LatencyHistogram:
        with self._lock:
            histogram = self._per_engine.get(engine)
            if histogram is None:
                histogram = LatencyHistogram(self._histogram_capacity)
                self._per_engine[engine] = histogram
            return histogram

    def snapshot(self) -> dict[str, Any]:
        with self._lock:
            requests = dict(self.requests)
            errors = dict(self.errors)
            engines = dict(self._per_engine)
            shed = self.shed
            cost_rejected = self.cost_rejected
            deadline_exceeded = self.deadline_exceeded
            retries = self.retries
            collapsed_misses = self.collapsed_misses
            negative_hits = self.negative_hits
        return {
            "requests": requests,
            "total_requests": sum(requests.values()),
            "errors": errors,
            "shed": shed,
            "cost_rejected": cost_rejected,
            "deadline_exceeded": deadline_exceeded,
            "retries": retries,
            "collapsed_misses": collapsed_misses,
            "negative_hits": negative_hits,
            "latency": {
                "overall": self.overall.snapshot(),
                "shard_fanout": self.shard_fanout.snapshot(),
                **{name: histogram.snapshot()
                   for name, histogram in sorted(engines.items())},
            },
        }

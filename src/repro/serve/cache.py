"""Normalized-request result cache: LRU + TTL + version invalidation.

The serving tier caches fully-computed query results keyed on
``(engine, canonical query, page)``.  Five mechanisms keep entries
correct and bounded:

* **Canonicalization** — ``"  Vaccine   SIDE effects "`` and
  ``"vaccine side effects"`` hit the same entry, so repeated interactive
  queries share work regardless of spacing/case.
* **Version invalidation** — every entry records the data-version
  snapshot (docstore + KG counters) it was computed against; a lookup
  whose current snapshot differs is a miss and evicts the stale entry.
* **LRU + TTL** — at most ``max_entries`` live at once (least recently
  used evicted first) and nothing older than ``ttl_seconds`` is served.
* **Single-flight miss collapsing** — the stampede protection: N
  concurrent misses on one key produce *one* computation.  The first
  miss becomes the **leader** and computes; the other N-1 become
  **followers** that block on the leader's in-flight future instead of
  recomputing (:meth:`ResultCache.claim` / :meth:`ResultCache.complete`
  / :meth:`ResultCache.fail`).
* **Negative caching** — a deterministic request failure (e.g. a
  malformed query) is remembered for a *short* TTL
  (``negative_ttl_seconds``) and replayed on repeat lookups, so a
  hammered bad request cannot recompute its way around the cache.
"""

from __future__ import annotations

import time
from collections import OrderedDict
from concurrent.futures import Future
from dataclasses import dataclass, field
from typing import Any, Callable, Hashable

from repro.analysis import racecheck

#: Cache key: (engine name, canonical parameter tuple).
CacheKey = tuple[str, tuple[Any, ...]]

#: Data-version snapshot the cached value was computed against.
VersionSnapshot = tuple[int, ...]


def canonical_text(text: str) -> str:
    """Lower-case and collapse runs of whitespace: the query normal form."""
    return " ".join(text.split()).lower()


def canonical_params(params: dict[str, Any]) -> tuple[Any, ...]:
    """A hashable, order-insensitive normal form of request parameters.

    String values are canonicalized as query text; ``None`` values (an
    unused search field) are dropped so ``title="x"`` and
    ``title="x", abstract=None`` share an entry.
    """
    items = []
    for name in sorted(params):
        value = params[name]
        if value is None:
            continue
        if isinstance(value, str):
            value = canonical_text(value)
        items.append((name, value))
    return tuple(items)


def request_key(engine: str, params: dict[str, Any]) -> CacheKey:
    """The cache key for one normalized request."""
    return (engine, canonical_params(params))


@dataclass
class CacheStats:
    """Counters the metrics layer folds into ``QueryService.stats()``."""

    hits: int = 0
    misses: int = 0
    evictions: int = 0
    invalidations: int = 0
    expirations: int = 0
    collapsed: int = 0
    negative_hits: int = 0

    def as_dict(self) -> dict[str, int]:
        return {
            "hits": self.hits,
            "misses": self.misses,
            "evictions": self.evictions,
            "invalidations": self.invalidations,
            "expirations": self.expirations,
            "collapsed": self.collapsed,
            "negative_hits": self.negative_hits,
        }


@dataclass
class _Entry:
    value: Any
    versions: VersionSnapshot
    expires_at: float
    stored_at: float = field(default=0.0)


@dataclass
class _NegativeEntry:
    exception: BaseException
    versions: VersionSnapshot
    expires_at: float


class Flight:
    """One in-flight computation other requests for the key collapse on.

    The leader resolves ``future`` with the raw computed value (or its
    exception); followers block on it.  The flight object, not the key,
    identifies the computation — a flight superseded by a version change
    completes harmlessly without clobbering its successor.
    """

    __slots__ = ("key", "versions", "future")

    def __init__(self, key: CacheKey, versions: VersionSnapshot) -> None:
        self.key = key
        self.versions = versions
        self.future: Future = Future()


class ResultCache:
    """Thread-safe LRU + TTL cache with data-version invalidation."""

    def __init__(self, max_entries: int = 512,
                 ttl_seconds: float = 300.0,
                 negative_ttl_seconds: float = 30.0,
                 clock: Callable[[], float] = time.monotonic) -> None:
        if max_entries < 1:
            raise ValueError("max_entries must be >= 1")
        self.max_entries = max_entries
        self.ttl_seconds = ttl_seconds
        self.negative_ttl_seconds = negative_ttl_seconds
        self._clock = clock
        self._entries: OrderedDict[Hashable, _Entry] = OrderedDict()
        self._negatives: OrderedDict[Hashable, _NegativeEntry] = \
            OrderedDict()
        self._inflight: dict[Hashable, Flight] = {}
        self._lock = racecheck.make_lock("serve.cache")
        self.stats = CacheStats()

    def stats_snapshot(self) -> dict[str, int]:
        """A consistent copy of the counters, taken under the lock.

        ``self.stats`` is mutated under ``self._lock``; readers must not
        fold the live object into a response while writers are mid-update.
        """
        with self._lock:
            return self.stats.as_dict()

    def _fresh_negative(self, key: CacheKey, versions: VersionSnapshot,
                        now: float) -> _NegativeEntry | None:
        """The key's negative entry iff still valid; drops it otherwise.

        The single invalidation point for remembered failures: *every*
        lookup path (:meth:`get` and :meth:`claim` alike) funnels
        through here, so a version bump — a document fix, a
        ``touch()``, a rollback — un-negatives the key on the very next
        lookup no matter which engine path performs it.  Caller holds
        the lock.
        """
        negative = self._negatives.get(key)  # lint: allow=REP201
        if negative is None:
            return None
        if negative.versions != versions or now >= negative.expires_at:
            del self._negatives[key]
            return None
        return negative

    def get(self, key: CacheKey,
            versions: VersionSnapshot) -> tuple[bool, Any]:
        """Look up ``key`` against the current data ``versions``.

        Returns ``(hit, value)``.  An entry computed against different
        versions (data changed since) or past its TTL is removed and
        reported as a miss.  Stale negative entries for the key are
        dropped as a side effect (fresh ones are :meth:`claim`'s to
        replay — this positive-only lookup just reports a miss).
        """
        now = self._clock()
        with self._lock:
            self._fresh_negative(key, versions, now)
            entry = self._entries.get(key)
            if entry is None:
                self.stats.misses += 1
                return False, None
            if entry.versions != versions:
                del self._entries[key]
                self.stats.invalidations += 1
                self.stats.misses += 1
                return False, None
            if now >= entry.expires_at:
                del self._entries[key]
                self.stats.expirations += 1
                self.stats.misses += 1
                return False, None
            self._entries.move_to_end(key)
            self.stats.hits += 1
            return True, entry.value

    def put(self, key: CacheKey, versions: VersionSnapshot,
            value: Any) -> None:
        now = self._clock()
        with self._lock:
            # A successful computation supersedes any remembered
            # failure for the key, whatever snapshot it was cached
            # under — never let both answers coexist.
            self._negatives.pop(key, None)
            self._entries[key] = _Entry(
                value=value, versions=versions,
                expires_at=now + self.ttl_seconds, stored_at=now,
            )
            self._entries.move_to_end(key)
            while len(self._entries) > self.max_entries:
                self._entries.popitem(last=False)
                self.stats.evictions += 1

    # -- single-flight ----------------------------------------------------

    def claim(self, key: CacheKey, versions: VersionSnapshot
              ) -> tuple[str, Any]:
        """Resolve a lookup into one of four outcomes, atomically.

        * ``("hit", value)`` — a fresh positive entry exists;
        * ``("negative", exception)`` — a fresh negative entry exists:
          replay the remembered failure without recomputing;
        * ``("follower", flight)`` — the same key+versions is already
          being computed: wait on ``flight.future`` instead of working;
        * ``("leader", flight)`` — this caller must compute, then call
          :meth:`complete` or :meth:`fail` on the returned flight.
        """
        now = self._clock()
        with self._lock:
            entry = self._entries.get(key)
            if entry is not None:
                if entry.versions != versions:
                    del self._entries[key]
                    self.stats.invalidations += 1
                elif now >= entry.expires_at:
                    del self._entries[key]
                    self.stats.expirations += 1
                else:
                    self._entries.move_to_end(key)
                    self.stats.hits += 1
                    return "hit", entry.value
            negative = self._fresh_negative(key, versions, now)
            if negative is not None:
                self.stats.negative_hits += 1
                return "negative", negative.exception
            flight = self._inflight.get(key)
            if flight is not None and flight.versions == versions:
                self.stats.collapsed += 1
                return "follower", flight
            flight = Flight(key, versions)
            self._inflight[key] = flight
            self.stats.misses += 1
            return "leader", flight

    def complete(self, flight: Flight, versions: VersionSnapshot,
                 value: Any) -> None:
        """Leader success: publish to the cache and wake the followers."""
        self.put(flight.key, versions, value)
        with self._lock:
            if self._inflight.get(flight.key) is flight:
                del self._inflight[flight.key]
        flight.future.set_result(value)

    def fail(self, flight: Flight, exception: BaseException,
             negative: bool = False,
             versions: VersionSnapshot | None = None) -> None:
        """Leader failure: wake followers; optionally cache the failure.

        ``negative`` marks deterministic request errors — they are
        replayed for ``negative_ttl_seconds`` so repeated bad requests
        cost nothing.  Transient errors (overload, shard flaps) must
        pass ``negative=False`` so the next request recomputes.

        ``versions`` is the snapshot the failure was actually *observed*
        under (read inside the execution lock).  Defaults to the
        claim-time ``flight.versions`` — but an ingest can land between
        claim and execution, and a negative stamped with the stale
        claim-time snapshot would be dropped as outdated on the next
        lookup, defeating the cache exactly when the failure is still
        current.
        """
        if negative:
            now = self._clock()
            with self._lock:
                self._negatives[flight.key] = _NegativeEntry(
                    exception=exception,
                    versions=(versions if versions is not None
                              else flight.versions),
                    expires_at=now + self.negative_ttl_seconds,
                )
                self._negatives.move_to_end(flight.key)
                while len(self._negatives) > self.max_entries:
                    self._negatives.popitem(last=False)
        with self._lock:
            if self._inflight.get(flight.key) is flight:
                del self._inflight[flight.key]
        flight.future.set_exception(exception)

    @property
    def inflight(self) -> int:
        """Number of computations currently in flight (for stats)."""
        with self._lock:
            return len(self._inflight)

    def clear(self) -> None:
        with self._lock:
            self._entries.clear()
            self._negatives.clear()

    def __len__(self) -> int:
        with self._lock:
            return len(self._entries)

    def __contains__(self, key: CacheKey) -> bool:
        with self._lock:
            return key in self._entries

"""Normalized-request result cache: LRU + TTL + version invalidation.

The serving tier caches fully-computed query results keyed on
``(engine, canonical query, page)``.  Three mechanisms keep entries
correct and bounded:

* **Canonicalization** — ``"  Vaccine   SIDE effects "`` and
  ``"vaccine side effects"`` hit the same entry, so repeated interactive
  queries share work regardless of spacing/case.
* **Version invalidation** — every entry records the data-version
  snapshot (docstore + KG counters) it was computed against; a lookup
  whose current snapshot differs is a miss and evicts the stale entry.
* **LRU + TTL** — at most ``max_entries`` live at once (least recently
  used evicted first) and nothing older than ``ttl_seconds`` is served.
"""

from __future__ import annotations

import threading
import time
from collections import OrderedDict
from dataclasses import dataclass, field
from typing import Any, Callable, Hashable

#: Cache key: (engine name, canonical parameter tuple).
CacheKey = tuple[str, tuple[Any, ...]]

#: Data-version snapshot the cached value was computed against.
VersionSnapshot = tuple[int, ...]


def canonical_text(text: str) -> str:
    """Lower-case and collapse runs of whitespace: the query normal form."""
    return " ".join(text.split()).lower()


def canonical_params(params: dict[str, Any]) -> tuple[Any, ...]:
    """A hashable, order-insensitive normal form of request parameters.

    String values are canonicalized as query text; ``None`` values (an
    unused search field) are dropped so ``title="x"`` and
    ``title="x", abstract=None`` share an entry.
    """
    items = []
    for name in sorted(params):
        value = params[name]
        if value is None:
            continue
        if isinstance(value, str):
            value = canonical_text(value)
        items.append((name, value))
    return tuple(items)


def request_key(engine: str, params: dict[str, Any]) -> CacheKey:
    """The cache key for one normalized request."""
    return (engine, canonical_params(params))


@dataclass
class CacheStats:
    """Counters the metrics layer folds into ``QueryService.stats()``."""

    hits: int = 0
    misses: int = 0
    evictions: int = 0
    invalidations: int = 0
    expirations: int = 0

    def as_dict(self) -> dict[str, int]:
        return {
            "hits": self.hits,
            "misses": self.misses,
            "evictions": self.evictions,
            "invalidations": self.invalidations,
            "expirations": self.expirations,
        }


@dataclass
class _Entry:
    value: Any
    versions: VersionSnapshot
    expires_at: float
    stored_at: float = field(default=0.0)


class ResultCache:
    """Thread-safe LRU + TTL cache with data-version invalidation."""

    def __init__(self, max_entries: int = 512,
                 ttl_seconds: float = 300.0,
                 clock: Callable[[], float] = time.monotonic) -> None:
        if max_entries < 1:
            raise ValueError("max_entries must be >= 1")
        self.max_entries = max_entries
        self.ttl_seconds = ttl_seconds
        self._clock = clock
        self._entries: OrderedDict[Hashable, _Entry] = OrderedDict()
        self._lock = threading.Lock()
        self.stats = CacheStats()

    def get(self, key: CacheKey,
            versions: VersionSnapshot) -> tuple[bool, Any]:
        """Look up ``key`` against the current data ``versions``.

        Returns ``(hit, value)``.  An entry computed against different
        versions (data changed since) or past its TTL is removed and
        reported as a miss.
        """
        now = self._clock()
        with self._lock:
            entry = self._entries.get(key)
            if entry is None:
                self.stats.misses += 1
                return False, None
            if entry.versions != versions:
                del self._entries[key]
                self.stats.invalidations += 1
                self.stats.misses += 1
                return False, None
            if now >= entry.expires_at:
                del self._entries[key]
                self.stats.expirations += 1
                self.stats.misses += 1
                return False, None
            self._entries.move_to_end(key)
            self.stats.hits += 1
            return True, entry.value

    def put(self, key: CacheKey, versions: VersionSnapshot,
            value: Any) -> None:
        now = self._clock()
        with self._lock:
            self._entries[key] = _Entry(
                value=value, versions=versions,
                expires_at=now + self.ttl_seconds, stored_at=now,
            )
            self._entries.move_to_end(key)
            while len(self._entries) > self.max_entries:
                self._entries.popitem(last=False)
                self.stats.evictions += 1

    def clear(self) -> None:
        with self._lock:
            self._entries.clear()

    def __len__(self) -> int:
        with self._lock:
            return len(self._entries)

    def __contains__(self, key: CacheKey) -> bool:
        with self._lock:
            return key in self._entries

"""Adaptive load control for the serving tier.

The paper's router fans every search out to all shards and must stay
responsive while "millions of users" interrogate the KG — which means
bounded tail latency *under load*, not just at steady state.  A fixed
fan-out width plus a fixed admission queue degrades in the worst way:
when shard latency rises, wide fan-outs pile more work onto the slow
pool, the queue fills, and the tier sheds requests it could have served
narrower.

:class:`LoadController` closes that loop.  It watches two signals the
tier already produces:

* the **per-shard fan-out latency** stream from the docstore executor's
  observer hook (an EWMA of the windowed p95), and
* the **admission queue occupancy** (pending / capacity);

and adjusts the *effective fan-out width* — the per-request
:class:`~repro.docstore.executor.FanoutBudget` every execution runs
under — between a configurable floor and ceiling, AIMD style
(multiplicative shrink under pressure, additive growth when calm).  A
shed request forces an immediate shrink; only a tier already at the
floor keeps shedding.  Every decision is counted and exposed through
``QueryService.stats()`` / ``repro-covidkg serve-stats``.

The controller never touches the shared executor pool itself — pool
threads are cheap to keep, requests that monopolize them are not — so
shrinking is instant (the next budget is smaller) and growing never has
to warm anything up.
"""

from __future__ import annotations

import time
from dataclasses import dataclass
from typing import Any, Callable

from repro.analysis import racecheck
from repro.docstore.executor import FanoutBudget, executor_width


@dataclass
class LoadControlConfig:
    """Knobs for :class:`LoadController` (defaults sized for a laptop).

    ``ceiling=None`` resolves to the executor width at service start —
    there is no point budgeting a request wider than the shared pool.
    """

    #: Narrowest per-request fan-out; the tier sheds only at the floor.
    floor: int = 1
    #: Widest per-request fan-out (``None`` → executor width).
    ceiling: int | None = None
    #: Per-shard task p95 (EWMA) above which the tier is "hot".
    target_p95_seconds: float = 0.050
    #: Smoothing for the p95 EWMA (higher = reacts faster).
    ewma_alpha: float = 0.3
    #: Queue occupancy at or above which the tier is "hot".
    queue_high_fraction: float = 0.5
    #: Queue occupancy at or below which the tier may grow.
    queue_low_fraction: float = 0.125
    #: Minimum seconds between width changes (damps oscillation).
    cooldown_seconds: float = 0.25
    #: Fan-out latency samples per p95 window.
    window: int = 64


class LoadController:
    """AIMD width controller over fan-out latency + queue occupancy.

    Thread-safe; ``clock`` is injectable so tests can drive the
    cooldown deterministically.
    """

    def __init__(self, config: LoadControlConfig | None = None,
                 clock: Callable[[], float] = time.monotonic) -> None:
        self.config = config or LoadControlConfig()
        if self.config.floor < 1:
            raise ValueError("load-control floor must be >= 1")
        self.floor = self.config.floor
        ceiling = (self.config.ceiling if self.config.ceiling is not None
                   else executor_width())
        self.ceiling = max(self.floor, ceiling)
        self._clock = clock
        self._lock = racecheck.make_lock("serve.loadctl")
        self._width = self.ceiling
        self._samples: list[float] = []
        self._ewma_p95: float | None = None
        self._last_change: float | None = None
        self.decisions = 0
        self.grows = 0
        self.shrinks = 0
        self.shed_shrinks = 0
        self.sheds_at_floor = 0
        self.budget_clamps = 0

    # -- signal intake ----------------------------------------------------

    def observe_fanout(self, seconds: float) -> None:
        """One per-shard task's wall time (executor observer hook)."""
        with self._lock:
            self._samples.append(seconds)
            excess = len(self._samples) - self.config.window
            if excess > 0:
                del self._samples[:excess]

    # -- control loop -----------------------------------------------------

    def decide(self, queue_depth: int, queue_capacity: int) -> str | None:
        """Fold current signals into a width decision.

        Called on the request path (once per admitted leader), so it
        must stay O(window).  Returns ``"shrink"``/``"grow"`` when the
        width changed, else ``None``.
        """
        now = self._clock()
        with self._lock:
            self.decisions += 1
            p95 = self._window_p95_locked()
            if p95 is not None:
                alpha = self.config.ewma_alpha
                self._ewma_p95 = (p95 if self._ewma_p95 is None
                                  else alpha * p95
                                  + (1.0 - alpha) * self._ewma_p95)
            occupancy = (queue_depth / queue_capacity
                         if queue_capacity > 0 else 0.0)
            hot = (occupancy >= self.config.queue_high_fraction
                   or (self._ewma_p95 is not None
                       and self._ewma_p95 > self.config.target_p95_seconds))
            calm = (occupancy <= self.config.queue_low_fraction
                    and (self._ewma_p95 is None
                         or self._ewma_p95
                         <= self.config.target_p95_seconds * 0.5))
            if self._last_change is not None and \
                    now - self._last_change < self.config.cooldown_seconds:
                return None
            if hot and self._width > self.floor:
                self._width = max(self.floor, self._width // 2)
                self.shrinks += 1
                self._last_change = now
                return "shrink"
            if calm and self._width < self.ceiling:
                self._width += 1
                self.grows += 1
                self._last_change = now
                return "grow"
            return None

    def on_shed(self) -> None:
        """A request was shed: shrink now, or count a floor shed.

        Shedding above the floor means the controller was too slow —
        halve immediately (ignoring the cooldown; overload outranks
        damping).  Shedding *at* the floor is the intended behaviour:
        the tier is as narrow as allowed and load must go somewhere.
        """
        now = self._clock()
        with self._lock:
            if self._width > self.floor:
                self._width = max(self.floor, self._width // 2)
                self.shrinks += 1
                self.shed_shrinks += 1
                self._last_change = now
            else:
                self.sheds_at_floor += 1

    # -- outputs ----------------------------------------------------------

    def effective_width(self) -> int:
        with self._lock:
            return self._width

    def budget(self) -> FanoutBudget:
        """A per-request budget at the current width (clamps counted)."""
        return FanoutBudget(self.effective_width(),
                            on_clamp=self._note_clamp)

    def _note_clamp(self, requested: int, granted: int) -> None:
        with self._lock:
            self.budget_clamps += 1

    def snapshot(self) -> dict[str, Any]:
        """Every decision counter, for ``stats()``/dashboards."""
        with self._lock:
            ewma = self._ewma_p95
            return {
                "enabled": True,
                "width": self._width,
                "floor": self.floor,
                "ceiling": self.ceiling,
                "ewma_p95_ms": None if ewma is None else ewma * 1000.0,
                "window_samples": len(self._samples),
                "decisions": self.decisions,
                "grows": self.grows,
                "shrinks": self.shrinks,
                "width_changes": self.grows + self.shrinks,
                "shed_shrinks": self.shed_shrinks,
                "sheds_at_floor": self.sheds_at_floor,
                "budget_clamps": self.budget_clamps,
            }

    # -- internals --------------------------------------------------------

    def _window_p95_locked(self) -> float | None:
        # Callers hold self._lock (the _locked suffix is the contract).
        if not self._samples:  # lint: allow=REP201
            return None
        ordered = sorted(self._samples)  # lint: allow=REP201
        rank = min(len(ordered) - 1,
                   max(0, round(0.95 * (len(ordered) - 1))))
        return ordered[rank]

"""KGQL logical plans: AST → ordered stages, plus admission pricing.

The planner is deliberately small but does the two things that matter
on this workload:

* **label-anchored chain orientation** — a chain whose only label sits
  on its *last* node (``(a)-[child_of*1..5]->(b:"Vaccines")``) is
  reversed so the scan starts from the few labeled candidates instead
  of every node in the graph (edge types invert:
  ``child_of`` ↔ ``parent_of``);
* **predicate pushdown** — each top-level ``AND`` conjunct of the WHERE
  clause runs at the earliest stage where all its variables are bound,
  so filters prune bindings before later expansions multiply them.

:func:`estimate_kgql_cost` prices a plan the same way
:func:`repro.analysis.pipeline_check.estimate_pipeline_cost` prices an
aggregation pipeline — worst-case work units, never under-charging —
and returns the same :class:`PipelineCostEstimate` shape, so the
serving tier's existing ``max_request_cost`` gate applies unchanged.
The dominant term is exactly the one the traversal shape dictates:
candidate set size × per-hop fan-out × hop bound.
"""

from __future__ import annotations

import itertools
from dataclasses import dataclass

from repro.analysis.pipeline_check import PipelineCostEstimate, StageCost
from repro.kg.graph import KnowledgeGraph
from repro.kgql.ast import (
    INVERSE_EDGE,
    BoolOp,
    Chain,
    Comparison,
    EdgePattern,
    Expr,
    FieldRef,
    NodePattern,
    NotExpr,
    Query,
)

#: Prefix of planner-invented names for anonymous node patterns; these
#: bind like variables during execution but are existential — result
#: rows dedupe on *named* variables only.
ANON_PREFIX = "_anon"


@dataclass(frozen=True)
class ScanStage:
    """Bind ``var`` to label-index candidates (or every node), or —
    when ``var`` is already bound by an earlier chain — constrain the
    existing binding to the label."""

    var: str
    label: str | None

    def describe(self) -> str:
        source = f'label {self.label!r}' if self.label is not None \
            else "all nodes"
        return f"scan    {self.var} <- {source}"


@dataclass(frozen=True)
class ExpandStage:
    """Traverse ``etype`` edges ``min_hops..max_hops`` times from
    ``src``, binding (or checking, if already bound) ``dst``."""

    src: str
    dst: str
    etype: str
    min_hops: int
    max_hops: int
    dst_label: str | None

    def describe(self) -> str:
        bounds = f"*{self.min_hops}..{self.max_hops}"
        text = (f"expand  {self.src} -[{self.etype}{bounds}]-> "
                f"{self.dst}")
        if self.dst_label is not None:
            text += f" (label {self.dst_label!r})"
        return text


@dataclass(frozen=True)
class FilterStage:
    """Evaluate one pushed-down WHERE conjunct over each binding."""

    expr: Expr

    def describe(self) -> str:
        return f"filter  {self.expr.render()}"


@dataclass(frozen=True)
class ProjectStage:
    """Dedupe on named variables, order deterministically, apply
    LIMIT, and render provenance-bearing rows."""

    returns: tuple[str, ...]
    named_vars: tuple[str, ...]
    limit: int | None

    def describe(self) -> str:
        text = f"project {', '.join(self.returns)}"
        if self.limit is not None:
            text += f" limit {self.limit}"
        return text


Stage = ScanStage | ExpandStage | FilterStage | ProjectStage


@dataclass(frozen=True)
class LogicalPlan:
    """The executable stage list for one query."""

    query: Query
    stages: tuple[Stage, ...]
    #: Named (user-declared) variables in first-appearance order; the
    #: dedupe/ordering key of the result set.
    named_vars: tuple[str, ...]

    def explain(self) -> str:
        return "\n".join(stage.describe() for stage in self.stages)


def _expr_vars(expr: Expr) -> set[str]:
    found: set[str] = set()
    stack: list = [expr]
    while stack:
        item = stack.pop()
        if isinstance(item, Comparison):
            stack.extend((item.lhs, item.rhs))
        elif isinstance(item, BoolOp):
            stack.extend(item.operands)
        elif isinstance(item, NotExpr):
            stack.append(item.operand)
        elif isinstance(item, FieldRef):
            found.add(item.var)
    return found


def _conjuncts(where: Expr | None) -> list[Expr]:
    if where is None:
        return []
    if isinstance(where, BoolOp) and where.op == "AND":
        return list(where.operands)
    return [where]


def _name_nodes(query: Query) -> list[Chain]:
    """Replace anonymous node patterns with planner-generated names."""
    counter = itertools.count(1)
    chains = []
    for chain in query.chains:
        nodes = tuple(
            node if node.var is not None else
            NodePattern(var=f"{ANON_PREFIX}{next(counter)}",
                        label=node.label)
            for node in chain.nodes
        )
        chains.append(Chain(nodes=nodes, edges=chain.edges))
    return chains


def _orient(chain: Chain, bound: set[str]) -> Chain:
    """Reverse a chain when its far end is the better anchor.

    A chain is reversed when its first node is neither already bound
    nor labeled, and its last node is — turning "scan everything, walk
    forward" into "scan the labeled few, walk backward".
    """
    if len(chain.nodes) < 2:
        return chain
    head, tail = chain.nodes[0], chain.nodes[-1]
    head_anchored = head.var in bound or head.label is not None
    tail_anchored = tail.var in bound or tail.label is not None
    if head_anchored or not tail_anchored:
        return chain
    nodes = tuple(reversed(chain.nodes))
    edges = tuple(
        EdgePattern(etype=INVERSE_EDGE[edge.etype],
                    min_hops=edge.min_hops, max_hops=edge.max_hops)
        for edge in reversed(chain.edges)
    )
    return Chain(nodes=nodes, edges=edges)


def plan_query(query: Query) -> LogicalPlan:
    """Compile one parsed query into an ordered stage list."""
    chains = _name_nodes(query)
    named_vars = query.variables()
    pending = [(conjunct, _expr_vars(conjunct))
               for conjunct in _conjuncts(query.where)]
    stages: list[Stage] = []
    bound: set[str] = set()

    def flush_filters() -> None:
        remaining = []
        for conjunct, needed in pending:
            if needed <= bound:
                stages.append(FilterStage(expr=conjunct))
            else:
                remaining.append((conjunct, needed))
        pending[:] = remaining

    for chain in chains:
        chain = _orient(chain, bound)
        start = chain.nodes[0]
        if start.var not in bound or start.label is not None:
            stages.append(ScanStage(var=start.var, label=start.label))
            bound.add(start.var)
            flush_filters()
        for position, (edge, node) in enumerate(
                zip(chain.edges, chain.nodes[1:])):
            previous = chain.nodes[position]  # src of this edge
            stages.append(ExpandStage(
                src=previous.var, dst=node.var, etype=edge.etype,
                min_hops=edge.min_hops, max_hops=edge.max_hops,
                dst_label=node.label,
            ))
            bound.add(node.var)
            flush_filters()
    flush_filters()
    stages.append(ProjectStage(
        returns=query.returns, named_vars=named_vars,
        limit=query.limit,
    ))
    return LogicalPlan(query=query, stages=tuple(stages),
                       named_vars=named_vars)


# -- admission pricing -------------------------------------------------------

#: Work units charged per row by the projection stage, on top of the
#: path-rendering depth term (payload assembly + provenance collection).
PROJECT_COST_FACTOR = 2.0


def _branching(graph: KnowledgeGraph, etype: str) -> float:
    """Worst-case nodes reached by one hop from one node."""
    if etype == "child_of":
        return 1.0  # every node has at most one parent
    down = float(max(1, graph.max_branching()))
    if etype == "parent_of":
        return down
    return down + 1.0  # related: children plus the parent


def estimate_kgql_cost(plan: LogicalPlan,
                       graph: KnowledgeGraph) -> PipelineCostEstimate:
    """Worst-case work units for one plan, before any execution.

    Each stage is priced against the current graph: scans against the
    label index (labeled) or the node count (unlabeled), expansions as
    ``rows × Σ_h min(branching^h, nodes)`` over the hop range — the
    traversal fan-out × hop bound × candidate set size product — and
    projection per surviving row.  Like the pipeline estimator, filters
    are assumed to pass everything, so the gate never under-charges.
    """
    nodes = float(len(graph))
    max_depth = float(max(graph.depth_map().values(), default=0))
    rows = 1.0
    stage_costs: list[StageCost] = []
    total = 0.0
    for stage in plan.stages:
        rows_in = rows
        if isinstance(stage, ScanStage):
            if stage.label is not None:
                candidates = float(len(graph.find_by_label(stage.label)))
                cost = rows * max(1.0, candidates)
            else:
                candidates = nodes
                cost = rows * candidates + nodes
            rows = rows * candidates
            name = f"scan({stage.var})"
        elif isinstance(stage, ExpandStage):
            per_hop = _branching(graph, stage.etype)
            reach = 0.0
            frontier = 1.0
            for _ in range(stage.max_hops):
                frontier = min(frontier * per_hop, nodes)
                reach += frontier
            reach = min(reach, nodes) if stage.max_hops else 0.0
            cost = rows * max(1.0, reach)
            rows = rows * max(1.0, reach)
            name = (f"expand({stage.src}-[{stage.etype}"
                    f"*{stage.min_hops}..{stage.max_hops}]->"
                    f"{stage.dst})")
        elif isinstance(stage, FilterStage):
            cost = rows
            name = "filter"
        else:  # ProjectStage
            kept = rows if stage.limit is None \
                else min(rows, float(stage.limit))
            cost = rows + kept * (max_depth + PROJECT_COST_FACTOR)
            rows = kept
            name = "project"
        total += cost
        stage_costs.append(StageCost(
            stage=name, documents_in=rows_in, documents_out=rows,
            cost=cost,
        ))
    return PipelineCostEstimate(
        stages=tuple(stage_costs), total_cost=total,
        documents_in=nodes, documents_out=rows,
    )

"""Rule-based natural-language front end for KGQL.

The paper's interface answers a handful of recurring question shapes
("what are the side effects of the Pfizer vaccine?", "which papers link
masks and transmission?").  This module maps those shapes onto KGQL via
ordered regex templates — first match wins, entity slots are quoted
into label literals, and the produced query goes through the normal
parse/plan/price/execute path, so NL questions get the same admission
control, caching, and provenance as hand-written KGQL.

Deliberately not a model: translation must be deterministic (the
serving tier caches on the translated query) and auditable (the CLI and
HTTP responses echo the KGQL actually executed).
"""

from __future__ import annotations

import re
from dataclasses import dataclass

from repro.errors import KGQLError
from repro.kgql.lexer import quote_label


@dataclass(frozen=True)
class NLTranslation:
    """One translated question: which template fired and the KGQL."""

    template: str
    kgql: str


def _clean(entity: str) -> str:
    """Normalize a captured entity slot: trim punctuation/articles."""
    entity = entity.strip().strip("?.!,;:").strip()
    entity = re.sub(r"^(?:the|a|an)\s+", "", entity, flags=re.IGNORECASE)
    if not entity:
        raise KGQLError("could not extract an entity from the question")
    return entity


def _side_effects(match: re.Match[str]) -> str:
    x = quote_label(_clean(match.group("x")))
    return (
        f'MATCH (x:{x})-[related*1..3]->(e) '
        f'WHERE e.category = "side_effects" RETURN x, e LIMIT 25'
    )


def _linking(match: re.Match[str]) -> str:
    x = quote_label(_clean(match.group("x")))
    y = quote_label(_clean(match.group("y")))
    return f"MATCH (x:{x})-[related*1..6]->(y:{y}) RETURN x, y LIMIT 25"


def _under(match: re.Match[str]) -> str:
    y = quote_label(_clean(match.group("y")))
    return f"MATCH (y:{y})-[parent_of*1..3]->(c) RETURN c LIMIT 50"


def _above(match: re.Match[str]) -> str:
    x = quote_label(_clean(match.group("x")))
    return f"MATCH (x:{x})-[child_of*1..5]->(p) RETURN p LIMIT 25"


def _about(match: re.Match[str]) -> str:
    x = quote_label(_clean(match.group("x")))
    return f"MATCH (x:{x}) RETURN x LIMIT 10"


#: Ordered (name, pattern, builder) templates; first match wins, so the
#: more specific shapes ("side effects of ...") precede the catch-all
#: "papers about ...".
TEMPLATES: tuple[tuple[str, re.Pattern[str], object], ...] = (
    (
        "side_effects_of",
        re.compile(
            r"^\s*(?:what\s+are\s+the\s+)?side[\s-]?effects\s+of\s+"
            r"(?P<x>.+?)\s*$",
            re.IGNORECASE,
        ),
        _side_effects,
    ),
    (
        "papers_linking",
        re.compile(
            r"^\s*(?:which\s+|what\s+)?papers?\s+link(?:s|ing)?\s+"
            r"(?P<x>.+?)\s+(?:and|to|with)\s+(?P<y>.+?)\s*$",
            re.IGNORECASE,
        ),
        _linking,
    ),
    (
        "what_is_under",
        re.compile(
            r"^\s*what\s+is\s+(?:under|below)\s+(?P<y>.+?)\s*$"
            r"|^\s*children\s+of\s+(?P<y2>.+?)\s*$",
            re.IGNORECASE,
        ),
        _under,
    ),
    (
        "what_is_above",
        re.compile(
            r"^\s*what\s+is\s+above\s+(?P<x>.+?)\s*$"
            r"|^\s*parents?\s+of\s+(?P<x2>.+?)\s*$",
            re.IGNORECASE,
        ),
        _above,
    ),
    (
        "papers_about",
        re.compile(
            r"^\s*(?:which\s+|what\s+)?papers?\s+(?:about|on|mention(?:s|ing)?)\s+"
            r"(?P<x>.+?)\s*$",
            re.IGNORECASE,
        ),
        _about,
    ),
)


class _AltMatch:
    """Present ``x``/``y`` uniformly when a template has alternative
    branches whose groups are suffixed (``y`` vs ``y2``)."""

    def __init__(self, match: re.Match[str]) -> None:
        self._match = match

    def group(self, name: str) -> str:
        groups = self._match.groupdict()
        value = groups.get(name)
        if value is None:
            value = groups.get(f"{name}2")
        if value is None:
            raise KGQLError(
                f"template matched without an entity for {name!r}")
        return value


def translate(question: str) -> NLTranslation:
    """Translate one NL question to KGQL, or raise :class:`KGQLError`.

    The error lists the supported shapes so the HTTP 400 payload tells
    the caller what the front end *can* answer.
    """
    for name, pattern, builder in TEMPLATES:
        match = pattern.match(question)
        if match:
            return NLTranslation(
                template=name, kgql=builder(_AltMatch(match)))
    shapes = ", ".join(name for name, _, _ in TEMPLATES)
    raise KGQLError(
        f"no NL template matches the question; supported shapes: {shapes}"
    )

"""KGQL — the declarative graph query language over the knowledge graph.

The paper's headline artifact is a KG users *interrogate*; keyword
search (:mod:`repro.kg.search`) only finds nodes by label.  KGQL adds
structural questions — typed-edge traversal with hop bounds, path
patterns between node sets, subgraph matching with variable binding —
with provenance (source-paper ids and rendered KG paths) carried in
every result row.  The pipeline is the classic four-stage one:

* :mod:`repro.kgql.lexer` / :mod:`repro.kgql.parser` — hand-rolled
  tokenizer and recursive-descent parser producing a typed AST
  (:mod:`repro.kgql.ast`) with caret-position syntax diagnostics;
* :mod:`repro.kgql.plan` — the logical plan (scan → expand → filter →
  project) with label-anchored chain orientation and predicate
  pushdown, plus :func:`~repro.kgql.plan.estimate_kgql_cost`, the
  admission-control price of a query *before* execution;
* :mod:`repro.kgql.executor` — :class:`~repro.kgql.executor.KGQLEngine`
  evaluates plans against a :class:`~repro.kg.graph.KnowledgeGraph`
  with deterministic row ordering (differentially tested against
  brute-force enumeration);
* :mod:`repro.kgql.nl` — the rule-based natural-language front end
  translating question templates ("side effects of X", "papers linking
  X and Y") into KGQL, mirroring CGEx's template approach.

Served end to end as ``/v1/kg/query`` through the gateway: priced by
``max_request_cost``, cached under the KG version counter, and mapped
onto typed HTTP errors (syntax → 400 with caret, cost → 429).
"""

from repro.kgql.ast import (
    Chain,
    Comparison,
    EdgePattern,
    FieldRef,
    Literal,
    NodePattern,
    Query,
)
from repro.kgql.executor import KGQLEngine, KGQLResult, KGQLRow
from repro.kgql.nl import NLTranslation, translate
from repro.kgql.parser import parse
from repro.kgql.plan import LogicalPlan, estimate_kgql_cost, plan_query

__all__ = [
    "Chain",
    "Comparison",
    "EdgePattern",
    "FieldRef",
    "Literal",
    "NodePattern",
    "Query",
    "KGQLEngine",
    "KGQLResult",
    "KGQLRow",
    "NLTranslation",
    "translate",
    "parse",
    "LogicalPlan",
    "estimate_kgql_cost",
    "plan_query",
]

"""The KGQL executor: logical plans evaluated over a ``KnowledgeGraph``.

Semantics (pinned by the differential tests against brute-force
enumeration in ``tests/test_kgql_executor.py``):

* a **match** is an assignment of every pattern variable (named and
  planner-generated anonymous) to a node satisfying all labels, edges,
  and WHERE predicates;
* an edge ``(a)-[t*lo..hi]->(b)`` matches when a *walk* of length
  ``lo <= h <= hi`` over ``t``-edges leads from ``a``'s node to
  ``b``'s node (walks may revisit nodes: ``related*2`` reaches the
  start again via any neighbour);
* the **result set** is the distinct bindings of the *named* variables
  (anonymous patterns are existential), ordered by the numeric node
  ids of the named variables in first-appearance order — fully
  deterministic, so identical queries are byte-identical across runs
  and cache layers;
* ``LIMIT`` truncates after ordering; ``total_matches`` reports the
  pre-limit count;
* every returned variable carries **provenance**: the supporting paper
  ids (:meth:`KnowledgeGraph.papers_for`) and the rendered root path
  with the node highlighted, exactly like KG keyword search hits.

Comparison semantics are total and deterministic: mismatched operand
types (``depth > "x"``) compare unequal (``=`` false, ``!=`` true,
ordering false) rather than raising mid-scan.
"""

from __future__ import annotations

import time
from dataclasses import dataclass
from typing import Any, Callable, Iterable

from repro.errors import KGQLError
from repro.kg.graph import KnowledgeGraph
from repro.kg.node import KGNode, normalize_label, stem_terms
from repro.kg.search import HIGHLIGHT_CLOSE, HIGHLIGHT_OPEN
from repro.kgql.ast import (
    BoolOp,
    Comparison,
    Expr,
    FieldRef,
    Literal,
    NotExpr,
    Query,
)
from repro.kgql.nl import translate
from repro.kgql.parser import parse
from repro.kgql.plan import (
    ExpandStage,
    FilterStage,
    ProjectStage,
    ScanStage,
    estimate_kgql_cost,
    plan_query,
)

#: Ceiling on intermediate bindings: a backstop for deployments that
#: run without the admission-control cost gate.  Deterministic for a
#: given graph snapshot, so the serving tier may negative-cache it.
MAX_BINDINGS = 100_000


def _numeric_id(node_id: str) -> tuple[int, str]:
    """Sort key: creation order for ``n<k>`` ids, lexicographic tail."""
    if node_id.startswith("n") and node_id[1:].isdigit():
        return (int(node_id[1:]), "")
    return (1 << 60, node_id)


@dataclass
class KGQLRow:
    """One result row: a node payload per returned variable, plus the
    row's linking provenance."""

    bindings: dict[str, dict[str, Any]]
    #: Papers supporting *every* returned node when several variables
    #: are returned (the "papers linking X and Y" set); a single
    #: variable's own provenance otherwise.
    papers: list[str]

    def to_json(self) -> dict[str, Any]:
        return {"bindings": self.bindings, "papers": self.papers}


@dataclass
class KGQLResult:
    """A full query answer with provenance-bearing rows."""

    query: str
    columns: list[str]
    rows: list[KGQLRow]
    #: Distinct matches before LIMIT.
    total_matches: int
    seconds: float

    def to_json(self) -> dict[str, Any]:
        return {
            "query": self.query,
            "columns": self.columns,
            "total_matches": self.total_matches,
            "seconds": self.seconds,
            "rows": [row.to_json() for row in self.rows],
        }


class KGQLEngine:
    """Parse/plan/execute KGQL against one :class:`KnowledgeGraph`."""

    def __init__(self, graph: KnowledgeGraph,
                 max_bindings: int = MAX_BINDINGS) -> None:
        self.graph = graph
        self.max_bindings = max_bindings

    # -- public API -------------------------------------------------------

    def query(self, text: str, nl: bool = False) -> KGQLResult:
        """Execute KGQL source (or, with ``nl=True``, a natural-language
        question routed through the template front end)."""
        kgql = translate(text).kgql if nl else text
        return self.execute(parse(kgql), source=kgql)

    def explain(self, text: str, nl: bool = False) -> dict[str, Any]:
        """The logical plan and cost estimate, without executing."""
        kgql = translate(text).kgql if nl else text
        plan = plan_query(parse(kgql))
        estimate = estimate_kgql_cost(plan, self.graph)
        return {
            "query": kgql,
            "plan": plan.explain(),
            "estimated_cost": estimate.total_cost,
            "stages": [
                {"stage": stage.stage, "rows_in": stage.documents_in,
                 "rows_out": stage.documents_out, "cost": stage.cost}
                for stage in estimate.stages
            ],
        }

    def execute(self, query: Query,
                source: str | None = None) -> KGQLResult:
        started = time.monotonic()
        plan = plan_query(query)
        bindings: list[dict[str, str]] = [{}]
        result_rows: list[KGQLRow] = []
        total = 0
        for stage in plan.stages:
            if isinstance(stage, ScanStage):
                bindings = self._scan(stage, bindings)
            elif isinstance(stage, ExpandStage):
                bindings = self._expand(stage, bindings)
            elif isinstance(stage, FilterStage):
                predicate = self._compile(stage.expr)
                bindings = [b for b in bindings if predicate(b)]
            else:
                result_rows, total = self._project(stage, bindings)
            if len(bindings) > self.max_bindings:
                raise KGQLError(
                    f"query exceeded {self.max_bindings} intermediate "
                    f"bindings; add labels, predicates, or tighter "
                    f"hop bounds"
                )
        return KGQLResult(
            query=source if source is not None else query.render(),
            columns=list(plan.stages[-1].returns),
            rows=result_rows,
            total_matches=total,
            seconds=time.monotonic() - started,
        )

    # -- stages -----------------------------------------------------------

    def _candidates(self, label: str | None) -> list[str]:
        if label is not None:
            nodes = self.graph.find_by_label(label)
        else:
            nodes = list(self.graph.walk())
        return sorted((node.node_id for node in nodes),
                      key=_numeric_id)

    def _scan(self, stage: ScanStage,
              bindings: list[dict[str, str]]) -> list[dict[str, str]]:
        if bindings and stage.var in bindings[0]:
            # The variable is already bound (a later chain revisits
            # it): the scan degenerates to a label constraint.
            if stage.label is None:
                return bindings
            wanted = normalize_label(stage.label)
            return [
                b for b in bindings
                if self.graph.node(b[stage.var]).normalized == wanted
            ]
        candidates = self._candidates(stage.label)
        return [
            {**binding, stage.var: node_id}
            for binding in bindings
            for node_id in candidates
        ]

    def _neighbors(self, node_id: str, etype: str) -> list[str]:
        node = self.graph.node(node_id)
        if etype == "child_of":
            return [node.parent_id] if node.parent_id is not None else []
        if etype == "parent_of":
            return list(node.children)
        reached = list(node.children)
        if node.parent_id is not None:
            reached.append(node.parent_id)
        return reached

    def _walk_reach(self, start: str, etype: str, min_hops: int,
                    max_hops: int) -> set[str]:
        """Nodes reachable by a walk of ``min_hops..max_hops`` edges."""
        reached: set[str] = {start} if min_hops == 0 else set()
        frontier = {start}
        for hop in range(1, max_hops + 1):
            frontier = {
                neighbor
                for node_id in frontier
                for neighbor in self._neighbors(node_id, etype)
            }
            if not frontier:
                break
            if hop >= min_hops:
                reached |= frontier
        return reached

    def _expand(self, stage: ExpandStage,
                bindings: list[dict[str, str]]) -> list[dict[str, str]]:
        wanted = None if stage.dst_label is None \
            else normalize_label(stage.dst_label)
        out: list[dict[str, str]] = []
        reach_cache: dict[str, set[str]] = {}
        for binding in bindings:
            src = binding[stage.src]
            reached = reach_cache.get(src)
            if reached is None:
                reached = self._walk_reach(
                    src, stage.etype, stage.min_hops, stage.max_hops)
                reach_cache[src] = reached
            if stage.dst in binding:
                dst = binding[stage.dst]
                if dst in reached and (
                        wanted is None or
                        self.graph.node(dst).normalized == wanted):
                    out.append(binding)
                continue
            for dst in sorted(reached, key=_numeric_id):
                if wanted is not None and \
                        self.graph.node(dst).normalized != wanted:
                    continue
                out.append({**binding, stage.dst: dst})
        return out

    # -- predicates -------------------------------------------------------

    def _field_value(self, node_id: str, field: str) -> Any:
        node = self.graph.node(node_id)
        if field == "id":
            return node.node_id
        if field == "label":
            return node.label
        if field == "category":
            return node.category if node.category is not None else ""
        if field == "depth":
            return self.graph.depth_map()[node_id]
        # papers: the size of the node's provenance closure.
        return len(self.graph.papers_for(node_id))

    def _compile(self, expr: Expr) -> Callable[[dict[str, str]], bool]:
        if isinstance(expr, BoolOp):
            compiled = [self._compile(operand)
                        for operand in expr.operands]
            if expr.op == "AND":
                return lambda b: all(check(b) for check in compiled)
            return lambda b: any(check(b) for check in compiled)
        if isinstance(expr, NotExpr):
            inner = self._compile(expr.operand)
            return lambda b: not inner(b)
        return self._compile_comparison(expr)

    def _compile_comparison(self, expr: Comparison
                            ) -> Callable[[dict[str, str]], bool]:
        def resolve(operand: Any, binding: dict[str, str]) -> Any:
            if isinstance(operand, Literal):
                return operand.value
            assert isinstance(operand, FieldRef)
            return self._field_value(binding[operand.var], operand.field)

        op = expr.op

        def check(binding: dict[str, str]) -> bool:
            lhs = resolve(expr.lhs, binding)
            rhs = resolve(expr.rhs, binding)
            if op == "CONTAINS":
                # Stemmed term containment, matching keyword search:
                # "Side-effects" CONTAINS "effect" holds.
                return stem_terms(str(rhs)) <= stem_terms(str(lhs))
            numeric = (int, float)
            compatible = (
                type(lhs) is type(rhs) or
                (isinstance(lhs, numeric) and isinstance(rhs, numeric))
            )
            if op == "=":
                return compatible and lhs == rhs
            if op == "!=":
                return not compatible or lhs != rhs
            if not compatible:
                return False
            if op == "<":
                return lhs < rhs
            if op == "<=":
                return lhs <= rhs
            if op == ">":
                return lhs > rhs
            return lhs >= rhs

        return check

    # -- projection -------------------------------------------------------

    def node_payload(self, node_id: str) -> dict[str, Any]:
        """The provenance-bearing payload for one bound node."""
        node = self.graph.node(node_id)
        path = self.graph.path_to(node_id)
        return {
            "id": node.node_id,
            "label": node.label,
            "category": node.category,
            "depth": len(path) - 1,
            "path": [item.label for item in path],
            "rendered_path": _render_path(path),
            "papers": sorted(self.graph.papers_for(node_id)),
        }

    def _project(self, stage: ProjectStage,
                 bindings: list[dict[str, str]]
                 ) -> tuple[list[KGQLRow], int]:
        distinct: dict[tuple[str, ...], dict[str, str]] = {}
        for binding in bindings:
            key = tuple(binding[var] for var in stage.named_vars)
            distinct.setdefault(key, binding)
        ordered = sorted(
            distinct.items(),
            key=lambda item: tuple(_numeric_id(node_id)
                                   for node_id in item[0]),
        )
        total = len(ordered)
        if stage.limit is not None:
            ordered = ordered[:stage.limit]
        rows = []
        for _, binding in ordered:
            payloads = {var: self.node_payload(binding[var])
                        for var in dict.fromkeys(stage.returns)}
            rows.append(KGQLRow(
                bindings=payloads,
                papers=_row_papers(
                    [payloads[var]["papers"]
                     for var in dict.fromkeys(stage.returns)]),
            ))
        return rows, total


def _render_path(path: Iterable[KGNode]) -> str:
    """``COVID-19 > Vaccines > [[Pfizer]]`` — the UI's highlighted path."""
    nodes = list(path)
    parts = [node.label for node in nodes[:-1]]
    parts.append(
        f"{HIGHLIGHT_OPEN}{nodes[-1].label}{HIGHLIGHT_CLOSE}")
    return " > ".join(parts)


def _row_papers(per_var: list[list[str]]) -> list[str]:
    """The row's provenance: the papers supporting every returned node
    (set intersection) when several variables are returned — "papers
    linking X and Y" — or the single variable's own provenance."""
    if not per_var:
        return []
    if len(per_var) == 1:
        return list(per_var[0])
    linking = set(per_var[0])
    for papers in per_var[1:]:
        linking &= set(papers)
    return sorted(linking)

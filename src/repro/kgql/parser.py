"""Recursive-descent KGQL parser.

Grammar (keywords case-insensitive)::

    query   :=  MATCH chain (',' chain)*
                [WHERE expr]
                RETURN IDENT (',' IDENT)*
                [LIMIT NUMBER]
    chain   :=  node (edge node)*
    node    :=  '(' [IDENT] [':' STRING] ')'
    edge    :=  '-[' TYPE [hops] ']->'  |  '<-[' TYPE [hops] ']-'
    hops    :=  '*' NUMBER ['..' NUMBER]
    TYPE    :=  child_of | parent_of | related
    expr    :=  and ( OR and )*
    and     :=  unary ( AND unary )*
    unary   :=  NOT unary | '(' expr ')' | operand cmp operand
    cmp     :=  '=' | '!=' | '<' | '<=' | '>' | '>=' | CONTAINS
    operand :=  IDENT '.' FIELD | STRING | NUMBER
    FIELD   :=  id | label | category | depth | papers

A back-arrow edge ``(a)<-[t]-(b)`` is desugared at parse time into the
forward edge with the inverse type (``child_of`` ↔ ``parent_of``), so
the AST — and everything downstream — only ever sees ``-[t]->``.

Every failure is a :class:`~repro.errors.KGQLSyntaxError` pointing at
the offending token, including semantic checks that have an obvious
anchor (unknown edge type, unknown field, undeclared RETURN variable,
inverted hop bounds).
"""

from __future__ import annotations

from repro.errors import KGQLSyntaxError
from repro.kgql.ast import (
    EDGE_TYPES,
    INVERSE_EDGE,
    MAX_HOPS,
    NODE_FIELDS,
    BoolOp,
    Chain,
    Comparison,
    EdgePattern,
    Expr,
    FieldRef,
    Literal,
    NodePattern,
    NotExpr,
    Operand,
    Query,
)
from repro.kgql.lexer import Token, tokenize

_COMPARE_OPS = ("=", "!=", "<", "<=", ">", ">=")


def parse(text: str) -> Query:
    """Parse one KGQL statement.

    >>> parse('MATCH (v:"Vaccines")-[parent_of*1..2]->(e) RETURN e').render()
    'MATCH (v:"Vaccines")-[parent_of*1..2]->(e) RETURN e'
    """
    return _Parser(text).parse()


class _Parser:
    def __init__(self, text: str) -> None:
        self.text = text
        self.tokens = tokenize(text)
        self.pos = 0
        self._declared: set[str] = set()

    # -- token plumbing ---------------------------------------------------

    @property
    def current(self) -> Token:
        return self.tokens[self.pos]

    def _advance(self) -> Token:
        token = self.tokens[self.pos]
        if token.kind != "EOF":
            self.pos += 1
        return token

    def _error(self, message: str, token: Token | None = None
               ) -> KGQLSyntaxError:
        token = token or self.current
        lines = self.text.split("\n")
        source_line = lines[token.line - 1] \
            if 1 <= token.line <= len(lines) else ""
        return KGQLSyntaxError(message, line=token.line,
                               column=token.column,
                               source_line=source_line)

    def _describe(self, token: Token) -> str:
        if token.kind == "EOF":
            return "end of query"
        return repr(token.value)

    def _expect(self, kind: str, what: str) -> Token:
        if self.current.kind != kind:
            raise self._error(
                f"expected {what}, found {self._describe(self.current)}")
        return self._advance()

    def _expect_keyword(self, keyword: str) -> Token:
        token = self.current
        if token.kind != "KEYWORD" or token.value != keyword:
            raise self._error(
                f"expected {keyword}, found {self._describe(token)}")
        return self._advance()

    def _at_keyword(self, keyword: str) -> bool:
        return self.current.kind == "KEYWORD" and \
            self.current.value == keyword

    # -- grammar ----------------------------------------------------------

    def parse(self) -> Query:
        self._expect_keyword("MATCH")
        chains = [self._chain()]
        while self.current.kind == ",":
            self._advance()
            chains.append(self._chain())
        self._declared = {
            node.var
            for chain in chains for node in chain.nodes
            if node.var is not None
        }
        where = None
        if self._at_keyword("WHERE"):
            self._advance()
            where = self._expr()
        self._expect_keyword("RETURN")
        returns = [self._return_item()]
        while self.current.kind == ",":
            self._advance()
            returns.append(self._return_item())
        limit = None
        if self._at_keyword("LIMIT"):
            self._advance()
            token = self._expect("NUMBER", "a LIMIT count")
            if "." in token.value or int(token.value) < 1:
                raise self._error(
                    f"LIMIT must be a positive integer, "
                    f"got {token.value!r}", token)
            limit = int(token.value)
        if self.current.kind != "EOF":
            raise self._error(
                f"unexpected {self._describe(self.current)} "
                f"after the end of the query")
        return Query(chains=tuple(chains), returns=tuple(returns),
                     where=where, limit=limit)

    def _return_item(self) -> str:
        token = self._expect("IDENT", "a variable to RETURN")
        if token.value not in self._declared:
            raise self._error(
                f"RETURN references unknown variable {token.value!r}",
                token)
        return token.value

    def _chain(self) -> Chain:
        nodes = [self._node()]
        edges = []
        while self.current.kind in ("-[", "<-["):
            backward = self.current.kind == "<-["
            edges.append(self._edge(backward))
            nodes.append(self._node())
        return Chain(nodes=tuple(nodes), edges=tuple(edges))

    def _node(self) -> NodePattern:
        self._expect("(", "a node pattern '('")
        var = None
        label = None
        if self.current.kind == "IDENT":
            var = self._advance().value
        if self.current.kind == ":":
            self._advance()
            label = self._expect("STRING", "a quoted node label").value
        self._expect(")", "')' closing the node pattern")
        return NodePattern(var=var, label=label)

    def _edge(self, backward: bool) -> EdgePattern:
        self._advance()  # the '-[' / '<-[' token
        token = self._expect("IDENT", "an edge type")
        etype = token.value
        if etype not in EDGE_TYPES:
            raise self._error(
                f"unknown edge type {etype!r}; "
                f"one of {', '.join(EDGE_TYPES)}", token)
        min_hops, max_hops = 1, 1
        if self.current.kind == "*":
            self._advance()
            low = self._expect("NUMBER", "a hop count")
            if "." in low.value:
                raise self._error("hop counts must be integers", low)
            min_hops = max_hops = int(low.value)
            if self.current.kind == "..":
                self._advance()
                high = self._expect("NUMBER", "an upper hop bound")
                if "." in high.value:
                    raise self._error("hop counts must be integers", high)
                max_hops = int(high.value)
            if max_hops < min_hops:
                raise self._error(
                    f"hop bounds inverted: *{min_hops}..{max_hops}",
                    low)
            if max_hops > MAX_HOPS:
                raise self._error(
                    f"hop bound {max_hops} exceeds the maximum "
                    f"of {MAX_HOPS}", low)
        if backward:
            self._expect("]-", "']-' closing the edge")
            etype = INVERSE_EDGE[etype]
        else:
            self._expect("]->", "']->' closing the edge")
        return EdgePattern(etype=etype, min_hops=min_hops,
                           max_hops=max_hops)

    # -- expressions -------------------------------------------------------

    def _expr(self) -> Expr:
        operands = [self._and_expr()]
        while self._at_keyword("OR"):
            self._advance()
            operands.append(self._and_expr())
        if len(operands) == 1:
            return operands[0]
        return BoolOp("OR", tuple(self._flatten("OR", operands)))

    def _and_expr(self) -> Expr:
        operands = [self._unary()]
        while self._at_keyword("AND"):
            self._advance()
            operands.append(self._unary())
        if len(operands) == 1:
            return operands[0]
        return BoolOp("AND", tuple(self._flatten("AND", operands)))

    @staticmethod
    def _flatten(op: str, operands: list[Expr]) -> list[Expr]:
        flat: list[Expr] = []
        for operand in operands:
            if isinstance(operand, BoolOp) and operand.op == op:
                flat.extend(operand.operands)
            else:
                flat.append(operand)
        return flat

    def _unary(self) -> Expr:
        if self._at_keyword("NOT"):
            self._advance()
            return NotExpr(self._unary())
        if self.current.kind == "(":
            self._advance()
            inner = self._expr()
            self._expect(")", "')' closing the group")
            return inner
        lhs = self._operand()
        token = self.current
        if token.kind in _COMPARE_OPS:
            op = self._advance().value
        elif self._at_keyword("CONTAINS"):
            self._advance()
            op = "CONTAINS"
        else:
            raise self._error(
                f"expected a comparison operator, "
                f"found {self._describe(token)}")
        rhs = self._operand()
        return Comparison(lhs=lhs, op=op, rhs=rhs)

    def _operand(self) -> Operand:
        token = self.current
        if token.kind == "STRING":
            return Literal(self._advance().value)
        if token.kind == "NUMBER":
            value = self._advance().value
            return Literal(float(value) if "." in value else int(value))
        if token.kind == "IDENT":
            var_token = self._advance()
            if var_token.value not in self._declared:
                raise self._error(
                    f"WHERE references unknown variable "
                    f"{var_token.value!r}", var_token)
            self._expect(".", "'.' before a field name")
            field = self._expect("IDENT", "a field name")
            if field.value not in NODE_FIELDS:
                raise self._error(
                    f"unknown field {field.value!r}; "
                    f"one of {', '.join(NODE_FIELDS)}", field)
            return FieldRef(var=var_token.value, field=field.value)
        raise self._error(
            f"expected a value or var.field, "
            f"found {self._describe(token)}")

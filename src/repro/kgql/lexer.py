"""The KGQL tokenizer.

Hand-rolled (no regex tables) so every token records the exact source
position it started at — the parser threads those positions into
:class:`~repro.errors.KGQLSyntaxError` and the gateway renders them as
caret diagnostics.  Longest-match-first handles the overlapping
punctuation: ``<-[`` must win over ``<=`` and ``<``, ``]->`` over
``]``, ``..`` over ``.``.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.errors import KGQLSyntaxError

#: Keywords, matched case-insensitively; ``Token.value`` is upper-cased.
KEYWORDS = frozenset({
    "MATCH", "WHERE", "RETURN", "LIMIT", "AND", "OR", "NOT", "CONTAINS",
})

#: Multi-character punctuation, longest first (order is load-bearing).
_PUNCTUATION = (
    "<-[", "]->", "]-", "-[", "..", "<=", ">=", "!=",
    "(", ")", "[", "]", ",", ":", ".", "*", "=", "<", ">",
)

_IDENT_START = frozenset(
    "abcdefghijklmnopqrstuvwxyzABCDEFGHIJKLMNOPQRSTUVWXYZ_")
_IDENT_BODY = _IDENT_START | frozenset("0123456789")
_DIGITS = frozenset("0123456789")


@dataclass(frozen=True)
class Token:
    """One lexeme with its starting source position (1-based)."""

    kind: str  # KEYWORD | IDENT | STRING | NUMBER | one of _PUNCTUATION | EOF
    value: str
    line: int
    column: int


def _source_line(text: str, line: int) -> str:
    lines = text.split("\n")
    return lines[line - 1] if 1 <= line <= len(lines) else ""


def lex_error(text: str, message: str, line: int,
              column: int) -> KGQLSyntaxError:
    """A syntax error carrying the offending line for caret rendering."""
    return KGQLSyntaxError(message, line=line, column=column,
                           source_line=_source_line(text, line))


def tokenize(text: str) -> list[Token]:
    """``text`` -> tokens, ending with an ``EOF`` token.

    >>> [t.kind for t in tokenize('MATCH (a) RETURN a')]
    ['KEYWORD', '(', 'IDENT', ')', 'KEYWORD', 'IDENT', 'EOF']
    """
    tokens: list[Token] = []
    line, column = 1, 1
    index, length = 0, len(text)
    while index < length:
        char = text[index]
        if char == "\n":
            index += 1
            line += 1
            column = 1
            continue
        if char in " \t\r":
            index += 1
            column += 1
            continue
        if char in ('"', "'"):
            token, index, consumed = _lex_string(text, index, line, column)
            tokens.append(token)
            column += consumed
            continue
        if char in _DIGITS:
            start = index
            while index < length and text[index] in _DIGITS:
                index += 1
            if index < length and text[index] == "." and \
                    not text.startswith("..", index) and \
                    index + 1 < length and text[index + 1] in _DIGITS:
                index += 1
                while index < length and text[index] in _DIGITS:
                    index += 1
            value = text[start:index]
            tokens.append(Token("NUMBER", value, line, column))
            column += len(value)
            continue
        if char in _IDENT_START:
            start = index
            while index < length and text[index] in _IDENT_BODY:
                index += 1
            value = text[start:index]
            kind = "KEYWORD" if value.upper() in KEYWORDS else "IDENT"
            tokens.append(Token(
                kind, value.upper() if kind == "KEYWORD" else value,
                line, column,
            ))
            column += len(value)
            continue
        for punct in _PUNCTUATION:
            if text.startswith(punct, index):
                tokens.append(Token(punct, punct, line, column))
                index += len(punct)
                column += len(punct)
                break
        else:
            raise lex_error(text, f"unexpected character {char!r}",
                            line, column)
    tokens.append(Token("EOF", "", line, column))
    return tokens


def _lex_string(text: str, index: int, line: int,
                column: int) -> tuple[Token, int, int]:
    """Lex one quoted string starting at ``index``; returns
    ``(token, next_index, columns_consumed)``.

    Either quote character delimits; ``\\\\`` and ``\\<quote>`` escape.
    Newlines inside strings are a syntax error (labels never span
    lines, and unterminated strings should point at their start).
    """
    quote = text[index]
    parts: list[str] = []
    cursor = index + 1
    while cursor < len(text):
        char = text[cursor]
        if char == quote:
            return (
                Token("STRING", "".join(parts), line, column),
                cursor + 1,
                cursor + 1 - index,
            )
        if char == "\n":
            break
        if char == "\\" and cursor + 1 < len(text) and \
                text[cursor + 1] in (quote, "\\"):
            parts.append(text[cursor + 1])
            cursor += 2
            continue
        parts.append(char)
        cursor += 1
    raise lex_error(text, "unterminated string literal", line, column)


def quote_label(label: str) -> str:
    """``label`` as a KGQL string literal (the renderer's inverse of
    :func:`_lex_string`)."""
    escaped = label.replace("\\", "\\\\").replace('"', '\\"')
    return f'"{escaped}"'

"""The typed KGQL AST.

Every node is a frozen dataclass, and every node renders back to
source via :meth:`Query.render` — the parser/renderer pair is a
round trip (``parse(q.render()) == q``), which the parser property
tests pin down.  Rendering is canonical (exact hop counts become
``*n..n``, same-operator boolean chains flatten), so a rendered query
is also the query's normal form.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Union

from repro.kgql.lexer import quote_label

#: Edge types the graph supports and their inverses (``(a)<-[t]-(b)``
#: desugars to ``(a)-[INVERSE[t]]->(b)`` read right to left — but since
#: node order must be preserved, the parser instead stores the inverse
#: type on the forward edge).
EDGE_TYPES = ("child_of", "parent_of", "related")
INVERSE_EDGE = {"child_of": "parent_of", "parent_of": "child_of",
                "related": "related"}

#: Node fields predicates and projections may reference.
NODE_FIELDS = ("id", "label", "category", "depth", "papers")

#: Hop-bound ceiling accepted by the *parser*; queries inside the
#: ceiling can still be rejected by admission-control pricing.
MAX_HOPS = 32


@dataclass(frozen=True)
class NodePattern:
    """``(var:"Label")`` — either part optional: ``(v)``, ``(:"X")``, ``()``."""

    var: str | None = None
    label: str | None = None

    def render(self) -> str:
        inner = self.var or ""
        if self.label is not None:
            inner += f":{quote_label(self.label)}"
        return f"({inner})"


@dataclass(frozen=True)
class EdgePattern:
    """``-[child_of*1..3]->`` — a typed traversal with hop bounds."""

    etype: str
    min_hops: int = 1
    max_hops: int = 1

    def render(self) -> str:
        bounds = ""
        if (self.min_hops, self.max_hops) != (1, 1):
            bounds = f"*{self.min_hops}..{self.max_hops}"
        return f"-[{self.etype}{bounds}]->"


@dataclass(frozen=True)
class Chain:
    """One pattern chain: nodes joined by edges (``len(edges) ==
    len(nodes) - 1``)."""

    nodes: tuple[NodePattern, ...]
    edges: tuple[EdgePattern, ...] = ()

    def render(self) -> str:
        parts = [self.nodes[0].render()]
        for edge, node in zip(self.edges, self.nodes[1:]):
            parts.append(edge.render())
            parts.append(node.render())
        return "".join(parts)


@dataclass(frozen=True)
class FieldRef:
    """``var.field`` inside a WHERE expression."""

    var: str
    field: str

    def render(self) -> str:
        return f"{self.var}.{self.field}"


@dataclass(frozen=True)
class Literal:
    """A string or numeric constant."""

    value: Union[str, int, float]

    def render(self) -> str:
        if isinstance(value := self.value, str):
            return quote_label(value)
        return repr(value)


Operand = Union[FieldRef, Literal]


@dataclass(frozen=True)
class Comparison:
    """``lhs op rhs`` where op ∈ ``= != < <= > >= CONTAINS``."""

    lhs: Operand
    op: str
    rhs: Operand

    def render(self) -> str:
        return f"{self.lhs.render()} {self.op} {self.rhs.render()}"


@dataclass(frozen=True)
class BoolOp:
    """An n-ary ``AND``/``OR`` (the parser flattens same-op chains)."""

    op: str  # "AND" | "OR"
    operands: "tuple[Expr, ...]"

    def render(self) -> str:
        parts = []
        for operand in self.operands:
            text = operand.render()
            # OR binds looser than AND: parenthesize a nested OR so the
            # rendered text re-parses to this exact tree.
            if isinstance(operand, BoolOp) and self.op == "AND":
                text = f"({text})"
            parts.append(text)
        return f" {self.op} ".join(parts)


@dataclass(frozen=True)
class NotExpr:
    """``NOT expr``."""

    operand: "Expr"

    def render(self) -> str:
        text = self.operand.render()
        if isinstance(self.operand, BoolOp):
            text = f"({text})"
        return f"NOT {text}"


Expr = Union[Comparison, BoolOp, NotExpr]


@dataclass(frozen=True)
class Query:
    """One full KGQL statement."""

    chains: tuple[Chain, ...]
    returns: tuple[str, ...]
    where: Expr | None = None
    limit: int | None = None

    def render(self) -> str:
        parts = ["MATCH ", ", ".join(chain.render()
                                     for chain in self.chains)]
        if self.where is not None:
            parts.append(f" WHERE {self.where.render()}")
        parts.append(" RETURN " + ", ".join(self.returns))
        if self.limit is not None:
            parts.append(f" LIMIT {self.limit}")
        return "".join(parts)

    def variables(self) -> tuple[str, ...]:
        """Named variables in first-appearance order."""
        seen: list[str] = []
        for chain in self.chains:
            for node in chain.nodes:
                if node.var is not None and node.var not in seen:
                    seen.append(node.var)
        return tuple(seen)

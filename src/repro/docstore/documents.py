"""Document primitives: ids, dotted-path access, deep copies.

Documents are plain JSON-compatible dicts.  Dotted paths (``"meta.title"``,
``"authors.0.name"``) address nested fields the way MongoDB queries and
projections do, including the implicit fan-out over arrays of sub-documents.
"""

from __future__ import annotations

import copy
import itertools
import json
from typing import Any

from repro.analysis import racecheck
from repro.errors import DocumentError

_MISSING = object()


class ObjectId:
    """A small monotonically-increasing document id.

    Real MongoDB ObjectIds embed a timestamp and machine id; here a
    process-wide counter is enough and keeps insertion order sortable and
    deterministic for tests.
    """

    _counter = itertools.count(1)
    _lock = racecheck.make_lock("docstore.object_id")

    __slots__ = ("value",)

    def __init__(self, value: int | None = None) -> None:
        if value is None:
            with ObjectId._lock:
                value = next(ObjectId._counter)
        self.value = int(value)

    def __repr__(self) -> str:
        return f"ObjectId({self.value})"

    def __str__(self) -> str:
        return f"oid:{self.value:016d}"

    def __eq__(self, other: object) -> bool:
        if isinstance(other, ObjectId):
            return self.value == other.value
        if isinstance(other, str):
            return str(self) == other
        return NotImplemented

    def __lt__(self, other: "ObjectId") -> bool:
        return self.value < other.value

    def __hash__(self) -> int:
        return hash(("ObjectId", self.value))

    @classmethod
    def parse(cls, text: str) -> "ObjectId":
        """Parse the ``oid:...`` string form back into an ObjectId."""
        if not text.startswith("oid:"):
            raise DocumentError(f"not an ObjectId string: {text!r}")
        return cls(int(text[4:]))


def deep_copy_document(document: dict[str, Any]) -> dict[str, Any]:
    """Deep-copy a document so callers cannot mutate stored state."""
    return copy.deepcopy(document)


def _descend(value: Any, part: str) -> Any:
    if isinstance(value, dict):
        return value.get(part, _MISSING)
    if isinstance(value, list):
        if part.isdigit():
            index = int(part)
            if 0 <= index < len(value):
                return value[index]
            return _MISSING
        # MongoDB fans a field access out over array elements.
        results = [
            item[part]
            for item in value
            if isinstance(item, dict) and part in item
        ]
        return results if results else _MISSING
    return _MISSING


def deep_get(document: Any, path: str, default: Any = None) -> Any:
    """Fetch the value at a dotted ``path``; ``default`` when absent.

    >>> deep_get({"meta": {"title": "x"}}, "meta.title")
    'x'
    >>> deep_get({"authors": [{"name": "a"}, {"name": "b"}]}, "authors.name")
    ['a', 'b']
    """
    value = document
    for part in path.split("."):
        value = _descend(value, part)
        if value is _MISSING:
            return default
    return value


def path_exists(document: Any, path: str) -> bool:
    """True when the dotted ``path`` resolves to any value (even None)."""
    return deep_get(document, path, _MISSING) is not _MISSING


def deep_set(document: dict[str, Any], path: str, value: Any) -> None:
    """Set the value at a dotted ``path``, creating intermediate dicts.

    Numeric parts index into lists; other parts create/overwrite dict keys.
    """
    parts = path.split(".")
    target: Any = document
    for i, part in enumerate(parts[:-1]):
        next_part = parts[i + 1]
        if isinstance(target, list):
            if not part.isdigit():
                raise DocumentError(
                    f"cannot address list with non-numeric path part {part!r}"
                )
            index = int(part)
            while len(target) <= index:
                target.append({})
            if not isinstance(target[index], (dict, list)):
                target[index] = {}
            target = target[index]
            continue
        if part not in target or not isinstance(target[part], (dict, list)):
            target[part] = [] if next_part.isdigit() else {}
        target = target[part]
    last = parts[-1]
    if isinstance(target, list):
        if not last.isdigit():
            raise DocumentError(
                f"cannot address list with non-numeric path part {last!r}"
            )
        index = int(last)
        while len(target) <= index:
            target.append(None)
        target[index] = value
    else:
        target[last] = value


def deep_unset(document: dict[str, Any], path: str) -> bool:
    """Remove the value at ``path``; returns True when something was removed."""
    parts = path.split(".")
    target: Any = document
    for part in parts[:-1]:
        target = _descend(target, part)
        if target is _MISSING or not isinstance(target, (dict, list)):
            return False
    last = parts[-1]
    if isinstance(target, dict) and last in target:
        del target[last]
        return True
    if isinstance(target, list) and last.isdigit():
        index = int(last)
        if 0 <= index < len(target):
            del target[index]
            return True
    return False


def document_bytes(document: dict[str, Any]) -> int:
    """Serialized size of a document, used for storage accounting (E11)."""
    return len(json.dumps(document, default=str, separators=(",", ":")))


def validate_document(document: Any) -> dict[str, Any]:
    """Check that ``document`` is a JSON-object-like dict with str keys."""
    if not isinstance(document, dict):
        raise DocumentError(f"documents must be dicts, got {type(document)}")
    for key in document:
        if not isinstance(key, str):
            raise DocumentError(f"document keys must be str, got {key!r}")
        if key.startswith("$"):
            raise DocumentError(f"field names may not start with '$': {key!r}")
    return document

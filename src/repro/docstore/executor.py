"""Shared fan-out executor for multi-shard scatter-gather.

The paper's back end is a sharded MongoDB cluster whose router sends
per-shard work to every shard *concurrently* and merges the partial
results.  This module is the process-wide equivalent: one bounded
``ThreadPoolExecutor`` every multi-shard operation (``find``, ``count``,
``aggregate``, bulk writes, rebalancing) dispatches through.

Design rules:

* **Lazy init** — the pool is created on first parallel fan-out, never
  at import time, so single-shard workloads pay nothing.
* **Configurable width** — ``REPRO_EXECUTOR_WIDTH`` overrides the
  default (bounded by CPU count); width ``1`` forces the serial path,
  which the differential tests use as the reference implementation.
* **Serial fallback** — one task, width 1, or a *nested* fan-out (a
  task that itself scatters, e.g. an aggregation inside a serving-tier
  worker that is already running on the pool) runs inline on the
  calling thread.  Nested submissions to a bounded pool can deadlock;
  running them inline cannot.
* **Quiescent failure** — a fan-out that raises has *stopped*: every
  started task has finished and every unstarted task is cancelled
  before the first exception propagates, so shard writes never keep
  mutating behind a caller that already saw the error.
* **Budgeted** — a :class:`FanoutBudget` (explicit argument or ambient
  via :func:`budget_scope`) caps how many of one request's tasks run
  concurrently, so a single expensive query cannot monopolize the
  shared pool.
* **Observable** — every fanned-out task's wall time is reported to
  registered observers, which is how the serving tier's per-shard
  fan-out latency histogram is fed without the docstore importing the
  metrics layer.
"""

from __future__ import annotations

import os
import threading
import time
from concurrent.futures import (
    FIRST_COMPLETED,
    FIRST_EXCEPTION,
    ThreadPoolExecutor,
    wait,
)
from contextlib import contextmanager
from typing import Any, Callable, Iterator, Sequence, TypeVar

from repro.analysis import racecheck

T = TypeVar("T")

#: Environment variable overriding the fan-out width.
WIDTH_ENV = "REPRO_EXECUTOR_WIDTH"

#: Environment variable selecting the fan-out executor kind.  The value
#: ``process`` turns on the opt-in process pool: fan-out *dispatch*
#: stays thread-based (budgets, quiescence, observers unchanged), but
#: work that knows how to ship itself across processes — the columnar
#: ranking kernels — round-trips through :func:`get_process_executor`
#: to escape the GIL.  Anything else (or unset) means threads only.
KIND_ENV = "REPRO_EXECUTOR_KIND"

#: Default width: enough threads to cover a typical shard count without
#: oversubscribing small machines.
DEFAULT_WIDTH = max(2, min(16, os.cpu_count() or 4))

_lock = racecheck.make_lock("docstore.executor")
_executor: ThreadPoolExecutor | None = None
_executor_width = 0
_process_executor = None  # ProcessPoolExecutor | None
_process_width = 0
_local = threading.local()

_observers: list[Callable[[float], None]] = []


def executor_width() -> int:
    """The configured fan-out width (``REPRO_EXECUTOR_WIDTH`` or default).

    The override is interpreted explicitly rather than silently:

    * ``>= 1`` — that many pool threads (``1`` forces the serial path);
    * ``0`` — "auto": the built-in :data:`DEFAULT_WIDTH`;
    * negative — serial, same as ``1`` (a deliberate "no parallelism"
      request should not be promoted back to the default);
    * unparseable — :data:`DEFAULT_WIDTH`, so a broken environment never
      disables the store.
    """
    raw = os.environ.get(WIDTH_ENV)
    if raw:
        try:
            width = int(raw)
        except ValueError:
            return DEFAULT_WIDTH
        if width >= 1:
            return width
        if width < 0:
            return 1
    return DEFAULT_WIDTH


def get_executor() -> ThreadPoolExecutor:
    """The shared pool, (re)built lazily at the current width.

    On a width change the old pool reference is swapped out under the
    module lock but its ``shutdown`` runs *outside* it — the same rule
    :func:`shutdown_executor` follows.  Even ``wait=False`` takes the
    pool's internal locks and may wake worker threads that re-enter this
    module; holding our lock across that is a lock-order inversion.
    """
    global _executor, _executor_width
    width = executor_width()
    doomed: ThreadPoolExecutor | None = None
    with _lock:
        if _executor is None or _executor_width != width:
            doomed = _executor
            _executor = ThreadPoolExecutor(
                max_workers=width, thread_name_prefix="repro-shard"
            )
            _executor_width = width
        executor = _executor
    if doomed is not None:
        doomed.shutdown(wait=False)
    return executor


def shutdown_executor() -> None:
    """Tear down the shared pool (tests; safe to call when never built).

    The pool reference is swapped out under the lock but the blocking
    ``shutdown(wait=True)`` happens *outside* it: a worker thread that
    touches this module (e.g. a rebuilt :func:`get_executor`) must never
    find the lock held by a shutdown that is waiting for that very
    worker to finish.
    """
    global _executor, _executor_width
    with _lock:
        doomed = _executor
        _executor = None
        _executor_width = 0
    if doomed is not None:
        doomed.shutdown(wait=True)


def executor_kind() -> str:
    """``"process"`` when :data:`KIND_ENV` opts in, else ``"thread"``."""
    raw = (os.environ.get(KIND_ENV) or "").strip().lower()
    return "process" if raw == "process" else "thread"


def get_process_executor():
    """The shared process pool, (re)built lazily at the current width.

    Workers use the *spawn* start method: the serving tier runs many
    threads, and forking a threaded process inherits locks in arbitrary
    states.  Width follows :func:`executor_width` (same knob as the
    thread pool) so ``REPRO_EXECUTOR_WIDTH=4`` means four worker
    processes too.  Same lock discipline as :func:`get_executor`: swap
    under the module lock, shut the doomed pool down outside it.
    """
    import multiprocessing
    from concurrent.futures import ProcessPoolExecutor

    global _process_executor, _process_width
    width = executor_width()
    doomed = None
    with _lock:
        if _process_executor is None or _process_width != width:
            doomed = _process_executor
            _process_executor = ProcessPoolExecutor(
                max_workers=width,
                mp_context=multiprocessing.get_context("spawn"),
            )
            _process_width = width
        executor = _process_executor
    if doomed is not None:
        doomed.shutdown(wait=False)
    return executor


def shutdown_process_executor() -> None:
    """Tear down the process pool (tests; safe when never built)."""
    global _process_executor, _process_width
    with _lock:
        doomed = _process_executor
        _process_executor = None
        _process_width = 0
    if doomed is not None:
        doomed.shutdown(wait=True)


# -- per-request budgets ---------------------------------------------------

class FanoutBudget:
    """Per-request cap on concurrently running fan-out tasks.

    The serving tier hands each request one of these (sized by the
    adaptive load controller); :meth:`grant` clamps a fan-out's
    parallelism to the budget and reports each clamp to ``on_clamp`` so
    the controller can count them.  Budgets are advisory per *request*
    — the shared pool's width still bounds the process as a whole.
    """

    __slots__ = ("limit", "clamps", "_on_clamp")

    def __init__(self, limit: int,
                 on_clamp: Callable[[int, int], None] | None = None) -> None:
        if limit < 1:
            raise ValueError("fan-out budget must be >= 1")
        self.limit = int(limit)
        self.clamps = 0
        self._on_clamp = on_clamp

    def grant(self, requested: int) -> int:
        """How many of ``requested`` tasks may run concurrently."""
        if requested <= self.limit:
            return requested
        self.clamps += 1
        if self._on_clamp is not None:
            try:
                self._on_clamp(requested, self.limit)
            except Exception:  # noqa: BLE001 - accounting must not break reads
                pass
        return self.limit


@contextmanager
def budget_scope(budget: FanoutBudget | None) -> Iterator[FanoutBudget | None]:
    """Make ``budget`` the ambient fan-out budget for this thread.

    Every :func:`scatter` call on the thread (however deep in the
    docstore) honours it without the intermediate layers threading the
    budget through by hand.  Scopes nest; ``None`` clears the budget.
    """
    previous = getattr(_local, "budget", None)
    _local.budget = budget
    try:
        yield budget
    finally:
        _local.budget = previous


def current_budget() -> FanoutBudget | None:
    """The ambient :class:`FanoutBudget` for this thread, if any."""
    return getattr(_local, "budget", None)


# -- observability ---------------------------------------------------------

def add_fanout_observer(observer: Callable[[float], None]) -> None:
    """Register a callback receiving each fanned-out task's seconds."""
    with _lock:
        if observer not in _observers:
            _observers.append(observer)


def remove_fanout_observer(observer: Callable[[float], None]) -> None:
    with _lock:
        if observer in _observers:
            _observers.remove(observer)


def _observed(task: Callable[[], T]) -> T:
    started = time.perf_counter()
    try:
        return task()
    finally:
        seconds = time.perf_counter() - started
        with _lock:
            observers = tuple(_observers)
        for observer in observers:
            try:
                observer(seconds)
            except Exception:  # noqa: BLE001 - observers must not break reads
                pass


# -- fan-out primitives ----------------------------------------------------

def _submit_task(executor: ThreadPoolExecutor,
                 task: Callable[[], T]) -> tuple[Any, ThreadPoolExecutor]:
    """Submit to the shared pool, riding over a concurrent retirement.

    Between a fan-out's ``get_executor()`` and its ``submit`` another
    thread may retire the pool (a width-change rebuild, or
    :func:`shutdown_executor`); the orphaned submit raises
    ``RuntimeError("cannot schedule new futures after shutdown")``.
    Re-fetching the current pool and retrying makes the fan-out immune
    to that window.  Futures already obtained from the retired pool
    stay valid — its queued work still runs to completion.
    """
    while True:
        try:
            return executor.submit(_worker, task), executor
        except RuntimeError:
            executor = get_executor()


def _run_serial(tasks: Sequence[Callable[[], T]]) -> list[T]:
    if len(tasks) > 1:
        return [_observed(task) for task in tasks]
    return [task() for task in tasks]


def _in_fanout() -> bool:
    return bool(getattr(_local, "depth", 0))


def _worker(task: Callable[[], T]) -> T:
    _local.depth = getattr(_local, "depth", 0) + 1
    try:
        return _observed(task)
    finally:
        _local.depth -= 1


def scatter(tasks: Sequence[Callable[[], T]],
            budget: FanoutBudget | None = None) -> list[T]:
    """Run every task, returning results in task order.

    Tasks run on the shared pool when a parallel fan-out is worthwhile;
    otherwise (single task, width 1, or already inside a fan-out) they
    run inline.  ``budget`` (or the ambient :func:`budget_scope` budget)
    caps how many tasks run concurrently.

    On failure the fan-out *quiesces* before raising: every started
    task has finished and every unstarted one is cancelled, so no shard
    keeps mutating after the first exception propagates.
    """
    if len(tasks) > 1:
        racecheck.note_fanout("scatter")
    if len(tasks) <= 1 or executor_width() == 1 or _in_fanout():
        return _run_serial(tasks)
    if budget is None:
        budget = current_budget()
    limit = len(tasks) if budget is None else budget.grant(len(tasks))
    if limit <= 1:
        return _run_serial(tasks)
    executor = get_executor()
    if limit < len(tasks):
        return _gather_windowed(executor, tasks, limit)
    return _gather(executor, tasks)


def _gather(executor: ThreadPoolExecutor,
            tasks: Sequence[Callable[[], T]]) -> list[T]:
    """Submit everything at once; quiesce before raising."""
    futures = []
    for task in tasks:
        future, executor = _submit_task(executor, task)
        futures.append(future)
    done, pending = wait(futures, return_when=FIRST_EXCEPTION)
    for future in pending:
        future.cancel()
    if pending:
        wait(pending)  # started tasks must finish before we raise
    error: BaseException | None = None
    results: list[T] = []
    for future in futures:
        if future.cancelled():
            continue
        exc = future.exception()
        if exc is not None:
            error = error or exc
            continue
        results.append(future.result())
    if error is not None:
        raise error
    return results


def _gather_windowed(executor: ThreadPoolExecutor,
                     tasks: Sequence[Callable[[], T]],
                     limit: int) -> list[T]:
    """Keep at most ``limit`` tasks in flight (per-request budget).

    Results come back in task order.  On failure no further tasks are
    submitted and the in-flight window drains before the first
    exception propagates — the same quiescence guarantee as the
    all-at-once path.
    """
    results: list[Any] = [None] * len(tasks)
    indices: dict[Any, int] = {}
    inflight: set[Any] = set()
    next_index = 0
    error: BaseException | None = None
    while inflight or (error is None and next_index < len(tasks)):
        while (error is None and next_index < len(tasks)
               and len(inflight) < limit):
            future, executor = _submit_task(executor, tasks[next_index])
            indices[future] = next_index
            inflight.add(future)
            next_index += 1
        if not inflight:
            break
        done, inflight = wait(inflight, return_when=FIRST_COMPLETED)
        for future in done:
            exc = future.exception()
            if exc is not None:
                error = error or exc
            else:
                results[indices[future]] = future.result()
    if error is not None:
        raise error
    return results


def scatter_first(tasks: Sequence[Callable[[], T]],
                  accept: Callable[[T], bool]) -> T | None:
    """Run tasks, returning the first *accepted* result to complete.

    The parallel path consumes completions as they land — the first
    task whose result satisfies ``accept`` wins and every not-yet-
    started task is cancelled.  The serial path short-circuits in task
    order.  Returns ``None`` when no result is accepted.

    Acceptance is tracked with a flag, not the value's truthiness: an
    ``accept`` that embraces a falsy result (a legitimate ``None`` or
    empty sentinel) wins the race like any other, and never has its
    victory masked by an unrelated shard error.

    ``scatter_first`` ignores fan-out budgets deliberately: it serves
    racing point-reads (``find_one``) where the whole point is to hit
    every shard at once and cancel the losers.
    """
    if len(tasks) > 1:
        racecheck.note_fanout("scatter_first")
    if len(tasks) <= 1 or executor_width() == 1 or _in_fanout():
        for task in tasks:
            result = _observed(task) if len(tasks) > 1 else task()
            if accept(result):
                return result
        return None
    executor = get_executor()
    pending = set()
    for task in tasks:
        future, executor = _submit_task(executor, task)
        pending.add(future)
    winner: Any = None
    accepted = False
    error: BaseException | None = None
    try:
        while pending:
            done, pending = wait(pending, return_when=FIRST_COMPLETED)
            for future in done:
                exc = future.exception()
                if exc is not None:
                    error = error or exc
                    continue
                result = future.result()
                if accept(result):
                    winner = result
                    accepted = True
                    raise _Found
    except _Found:
        pass
    finally:
        for future in pending:
            future.cancel()
    if not accepted and error is not None:
        raise error
    return winner


class _Found(Exception):
    """Internal control flow: a short-circuit result was accepted."""

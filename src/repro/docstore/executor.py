"""Shared fan-out executor for multi-shard scatter-gather.

The paper's back end is a sharded MongoDB cluster whose router sends
per-shard work to every shard *concurrently* and merges the partial
results.  This module is the process-wide equivalent: one bounded
``ThreadPoolExecutor`` every multi-shard operation (``find``, ``count``,
``aggregate``, bulk writes, rebalancing) dispatches through.

Design rules:

* **Lazy init** — the pool is created on first parallel fan-out, never
  at import time, so single-shard workloads pay nothing.
* **Configurable width** — ``REPRO_EXECUTOR_WIDTH`` overrides the
  default (bounded by CPU count); width ``1`` forces the serial path,
  which the differential tests use as the reference implementation.
* **Serial fallback** — one task, width 1, or a *nested* fan-out (a
  task that itself scatters, e.g. an aggregation inside a serving-tier
  worker that is already running on the pool) runs inline on the
  calling thread.  Nested submissions to a bounded pool can deadlock;
  running them inline cannot.
* **Observable** — every fanned-out task's wall time is reported to
  registered observers, which is how the serving tier's per-shard
  fan-out latency histogram is fed without the docstore importing the
  metrics layer.
"""

from __future__ import annotations

import os
import threading
import time
from concurrent.futures import FIRST_COMPLETED, ThreadPoolExecutor, wait
from typing import Any, Callable, Sequence, TypeVar

from repro.analysis import racecheck

T = TypeVar("T")

#: Environment variable overriding the fan-out width.
WIDTH_ENV = "REPRO_EXECUTOR_WIDTH"

#: Default width: enough threads to cover a typical shard count without
#: oversubscribing small machines.
DEFAULT_WIDTH = max(2, min(16, os.cpu_count() or 4))

_lock = racecheck.make_lock("docstore.executor")
_executor: ThreadPoolExecutor | None = None
_executor_width = 0
_local = threading.local()

_observers: list[Callable[[float], None]] = []


def executor_width() -> int:
    """The configured fan-out width (``REPRO_EXECUTOR_WIDTH`` or default).

    Invalid or non-positive values fall back to the default, so a broken
    environment never disables the store.
    """
    raw = os.environ.get(WIDTH_ENV)
    if raw:
        try:
            width = int(raw)
        except ValueError:
            return DEFAULT_WIDTH
        if width >= 1:
            return width
    return DEFAULT_WIDTH


def get_executor() -> ThreadPoolExecutor:
    """The shared pool, (re)built lazily at the current width."""
    global _executor, _executor_width
    width = executor_width()
    with _lock:
        if _executor is None or _executor_width != width:
            if _executor is not None:
                _executor.shutdown(wait=False)
            _executor = ThreadPoolExecutor(
                max_workers=width, thread_name_prefix="repro-shard"
            )
            _executor_width = width
        return _executor


def shutdown_executor() -> None:
    """Tear down the shared pool (tests; safe to call when never built).

    The pool reference is swapped out under the lock but the blocking
    ``shutdown(wait=True)`` happens *outside* it: a worker thread that
    touches this module (e.g. a rebuilt :func:`get_executor`) must never
    find the lock held by a shutdown that is waiting for that very
    worker to finish.
    """
    global _executor, _executor_width
    with _lock:
        doomed = _executor
        _executor = None
        _executor_width = 0
    if doomed is not None:
        doomed.shutdown(wait=True)


# -- observability ---------------------------------------------------------

def add_fanout_observer(observer: Callable[[float], None]) -> None:
    """Register a callback receiving each fanned-out task's seconds."""
    with _lock:
        if observer not in _observers:
            _observers.append(observer)


def remove_fanout_observer(observer: Callable[[float], None]) -> None:
    with _lock:
        if observer in _observers:
            _observers.remove(observer)


def _observed(task: Callable[[], T]) -> T:
    started = time.perf_counter()
    try:
        return task()
    finally:
        seconds = time.perf_counter() - started
        with _lock:
            observers = tuple(_observers)
        for observer in observers:
            try:
                observer(seconds)
            except Exception:  # noqa: BLE001 - observers must not break reads
                pass


# -- fan-out primitives ----------------------------------------------------

def _run_serial(tasks: Sequence[Callable[[], T]]) -> list[T]:
    if len(tasks) > 1:
        return [_observed(task) for task in tasks]
    return [task() for task in tasks]


def _in_fanout() -> bool:
    return bool(getattr(_local, "depth", 0))


def _worker(task: Callable[[], T]) -> T:
    _local.depth = getattr(_local, "depth", 0) + 1
    try:
        return _observed(task)
    finally:
        _local.depth -= 1


def scatter(tasks: Sequence[Callable[[], T]]) -> list[T]:
    """Run every task, returning results in task order.

    Tasks run on the shared pool when a parallel fan-out is worthwhile;
    otherwise (single task, width 1, or already inside a fan-out) they
    run inline.  The first task exception propagates after all tasks
    have been dispatched.
    """
    if len(tasks) > 1:
        racecheck.note_fanout("scatter")
    if len(tasks) <= 1 or executor_width() == 1 or _in_fanout():
        return _run_serial(tasks)
    executor = get_executor()
    futures = [executor.submit(_worker, task) for task in tasks]
    return [future.result() for future in futures]


def scatter_first(tasks: Sequence[Callable[[], T]],
                  accept: Callable[[T], bool]) -> T | None:
    """Run tasks, returning the first *accepted* result to complete.

    The parallel path consumes completions as they land — the first
    task whose result satisfies ``accept`` wins and every not-yet-
    started task is cancelled.  The serial path short-circuits in task
    order.  Returns ``None`` when no result is accepted.
    """
    if len(tasks) > 1:
        racecheck.note_fanout("scatter_first")
    if len(tasks) <= 1 or executor_width() == 1 or _in_fanout():
        for task in tasks:
            result = _observed(task) if len(tasks) > 1 else task()
            if accept(result):
                return result
        return None
    executor = get_executor()
    pending = {executor.submit(_worker, task) for task in tasks}
    winner: Any = None
    error: BaseException | None = None
    try:
        while pending:
            done, pending = wait(pending, return_when=FIRST_COMPLETED)
            for future in done:
                exc = future.exception()
                if exc is not None:
                    error = error or exc
                    continue
                result = future.result()
                if accept(result):
                    winner = result
                    raise _Found
    except _Found:
        pass
    finally:
        for future in pending:
            future.cancel()
    if winner is None and error is not None:
        raise error
    return winner


class _Found(Exception):
    """Internal control flow: a short-circuit result was accepted."""

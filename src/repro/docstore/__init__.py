"""Sharded JSON document store — the MongoDB substitute.

COVIDKG.ORG stores its 450k parsed publications, trained models, and the
knowledge graph itself in a sharded MongoDB cluster and expresses its
search engines as aggregation pipelines (paper Section 2).  This package
reproduces the parts of that stack the system actually exercises:

* a MongoDB-style query language (:mod:`repro.docstore.matching`),
* collections with CRUD + update operators (:mod:`repro.docstore.collection`),
* secondary and inverted text indexes (:mod:`repro.docstore.indexes`),
* hash/range sharding with a router (:mod:`repro.docstore.sharding`),
* the aggregation pipeline engine with ``$match``, ``$project``,
  ``$function`` and friends (:mod:`repro.docstore.aggregation`),
* JSONL persistence and storage accounting (:mod:`repro.docstore.persistence`).
"""

from repro.docstore.aggregation import (
    AggregationPipeline,
    top_k_documents,
    top_k_tagged,
)
from repro.docstore.collection import Collection
from repro.docstore.database import Client, Database
from repro.docstore.documents import ObjectId, deep_get, deep_set
from repro.docstore.executor import (
    add_fanout_observer,
    executor_width,
    remove_fanout_observer,
    scatter,
    scatter_first,
    shutdown_executor,
)
from repro.docstore.matching import matches
from repro.docstore.sharding import HashSharder, RangeSharder, ShardedCollection

__all__ = [
    "AggregationPipeline",
    "Collection",
    "Client",
    "Database",
    "ObjectId",
    "deep_get",
    "deep_set",
    "matches",
    "HashSharder",
    "RangeSharder",
    "ShardedCollection",
    "add_fanout_observer",
    "executor_width",
    "remove_fanout_observer",
    "scatter",
    "scatter_first",
    "shutdown_executor",
    "top_k_documents",
    "top_k_tagged",
]

"""The aggregation pipeline engine.

A pipeline is a list of stage documents streamed over a collection:

* ``{"$match": <query>}`` — filter with the full query language; when it is
  the *first* stage the engine pushes it down onto the collection's indexes,
  which is exactly the optimization the paper highlights ("it was mindful to
  use the $match stage first to minimize the amount of data being passed
  through all the latter stages").
* ``{"$project": {field: 0|1 | expression}}`` — prune or compute fields.
* ``{"$addFields": {field: expression}}`` — add computed fields.
* ``{"$function": {"name": ..., "args": [paths/exprs], "as": field}}`` —
  call a registered Python function per document (the paper's custom JS
  ranking functions).
* ``{"$sort": {field: 1|-1}}``, ``{"$skip": n}``, ``{"$limit": n}``,
  ``{"$count": name}``, ``{"$unwind": "$path"}``,
  ``{"$group": {"_id": expr, out: {"$sum"|"$avg"|"$min"|"$max"|"$push"|
  "$addToSet"|"$first"|"$last": expr}}}``.

Expressions support ``"$field"`` path references, literals, and operator
documents ``{"$add": [...]}, {"$multiply": [...]}, {"$concat": [...]},
{"$size": expr}, {"$toLower"/"$toUpper": expr}, {"$cond": [if, then, else]},
{"$literal": x}, {"$ifNull": [expr, fallback]}``.

Every run returns both the result documents and per-stage statistics
(documents in/out, wall time), which the E3 benchmark uses to show the
cost of mis-ordered stages.
"""

from __future__ import annotations

import heapq
import time
from dataclasses import dataclass, field
from typing import Any, Callable, Iterable

from repro.docstore.collection import Collection, apply_projection, _sort_key
from repro.docstore.documents import deep_copy_document, deep_get, deep_set
from repro.docstore.functions import FunctionRegistry, default_registry
from repro.docstore.matching import matches
from repro.errors import AggregationError

_MISSING = object()

#: Every stage name the pipeline engine implements (the validator in
#: :mod:`repro.analysis.pipeline_check` checks against this same set, so
#: the two can never drift apart).
STAGE_NAMES = frozenset(
    {"$match", "$project", "$addFields", "$function", "$sort", "$skip",
     "$limit", "$count", "$unwind", "$group", "$lookup", "$facet",
     "$sample", "$bucket", "$sortByCount", "$replaceRoot"}
)

#: Every expression operator :func:`_evaluate_operator` implements.
EXPRESSION_OPERATORS = frozenset(
    {"$literal", "$add", "$subtract", "$multiply", "$divide", "$concat",
     "$size", "$toLower", "$toUpper", "$cond", "$ifNull", "$eq", "$ne",
     "$gt", "$gte", "$lt", "$lte", "$in", "$arrayElemAt", "$filter",
     "$map", "$minExpr", "$maxExpr", "$function"}
)

#: Every accumulator ``$group``/``$bucket`` outputs support.
ACCUMULATORS = frozenset(
    {"$sum", "$avg", "$min", "$max", "$push", "$addToSet", "$first",
     "$last", "$count"}
)


class _Descending:
    """Inverts comparisons so a descending field fits an ascending key."""

    __slots__ = ("key",)

    def __init__(self, key: Any) -> None:
        self.key = key

    def __lt__(self, other: "_Descending") -> bool:
        return other.key < self.key

    def __eq__(self, other: object) -> bool:
        return isinstance(other, _Descending) and other.key == self.key


def sort_key_function(spec: dict[str, int]
                      ) -> Callable[[tuple[Any, dict[str, Any]]], tuple]:
    """A composite key over ``(tag, document)`` pairs matching ``$sort``.

    A stable multi-pass ``$sort`` (last field first) orders exactly like
    a single sort on the lexicographic composite key with the original
    position as the final tie-break — which is what this key encodes, so
    a bounded heap (``heapq.nsmallest``) reproduces the full sort's
    leading ``k`` documents byte-for-byte.  ``tag`` is any comparable
    position marker (an int, or ``(shard, offset)`` for merged partials).
    """
    fields = list(spec.items())

    def key(pair: tuple[Any, dict[str, Any]]) -> tuple:
        tag, document = pair
        parts: list[Any] = []
        for path, direction in fields:
            part = _sort_key(deep_get(document, path))
            parts.append(_Descending(part) if direction < 0 else part)
        parts.append(tag)
        return tuple(parts)

    return key


def top_k_tagged(tagged: Iterable[tuple[Any, dict[str, Any]]],
                 spec: dict[str, int],
                 k: int) -> list[tuple[Any, dict[str, Any]]]:
    """The leading ``k`` of a stable ``$sort`` over position-tagged docs.

    O(n log k) instead of the full sort's O(n log n); the serving tier's
    top-k retrieval path and the sharded scatter-gather merge both build
    on this primitive (per-shard bounded heaps, then one bounded merge).
    """
    if k <= 0:
        return []
    return heapq.nsmallest(k, tagged, key=sort_key_function(spec))


def top_k_documents(documents: Iterable[dict[str, Any]],
                    spec: dict[str, int], k: int) -> list[dict[str, Any]]:
    """The first ``k`` documents ``{"$sort": spec}`` would emit."""
    return [doc for _, doc in top_k_tagged(enumerate(documents), spec, k)]


@dataclass
class StageStats:
    """Per-stage execution statistics."""

    stage: str
    docs_in: int = 0
    docs_out: int = 0
    seconds: float = 0.0


@dataclass
class AggregationResult:
    """Pipeline output plus the statistics of every stage."""

    documents: list[dict[str, Any]]
    stages: list[StageStats] = field(default_factory=list)

    def __iter__(self):
        return iter(self.documents)

    def __len__(self) -> int:
        return len(self.documents)

    @property
    def total_seconds(self) -> float:
        return sum(stage.seconds for stage in self.stages)


def evaluate_expression(expression: Any, document: dict[str, Any],
                        registry: FunctionRegistry) -> Any:
    """Evaluate an aggregation expression against one document."""
    if isinstance(expression, str) and expression.startswith("$"):
        return deep_get(document, expression[1:])
    if isinstance(expression, dict):
        if len(expression) == 1:
            op, operand = next(iter(expression.items()))
            if op.startswith("$"):
                return _evaluate_operator(op, operand, document, registry)
        return {
            key: evaluate_expression(value, document, registry)
            for key, value in expression.items()
        }
    if isinstance(expression, list):
        return [
            evaluate_expression(item, document, registry)
            for item in expression
        ]
    return expression


def _numbers(values: Iterable[Any]) -> list[float]:
    result = []
    for value in values:
        if value is None:
            value = 0
        if not isinstance(value, (int, float)) or isinstance(value, bool):
            raise AggregationError(f"expected number, got {value!r}")
        result.append(value)
    return result


def _evaluate_operator(op: str, operand: Any, document: dict[str, Any],
                       registry: FunctionRegistry) -> Any:
    def ev(expr: Any) -> Any:
        return evaluate_expression(expr, document, registry)

    if op == "$literal":
        return operand
    if op == "$add":
        return sum(_numbers(ev(item) for item in operand))
    if op == "$subtract":
        left, right = (ev(item) for item in operand)
        return left - right
    if op == "$multiply":
        product = 1.0
        for number in _numbers(ev(item) for item in operand):
            product *= number
        return product
    if op == "$divide":
        left, right = _numbers(ev(item) for item in operand)
        if right == 0:
            raise AggregationError("$divide by zero")
        return left / right
    if op == "$concat":
        parts = [ev(item) for item in operand]
        if any(part is None for part in parts):
            return None
        return "".join(str(part) for part in parts)
    if op == "$size":
        value = ev(operand)
        if not isinstance(value, list):
            raise AggregationError("$size requires an array")
        return len(value)
    if op == "$toLower":
        value = ev(operand)
        return "" if value is None else str(value).lower()
    if op == "$toUpper":
        value = ev(operand)
        return "" if value is None else str(value).upper()
    if op == "$cond":
        if isinstance(operand, dict):
            branches = [operand["if"], operand["then"], operand["else"]]
        else:
            branches = operand
        condition, then_expr, else_expr = branches
        return ev(then_expr) if ev(condition) else ev(else_expr)
    if op == "$ifNull":
        value = ev(operand[0])
        return ev(operand[1]) if value is None else value
    if op == "$eq":
        left, right = (ev(item) for item in operand)
        return left == right
    if op == "$ne":
        left, right = (ev(item) for item in operand)
        return left != right
    if op == "$gt":
        left, right = (ev(item) for item in operand)
        return left is not None and right is not None and left > right
    if op == "$gte":
        left, right = (ev(item) for item in operand)
        return left is not None and right is not None and left >= right
    if op == "$lt":
        left, right = (ev(item) for item in operand)
        return left is not None and right is not None and left < right
    if op == "$lte":
        left, right = (ev(item) for item in operand)
        return left is not None and right is not None and left <= right
    if op == "$in":
        needle, haystack = (ev(item) for item in operand)
        if not isinstance(haystack, list):
            raise AggregationError("$in expression requires an array")
        return needle in haystack
    if op == "$arrayElemAt":
        array, index = (ev(item) for item in operand)
        if not isinstance(array, list):
            raise AggregationError("$arrayElemAt requires an array")
        if not -len(array) <= index < len(array):
            return None
        return array[int(index)]
    if op == "$filter":
        array = ev(operand["input"])
        if not isinstance(array, list):
            raise AggregationError("$filter requires an array input")
        variable = operand.get("as", "this")
        condition = operand["cond"]
        return [
            item for item in array
            if _eval_with_variable(condition, document, variable, item,
                                   registry)
        ]
    if op == "$map":
        array = ev(operand["input"])
        if not isinstance(array, list):
            raise AggregationError("$map requires an array input")
        variable = operand.get("as", "this")
        body = operand["in"]
        return [
            _eval_with_variable(body, document, variable, item, registry)
            for item in array
        ]
    if op == "$minExpr":
        values = [v for v in (ev(item) for item in operand)
                  if v is not None]
        return min(values) if values else None
    if op == "$maxExpr":
        values = [v for v in (ev(item) for item in operand)
                  if v is not None]
        return max(values) if values else None
    if op == "$function":
        name = operand["name"]
        args = [ev(arg) for arg in operand.get("args", [])]
        return registry.get(name)(*args)
    raise AggregationError(f"unknown expression operator {op}")


def _eval_with_variable(expression: Any, document: dict[str, Any],
                        variable: str, value: Any,
                        registry: FunctionRegistry) -> Any:
    """Evaluate with ``$$<variable>`` references bound to ``value``.

    Implements the variable scoping $filter/$map need: the expression
    may reference the loop item as ``"$$this"`` (or the custom ``as``
    name), possibly with a trailing path (``"$$this.rate"``).
    """
    marker = f"$${variable}"

    def substitute(expr: Any) -> Any:
        if isinstance(expr, str) and expr.startswith(marker):
            remainder = expr[len(marker):]
            if not remainder:
                return {"$literal": value}
            if remainder.startswith("."):
                return {"$literal": deep_get(value, remainder[1:])}
        if isinstance(expr, dict):
            return {key: substitute(item) for key, item in expr.items()}
        if isinstance(expr, list):
            return [substitute(item) for item in expr]
        return expr

    return evaluate_expression(substitute(expression), document, registry)


class AggregationPipeline:
    """Compile-once, run-many pipeline over a collection or document list."""

    _STAGE_NAMES = STAGE_NAMES

    def __init__(self, stages: list[dict[str, Any]],
                 registry: FunctionRegistry | None = None) -> None:
        self.stages = stages
        self.registry = registry or default_registry
        for stage in stages:
            if len(stage) != 1:
                raise AggregationError(
                    f"each stage must have exactly one key: {stage!r}"
                )
            name = next(iter(stage))
            if name not in self._STAGE_NAMES:
                raise AggregationError(f"unknown stage {name!r}")

    # -- execution -----------------------------------------------------------

    def run(self, source: Collection | Iterable[dict[str, Any]]
            ) -> AggregationResult:
        """Execute the pipeline and collect per-stage statistics."""
        stats: list[StageStats] = []
        documents: list[dict[str, Any]]
        stages = self.stages

        if isinstance(source, Collection):
            # $match pushdown: a leading $match runs against the collection
            # (using its indexes) instead of a full materialized scan.
            if stages and "$match" in stages[0]:
                started = time.perf_counter()
                docs_in = len(source)
                documents = source.find(stages[0]["$match"]).to_list()
                stats.append(StageStats(
                    "$match(indexed)", docs_in, len(documents),
                    time.perf_counter() - started,
                ))
                stages = stages[1:]
            else:
                documents = list(source.all_documents())
        else:
            documents = [deep_copy_document(doc) for doc in source]

        for stage in stages:
            name, spec = next(iter(stage.items()))
            started = time.perf_counter()
            docs_in = len(documents)
            documents = getattr(self, "_stage_" + name[1:])(documents, spec)
            stats.append(StageStats(
                name, docs_in, len(documents),
                time.perf_counter() - started,
            ))
        return AggregationResult(documents, stats)

    # -- stages ---------------------------------------------------------------

    def _stage_match(self, documents: list[dict[str, Any]],
                     spec: dict[str, Any]) -> list[dict[str, Any]]:
        return [doc for doc in documents if matches(doc, spec)]

    def _stage_project(self, documents: list[dict[str, Any]],
                       spec: dict[str, Any]) -> list[dict[str, Any]]:
        simple = all(value in (0, 1, True, False) for value in spec.values())
        if simple:
            return [apply_projection(doc, spec) for doc in documents]
        results = []
        for document in documents:
            projected: dict[str, Any] = {}
            if spec.get("_id", 1) and "_id" in document:
                projected["_id"] = document["_id"]
            for path, expression in spec.items():
                if path == "_id":
                    continue
                if expression in (0, False):
                    continue
                if expression in (1, True):
                    value = deep_get(document, path, _MISSING)
                    if value is not _MISSING:
                        deep_set(projected, path, value)
                    continue
                deep_set(
                    projected, path,
                    evaluate_expression(expression, document, self.registry),
                )
            results.append(projected)
        return results

    def _stage_addFields(self, documents: list[dict[str, Any]],
                         spec: dict[str, Any]) -> list[dict[str, Any]]:
        for document in documents:
            for path, expression in spec.items():
                deep_set(
                    document, path,
                    evaluate_expression(expression, document, self.registry),
                )
        return documents

    def _stage_function(self, documents: list[dict[str, Any]],
                        spec: dict[str, Any]) -> list[dict[str, Any]]:
        name = spec.get("name")
        if not name:
            raise AggregationError("$function stage requires a 'name'")
        function = self.registry.get(name)
        output = spec.get("as", name)
        arg_exprs = spec.get("args", ["$$ROOT"])
        for document in documents:
            args = [
                document if expr == "$$ROOT"
                else evaluate_expression(expr, document, self.registry)
                for expr in arg_exprs
            ]
            deep_set(document, output, function(*args))
        return documents

    def _stage_sort(self, documents: list[dict[str, Any]],
                    spec: dict[str, Any]) -> list[dict[str, Any]]:
        for path, direction in reversed(list(spec.items())):
            documents = sorted(
                documents,
                key=lambda doc: _sort_key(deep_get(doc, path)),
                reverse=direction < 0,
            )
        return documents

    def _stage_skip(self, documents: list[dict[str, Any]],
                    spec: int) -> list[dict[str, Any]]:
        return documents[max(0, int(spec)):]

    def _stage_limit(self, documents: list[dict[str, Any]],
                     spec: int) -> list[dict[str, Any]]:
        return documents[: max(0, int(spec))]

    def _stage_count(self, documents: list[dict[str, Any]],
                     spec: str) -> list[dict[str, Any]]:
        return [{str(spec): len(documents)}]

    def _stage_unwind(self, documents: list[dict[str, Any]],
                      spec: str | dict[str, Any]) -> list[dict[str, Any]]:
        if isinstance(spec, dict):
            path = spec["path"]
            keep_empty = spec.get("preserveNullAndEmptyArrays", False)
        else:
            path = spec
            keep_empty = False
        if not path.startswith("$"):
            raise AggregationError("$unwind path must start with '$'")
        path = path[1:]
        results = []
        for document in documents:
            value = deep_get(document, path, _MISSING)
            if value is _MISSING or value is None or value == []:
                if keep_empty:
                    results.append(document)
                continue
            if not isinstance(value, list):
                results.append(document)
                continue
            for item in value:
                clone = deep_copy_document(document)
                deep_set(clone, path, item)
                results.append(clone)
        return results

    def _stage_lookup(self, documents: list[dict[str, Any]],
                      spec: dict[str, Any]) -> list[dict[str, Any]]:
        """Left outer join: ``{"from", "localField", "foreignField", "as"}``.

        ``from`` is a :class:`Collection` or a list of documents (pipelines
        are constructed in code, so passing the object directly mirrors
        how the server resolves a collection name).
        """
        source = spec.get("from")
        local = spec.get("localField")
        foreign = spec.get("foreignField")
        output = spec.get("as")
        if source is None or not local or not foreign or not output:
            raise AggregationError(
                "$lookup requires from/localField/foreignField/as"
            )
        if isinstance(source, Collection):
            foreign_docs = list(source.all_documents())
        else:
            foreign_docs = [deep_copy_document(doc) for doc in source]
        by_key: dict[Any, list[dict[str, Any]]] = {}
        for doc in foreign_docs:
            key = _freeze_key(deep_get(doc, foreign))
            by_key.setdefault(key, []).append(doc)
        for document in documents:
            key = _freeze_key(deep_get(document, local))
            deep_set(document, output, [
                deep_copy_document(doc) for doc in by_key.get(key, [])
            ])
        return documents

    def _stage_facet(self, documents: list[dict[str, Any]],
                     spec: dict[str, Any]) -> list[dict[str, Any]]:
        """Run several sub-pipelines over the same input; one output doc."""
        result: dict[str, Any] = {}
        for name, stages in spec.items():
            sub = AggregationPipeline(stages, self.registry)
            result[name] = sub.run(
                [deep_copy_document(doc) for doc in documents]
            ).documents
        return [result]

    def _stage_sample(self, documents: list[dict[str, Any]],
                      spec: dict[str, Any]) -> list[dict[str, Any]]:
        """Uniform sample without replacement: ``{"size": n[, "seed": s]}``."""
        import numpy as np  # local: the only stage needing an RNG

        size = int(spec.get("size", 0))
        if size <= 0:
            raise AggregationError("$sample requires a positive size")
        if size >= len(documents):
            return documents
        rng = np.random.default_rng(spec.get("seed", 0))
        chosen = rng.choice(len(documents), size=size, replace=False)
        return [documents[int(i)] for i in sorted(chosen)]

    def _stage_bucket(self, documents: list[dict[str, Any]],
                      spec: dict[str, Any]) -> list[dict[str, Any]]:
        """Histogram by boundaries, with optional accumulator outputs."""
        boundaries = spec.get("boundaries")
        if not boundaries or sorted(boundaries) != list(boundaries):
            raise AggregationError("$bucket requires sorted boundaries")
        group_by = spec.get("groupBy")
        default = spec.get("default", _MISSING)
        output_spec = spec.get("output", {"count": {"$count": {}}})
        members: dict[Any, list[dict[str, Any]]] = {}
        for document in documents:
            value = evaluate_expression(group_by, document, self.registry)
            bucket: Any = _MISSING
            if value is not None:
                for lo, hi in zip(boundaries, boundaries[1:]):
                    try:
                        if lo <= value < hi:
                            bucket = lo
                            break
                    except TypeError:
                        break
            if bucket is _MISSING:
                if default is _MISSING:
                    raise AggregationError(
                        f"value {value!r} outside $bucket boundaries and "
                        "no default given"
                    )
                bucket = default
            members.setdefault(bucket, []).append(document)
        results = []
        for bucket in sorted(members, key=_sort_key):
            out: dict[str, Any] = {"_id": bucket}
            for field_name, acc_spec in output_spec.items():
                acc, expr = next(iter(acc_spec.items()))
                out[field_name] = self._accumulate(
                    acc, expr, members[bucket]
                )
            results.append(out)
        return results

    def _stage_sortByCount(self, documents: list[dict[str, Any]],
                           spec: Any) -> list[dict[str, Any]]:
        """Group by an expression and sort by descending count."""
        counts: dict[Any, tuple[Any, int]] = {}
        for document in documents:
            value = evaluate_expression(spec, document, self.registry)
            frozen = _freeze_key(value)
            raw, count = counts.get(frozen, (value, 0))
            counts[frozen] = (raw, count + 1)
        ranked = sorted(
            counts.values(),
            key=lambda pair: (-pair[1], _sort_key(pair[0])),
        )
        return [{"_id": value, "count": count} for value, count in ranked]

    def _stage_replaceRoot(self, documents: list[dict[str, Any]],
                           spec: dict[str, Any]) -> list[dict[str, Any]]:
        """Promote a sub-document to the root: ``{"newRoot": expr}``."""
        new_root = spec.get("newRoot")
        if new_root is None:
            raise AggregationError("$replaceRoot requires newRoot")
        results = []
        for document in documents:
            value = evaluate_expression(new_root, document, self.registry)
            if not isinstance(value, dict):
                raise AggregationError(
                    f"$replaceRoot produced a non-document: {value!r}"
                )
            results.append(value)
        return results

    _ACCUMULATORS = ACCUMULATORS

    def _stage_group(self, documents: list[dict[str, Any]],
                     spec: dict[str, Any]) -> list[dict[str, Any]]:
        if "_id" not in spec:
            raise AggregationError("$group requires an _id expression")
        id_expr = spec["_id"]
        groups: dict[Any, dict[str, Any]] = {}
        raw_keys: dict[Any, Any] = {}
        members: dict[Any, list[dict[str, Any]]] = {}
        for document in documents:
            key_value = (
                None if id_expr is None
                else evaluate_expression(id_expr, document, self.registry)
            )
            frozen = _freeze_key(key_value)
            if frozen not in groups:
                groups[frozen] = {"_id": key_value}
                raw_keys[frozen] = key_value
                members[frozen] = []
            members[frozen].append(document)
        for frozen, docs in members.items():
            out = groups[frozen]
            for out_field, acc_spec in spec.items():
                if out_field == "_id":
                    continue
                if not isinstance(acc_spec, dict) or len(acc_spec) != 1:
                    raise AggregationError(
                        f"accumulator for {out_field!r} must be a single-key "
                        "document"
                    )
                acc, expr = next(iter(acc_spec.items()))
                if acc not in self._ACCUMULATORS:
                    raise AggregationError(f"unknown accumulator {acc}")
                out[out_field] = self._accumulate(acc, expr, docs)
        return list(groups.values())

    def _accumulate(self, acc: str, expr: Any,
                    documents: list[dict[str, Any]]) -> Any:
        values = [
            evaluate_expression(expr, document, self.registry)
            for document in documents
        ]
        if acc == "$count":
            return len(documents)
        if acc == "$sum":
            return sum(_numbers(v for v in values if v is not None))
        if acc == "$avg":
            numbers = _numbers(v for v in values if v is not None)
            return sum(numbers) / len(numbers) if numbers else None
        if acc == "$min":
            present = [v for v in values if v is not None]
            return min(present) if present else None
        if acc == "$max":
            present = [v for v in values if v is not None]
            return max(present) if present else None
        if acc == "$push":
            return values
        if acc == "$addToSet":
            unique: list[Any] = []
            for value in values:
                if value not in unique:
                    unique.append(value)
            return unique
        if acc == "$first":
            return values[0] if values else None
        if acc == "$last":
            return values[-1] if values else None
        raise AggregationError(f"unknown accumulator {acc}")


def _freeze_key(value: Any) -> Any:
    if isinstance(value, dict):
        return tuple(sorted((k, _freeze_key(v)) for k, v in value.items()))
    if isinstance(value, list):
        return tuple(_freeze_key(item) for item in value)
    return value


def aggregate(source: Collection | Iterable[dict[str, Any]],
              stages: list[dict[str, Any]],
              registry: FunctionRegistry | None = None) -> AggregationResult:
    """One-shot pipeline execution convenience wrapper."""
    return AggregationPipeline(stages, registry).run(source)

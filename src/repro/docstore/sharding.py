"""Sharding: hash/range shard-key routing over multiple collections.

The paper's back end is a *sharded* MongoDB cluster (Section 2, "Storage").
:class:`ShardedCollection` reproduces the behaviour the system depends on:

* deterministic shard-key routing for writes,
* targeted reads when a query pins the shard key, scatter-gather otherwise
  — with the per-shard work fanned out **concurrently** on the shared
  :mod:`repro.docstore.executor` pool and merged in shard order, exactly
  as a mongos router scatter-gathers,
* aggregation pipelines whose per-document prefix (``$match`` /
  ``$project`` / ``$addFields`` / ``$function``) runs per shard in
  parallel, with ranked (``$sort`` + ``$limit``) results merged through
  a bounded heap instead of a full re-sort,
* per-shard storage accounting (the E11 experiment reports shard skew),
* rebalancing when shards are added.
"""

from __future__ import annotations

import hashlib
import json
import os
import time
from typing import Any, Iterable, Iterator

from repro.docstore.aggregation import (
    AggregationPipeline,
    AggregationResult,
    StageStats,
    top_k_tagged,
)
from repro.docstore.collection import Collection, Cursor
from repro.docstore.documents import deep_get
from repro.docstore.executor import FanoutBudget, scatter, scatter_first
from repro.docstore.functions import FunctionRegistry
from repro.docstore.matching import equality_constraints
from repro.errors import ShardingError

_MISSING = object()

#: Environment variable enabling pre-flight pipeline validation by
#: default (``aggregate(..., validate=...)`` overrides per call).
VALIDATE_ENV = "REPRO_VALIDATE_PIPELINES"

#: Stages operating on one document at a time — safe to push down to the
#: shards and run concurrently (the scatter half of scatter-gather).
_PER_DOCUMENT_STAGES = frozenset(
    {"$match", "$project", "$addFields", "$function"}
)


def _validate_by_default() -> bool:
    return os.environ.get(VALIDATE_ENV, "") == "1"


class HashSharder:
    """Route documents to shards by a stable hash of the shard-key value."""

    def __init__(self, num_shards: int) -> None:
        if num_shards < 1:
            raise ShardingError("need at least one shard")
        self.num_shards = num_shards

    def shard_for(self, key_value: Any) -> int:
        payload = json.dumps(key_value, default=str, sort_keys=True)
        digest = hashlib.sha1(payload.encode("utf-8")).digest()
        return int.from_bytes(digest[:8], "big") % self.num_shards

    def with_shards(self, num_shards: int) -> "HashSharder":
        return HashSharder(num_shards)


class RangeSharder:
    """Route documents to shards by ordered split points.

    ``boundaries`` are the upper-exclusive split values; ``len(boundaries)+1``
    shards result.  Values must be mutually comparable with the boundaries.
    """

    def __init__(self, boundaries: list[Any]) -> None:
        if sorted(boundaries) != list(boundaries):
            raise ShardingError("range boundaries must be sorted")
        self.boundaries = list(boundaries)
        self.num_shards = len(boundaries) + 1

    def shard_for(self, key_value: Any) -> int:
        for index, boundary in enumerate(self.boundaries):
            try:
                if key_value < boundary:
                    return index
            except TypeError as exc:
                raise ShardingError(
                    f"shard-key value {key_value!r} not comparable with "
                    f"boundary {boundary!r}"
                ) from exc
        return len(self.boundaries)

    def with_shards(self, num_shards: int) -> "RangeSharder":
        raise ShardingError(
            "range sharders cannot be resized automatically; supply new "
            "boundaries instead"
        )


class ShardedCollection:
    """A collection transparently partitioned over N shard collections."""

    def __init__(self, name: str, shard_key: str,
                 sharder: HashSharder | RangeSharder | None = None,
                 num_shards: int = 4) -> None:
        self.name = name
        self.shard_key = shard_key
        self.sharder = sharder or HashSharder(num_shards)
        self.shards: list[Collection] = [
            Collection(f"{name}.shard{i}")
            for i in range(self.sharder.num_shards)
        ]
        self._index_specs: list[tuple[str, bool]] = []
        self._text_index_paths: list[str] | None = None
        self._version_offset = 0

    # -- versioning -------------------------------------------------------

    @property
    def version(self) -> int:
        """Monotonic mutation counter across every shard.

        The sum of the per-shard counters plus an offset that keeps the
        value monotonic through :meth:`rebalance` (which rebuilds the
        shard list) and :meth:`advance_version` (restore-from-disk).
        """
        return self._version_offset + sum(
            shard.version for shard in self.shards
        )

    def advance_version(self, floor: int) -> None:
        """Raise the version to at least ``floor`` (never lowers it)."""
        current = self.version
        if current < floor:
            self._version_offset += floor - current

    # -- routing ----------------------------------------------------------

    def _route(self, document: dict[str, Any]) -> Collection:
        key_value = deep_get(document, self.shard_key, _MISSING)
        if key_value is _MISSING:
            raise ShardingError(
                f"document missing shard key {self.shard_key!r}"
            )
        return self.shards[self.sharder.shard_for(key_value)]

    def _target_shards(self, query: dict[str, Any]) -> list[Collection]:
        """Targeted routing when the query pins the shard key, else all."""
        constraints = equality_constraints(query)
        if self.shard_key in constraints:
            value = constraints[self.shard_key]
            return [self.shards[self.sharder.shard_for(value)]]
        return self.shards

    # -- index management ----------------------------------------------------

    def create_index(self, path: str, unique: bool = False) -> None:
        """Create a hash index on every shard.

        Uniqueness is only enforced per shard unless the index is on the
        shard key itself — the same constraint real sharded MongoDB has.
        """
        if unique and path != self.shard_key and path != "_id":
            raise ShardingError(
                "unique indexes must include the shard key"
            )
        self._index_specs.append((path, unique))
        for shard in self.shards:
            shard.create_index(path, unique=unique)

    def create_text_index(self, paths: Iterable[str]) -> None:
        self._text_index_paths = list(paths)
        for shard in self.shards:
            shard.create_text_index(self._text_index_paths)

    # -- writes -------------------------------------------------------------

    def insert_one(self, document: dict[str, Any]) -> Any:
        return self._route(document).insert_one(document)

    def insert_many(self, documents: Iterable[dict[str, Any]]) -> list[Any]:
        """Route a batch by grouping per target shard, then bulk-insert.

        One ``Collection.insert_many`` per touched shard (fanned out
        concurrently) instead of one routed ``insert_one`` per document.
        A document missing the shard key keeps its per-document error
        semantics: every document *before* it in the batch is inserted,
        then :class:`ShardingError` is raised.  Returned ids are in the
        original batch order.
        """
        documents = list(documents)
        groups: dict[int, list[tuple[int, dict[str, Any]]]] = {}
        routing_error: ShardingError | None = None
        for position, document in enumerate(documents):
            key_value = deep_get(document, self.shard_key, _MISSING)
            if key_value is _MISSING:
                routing_error = ShardingError(
                    f"document missing shard key {self.shard_key!r}"
                )
                break
            shard_index = self.sharder.shard_for(key_value)
            groups.setdefault(shard_index, []).append((position, document))

        ids: dict[int, Any] = {}

        def insert_group(shard_index: int) -> None:
            positions = [pos for pos, _ in groups[shard_index]]
            batch = [doc for _, doc in groups[shard_index]]
            for position, doc_id in zip(
                positions, self.shards[shard_index].insert_many(batch)
            ):
                ids[position] = doc_id

        scatter([
            lambda index=shard_index: insert_group(index)
            for shard_index in sorted(groups)
        ])
        if routing_error is not None:
            raise routing_error
        return [ids[position] for position in sorted(ids)]

    def delete_many(self, query: dict[str, Any]) -> int:
        return sum(scatter([
            lambda s=shard: s.delete_many(query)
            for shard in self._target_shards(query)
        ]))

    def update_many(self, query: dict[str, Any],
                    update: dict[str, Any]) -> int:
        return sum(scatter([
            lambda s=shard: s.update_many(query, update)
            for shard in self._target_shards(query)
        ]))

    # -- reads -----------------------------------------------------------

    def find(self, query: dict[str, Any] | None = None,
             projection: dict[str, int] | None = None,
             budget: FanoutBudget | None = None) -> Cursor:
        """Scatter-gather (or targeted) find across shards.

        Per-shard scans run concurrently on the shared executor; the
        partials are concatenated in shard order, so results are
        identical to a serial shard-by-shard visit.  ``budget`` (or the
        caller's ambient :func:`~repro.docstore.executor.budget_scope`)
        caps this request's concurrent per-shard tasks.
        """
        query = query or {}
        partials = scatter([
            lambda s=shard: s.find(query).to_list()
            for shard in self._target_shards(query)
        ], budget=budget)
        documents = [doc for partial in partials for doc in partial]
        cursor = Cursor(documents)
        if projection is not None:
            cursor.project(projection)
        return cursor

    def find_one(self, query: dict[str, Any] | None = None
                 ) -> dict[str, Any] | None:
        """First matching document; non-targeted lookups short-circuit.

        A scatter-gather ``find_one`` races every shard and takes the
        first shard to report a hit (completed-first iteration); the
        remaining queued scans are cancelled rather than run to
        completion.
        """
        shards = self._target_shards(query or {})
        if len(shards) == 1:
            return shards[0].find_one(query)
        return scatter_first(
            [lambda s=shard: s.find_one(query) for shard in shards],
            accept=lambda result: result is not None,
        )

    def count(self, query: dict[str, Any] | None = None,
              budget: FanoutBudget | None = None) -> int:
        if not query:
            return sum(len(shard) for shard in self.shards)
        return sum(scatter([
            lambda s=shard: s.count(query)
            for shard in self._target_shards(query)
        ], budget=budget))

    # -- aggregation -----------------------------------------------------

    def aggregate(self, stages: list[dict[str, Any]],
                  registry: FunctionRegistry | None = None,
                  validate: bool | None = None,
                  budget: FanoutBudget | None = None) -> AggregationResult:
        """Run an aggregation pipeline with parallel shard fan-out.

        The leading run of per-document stages (``$match`` /
        ``$project`` / ``$addFields`` / ``$function``) executes on every
        shard concurrently — including the indexed ``$match`` pushdown
        each shard applies locally.  When the remainder is a ranked page
        (``$sort`` then ``$limit``, optionally with a ``$skip``), the
        per-shard partials are reduced to bounded heaps of the top
        ``skip+limit`` candidates and merged with one more bounded heap,
        so no full sort of the match set ever happens; results are
        byte-identical to the serial pipeline (stable-sort tie order
        included).  Any other remainder runs serially on the gathered
        partials.

        ``validate=True`` (or ``REPRO_VALIDATE_PIPELINES=1``) runs the
        pre-flight validator first, so a malformed pipeline raises
        :class:`~repro.analysis.pipeline_check.PipelineValidationError`
        *before* any shard fan-out instead of mid-scatter on whichever
        shard happens to run first.

        ``budget`` caps how many per-shard tasks run concurrently for
        this request (the serving tier's adaptive load controller sizes
        one per request; ``None`` defers to the ambient
        :func:`~repro.docstore.executor.budget_scope`, if any).
        """
        if _validate_by_default() if validate is None else validate:
            from repro.analysis.pipeline_check import ensure_valid_pipeline

            ensure_valid_pipeline(stages, registry)
        pipeline = AggregationPipeline(stages, registry)
        if len(self.shards) == 1:
            return pipeline.run(self.shards[0])

        split = 0
        while split < len(stages) \
                and next(iter(stages[split])) in _PER_DOCUMENT_STAGES:
            split += 1
        prefix, suffix = stages[:split], stages[split:]
        if not prefix:
            return pipeline.run(self._gather_all())

        sort_spec, top_k, consumed = self._ranked_page_plan(suffix)
        prefix_pipeline = AggregationPipeline(prefix, pipeline.registry)

        def run_shard(shard_index: int) -> tuple[
            list[StageStats], list[tuple[tuple[int, int], dict[str, Any]]]
        ]:
            partial = prefix_pipeline.run(self.shards[shard_index])
            tagged = [
                ((shard_index, position), document)
                for position, document in enumerate(partial.documents)
            ]
            if sort_spec is not None:
                # Per-shard bounded heap: only the shard's own top
                # skip+limit candidates survive to the merge.
                tagged = top_k_tagged(tagged, sort_spec, top_k)
            return partial.stages, tagged

        shard_results = scatter([
            lambda index=shard_index: run_shard(index)
            for shard_index in range(len(self.shards))
        ], budget=budget)
        stats = _merge_stage_stats([result[0] for result in shard_results])

        if sort_spec is not None:
            started = time.perf_counter()
            candidates = [
                pair for _, tagged in shard_results for pair in tagged
            ]
            total_in = sum(
                partial_stats[-1].docs_out if partial_stats else 0
                for partial_stats, _ in shard_results
            )
            merged = [
                document for _, document
                in top_k_tagged(candidates, sort_spec, top_k)
            ]
            stats.append(StageStats(
                "$sort(top-k merge)", total_in, len(merged),
                time.perf_counter() - started,
            ))
            remainder = suffix[consumed:]
            if not remainder:
                return AggregationResult(merged, stats)
            rest = AggregationPipeline(
                remainder, pipeline.registry
            ).run(merged)
            return AggregationResult(rest.documents, stats + rest.stages)

        gathered = [
            document for _, tagged in shard_results
            for _, document in tagged
        ]
        if not suffix:
            return AggregationResult(gathered, stats)
        rest = AggregationPipeline(suffix, pipeline.registry).run(gathered)
        return AggregationResult(rest.documents, stats + rest.stages)

    @staticmethod
    def _ranked_page_plan(suffix: list[dict[str, Any]]
                          ) -> tuple[dict[str, int] | None, int, int]:
        """Detect a ``$sort [$skip] $limit`` head: the top-k merge plan.

        Returns ``(sort_spec, k, stages_consumed)`` where ``k`` is the
        number of leading sorted documents the downstream stages can
        observe (``skip + limit``); ``(None, 0, 0)`` when the suffix is
        not a ranked page.
        """
        if not suffix or "$sort" not in suffix[0]:
            return None, 0, 0
        sort_spec = suffix[0]["$sort"]
        skip = 0
        cursor = 1
        if cursor < len(suffix) and "$skip" in suffix[cursor]:
            skip = max(0, int(suffix[cursor]["$skip"]))
            cursor += 1
        if cursor < len(suffix) and "$limit" in suffix[cursor]:
            limit = max(0, int(suffix[cursor]["$limit"]))
            return sort_spec, skip + limit, 1
        return None, 0, 0

    def all_documents(self) -> Iterator[dict[str, Any]]:
        for shard in self.shards:
            yield from shard.all_documents()

    def _gather_all(self) -> list[dict[str, Any]]:
        """Materialize every document, scanning shards concurrently."""
        partials = scatter([
            lambda s=shard: list(s.all_documents()) for shard in self.shards
        ])
        return [document for partial in partials for document in partial]

    def __len__(self) -> int:
        return sum(len(shard) for shard in self.shards)

    # -- operations ------------------------------------------------------------

    def shard_sizes(self) -> list[int]:
        """Document count per shard — the E11 skew statistic."""
        return [len(shard) for shard in self.shards]

    def shard_storage_bytes(self) -> list[int]:
        """Serialized bytes per shard."""
        return [shard.storage_bytes() for shard in self.shards]

    def storage_bytes(self) -> int:
        return sum(self.shard_storage_bytes())

    def rebalance(self, num_shards: int) -> None:
        """Re-shard all documents onto ``num_shards`` shards.

        Both halves fan out on the executor: the old shards drain
        concurrently, and each new shard bulk-loads its re-routed group
        concurrently (each group touches exactly one target shard, so
        the parallel loads never contend).
        """
        new_sharder = self.sharder.with_shards(num_shards)
        documents = self._gather_all()
        # Fresh shards restart their counters at zero; carry the old total
        # forward (plus one for the rebalance itself) so the collection
        # version never moves backwards.
        version_floor = self.version + 1
        self._version_offset = 0
        self.sharder = new_sharder
        self.shards = [
            Collection(f"{self.name}.shard{i}") for i in range(num_shards)
        ]
        for path, unique in self._index_specs:
            for shard in self.shards:
                shard.create_index(path, unique=unique)
        if self._text_index_paths:
            for shard in self.shards:
                shard.create_text_index(self._text_index_paths)
        groups: dict[int, list[dict[str, Any]]] = {}
        for document in documents:
            key_value = deep_get(document, self.shard_key, _MISSING)
            if key_value is _MISSING:
                raise ShardingError(
                    f"document missing shard key {self.shard_key!r}"
                )
            groups.setdefault(
                self.sharder.shard_for(key_value), []
            ).append(document)
        scatter([
            lambda index=shard_index:
                self.shards[index].insert_many(groups[index])
            for shard_index in sorted(groups)
        ])
        self.advance_version(version_floor)

    @property
    def total_scan_count(self) -> int:
        """Aggregate scan counter across shards (for experiments)."""
        return sum(shard.scan_count for shard in self.shards)


def _merge_stage_stats(per_shard: list[list[StageStats]]
                       ) -> list[StageStats]:
    """Fold per-shard prefix statistics into one entry per stage.

    Document counts sum across shards; ``seconds`` is the slowest
    shard's time — the wall-clock cost of the parallel stage.
    """
    if not per_shard:
        return []
    merged: list[StageStats] = []
    for position, template in enumerate(per_shard[0]):
        stats = [shard_stats[position] for shard_stats in per_shard]
        merged.append(StageStats(
            template.stage,
            sum(stat.docs_in for stat in stats),
            sum(stat.docs_out for stat in stats),
            max(stat.seconds for stat in stats),
        ))
    return merged

"""Sharding: hash/range shard-key routing over multiple collections.

The paper's back end is a *sharded* MongoDB cluster (Section 2, "Storage").
:class:`ShardedCollection` reproduces the behaviour the system depends on:

* deterministic shard-key routing for writes,
* targeted reads when a query pins the shard key, scatter-gather otherwise,
* per-shard storage accounting (the E11 experiment reports shard skew),
* rebalancing when shards are added.
"""

from __future__ import annotations

import hashlib
import json
from typing import Any, Iterable, Iterator

from repro.docstore.collection import Collection, Cursor
from repro.docstore.documents import deep_get
from repro.docstore.matching import equality_constraints
from repro.errors import ShardingError

_MISSING = object()


class HashSharder:
    """Route documents to shards by a stable hash of the shard-key value."""

    def __init__(self, num_shards: int) -> None:
        if num_shards < 1:
            raise ShardingError("need at least one shard")
        self.num_shards = num_shards

    def shard_for(self, key_value: Any) -> int:
        payload = json.dumps(key_value, default=str, sort_keys=True)
        digest = hashlib.sha1(payload.encode("utf-8")).digest()
        return int.from_bytes(digest[:8], "big") % self.num_shards

    def with_shards(self, num_shards: int) -> "HashSharder":
        return HashSharder(num_shards)


class RangeSharder:
    """Route documents to shards by ordered split points.

    ``boundaries`` are the upper-exclusive split values; ``len(boundaries)+1``
    shards result.  Values must be mutually comparable with the boundaries.
    """

    def __init__(self, boundaries: list[Any]) -> None:
        if sorted(boundaries) != list(boundaries):
            raise ShardingError("range boundaries must be sorted")
        self.boundaries = list(boundaries)
        self.num_shards = len(boundaries) + 1

    def shard_for(self, key_value: Any) -> int:
        for index, boundary in enumerate(self.boundaries):
            try:
                if key_value < boundary:
                    return index
            except TypeError as exc:
                raise ShardingError(
                    f"shard-key value {key_value!r} not comparable with "
                    f"boundary {boundary!r}"
                ) from exc
        return len(self.boundaries)

    def with_shards(self, num_shards: int) -> "RangeSharder":
        raise ShardingError(
            "range sharders cannot be resized automatically; supply new "
            "boundaries instead"
        )


class ShardedCollection:
    """A collection transparently partitioned over N shard collections."""

    def __init__(self, name: str, shard_key: str,
                 sharder: HashSharder | RangeSharder | None = None,
                 num_shards: int = 4) -> None:
        self.name = name
        self.shard_key = shard_key
        self.sharder = sharder or HashSharder(num_shards)
        self.shards: list[Collection] = [
            Collection(f"{name}.shard{i}")
            for i in range(self.sharder.num_shards)
        ]
        self._index_specs: list[tuple[str, bool]] = []
        self._text_index_paths: list[str] | None = None
        self._version_offset = 0

    # -- versioning -------------------------------------------------------

    @property
    def version(self) -> int:
        """Monotonic mutation counter across every shard.

        The sum of the per-shard counters plus an offset that keeps the
        value monotonic through :meth:`rebalance` (which rebuilds the
        shard list) and :meth:`advance_version` (restore-from-disk).
        """
        return self._version_offset + sum(
            shard.version for shard in self.shards
        )

    def advance_version(self, floor: int) -> None:
        """Raise the version to at least ``floor`` (never lowers it)."""
        current = self.version
        if current < floor:
            self._version_offset += floor - current

    # -- routing ----------------------------------------------------------

    def _route(self, document: dict[str, Any]) -> Collection:
        key_value = deep_get(document, self.shard_key, _MISSING)
        if key_value is _MISSING:
            raise ShardingError(
                f"document missing shard key {self.shard_key!r}"
            )
        return self.shards[self.sharder.shard_for(key_value)]

    def _target_shards(self, query: dict[str, Any]) -> list[Collection]:
        """Targeted routing when the query pins the shard key, else all."""
        constraints = equality_constraints(query)
        if self.shard_key in constraints:
            value = constraints[self.shard_key]
            return [self.shards[self.sharder.shard_for(value)]]
        return self.shards

    # -- index management ----------------------------------------------------

    def create_index(self, path: str, unique: bool = False) -> None:
        """Create a hash index on every shard.

        Uniqueness is only enforced per shard unless the index is on the
        shard key itself — the same constraint real sharded MongoDB has.
        """
        if unique and path != self.shard_key and path != "_id":
            raise ShardingError(
                "unique indexes must include the shard key"
            )
        self._index_specs.append((path, unique))
        for shard in self.shards:
            shard.create_index(path, unique=unique)

    def create_text_index(self, paths: Iterable[str]) -> None:
        self._text_index_paths = list(paths)
        for shard in self.shards:
            shard.create_text_index(self._text_index_paths)

    # -- writes -------------------------------------------------------------

    def insert_one(self, document: dict[str, Any]) -> Any:
        return self._route(document).insert_one(document)

    def insert_many(self, documents: Iterable[dict[str, Any]]) -> list[Any]:
        return [self.insert_one(document) for document in documents]

    def delete_many(self, query: dict[str, Any]) -> int:
        return sum(
            shard.delete_many(query) for shard in self._target_shards(query)
        )

    def update_many(self, query: dict[str, Any],
                    update: dict[str, Any]) -> int:
        return sum(
            shard.update_many(query, update)
            for shard in self._target_shards(query)
        )

    # -- reads -----------------------------------------------------------

    def find(self, query: dict[str, Any] | None = None,
             projection: dict[str, int] | None = None) -> Cursor:
        """Scatter-gather (or targeted) find across shards."""
        query = query or {}
        documents: list[dict[str, Any]] = []
        for shard in self._target_shards(query):
            documents.extend(shard.find(query).to_list())
        cursor = Cursor(documents)
        if projection is not None:
            cursor.project(projection)
        return cursor

    def find_one(self, query: dict[str, Any] | None = None
                 ) -> dict[str, Any] | None:
        for shard in self._target_shards(query or {}):
            result = shard.find_one(query)
            if result is not None:
                return result
        return None

    def count(self, query: dict[str, Any] | None = None) -> int:
        if not query:
            return sum(len(shard) for shard in self.shards)
        return sum(
            shard.count(query) for shard in self._target_shards(query)
        )

    def all_documents(self) -> Iterator[dict[str, Any]]:
        for shard in self.shards:
            yield from shard.all_documents()

    def __len__(self) -> int:
        return sum(len(shard) for shard in self.shards)

    # -- operations ------------------------------------------------------------

    def shard_sizes(self) -> list[int]:
        """Document count per shard — the E11 skew statistic."""
        return [len(shard) for shard in self.shards]

    def shard_storage_bytes(self) -> list[int]:
        """Serialized bytes per shard."""
        return [shard.storage_bytes() for shard in self.shards]

    def storage_bytes(self) -> int:
        return sum(self.shard_storage_bytes())

    def rebalance(self, num_shards: int) -> None:
        """Re-shard all documents onto ``num_shards`` shards."""
        new_sharder = self.sharder.with_shards(num_shards)
        documents = list(self.all_documents())
        # Fresh shards restart their counters at zero; carry the old total
        # forward (plus one for the rebalance itself) so the collection
        # version never moves backwards.
        version_floor = self.version + 1
        self._version_offset = 0
        self.sharder = new_sharder
        self.shards = [
            Collection(f"{self.name}.shard{i}") for i in range(num_shards)
        ]
        for path, unique in self._index_specs:
            for shard in self.shards:
                shard.create_index(path, unique=unique)
        if self._text_index_paths:
            for shard in self.shards:
                shard.create_text_index(self._text_index_paths)
        for document in documents:
            self._route(document).insert_one(document)
        self.advance_version(version_floor)

    @property
    def total_scan_count(self) -> int:
        """Aggregate scan counter across shards (for experiments)."""
        return sum(shard.scan_count for shard in self.shards)

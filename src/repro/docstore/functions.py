"""``$function`` registry: named Python callables inside pipelines.

The paper's ranking logic is written as custom JavaScript ``$function``
stages inside MongoDB aggregation queries (Section 2.1).  Here those
functions are Python callables; the registry lets pipelines reference them
by name so a pipeline document stays JSON-serializable, exactly as the
paper's pipelines do.
"""

from __future__ import annotations

from typing import Any, Callable

from repro.errors import AggregationError

PipelineFunction = Callable[..., Any]


class FunctionRegistry:
    """Named server-side functions available to ``$function`` stages."""

    def __init__(self) -> None:
        self._functions: dict[str, PipelineFunction] = {}

    def register(self, name: str,
                 function: PipelineFunction | None = None
                 ) -> PipelineFunction | Callable[[PipelineFunction],
                                                  PipelineFunction]:
        """Register ``function`` under ``name``; usable as a decorator."""
        if function is None:
            def decorator(func: PipelineFunction) -> PipelineFunction:
                self._functions[name] = func
                return func
            return decorator
        self._functions[name] = function
        return function

    def get(self, name: str) -> PipelineFunction:
        try:
            return self._functions[name]
        except KeyError:
            raise AggregationError(
                f"unknown $function {name!r}; registered: "
                f"{sorted(self._functions)}"
            ) from None

    def __contains__(self, name: str) -> bool:
        return name in self._functions

    def names(self) -> list[str]:
        return sorted(self._functions)


#: Registry shared by default across pipelines (callers may pass their own).
default_registry = FunctionRegistry()

"""``$function`` registry: named Python callables inside pipelines.

The paper's ranking logic is written as custom JavaScript ``$function``
stages inside MongoDB aggregation queries (Section 2.1).  Here those
functions are Python callables; the registry lets pipelines reference them
by name so a pipeline document stays JSON-serializable, exactly as the
paper's pipelines do.
"""

from __future__ import annotations

from typing import Any, Callable

from repro.errors import AggregationError

PipelineFunction = Callable[..., Any]


class FunctionRegistry:
    """Named server-side functions available to ``$function`` stages."""

    def __init__(self) -> None:
        self._functions: dict[str, PipelineFunction] = {}

    def register(self, name: str,
                 function: PipelineFunction | None = None
                 ) -> PipelineFunction | Callable[[PipelineFunction],
                                                  PipelineFunction]:
        """Register ``function`` under ``name``; usable as a decorator."""
        if function is None:
            def decorator(func: PipelineFunction) -> PipelineFunction:
                self._functions[name] = func
                return func
            return decorator
        self._functions[name] = function
        return function

    def unregister(self, name: str) -> None:
        """Forget ``name`` (no-op when absent) — for per-query functions."""
        self._functions.pop(name, None)

    def get(self, name: str) -> PipelineFunction:
        try:
            return self._functions[name]
        except KeyError:
            raise AggregationError(
                f"unknown $function {name!r}; registered: "
                f"{sorted(self._functions)}"
            ) from None

    def __contains__(self, name: str) -> bool:
        return name in self._functions

    def names(self) -> list[str]:
        return sorted(self._functions)

    def copy(self) -> "FunctionRegistry":
        """An independent registry with the same functions registered."""
        clone = FunctionRegistry()
        clone._functions.update(self._functions)
        return clone

    @classmethod
    def with_defaults(cls) -> "FunctionRegistry":
        """A fresh registry seeded from :data:`default_registry`.

        Each ``Database``/``CovidKG`` gets one of these, so ``$function``
        registrations made inside one system cannot leak into another —
        while functions registered on ``default_registry`` *before* the
        system was created remain visible to it.
        """
        return default_registry.copy()


#: Registry shared by default across pipelines (callers may pass their own).
#: Systems snapshot it at construction via :meth:`with_defaults`; register
#: globally-shared functions here before building systems.
default_registry = FunctionRegistry()

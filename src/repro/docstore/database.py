"""Database / client facade tying collections, shards, and pipelines together.

``Client`` -> ``Database`` -> ``Collection``/``ShardedCollection`` mirrors
the MongoDB driver surface the paper's back end is written against.
"""

from __future__ import annotations

from typing import Any

from repro.docstore.aggregation import (
    AggregationResult,
    _freeze_key as _freeze,
    aggregate,
)
from repro.docstore.collection import Collection
from repro.docstore.functions import FunctionRegistry
from repro.docstore.sharding import HashSharder, RangeSharder, ShardedCollection
from repro.errors import ShardingError


class Database:
    """A named set of collections plus a shared ``$function`` registry.

    Each database gets its *own* registry (seeded from
    ``default_registry`` at construction) unless one is passed in, so
    ``$function`` registrations made through one database never leak
    into another.
    """

    def __init__(self, name: str,
                 registry: FunctionRegistry | None = None) -> None:
        self.name = name
        self.registry = (registry if registry is not None
                         else FunctionRegistry.with_defaults())
        self._collections: dict[str, Collection | ShardedCollection] = {}

    def collection(self, name: str) -> Collection:
        """Get or create an unsharded collection."""
        existing = self._collections.get(name)
        if existing is None:
            existing = Collection(name)
            self._collections[name] = existing
        if not isinstance(existing, Collection):
            raise ShardingError(f"collection {name!r} is sharded")
        return existing

    def sharded_collection(
        self, name: str, shard_key: str,
        sharder: HashSharder | RangeSharder | None = None,
        num_shards: int = 4,
    ) -> ShardedCollection:
        """Get or create a sharded collection."""
        existing = self._collections.get(name)
        if existing is None:
            existing = ShardedCollection(
                name, shard_key, sharder=sharder, num_shards=num_shards
            )
            self._collections[name] = existing
        if not isinstance(existing, ShardedCollection):
            raise ShardingError(f"collection {name!r} is not sharded")
        return existing

    def drop_collection(self, name: str) -> None:
        self._collections.pop(name, None)

    def collection_names(self) -> list[str]:
        return sorted(self._collections)

    #: $group accumulators that can be computed per shard and merged.
    _MERGEABLE = {"$sum", "$count", "$min", "$max", "$push", "$addToSet"}

    def aggregate(self, collection_name: str,
                  stages: list[dict[str, Any]]) -> AggregationResult:
        """Run a pipeline against a collection of this database.

        Sharded collections evaluate the leading ``$match`` per shard
        (shard-local index use).  A following ``$group`` whose
        accumulators are all mergeable ($sum/$count/$min/$max/$push/
        $addToSet) also runs **per shard**, with the partial groups merged
        afterwards — the mongos two-phase aggregation.  ``$avg`` and
        ``$first``/``$last`` are order/count-sensitive, so pipelines using
        them fall back to gather-then-aggregate.
        """
        source = self._collections.get(collection_name)
        if source is None:
            source = self.collection(collection_name)
        if not isinstance(source, ShardedCollection):
            return aggregate(source, stages, self.registry)

        remaining = list(stages)
        shards = source.shards
        documents: list[dict[str, Any]] | None = None
        if remaining and "$match" in remaining[0]:
            shards = source._target_shards(remaining[0]["$match"])
            documents = []
            for shard in shards:
                documents.extend(shard.find(remaining[0]["$match"]).to_list())
            remaining = remaining[1:]

        if remaining and "$group" in remaining[0] and \
                self._group_is_mergeable(remaining[0]["$group"]):
            group_spec = remaining[0]["$group"]
            if documents is None:
                partial_inputs = [
                    list(shard.all_documents()) for shard in shards
                ]
            else:
                # Re-split not needed: partial grouping over the gathered
                # match output still exercises the merge path per shard
                # only when documents were never gathered; here we group
                # the gathered set directly.
                partial_inputs = [documents]
            partials: list[dict[str, Any]] = []
            for shard_docs in partial_inputs:
                partials.extend(
                    aggregate(shard_docs, [{"$group": group_spec}],
                              self.registry).documents
                )
            merged = self._merge_partial_groups(group_spec, partials)
            return aggregate(merged, remaining[1:], self.registry)

        if documents is None:
            documents = list(source.all_documents())
        return aggregate(documents, remaining, self.registry)

    def _group_is_mergeable(self, spec: dict[str, Any]) -> bool:
        for field, acc_spec in spec.items():
            if field == "_id":
                continue
            if not isinstance(acc_spec, dict) or len(acc_spec) != 1:
                return False
            if next(iter(acc_spec)) not in self._MERGEABLE:
                return False
        return True

    def _merge_partial_groups(self, spec: dict[str, Any],
                              partials: list[dict[str, Any]]
                              ) -> list[dict[str, Any]]:
        """Combine per-shard $group outputs into final groups."""
        merged: dict[Any, dict[str, Any]] = {}
        for partial in partials:
            key = _freeze(partial["_id"])
            target = merged.get(key)
            if target is None:
                merged[key] = dict(partial)
                continue
            for field, acc_spec in spec.items():
                if field == "_id":
                    continue
                acc = next(iter(acc_spec))
                if acc in ("$sum", "$count"):
                    target[field] += partial[field]
                elif acc == "$min":
                    candidates = [v for v in (target[field],
                                              partial[field])
                                  if v is not None]
                    target[field] = min(candidates) if candidates else None
                elif acc == "$max":
                    candidates = [v for v in (target[field],
                                              partial[field])
                                  if v is not None]
                    target[field] = max(candidates) if candidates else None
                elif acc == "$push":
                    target[field] = target[field] + partial[field]
                elif acc == "$addToSet":
                    for item in partial[field]:
                        if item not in target[field]:
                            target[field].append(item)
        return list(merged.values())

    def storage_bytes(self) -> int:
        return sum(
            collection.storage_bytes()
            for collection in self._collections.values()
        )


class Client:
    """Top-level entry point holding named databases."""

    def __init__(self, registry: FunctionRegistry | None = None) -> None:
        # One registry per client, shared by its databases; seeded from
        # the defaults so global registrations stay visible.
        self.registry = (registry if registry is not None
                         else FunctionRegistry.with_defaults())
        self._databases: dict[str, Database] = {}

    def database(self, name: str) -> Database:
        if name not in self._databases:
            self._databases[name] = Database(name, self.registry)
        return self._databases[name]

    def __getitem__(self, name: str) -> Database:
        return self.database(name)

    def database_names(self) -> list[str]:
        return sorted(self._databases)

    def drop_database(self, name: str) -> None:
        self._databases.pop(name, None)

"""JSONL persistence and storage accounting.

Collections snapshot to JSON-lines files (one document per line) and can
replay an append-only operation log on top of the last snapshot — the same
checkpoint + oplog shape a real deployment would use.  Storage accounting
(serialized bytes, per-shard distribution) backs the E11 experiment, which
scales the paper's "450k publications ≈ 965 GB" claim down to the synthetic
corpus and extrapolates bytes/document.
"""

from __future__ import annotations

import json
import os
from dataclasses import dataclass
from pathlib import Path
from typing import Any

from repro.docstore.collection import Collection
from repro.docstore.documents import ObjectId
from repro.docstore.sharding import ShardedCollection
from repro.errors import PersistenceError


def _encode(document: dict[str, Any]) -> str:
    def default(value: Any) -> Any:
        if isinstance(value, ObjectId):
            return str(value)
        raise TypeError(f"not JSON serializable: {value!r}")

    return json.dumps(document, default=default, separators=(",", ":"))


def _decode(line: str) -> dict[str, Any]:
    document = json.loads(line)
    raw_id = document.get("_id")
    if isinstance(raw_id, str) and raw_id.startswith("oid:"):
        document["_id"] = ObjectId.parse(raw_id)
    return document


def _meta_path(path: Path) -> Path:
    return path.with_suffix(path.suffix + ".meta.json")


def save_collection(collection: Collection, path: str | Path) -> int:
    """Snapshot every document to a JSONL file; returns bytes written.

    A ``<path>.meta.json`` sidecar records the collection's mutation
    counter so :func:`load_collection` can resume *past* it — replaying
    the inserts alone resets the counter, and a restored collection
    whose version restarted from zero could alias cached results
    computed against the pre-save process (the serving tier keys its
    cache on these counters).
    """
    path = Path(path)
    path.parent.mkdir(parents=True, exist_ok=True)
    tmp_path = path.with_suffix(path.suffix + ".tmp")
    written = 0
    with open(tmp_path, "w", encoding="utf-8") as handle:
        for document in collection.all_documents():
            line = _encode(document)
            handle.write(line + "\n")
            written += len(line) + 1
    os.replace(tmp_path, path)
    meta_tmp = _meta_path(path).with_suffix(".tmp")
    with open(meta_tmp, "w", encoding="utf-8") as handle:
        json.dump({"version": collection.version,
                   "documents": len(collection)}, handle)
    os.replace(meta_tmp, _meta_path(path))
    return written


def load_collection(path: str | Path,
                    name: str | None = None) -> Collection:
    """Rebuild a collection from a JSONL snapshot.

    When the version sidecar written by :func:`save_collection` is
    present, the restored collection's mutation counter advances to one
    past the saved value (snapshots from older code without a sidecar
    load as before).
    """
    path = Path(path)
    if not path.exists():
        raise PersistenceError(f"snapshot not found: {path}")
    collection = Collection(name or path.stem)
    with open(path, encoding="utf-8") as handle:
        for line_number, line in enumerate(handle, start=1):
            line = line.strip()
            if not line:
                continue
            try:
                collection.insert_one(_decode(line))
            except (json.JSONDecodeError, ValueError) as exc:
                raise PersistenceError(
                    f"corrupt snapshot {path}:{line_number}: {exc}"
                ) from exc
    meta_path = _meta_path(path)
    if meta_path.exists():
        try:
            with open(meta_path, encoding="utf-8") as handle:
                meta = json.load(handle)
        except json.JSONDecodeError as exc:
            raise PersistenceError(
                f"corrupt snapshot sidecar {meta_path}: {exc}"
            ) from exc
        collection.advance_version(int(meta.get("version", 0)) + 1)
    return collection


class OperationLog:
    """Append-only log of write operations for replay on top of a snapshot."""

    def __init__(self, path: str | Path) -> None:
        self.path = Path(path)
        self.path.parent.mkdir(parents=True, exist_ok=True)

    def append(self, op: str, payload: dict[str, Any]) -> None:
        record = {"op": op, **payload}
        with open(self.path, "a", encoding="utf-8") as handle:
            handle.write(_encode(record) + "\n")

    def replay(self, collection: Collection) -> int:
        """Apply every logged operation; returns the number applied."""
        if not self.path.exists():
            return 0
        applied = 0
        with open(self.path, encoding="utf-8") as handle:
            for line in handle:
                line = line.strip()
                if not line:
                    continue
                record = _decode(line)
                op = record.pop("op", None)
                if op == "insert":
                    collection.insert_one(record["document"])
                elif op == "delete":
                    collection.delete_many(record["query"])
                elif op == "update":
                    collection.update_many(record["query"], record["update"])
                else:
                    raise PersistenceError(f"unknown logged op {op!r}")
                applied += 1
        return applied

    def truncate(self) -> None:
        if self.path.exists():
            self.path.unlink()


@dataclass
class StorageReport:
    """Storage accounting for a (sharded) collection — the E11 statistic."""

    num_documents: int
    total_bytes: int
    shard_bytes: list[int]

    @property
    def bytes_per_document(self) -> float:
        if self.num_documents == 0:
            return 0.0
        return self.total_bytes / self.num_documents

    @property
    def shard_skew(self) -> float:
        """max/mean shard size ratio; 1.0 is perfectly balanced."""
        if not self.shard_bytes or sum(self.shard_bytes) == 0:
            return 1.0
        mean = sum(self.shard_bytes) / len(self.shard_bytes)
        return max(self.shard_bytes) / mean

    def extrapolate_bytes(self, num_documents: int) -> int:
        """Projected storage at ``num_documents`` (e.g. the paper's 450k)."""
        return int(self.bytes_per_document * num_documents)


def storage_report(collection: Collection | ShardedCollection
                   ) -> StorageReport:
    """Compute a :class:`StorageReport` for any collection flavour."""
    if isinstance(collection, ShardedCollection):
        shard_bytes = collection.shard_storage_bytes()
        return StorageReport(
            num_documents=len(collection),
            total_bytes=sum(shard_bytes),
            shard_bytes=shard_bytes,
        )
    total = collection.storage_bytes()
    return StorageReport(
        num_documents=len(collection),
        total_bytes=total,
        shard_bytes=[total],
    )

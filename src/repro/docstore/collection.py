"""A single-node document collection with CRUD, cursors, and indexes.

The update language covers the operators the system uses: ``$set``,
``$unset``, ``$inc``, ``$mul``, ``$rename``, ``$push`` (with ``$each``),
``$pull``, ``$addToSet``, ``$pop``, ``$min``, ``$max``.  ``find`` returns a
:class:`Cursor` supporting ``sort`` / ``skip`` / ``limit`` / projection —
the primitives the aggregation engine and the search engines build on.
"""

from __future__ import annotations

from typing import Any, Callable, Iterable, Iterator

from repro.docstore.documents import (
    ObjectId,
    deep_copy_document,
    deep_get,
    deep_set,
    deep_unset,
    document_bytes,
    validate_document,
)
from repro.docstore.indexes import FieldIndex, SortedFieldIndex, TextIndex
from repro.docstore.matching import (
    equality_constraints,
    matches,
    range_constraints,
)
from repro.errors import DocumentError, DuplicateKeyError, QueryError

_MISSING = object()


class Cursor:
    """Lazy result set over a snapshot of matching documents."""

    def __init__(self, documents: list[dict[str, Any]]) -> None:
        self._documents = documents
        self._sort_spec: list[tuple[str, int]] | None = None
        self._skip = 0
        self._limit: int | None = None
        self._projection: dict[str, int] | None = None
        self._consumed = False

    def sort(self, key: str | list[tuple[str, int]],
             direction: int = 1) -> "Cursor":
        """Sort by a field (or a list of ``(field, direction)`` pairs)."""
        if isinstance(key, str):
            self._sort_spec = [(key, direction)]
        else:
            self._sort_spec = list(key)
        return self

    def skip(self, count: int) -> "Cursor":
        self._skip = max(0, count)
        return self

    def limit(self, count: int) -> "Cursor":
        self._limit = max(0, count)
        return self

    def project(self, projection: dict[str, int]) -> "Cursor":
        self._projection = projection
        return self

    def _materialize(self) -> list[dict[str, Any]]:
        documents = self._documents
        if self._sort_spec:
            for path, direction in reversed(self._sort_spec):
                documents = sorted(
                    documents,
                    key=lambda doc: _sort_key(deep_get(doc, path)),
                    reverse=direction < 0,
                )
        if self._skip:
            documents = documents[self._skip:]
        if self._limit is not None:
            documents = documents[: self._limit]
        if self._projection is not None:
            documents = [
                apply_projection(doc, self._projection) for doc in documents
            ]
        return documents

    def __iter__(self) -> Iterator[dict[str, Any]]:
        return iter(self._materialize())

    def __len__(self) -> int:
        return len(self._materialize())

    def to_list(self) -> list[dict[str, Any]]:
        return self._materialize()

    def first(self) -> dict[str, Any] | None:
        results = self._materialize()
        return results[0] if results else None


def _sort_key(value: Any) -> tuple[int, Any]:
    """Total order across mixed types: None < numbers < strings < rest."""
    if value is None:
        return (0, 0)
    if isinstance(value, bool):
        return (1, int(value))
    if isinstance(value, (int, float)):
        return (1, value)
    if isinstance(value, str):
        return (2, value)
    if isinstance(value, ObjectId):
        return (3, value.value)
    return (4, str(value))


def apply_projection(document: dict[str, Any],
                     projection: dict[str, int]) -> dict[str, Any]:
    """Apply a MongoDB-style inclusion or exclusion projection."""
    if not projection:
        return deep_copy_document(document)
    includes = {k for k, v in projection.items() if v and k != "_id"}
    excludes = {k for k, v in projection.items() if not v and k != "_id"}
    if includes and excludes:
        raise QueryError("cannot mix inclusion and exclusion in a projection")
    if includes:
        result: dict[str, Any] = {}
        if projection.get("_id", 1) and "_id" in document:
            result["_id"] = document["_id"]
        for path in includes:
            value = deep_get(document, path, _MISSING)
            if value is not _MISSING:
                deep_set(result, path, deep_copy_document({"v": value})["v"])
        return result
    result = deep_copy_document(document)
    for path in excludes:
        deep_unset(result, path)
    if not projection.get("_id", 1):
        result.pop("_id", None)
    return result


class Collection:
    """An in-memory document collection with optional indexes.

    Documents receive an ``_id`` (an :class:`ObjectId`) on insert when they
    do not carry one.  Reads return deep copies so callers cannot corrupt
    stored state.  ``scan_count`` tracks how many stored documents each
    query examined — the statistic behind the pipeline-ordering experiment
    (E3).
    """

    def __init__(self, name: str = "collection") -> None:
        self.name = name
        self._documents: dict[Any, dict[str, Any]] = {}
        self._field_indexes: dict[str, FieldIndex] = {}
        self._sorted_indexes: dict[str, SortedFieldIndex] = {}
        self._text_index: TextIndex | None = None
        self.scan_count = 0
        self._version = 0

    # -- versioning -------------------------------------------------------

    @property
    def version(self) -> int:
        """Monotonic mutation counter (insert/update/delete/replace).

        Result caches key their entries to this counter: any write makes
        every previously computed read stale, which the serving tier
        (:mod:`repro.serve`) detects by comparing snapshots.
        """
        return self._version

    def advance_version(self, floor: int) -> None:
        """Raise the version to at least ``floor`` (never lowers it).

        Used when restoring a saved system so a cache keyed against the
        pre-save counters can never alias the reloaded state.
        """
        self._version = max(self._version, floor)

    # -- index management -------------------------------------------------

    def create_index(self, path: str, unique: bool = False) -> FieldIndex:
        """Create (or return) a hash index on a dotted field path."""
        if path in self._field_indexes:
            return self._field_indexes[path]
        index = FieldIndex(path, unique=unique)
        for doc_id, document in self._documents.items():
            index.add(doc_id, document)
        self._field_indexes[path] = index
        return index

    def create_sorted_index(self, path: str) -> SortedFieldIndex:
        """Create (or return) an order-preserving index for range queries."""
        if path in self._sorted_indexes:
            return self._sorted_indexes[path]
        index = SortedFieldIndex(path)
        for doc_id, document in self._documents.items():
            index.add(doc_id, document)
        self._sorted_indexes[path] = index
        return index

    def create_text_index(self, paths: Iterable[str]) -> TextIndex:
        """Create an inverted text index over one or more field paths."""
        index = TextIndex(paths)
        for doc_id, document in self._documents.items():
            index.add(doc_id, document)
        self._text_index = index
        return index

    @property
    def text_index(self) -> TextIndex | None:
        return self._text_index

    # -- writes ---------------------------------------------------------

    def insert_one(self, document: dict[str, Any]) -> Any:
        """Insert one document; returns its ``_id``."""
        document = deep_copy_document(validate_document(document))
        doc_id = document.setdefault("_id", ObjectId())
        if doc_id in self._documents:
            raise DuplicateKeyError(f"duplicate _id {doc_id!r}")
        added: list[FieldIndex] = []
        try:
            for index in self._field_indexes.values():
                index.add(doc_id, document)  # may raise DuplicateKeyError
                added.append(index)
        except DuplicateKeyError:
            for index in added:
                index.remove(doc_id)
            raise
        for sorted_index in self._sorted_indexes.values():
            sorted_index.add(doc_id, document)
        if self._text_index is not None:
            self._text_index.add(doc_id, document)
        self._documents[doc_id] = document
        self._version += 1
        return doc_id

    def insert_many(self, documents: Iterable[dict[str, Any]]) -> list[Any]:
        return [self.insert_one(document) for document in documents]

    def delete_one(self, query: dict[str, Any]) -> int:
        for doc_id, document in self._documents.items():
            if matches(document, query):
                self._remove(doc_id)
                return 1
        return 0

    def delete_many(self, query: dict[str, Any]) -> int:
        doomed = [
            doc_id
            for doc_id, document in self._documents.items()
            if matches(document, query)
        ]
        for doc_id in doomed:
            self._remove(doc_id)
        return len(doomed)

    def _remove(self, doc_id: Any) -> None:
        del self._documents[doc_id]
        for index in self._field_indexes.values():
            index.remove(doc_id)
        for sorted_index in self._sorted_indexes.values():
            sorted_index.remove(doc_id)
        if self._text_index is not None:
            self._text_index.remove(doc_id)
        self._version += 1

    def update_one(self, query: dict[str, Any],
                   update: dict[str, Any], upsert: bool = False) -> int:
        for doc_id, document in self._documents.items():
            if matches(document, query):
                self._apply_update(doc_id, update)
                return 1
        if upsert:
            self._upsert(query, update)
            return 1
        return 0

    def _upsert(self, query: dict[str, Any],
                update: dict[str, Any]) -> Any:
        """Insert the document an unmatched upsert implies.

        Seeded from the query's equality constraints (as MongoDB does),
        then the update operators are applied — including ``$setOnInsert``,
        which only ever fires on this path.
        """
        seed: dict[str, Any] = {}
        for path, value in equality_constraints(query).items():
            deep_set(seed, path, value)
        doc_id = self.insert_one(seed)
        combined = dict(update)
        set_on_insert = combined.pop("$setOnInsert", None)
        if set_on_insert:
            combined["$set"] = {**set_on_insert,
                                **combined.get("$set", {})}
        if combined:
            self._apply_update(doc_id, combined)
        return doc_id

    def find_one_and_update(self, query: dict[str, Any],
                            update: dict[str, Any],
                            return_new: bool = True,
                            upsert: bool = False
                            ) -> dict[str, Any] | None:
        """Atomically update the first match and return it.

        ``return_new`` selects the post-update (default) or pre-update
        image; None when nothing matched and ``upsert`` is off.
        """
        for doc_id, document in self._documents.items():
            if matches(document, query):
                before = deep_copy_document(document)
                self._apply_update(doc_id, update)
                if return_new:
                    return deep_copy_document(self._documents[doc_id])
                return before
        if upsert:
            doc_id = self._upsert(query, update)
            if return_new:
                return deep_copy_document(self._documents[doc_id])
            return None
        return None

    def update_many(self, query: dict[str, Any],
                    update: dict[str, Any]) -> int:
        targets = [
            doc_id
            for doc_id, document in self._documents.items()
            if matches(document, query)
        ]
        for doc_id in targets:
            self._apply_update(doc_id, update)
        return len(targets)

    def replace_one(self, query: dict[str, Any],
                    replacement: dict[str, Any]) -> int:
        for doc_id, document in self._documents.items():
            if matches(document, query):
                new_doc = deep_copy_document(validate_document(replacement))
                new_doc["_id"] = doc_id
                self._documents[doc_id] = new_doc
                self._reindex(doc_id)
                self._version += 1
                return 1
        return 0

    def _apply_update(self, doc_id: Any, update: dict[str, Any]) -> None:
        document = self._documents[doc_id]
        if not update:
            raise DocumentError("empty update document")
        if not all(key.startswith("$") for key in update):
            raise DocumentError(
                "updates must use operators; use replace_one for whole-doc "
                "replacement"
            )
        for op, fields in update.items():
            applier = _UPDATE_OPERATORS.get(op)
            if applier is None:
                raise DocumentError(f"unknown update operator {op}")
            for path, operand in fields.items():
                if path == "_id":
                    raise DocumentError("_id is immutable")
                applier(document, path, operand)
        self._reindex(doc_id)
        self._version += 1

    def _reindex(self, doc_id: Any) -> None:
        document = self._documents[doc_id]
        for index in self._field_indexes.values():
            index.update(doc_id, document)
        for sorted_index in self._sorted_indexes.values():
            sorted_index.update(doc_id, document)
        if self._text_index is not None:
            self._text_index.update(doc_id, document)

    # -- reads ---------------------------------------------------------

    def _candidates(self, query: dict[str, Any]) -> Iterable[Any]:
        """Choose the cheapest candidate id set using available indexes."""
        best: set[Any] | None = None
        for path, value in equality_constraints(query).items():
            index = self._field_indexes.get(path)
            if index is None:
                continue
            ids = index.lookup(value)
            if best is None or len(ids) < len(best):
                best = ids
        for path, bounds in range_constraints(query).items():
            sorted_index = self._sorted_indexes.get(path)
            if sorted_index is None:
                continue
            lo, lo_inclusive, hi, hi_inclusive = bounds
            ids = sorted_index.range(lo, lo_inclusive, hi, hi_inclusive)
            if best is None or len(ids) < len(best):
                best = ids
        if best is None:
            return list(self._documents)
        return best

    def explain(self, query: dict[str, Any] | None = None
                ) -> dict[str, Any]:
        """The access plan ``find`` would use, without executing it.

        Reports the winning index (if any), the candidate-set size it
        yields, and the full collection size — the numbers behind the
        E3b pushdown experiment.
        """
        query = query or {}
        plan: dict[str, Any] = {
            "collection": self.name,
            "documents": len(self._documents),
            "strategy": "full_scan",
            "index": None,
            "candidates": len(self._documents),
        }
        best: tuple[int, str, str] | None = None
        for path, value in equality_constraints(query).items():
            index = self._field_indexes.get(path)
            if index is None:
                continue
            size = len(index.lookup(value))
            if best is None or size < best[0]:
                best = (size, "hash_index", path)
        for path, bounds in range_constraints(query).items():
            sorted_index = self._sorted_indexes.get(path)
            if sorted_index is None:
                continue
            size = len(sorted_index.range(*bounds))
            if best is None or size < best[0]:
                best = (size, "sorted_index", path)
        if best is not None:
            plan.update(strategy=best[1], index=best[2],
                        candidates=best[0])
        return plan

    def find(self, query: dict[str, Any] | None = None,
             projection: dict[str, int] | None = None) -> Cursor:
        """All matching documents, as a lazily-shaped :class:`Cursor`."""
        query = query or {}
        results = []
        for doc_id in self._candidates(query):
            document = self._documents.get(doc_id)
            if document is None:
                continue
            self.scan_count += 1
            if matches(document, query):
                results.append(deep_copy_document(document))
        cursor = Cursor(results)
        if projection is not None:
            cursor.project(projection)
        return cursor

    def find_one(self, query: dict[str, Any] | None = None,
                 projection: dict[str, int] | None = None
                 ) -> dict[str, Any] | None:
        return self.find(query, projection).first()

    def find_by_id(self, doc_id: Any) -> dict[str, Any] | None:
        document = self._documents.get(doc_id)
        return deep_copy_document(document) if document is not None else None

    def count(self, query: dict[str, Any] | None = None) -> int:
        if not query:
            return len(self._documents)
        return len(self.find(query))

    def distinct(self, path: str,
                 query: dict[str, Any] | None = None) -> list[Any]:
        seen: list[Any] = []
        for document in self.find(query):
            value = deep_get(document, path, _MISSING)
            if value is _MISSING:
                continue
            values = value if isinstance(value, list) else [value]
            for item in values:
                if item not in seen:
                    seen.append(item)
        return seen

    def all_documents(self) -> Iterator[dict[str, Any]]:
        """Iterate copies of every stored document (for pipelines/dumps)."""
        for document in self._documents.values():
            yield deep_copy_document(document)

    def __len__(self) -> int:
        return len(self._documents)

    def storage_bytes(self) -> int:
        """Total serialized size of all documents (storage accounting)."""
        return sum(
            document_bytes(document) for document in self._documents.values()
        )


# -- update operators -----------------------------------------------------

def _op_set(document: dict[str, Any], path: str, operand: Any) -> None:
    deep_set(document, path, deep_copy_document({"v": operand})["v"])


def _op_unset(document: dict[str, Any], path: str, operand: Any) -> None:
    deep_unset(document, path)


def _numeric_or_zero(document: dict[str, Any], path: str) -> Any:
    value = deep_get(document, path, 0)
    if not isinstance(value, (int, float)) or isinstance(value, bool):
        raise DocumentError(f"cannot apply numeric update to {path!r}")
    return value


def _op_inc(document: dict[str, Any], path: str, operand: Any) -> None:
    deep_set(document, path, _numeric_or_zero(document, path) + operand)


def _op_mul(document: dict[str, Any], path: str, operand: Any) -> None:
    deep_set(document, path, _numeric_or_zero(document, path) * operand)


def _op_min(document: dict[str, Any], path: str, operand: Any) -> None:
    current = deep_get(document, path, _MISSING)
    if current is _MISSING or operand < current:
        deep_set(document, path, operand)


def _op_max(document: dict[str, Any], path: str, operand: Any) -> None:
    current = deep_get(document, path, _MISSING)
    if current is _MISSING or operand > current:
        deep_set(document, path, operand)


def _op_rename(document: dict[str, Any], path: str, operand: Any) -> None:
    value = deep_get(document, path, _MISSING)
    if value is _MISSING:
        return
    deep_unset(document, path)
    deep_set(document, str(operand), value)


def _array_at(document: dict[str, Any], path: str) -> list[Any]:
    value = deep_get(document, path, _MISSING)
    if value is _MISSING:
        value = []
        deep_set(document, path, value)
    if not isinstance(value, list):
        raise DocumentError(f"field {path!r} is not an array")
    return value


def _op_push(document: dict[str, Any], path: str, operand: Any) -> None:
    array = _array_at(document, path)
    if isinstance(operand, dict) and "$each" in operand:
        array.extend(operand["$each"])
    else:
        array.append(operand)


def _op_add_to_set(document: dict[str, Any], path: str, operand: Any) -> None:
    array = _array_at(document, path)
    items = (
        operand["$each"]
        if isinstance(operand, dict) and "$each" in operand
        else [operand]
    )
    for item in items:
        if item not in array:
            array.append(item)


def _op_pull(document: dict[str, Any], path: str, operand: Any) -> None:
    value = deep_get(document, path, _MISSING)
    if value is _MISSING or not isinstance(value, list):
        return
    if isinstance(operand, dict) and all(
        k.startswith("$") for k in operand
    ) and operand:
        from repro.docstore.matching import _match_field_spec  # noqa: PLC0415
        value[:] = [item for item in value
                    if not _match_field_spec(item, operand)]
    else:
        value[:] = [item for item in value if item != operand]


def _op_pop(document: dict[str, Any], path: str, operand: Any) -> None:
    value = deep_get(document, path, _MISSING)
    if value is _MISSING or not isinstance(value, list) or not value:
        return
    if operand == -1:
        value.pop(0)
    else:
        value.pop()


def _op_set_on_insert(document: dict[str, Any], path: str,
                      operand: Any) -> None:
    """No-op on matched updates; the upsert path applies it as $set."""


_UPDATE_OPERATORS: dict[str, Callable[[dict[str, Any], str, Any], None]] = {
    "$set": _op_set,
    "$setOnInsert": _op_set_on_insert,
    "$unset": _op_unset,
    "$inc": _op_inc,
    "$mul": _op_mul,
    "$min": _op_min,
    "$max": _op_max,
    "$rename": _op_rename,
    "$push": _op_push,
    "$addToSet": _op_add_to_set,
    "$pull": _op_pull,
    "$pop": _op_pop,
}

"""MongoDB-style filter evaluation.

Supported operators:

* comparison: ``$eq``, ``$ne``, ``$gt``, ``$gte``, ``$lt``, ``$lte``,
  ``$in``, ``$nin``
* element: ``$exists``, ``$type``, ``$size``
* string: ``$regex`` (with ``$options``)
* array: ``$all``, ``$elemMatch``
* logical: ``$and``, ``$or``, ``$nor``, ``$not``
* evaluation: ``$where`` (a Python callable standing in for JS)

Scalar comparisons follow MongoDB's array semantics: a filter on a field
holding an array matches when *any* element matches.
"""

from __future__ import annotations

import re
from typing import Any, Callable

from repro.docstore.documents import deep_get
from repro.errors import QueryError

_MISSING = object()

_COMPARISON_OPS = frozenset(
    {"$eq", "$ne", "$gt", "$gte", "$lt", "$lte", "$in", "$nin"}
)
_ALL_OPS = _COMPARISON_OPS | frozenset(
    {"$exists", "$type", "$size", "$regex", "$options", "$all",
     "$elemMatch", "$not", "$where"}
)

#: Logical connectives that take a list of sub-queries.
LOGICAL_OPERATORS = frozenset({"$and", "$or", "$nor"})

#: Every per-field query operator this module evaluates (public so the
#: pre-flight validator in :mod:`repro.analysis.pipeline_check` stays in
#: sync with the evaluator).
QUERY_OPERATORS = frozenset(_ALL_OPS)

_TYPE_NAMES: dict[str, type | tuple[type, ...]] = {
    "double": float,
    "string": str,
    "object": dict,
    "array": list,
    "bool": bool,
    "int": int,
    "number": (int, float),
    "null": type(None),
}


def _comparable(left: Any, right: Any) -> bool:
    """MongoDB only compares values of the same BSON type family."""
    numeric = (int, float)
    if isinstance(left, bool) or isinstance(right, bool):
        return isinstance(left, bool) and isinstance(right, bool)
    if isinstance(left, numeric) and isinstance(right, numeric):
        return True
    return type(left) is type(right)


def _compare(op: str, value: Any, operand: Any) -> bool:
    if op == "$eq":
        return value == operand
    if op == "$ne":
        return value != operand
    if op == "$in":
        if not isinstance(operand, (list, tuple)):
            raise QueryError("$in requires a list")
        if isinstance(value, list):
            return any(item in operand for item in value)
        return value in operand
    if op == "$nin":
        if not isinstance(operand, (list, tuple)):
            raise QueryError("$nin requires a list")
        if isinstance(value, list):
            return all(item not in operand for item in value)
        return value not in operand
    if value is _MISSING or not _comparable(value, operand):
        return False
    if op == "$gt":
        return value > operand
    if op == "$gte":
        return value >= operand
    if op == "$lt":
        return value < operand
    if op == "$lte":
        return value <= operand
    raise QueryError(f"unknown comparison operator {op}")


def _match_operator(op: str, value: Any, operand: Any,
                    spec: dict[str, Any]) -> bool:
    if op in _COMPARISON_OPS:
        # Array fan-out: {"tags": {"$gt": 3}} matches [1, 5].
        if isinstance(value, list) and op not in ("$in", "$nin", "$ne"):
            if _compare(op, value, operand):
                return True
            return any(_compare(op, item, operand) for item in value)
        return _compare(op, value, operand)
    if op == "$exists":
        exists = value is not _MISSING
        return exists == bool(operand)
    if op == "$type":
        expected = _TYPE_NAMES.get(operand)
        if expected is None:
            raise QueryError(f"unknown $type name {operand!r}")
        if value is _MISSING:
            return False
        if operand in ("int", "double", "number") and isinstance(value, bool):
            return False
        return isinstance(value, expected)
    if op == "$size":
        return isinstance(value, list) and len(value) == operand
    if op == "$regex":
        flags = 0
        options = spec.get("$options", "")
        if "i" in options:
            flags |= re.IGNORECASE
        if "m" in options:
            flags |= re.MULTILINE
        if "s" in options:
            flags |= re.DOTALL
        pattern = re.compile(operand, flags)
        if isinstance(value, str):
            return bool(pattern.search(value))
        if isinstance(value, list):
            return any(
                isinstance(item, str) and pattern.search(item)
                for item in value
            )
        return False
    if op == "$options":
        return True  # handled together with $regex
    if op == "$all":
        if not isinstance(operand, (list, tuple)):
            raise QueryError("$all requires a list")
        if not isinstance(value, list):
            return False
        return all(item in value for item in operand)
    if op == "$elemMatch":
        if not isinstance(value, list):
            return False
        return any(
            isinstance(item, dict) and matches(item, operand)
            for item in value
        )
    if op == "$not":
        if isinstance(operand, dict):
            return not _match_field_spec(value, operand)
        raise QueryError("$not requires an operator document")
    if op == "$where":
        if not callable(operand):
            raise QueryError("$where requires a callable")
        return bool(operand(value))
    raise QueryError(f"unknown operator {op}")


def _is_operator_doc(spec: Any) -> bool:
    return (
        isinstance(spec, dict)
        and bool(spec)
        and all(key.startswith("$") for key in spec)
    )


def _match_field_spec(value: Any, spec: Any) -> bool:
    if _is_operator_doc(spec):
        for op in spec:
            if op not in _ALL_OPS:
                raise QueryError(f"unknown operator {op}")
        return all(
            _match_operator(op, value, operand, spec)
            for op, operand in spec.items()
        )
    # Literal equality; arrays match on identity or containment.
    if isinstance(value, list) and not isinstance(spec, list):
        return spec in value or value == spec
    return value == spec


def matches(document: dict[str, Any], query: dict[str, Any]) -> bool:
    """True when ``document`` satisfies the MongoDB-style ``query``.

    >>> matches({"a": 5}, {"a": {"$gte": 3}})
    True
    >>> matches({"tags": ["x", "y"]}, {"tags": "x"})
    True
    """
    if not isinstance(query, dict):
        raise QueryError("query must be a dict")
    for key, spec in query.items():
        if key == "$and":
            if not all(matches(document, sub) for sub in spec):
                return False
        elif key == "$or":
            if not any(matches(document, sub) for sub in spec):
                return False
        elif key == "$nor":
            if any(matches(document, sub) for sub in spec):
                return False
        elif key == "$not":
            if matches(document, spec):
                return False
        elif key == "$where":
            if not callable(spec):
                raise QueryError("top-level $where requires a callable")
            if not spec(document):
                return False
        elif key.startswith("$"):
            raise QueryError(f"unknown top-level operator {key}")
        else:
            needs_existence = not (
                _is_operator_doc(spec) and "$exists" in spec
            )
            value = deep_get(document, key, _MISSING)
            if value is _MISSING:
                if _is_operator_doc(spec):
                    value_for_ops = _MISSING
                    if needs_existence and not _spec_matches_missing(spec):
                        return False
                    if not needs_existence and not _match_field_spec(
                        value_for_ops, spec
                    ):
                        return False
                    continue
                if spec is None:
                    continue  # {"f": None} matches a missing field
                return False
            if not _match_field_spec(value, spec):
                return False
    return True


def _spec_matches_missing(spec: dict[str, Any]) -> bool:
    """Evaluate an operator doc against a missing field.

    MongoDB semantics: ``$ne``/``$nin`` match missing fields, ordinary
    comparisons do not, ``$eq: None`` matches missing.
    """
    for op in spec:
        if op not in _ALL_OPS:
            raise QueryError(f"unknown operator {op}")
    for op, operand in spec.items():
        if op == "$ne":
            if operand is None:
                return False
            continue
        if op == "$nin":
            if None in operand:
                return False
            continue
        if op == "$eq" and operand is None:
            continue
        if op == "$in" and None in operand:
            continue
        if op == "$not":
            if _match_field_spec(None, operand):
                return False
            continue
        return False
    return True


def make_predicate(query: dict[str, Any]) -> Callable[[dict[str, Any]], bool]:
    """Bind ``query`` into a reusable document predicate."""
    return lambda document: matches(document, query)


def used_paths(query: dict[str, Any]) -> set[str]:
    """The dotted field paths a query touches (for index selection)."""
    paths: set[str] = set()
    for key, spec in query.items():
        if key in ("$and", "$or", "$nor"):
            for sub in spec:
                paths |= used_paths(sub)
        elif key == "$not":
            paths |= used_paths(spec)
        elif not key.startswith("$"):
            paths.add(key)
    return paths


def equality_constraints(query: dict[str, Any]) -> dict[str, Any]:
    """Extract top-level ``field == literal`` constraints for index lookup."""
    constraints: dict[str, Any] = {}
    for key, spec in query.items():
        if key.startswith("$"):
            continue
        if _is_operator_doc(spec):
            if set(spec) == {"$eq"}:
                constraints[key] = spec["$eq"]
        elif not isinstance(spec, dict):
            constraints[key] = spec
    return constraints


def range_constraints(query: dict[str, Any]
                      ) -> dict[str, tuple[Any, bool, Any, bool]]:
    """Extract ``field: (lo, lo_inclusive, hi, hi_inclusive)`` bounds.

    Only top-level operator documents made purely of range/equality
    operators contribute; the planner uses these for sorted-index scans.
    Missing bounds are ``None``.
    """
    constraints: dict[str, tuple[Any, bool, Any, bool]] = {}
    for key, spec in query.items():
        if key.startswith("$") or not _is_operator_doc(spec):
            continue
        if not set(spec) <= {"$gt", "$gte", "$lt", "$lte", "$eq"}:
            continue
        lo = hi = None
        lo_inclusive = hi_inclusive = True
        if "$eq" in spec:
            lo = hi = spec["$eq"]
        if "$gt" in spec:
            lo, lo_inclusive = spec["$gt"], False
        if "$gte" in spec:
            lo, lo_inclusive = spec["$gte"], True
        if "$lt" in spec:
            hi, hi_inclusive = spec["$lt"], False
        if "$lte" in spec:
            hi, hi_inclusive = spec["$lte"], True
        constraints[key] = (lo, lo_inclusive, hi, hi_inclusive)
    return constraints


def is_missing(value: Any) -> bool:
    """Expose the module's missing sentinel check for other layers."""
    return value is _MISSING


def ensure_valid_query(query: dict[str, Any]) -> dict[str, Any]:
    """Validate a query eagerly so errors surface at call time, not scan time."""
    matches({}, query)  # evaluation on the empty doc exercises operator names
    return query

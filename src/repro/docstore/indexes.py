"""Secondary and inverted-text indexes for collections.

Two index flavors back the store:

* :class:`FieldIndex` — a hash index from a field's value to document ids,
  optionally unique.  Values must be hashable; list values index each
  element (multikey, as in MongoDB).
* :class:`TextIndex` — an inverted index from stemmed terms to document
  ids, covering one or more text fields.  The search engines' ``$match``
  stages consult it to avoid full scans.
"""

from __future__ import annotations

from collections import defaultdict
from typing import Any, Iterable

from repro.docstore.documents import deep_get
from repro.errors import DuplicateKeyError, IndexError_
from repro.text.stemmer import stem
from repro.text.tokenizer import tokenize

_MISSING = object()


def _freeze(value: Any) -> Any:
    """Make a field value hashable for index keys."""
    if isinstance(value, list):
        return tuple(_freeze(item) for item in value)
    if isinstance(value, dict):
        return tuple(sorted((k, _freeze(v)) for k, v in value.items()))
    return value


class FieldIndex:
    """Hash index over one dotted field path."""

    def __init__(self, path: str, unique: bool = False) -> None:
        self.path = path
        self.unique = unique
        self._buckets: dict[Any, set[Any]] = defaultdict(set)
        self._doc_keys: dict[Any, list[Any]] = {}

    def _keys_for(self, document: dict[str, Any]) -> list[Any]:
        value = deep_get(document, self.path, _MISSING)
        if value is _MISSING:
            return []
        if isinstance(value, list):
            return [_freeze(item) for item in value]
        return [_freeze(value)]

    def add(self, doc_id: Any, document: dict[str, Any]) -> None:
        keys = self._keys_for(document)
        if self.unique:
            for key in keys:
                existing = self._buckets.get(key)
                if existing and existing - {doc_id}:
                    raise DuplicateKeyError(
                        f"duplicate value {key!r} for unique index "
                        f"on {self.path!r}"
                    )
        for key in keys:
            self._buckets[key].add(doc_id)
        self._doc_keys[doc_id] = keys

    def remove(self, doc_id: Any) -> None:
        for key in self._doc_keys.pop(doc_id, []):
            bucket = self._buckets.get(key)
            if bucket:
                bucket.discard(doc_id)
                if not bucket:
                    del self._buckets[key]

    def update(self, doc_id: Any, document: dict[str, Any]) -> None:
        self.remove(doc_id)
        self.add(doc_id, document)

    def lookup(self, value: Any) -> set[Any]:
        """Document ids whose indexed field equals ``value``."""
        return set(self._buckets.get(_freeze(value), set()))

    def __len__(self) -> int:
        return len(self._doc_keys)


class SortedFieldIndex:
    """Order-preserving index over one field, for range scans.

    Keys are kept in a sorted list (bisect maintenance); ``range`` answers
    ``lo <= value <= hi`` lookups in O(log n + hits).  Only scalar,
    mutually comparable values are indexed; documents whose field is
    missing or non-scalar stay out of the index.  Consequently a sorted
    index must only be created on fields that hold scalars — array fields
    (multikey semantics) are NOT supported and would make range-planned
    queries miss documents.
    """

    def __init__(self, path: str) -> None:
        self.path = path
        self._keys: list[Any] = []        # sorted, parallel to _ids
        self._ids: list[Any] = []
        self._doc_key: dict[Any, Any] = {}

    def _key_for(self, document: dict[str, Any]) -> Any:
        value = deep_get(document, self.path, _MISSING)
        if value is _MISSING or isinstance(value, (list, dict)):
            return _MISSING
        if isinstance(value, bool) or value is None:
            return _MISSING
        return value

    def add(self, doc_id: Any, document: dict[str, Any]) -> None:
        import bisect

        key = self._key_for(document)
        if key is _MISSING:
            return
        try:
            position = bisect.bisect_left(self._keys, key)
        except TypeError:
            return  # not comparable with existing keys: skip
        self._keys.insert(position, key)
        self._ids.insert(position, doc_id)
        self._doc_key[doc_id] = key

    def remove(self, doc_id: Any) -> None:
        import bisect

        key = self._doc_key.pop(doc_id, _MISSING)
        if key is _MISSING:
            return
        position = bisect.bisect_left(self._keys, key)
        while position < len(self._keys) and self._keys[position] == key:
            if self._ids[position] == doc_id:
                del self._keys[position]
                del self._ids[position]
                return
            position += 1

    def update(self, doc_id: Any, document: dict[str, Any]) -> None:
        self.remove(doc_id)
        self.add(doc_id, document)

    def lookup(self, value: Any) -> set[Any]:
        return self.range(value, True, value, True)

    def range(self, lo: Any, lo_inclusive: bool,
              hi: Any, hi_inclusive: bool) -> set[Any]:
        """Ids with ``lo <(=) value <(=) hi``; None bounds are open."""
        import bisect

        start = 0
        end = len(self._keys)
        if lo is not None:
            start = (bisect.bisect_left(self._keys, lo) if lo_inclusive
                     else bisect.bisect_right(self._keys, lo))
        if hi is not None:
            end = (bisect.bisect_right(self._keys, hi) if hi_inclusive
                   else bisect.bisect_left(self._keys, hi))
        return set(self._ids[start:end])

    def __len__(self) -> int:
        return len(self._doc_key)


class TextIndex:
    """Inverted index over the concatenated text of several fields.

    Terms are tokenized and Porter-stemmed, mirroring the stemming-match
    behaviour of the paper's search engines.  Postings record per-document
    term frequency so ranking functions can reuse the index.
    """

    def __init__(self, paths: Iterable[str]) -> None:
        self.paths = list(paths)
        if not self.paths:
            raise IndexError_("TextIndex requires at least one field path")
        self._postings: dict[str, dict[Any, int]] = defaultdict(dict)
        self._doc_terms: dict[Any, set[str]] = {}
        self._doc_lengths: dict[Any, int] = {}

    def _terms_for(self, document: dict[str, Any]) -> list[str]:
        terms: list[str] = []
        for path in self.paths:
            value = deep_get(document, path, "")
            terms.extend(self._extract(value))
        return terms

    def _extract(self, value: Any) -> list[str]:
        if isinstance(value, str):
            return [stem(token) for token in tokenize(value)]
        if isinstance(value, list):
            terms: list[str] = []
            for item in value:
                terms.extend(self._extract(item))
            return terms
        if isinstance(value, dict):
            terms = []
            for item in value.values():
                terms.extend(self._extract(item))
            return terms
        return []

    def add(self, doc_id: Any, document: dict[str, Any]) -> None:
        terms = self._terms_for(document)
        seen: set[str] = set()
        for term in terms:
            postings = self._postings[term]
            postings[doc_id] = postings.get(doc_id, 0) + 1
            seen.add(term)
        self._doc_terms[doc_id] = seen
        self._doc_lengths[doc_id] = len(terms)

    def remove(self, doc_id: Any) -> None:
        for term in self._doc_terms.pop(doc_id, set()):
            postings = self._postings.get(term)
            if postings:
                postings.pop(doc_id, None)
                if not postings:
                    del self._postings[term]
        self._doc_lengths.pop(doc_id, None)

    def update(self, doc_id: Any, document: dict[str, Any]) -> None:
        self.remove(doc_id)
        self.add(doc_id, document)

    def lookup(self, term: str) -> set[Any]:
        """Ids of documents containing (a stem of) ``term``."""
        return set(self._postings.get(stem(term.lower()), {}))

    def lookup_all(self, terms: Iterable[str]) -> set[Any]:
        """Ids of documents containing *all* of ``terms`` (AND semantics)."""
        result: set[Any] | None = None
        for term in terms:
            ids = self.lookup(term)
            result = ids if result is None else (result & ids)
            if not result:
                return set()
        return result if result is not None else set()

    def lookup_any(self, terms: Iterable[str]) -> set[Any]:
        """Ids of documents containing *any* of ``terms`` (OR semantics)."""
        result: set[Any] = set()
        for term in terms:
            result |= self.lookup(term)
        return result

    def term_frequency(self, term: str, doc_id: Any) -> int:
        return self._postings.get(stem(term.lower()), {}).get(doc_id, 0)

    def document_frequency(self, term: str) -> int:
        return len(self._postings.get(stem(term.lower()), {}))

    def document_length(self, doc_id: Any) -> int:
        return self._doc_lengths.get(doc_id, 0)

    @property
    def num_documents(self) -> int:
        return len(self._doc_terms)

    @property
    def num_terms(self) -> int:
        return len(self._postings)

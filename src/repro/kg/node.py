"""Knowledge-graph nodes.

A node has a human-readable label, a normalized key (stemmed, lowercased
token multiset) used by term matching, a parent, ordered children, and
provenance: the ids of papers whose extractions support it.  The paper
stores the graph "populated with nodes and edges ... in JSON format"; the
node's ``to_json``/``from_json`` pair reproduces that shape.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any

from repro.text.stemmer import stem
from repro.text.tokenizer import tokenize


def stem_terms(text: str) -> frozenset[str]:
    """Stemmed tokens of ``text``, with hyphenated compounds also split
    into their parts so "side effects" matches "Side-effects".

    This is the term-matching normal form shared by KG keyword search
    and KGQL ``CONTAINS`` matching; per-node results are cached on the
    graph (:meth:`~repro.kg.graph.KnowledgeGraph.label_stems`).
    """
    stems = set()
    for token in tokenize(text):
        stems.add(stem(token))
        if "-" in token or "/" in token:
            for part in token.replace("/", "-").split("-"):
                if part:
                    stems.add(stem(part))
    return frozenset(stems)


def normalize_label(label: str) -> str:
    """Normalized NLP form of a label: stemmed tokens, sorted, joined.

    Sorting makes matching word-order independent ("Vaccine side-effects"
    == "Side-effects of vaccines" after stopword removal is out of scope,
    but simple reorderings are covered), and stemming absorbs plural and
    inflection differences ("Vaccine(s)").
    """
    tokens = sorted(stem(token) for token in tokenize(label))
    return " ".join(tokens)


@dataclass
class KGNode:
    """One node of the hierarchical knowledge graph."""

    node_id: str
    label: str
    parent_id: str | None = None
    children: list[str] = field(default_factory=list)
    provenance: list[str] = field(default_factory=list)
    category: str | None = None
    attributes: dict[str, Any] = field(default_factory=dict)

    def __post_init__(self) -> None:
        self.normalized = normalize_label(self.label)

    @property
    def is_leaf(self) -> bool:
        return not self.children

    def add_provenance(self, paper_id: str) -> None:
        if paper_id and paper_id not in self.provenance:
            self.provenance.append(paper_id)

    def to_json(self) -> dict[str, Any]:
        data: dict[str, Any] = {
            "id": self.node_id,
            "label": self.label,
            "children": list(self.children),
        }
        if self.parent_id is not None:
            data["parent"] = self.parent_id
        if self.provenance:
            data["provenance"] = list(self.provenance)
        if self.category is not None:
            data["category"] = self.category
        if self.attributes:
            data["attributes"] = dict(self.attributes)
        return data

    @classmethod
    def from_json(cls, data: dict[str, Any]) -> "KGNode":
        return cls(
            node_id=data["id"],
            label=data["label"],
            parent_id=data.get("parent"),
            children=list(data.get("children", [])),
            provenance=list(data.get("provenance", [])),
            category=data.get("category"),
            attributes=dict(data.get("attributes", {})),
        )

"""Subtree fusion into the knowledge graph (paper Section 4.2).

The rules, as the paper states them:

* The extracted subtree's **root is matched** to KG node(s) by normalized
  NLP term matching, amended by embedding-driven matching.
* **Leaf fusion is unsupervised** when the root matched with high
  confidence: leaves that term-match an existing child merge (gaining
  provenance); genuinely new leaves are added as children.
* **Multi-layer subtrees** (several layers of hierarchy) and **insertion
  of new non-leaf nodes** go to the expert review queue (№14 in Figure 1).
* **Categories are kept separate**: "Children side-effects -> Rash" stays
  its own node even when "Rash" already exists under general side-effects,
  because the categorizations must coexist unmerged.
* **Unseen entities** (the NovoVac case) are placed by embedding
  similarity: the new leaf's vector matches existing siblings, whose
  parent adopts it.

Over time the :class:`~repro.kg.review.FusionCorrector` learns expert
decisions, so review-bound fusions become "minimally supervised".
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import TYPE_CHECKING, Any

from repro.errors import FusionError
from repro.kg.graph import KnowledgeGraph
from repro.kg.matching import NodeMatcher
from repro.kg.node import normalize_label

if TYPE_CHECKING:  # pragma: no cover - import cycle guard
    from repro.kg.review import ExpertReviewQueue

#: Minimum root-match confidence for unsupervised leaf fusion.
UNSUPERVISED_CONFIDENCE = 0.9


@dataclass
class ExtractedSubtree:
    """A hierarchical extraction destined for the KG."""

    label: str
    children: list["ExtractedSubtree"] = field(default_factory=list)
    category: str | None = None
    provenance: str | None = None

    def depth(self) -> int:
        """0 for a bare node, 1 for root+leaves, 2+ for multi-layer."""
        if not self.children:
            return 0
        return 1 + max(child.depth() for child in self.children)

    def num_nodes(self) -> int:
        return 1 + sum(child.num_nodes() for child in self.children)

    def to_json(self) -> dict[str, Any]:
        data: dict[str, Any] = {"label": self.label}
        if self.children:
            data["children"] = [child.to_json() for child in self.children]
        if self.category:
            data["category"] = self.category
        if self.provenance:
            data["provenance"] = self.provenance
        return data

    @classmethod
    def from_json(cls, data: dict[str, Any]) -> "ExtractedSubtree":
        return cls(
            label=data["label"],
            children=[
                cls.from_json(child) for child in data.get("children", [])
            ],
            category=data.get("category"),
            provenance=data.get("provenance"),
        )


@dataclass
class FusionResult:
    """What happened to one extracted subtree."""

    action: str  # "merged" | "queued" | "auto_approved" | "unmatched"
    target_node_id: str | None = None
    merged_leaves: list[str] = field(default_factory=list)
    added_leaves: list[str] = field(default_factory=list)
    confidence: float = 0.0
    match_method: str = "none"
    review_id: int | None = None
    #: Review ids of proposed insert-parent operations (the paper's "the
    #: node Vaccine then can be added to the KG on the top of the NovoVac
    #: node") — new structure, so each goes to the expert.
    intermediate_review_ids: list[int] = field(default_factory=list)


class FusionEngine:
    """Fuse extracted subtrees into a knowledge graph."""

    def __init__(self, graph: KnowledgeGraph, matcher: NodeMatcher,
                 review_queue: "ExpertReviewQueue | None" = None) -> None:
        self.graph = graph
        self.matcher = matcher
        self.review_queue = review_queue
        self.results: list[FusionResult] = []

    # -- the fusion decision procedure ---------------------------------------

    def fuse(self, subtree: ExtractedSubtree) -> FusionResult:
        """Apply the Section 4.2 rules to one subtree."""
        result = self._fuse(subtree)
        self.results.append(result)
        if result.action in ("merged", "auto_approved"):
            # Leaf merges write provenance straight onto existing nodes,
            # bypassing the graph's mutation counter; record the write so
            # cached KG query results are invalidated.
            self.graph.touch()
        return result

    def _fuse(self, subtree: ExtractedSubtree) -> FusionResult:
        root_match = self.matcher.match(subtree.label, subtree.category)

        if subtree.depth() >= 2:
            # Multi-layer subtrees always need the expert.
            return self._route_to_review(
                subtree,
                proposed_parent=(
                    root_match.node.node_id if root_match.matched else None
                ),
                match_method=root_match.method,
                confidence=root_match.confidence,
                reason="multi-layer subtree",
            )

        if root_match.matched and root_match.method == "term" and \
                root_match.confidence >= UNSUPERVISED_CONFIDENCE:
            return self._merge_leaves(subtree, root_match.node.node_id,
                                      root_match.confidence, "term")

        # Root not term-matched.  Try the NovoVac path first: place leaves
        # by their own embeddings next to their most similar siblings.
        placed = self._place_unseen_leaves(subtree)
        if placed is not None:
            return placed

        if root_match.matched and root_match.method == "embedding":
            # The root itself is a new term near an existing node: treat
            # the matched node as the anchor and queue, since this inserts
            # new structure.
            return self._route_to_review(
                subtree,
                proposed_parent=root_match.node.node_id,
                match_method="embedding",
                confidence=root_match.confidence,
                reason="embedding-matched root",
            )

        return self._route_to_review(
            subtree, proposed_parent=None, match_method="none",
            confidence=0.0, reason="unmatched root",
        )

    def _merge_leaves(self, subtree: ExtractedSubtree, target_id: str,
                      confidence: float, method: str) -> FusionResult:
        """Unsupervised leaf fusion under a confidently matched node."""
        target = self.graph.node(target_id)
        existing = {
            child.normalized: child for child in self.graph.children(target_id)
        }
        merged, added = [], []
        for leaf in subtree.children:
            normalized = normalize_label(leaf.label)
            provenance = leaf.provenance or subtree.provenance
            if normalized in existing:
                node = existing[normalized]
                if provenance:
                    node.add_provenance(provenance)
                merged.append(leaf.label)
            else:
                node_id = self.graph.add_node(
                    leaf.label, target_id,
                    category=leaf.category or subtree.category,
                    provenance=provenance,
                )
                existing[normalized] = self.graph.node(node_id)
                added.append(leaf.label)
        if subtree.provenance:
            target.add_provenance(subtree.provenance)
        self.matcher.invalidate_cache()
        return FusionResult(
            action="merged", target_node_id=target_id,
            merged_leaves=merged, added_leaves=added,
            confidence=confidence, match_method=method,
        )

    def _place_unseen_leaves(self,
                             subtree: ExtractedSubtree) -> FusionResult | None:
        """The NovoVac rule: infer each leaf's parent from its embedding.

        When the extracted root label differs from the inferred parent's
        label, the paper additionally allows the root to be "added to the
        KG on the top of" the new leaf; inserting a node is new structure,
        so each such proposal is routed to the expert review queue rather
        than applied blindly.
        """
        if not subtree.children:
            return None
        placements: list[tuple[ExtractedSubtree, str]] = []
        for leaf in subtree.children:
            parent = self.matcher.sibling_parent(
                leaf.label, leaf.category or subtree.category
            )
            if parent is None:
                return None
            placements.append((leaf, parent.node_id))
        merged, added = [], []
        intermediate_reviews: list[int] = []
        last_parent: str | None = None
        for leaf, parent_id in placements:
            provenance = leaf.provenance or subtree.provenance
            existing = {
                child.normalized
                for child in self.graph.children(parent_id)
            }
            if normalize_label(leaf.label) in existing:
                merged.append(leaf.label)
            else:
                leaf_id = self.graph.add_node(
                    leaf.label, parent_id,
                    category=leaf.category or subtree.category,
                    provenance=provenance,
                )
                added.append(leaf.label)
                parent_node = self.graph.node(parent_id)
                if self.review_queue is not None and \
                        parent_node.normalized != normalize_label(
                            subtree.label):
                    intermediate_reviews.append(self.review_queue.submit(
                        ExtractedSubtree(
                            subtree.label, category=subtree.category,
                            provenance=provenance,
                        ),
                        proposed_parent_id=leaf_id,
                        match_method="embedding",
                        confidence=0.5,
                        reason="insert extracted root above placed leaf",
                        operation="insert_parent",
                    ))
            last_parent = parent_id
        self.matcher.invalidate_cache()
        return FusionResult(
            action="merged", target_node_id=last_parent,
            merged_leaves=merged, added_leaves=added,
            confidence=0.5, match_method="embedding",
            intermediate_review_ids=intermediate_reviews,
        )

    def apply_insert_parent(self, child_id: str,
                            subtree: ExtractedSubtree) -> str:
        """Insert ``subtree``'s root between ``child_id`` and its parent."""
        if child_id not in self.graph:
            raise FusionError(f"unknown child {child_id!r}")
        new_id = self.graph.insert_parent(
            subtree.label, child_id, category=subtree.category
        )
        if subtree.provenance:
            self.graph.node(new_id).add_provenance(subtree.provenance)
        self.matcher.invalidate_cache()
        return new_id

    def _route_to_review(self, subtree: ExtractedSubtree,
                         proposed_parent: str | None, match_method: str,
                         confidence: float, reason: str) -> FusionResult:
        """Queue for the expert — unless the corrector has learned this case."""
        if self.review_queue is None:
            return FusionResult(
                action="unmatched", confidence=confidence,
                match_method=match_method,
            )
        learned = self.review_queue.corrector.predict(
            subtree, match_method
        )
        if learned is True and proposed_parent is not None:
            self.apply_subtree(proposed_parent, subtree)
            return FusionResult(
                action="auto_approved", target_node_id=proposed_parent,
                confidence=confidence, match_method=match_method,
            )
        review_id = self.review_queue.submit(
            subtree, proposed_parent, match_method, confidence, reason
        )
        return FusionResult(
            action="queued", target_node_id=proposed_parent,
            confidence=confidence, match_method=match_method,
            review_id=review_id,
        )

    # -- structural application (used directly and by expert approvals) -------

    def apply_subtree(self, parent_id: str,
                      subtree: ExtractedSubtree) -> str:
        """Recursively attach ``subtree`` under ``parent_id``.

        Implements the keep-separate rule: children merge only with
        same-label nodes *under the same parent and with the same
        category*; a "Rash" under "Children side-effects" never merges
        with the "Rash" under general "Side-effects".
        """
        if parent_id not in self.graph:
            raise FusionError(f"unknown parent {parent_id!r}")
        anchor = self.graph.node(parent_id)
        if anchor.normalized == normalize_label(subtree.label) and (
            subtree.category is None or anchor.category == subtree.category
        ):
            # The anchor IS the subtree root (the usual case when the root
            # was matched): merge into it instead of nesting a duplicate.
            if subtree.provenance:
                anchor.add_provenance(subtree.provenance)
            for child in subtree.children:
                self.apply_subtree(parent_id, child)
            self.matcher.invalidate_cache()
            return parent_id
        existing = {
            (child.normalized, child.category): child
            for child in self.graph.children(parent_id)
        }
        key = (normalize_label(subtree.label),
               subtree.category)
        node = existing.get(key)
        if node is not None:
            node_id = node.node_id
            if subtree.provenance:
                node.add_provenance(subtree.provenance)
        else:
            node_id = self.graph.add_node(
                subtree.label, parent_id, category=subtree.category,
                provenance=subtree.provenance,
            )
        for child in subtree.children:
            self.apply_subtree(node_id, child)
        self.matcher.invalidate_cache()
        return node_id

    # -- reporting ----------------------------------------------------------

    def summary(self) -> dict[str, int]:
        counts: dict[str, int] = {}
        for result in self.results:
            counts[result.action] = counts.get(result.action, 0) + 1
        return counts

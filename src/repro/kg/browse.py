"""Interactive KG browsing session (№9/№10 in Figure 1).

The web front end lets users "browse the Knowledge Graph by clicking
nodes and using the interactive features" and, from any node, "click the
papers linked off these nodes to read about the topic of preference in
more detail".  :class:`BrowserSession` is that interaction model as an
API: a cursor with breadcrumbs, child navigation, search-jumps, history,
and bookmarks — the exact state a UI keeps per user.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Any

from repro.errors import GraphError
from repro.kg.graph import KnowledgeGraph
from repro.kg.node import KGNode
from repro.kg.search import KGSearchEngine


@dataclass
class BrowseView:
    """What the UI renders for the current node."""

    node: dict[str, Any]
    breadcrumbs: list[str]
    children: list[dict[str, Any]]
    papers: list[str]
    depth: int

    def render(self) -> str:
        """A plain-text rendering (the CLI's node screen)."""
        lines = [" > ".join(self.breadcrumbs)]
        if self.papers:
            lines.append(f"papers: {len(self.papers)}")
        for child in self.children:
            marker = "+" if child["children"] else "-"
            lines.append(f"  {marker} {child['label']}")
        return "\n".join(lines)


class BrowserSession:
    """A stateful cursor over the knowledge graph."""

    def __init__(self, graph: KnowledgeGraph) -> None:
        self.graph = graph
        self._search = KGSearchEngine(graph)
        self._current = graph.root_id
        self._history: list[str] = []
        self.bookmarks: dict[str, str] = {}

    # -- state ----------------------------------------------------------

    @property
    def current(self) -> KGNode:
        return self.graph.node(self._current)

    def view(self) -> BrowseView:
        """The render payload for the current node."""
        node = self.current
        path = self.graph.path_to(node.node_id)
        return BrowseView(
            node=node.to_json(),
            breadcrumbs=[item.label for item in path],
            children=[
                child.to_json()
                for child in self.graph.children(node.node_id)
            ],
            papers=self.graph.papers_for(node.node_id),
            depth=len(path) - 1,
        )

    # -- navigation (the "clicks") ---------------------------------------

    def _move_to(self, node_id: str) -> BrowseView:
        if node_id not in self.graph:
            raise GraphError(f"unknown node {node_id!r}")
        if node_id != self._current:
            self._history.append(self._current)
            self._current = node_id
        return self.view()

    def enter(self, child_label: str) -> BrowseView:
        """Click a child of the current node (matched by label)."""
        for child in self.graph.children(self._current):
            if child.label.lower() == child_label.lower():
                return self._move_to(child.node_id)
        raise GraphError(
            f"current node has no child labeled {child_label!r}"
        )

    def up(self) -> BrowseView:
        """Click the breadcrumb one level up."""
        parent = self.graph.parent(self._current)
        if parent is None:
            raise GraphError("already at the root")
        return self._move_to(parent.node_id)

    def back(self) -> BrowseView:
        """The browser back button."""
        if not self._history:
            raise GraphError("no navigation history")
        previous = self._history.pop()
        self._current = previous
        return self.view()

    def jump(self, query: str) -> BrowseView:
        """Search the graph and jump to the best hit."""
        hits = self._search.search(query, top_k=1)
        if not hits:
            raise GraphError(f"no node matches {query!r}")
        return self._move_to(hits[0].node.node_id)

    def home(self) -> BrowseView:
        return self._move_to(self.graph.root_id)

    # -- bookmarks -------------------------------------------------------

    def bookmark(self, name: str) -> None:
        self.bookmarks[name] = self._current

    def goto_bookmark(self, name: str) -> BrowseView:
        if name not in self.bookmarks:
            raise GraphError(f"no bookmark named {name!r}")
        return self._move_to(self.bookmarks[name])

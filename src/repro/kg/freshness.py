"""Knowledge-graph freshness auditing.

The paper's core motivation: existing KGs "are getting stale very
quickly, lack any latest COVID-19 medical findings — most importantly
lack any scalable mechanism to keep them up to date", while COVIDKG is
"automatically updated from the vetted medical sources", ensuring
"reliability, freshness, and quality".

This module makes freshness *measurable*: given the graph and the
publication dates of its provenance papers, it reports per-node and
per-category staleness (days since the newest supporting evidence) and
flags nodes older than a window — the dashboard a curator watches to see
the non-stop update loop doing its job.
"""

from __future__ import annotations

import datetime
from dataclasses import dataclass, field
from typing import Any

from repro.errors import GraphError
from repro.kg.graph import KnowledgeGraph


def _parse_date(text: str) -> datetime.date:
    try:
        return datetime.date.fromisoformat(str(text))
    except ValueError as exc:
        raise GraphError(f"bad publish_time {text!r}") from exc


def paper_dates(papers: list[dict[str, Any]]) -> dict[str, datetime.date]:
    """paper_id -> publish date, from CORD-19-style paper documents."""
    return {
        paper["paper_id"]: _parse_date(paper["publish_time"])
        for paper in papers
        if paper.get("paper_id") and paper.get("publish_time")
    }


@dataclass
class NodeFreshness:
    """Freshness of one evidence-backed node."""

    node_id: str
    label: str
    path: str
    newest_evidence: datetime.date
    age_days: int
    num_papers: int

    @property
    def is_stale(self) -> bool:  # relative to the report's window
        return self.age_days > self._window_days

    _window_days: int = 0      # injected by the report builder
    _category: str | None = None


@dataclass
class FreshnessReport:
    """Graph-wide freshness summary."""

    as_of: datetime.date
    window_days: int
    nodes: list[NodeFreshness] = field(default_factory=list)
    unevidenced_nodes: int = 0

    @property
    def stale_nodes(self) -> list[NodeFreshness]:
        return [node for node in self.nodes if node.is_stale]

    @property
    def median_age_days(self) -> int:
        if not self.nodes:
            return 0
        ages = sorted(node.age_days for node in self.nodes)
        return ages[len(ages) // 2]

    def stale_fraction(self) -> float:
        if not self.nodes:
            return 0.0
        return len(self.stale_nodes) / len(self.nodes)

    def by_category(self) -> dict[str, dict[str, Any]]:
        """Per-category newest evidence and stale counts."""
        categories: dict[str, dict[str, Any]] = {}
        for node, category in self._categorized():
            entry = categories.setdefault(category, {
                "nodes": 0, "stale": 0, "newest": None,
            })
            entry["nodes"] += 1
            if node.is_stale:
                entry["stale"] += 1
            if entry["newest"] is None or \
                    node.newest_evidence > entry["newest"]:
                entry["newest"] = node.newest_evidence
        return categories

    def _categorized(self):
        for node in self.nodes:
            yield node, (node._category or "uncategorized")

    def summary(self) -> dict[str, Any]:
        return {
            "as_of": self.as_of.isoformat(),
            "evidenced_nodes": len(self.nodes),
            "unevidenced_nodes": self.unevidenced_nodes,
            "stale_nodes": len(self.stale_nodes),
            "stale_fraction": round(self.stale_fraction(), 3),
            "median_age_days": self.median_age_days,
        }


def audit_freshness(graph: KnowledgeGraph,
                    papers: list[dict[str, Any]],
                    as_of: datetime.date | str | None = None,
                    window_days: int = 90) -> FreshnessReport:
    """Audit every evidence-backed node of ``graph``.

    ``as_of`` defaults to the newest publication date in ``papers`` (the
    "now" of the corpus).  Nodes whose newest supporting paper is more
    than ``window_days`` old are stale; nodes with no provenance at all
    (seed structure) are counted separately, not flagged.
    """
    dates = paper_dates(papers)
    if not dates:
        raise GraphError("no dated papers to audit against")
    if as_of is None:
        as_of_date = max(dates.values())
    elif isinstance(as_of, str):
        as_of_date = _parse_date(as_of)
    else:
        as_of_date = as_of

    report = FreshnessReport(as_of=as_of_date, window_days=window_days)
    for node in graph.walk():
        if node.node_id == graph.root_id:
            continue
        supporting = [
            dates[paper_id]
            for paper_id in graph.papers_for(node.node_id)
            if paper_id in dates
        ]
        if not supporting:
            report.unevidenced_nodes += 1
            continue
        newest = max(supporting)
        entry = NodeFreshness(
            node_id=node.node_id,
            label=node.label,
            path=" > ".join(
                n.label for n in graph.path_to(node.node_id)
            ),
            newest_evidence=newest,
            age_days=(as_of_date - newest).days,
            num_papers=len(supporting),
        )
        entry._window_days = window_days
        entry._category = node.category
        report.nodes.append(entry)
    return report

"""Interactive KG search with path highlighting (paper Section 4.2).

"The user can search over the KG via the front-end interface that except
matching nodes also highlights the path to the matching nodes.  The user
can then either browse the graph ... or click the papers linked off these
nodes."  A hit therefore carries the node, the full root-to-node path, a
rendered path string with the match marked, and the provenance papers.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.errors import QueryError
from repro.kg.graph import KnowledgeGraph
from repro.kg.node import KGNode, stem_terms

HIGHLIGHT_OPEN = "[["
HIGHLIGHT_CLOSE = "]]"

#: Back-compat alias: the stemming normal form now lives in
#: :func:`repro.kg.node.stem_terms` so the graph's per-node stem cache
#: and KGQL share it without importing the search engine.
_stems = stem_terms


@dataclass
class KGSearchHit:
    """One matching node with its highlighted path and provenance."""

    node: KGNode
    path: list[KGNode]
    score: float
    papers: list[str]

    @property
    def path_labels(self) -> list[str]:
        return [node.label for node in self.path]

    def rendered_path(self) -> str:
        """``COVID-19 > Vaccines > [[Pfizer]]`` — the UI's highlighted path."""
        parts = [node.label for node in self.path[:-1]]
        parts.append(
            f"{HIGHLIGHT_OPEN}{self.path[-1].label}{HIGHLIGHT_CLOSE}"
        )
        return " > ".join(parts)


class KGSearchEngine:
    """Stemmed term search over knowledge-graph node labels."""

    def __init__(self, graph: KnowledgeGraph) -> None:
        self.graph = graph

    def search(self, query: str, top_k: int = 10) -> list[KGSearchHit]:
        """Nodes whose labels match the query terms, best first.

        Score = fraction of query term stems present in the node label,
        with full matches ranked above partial ones and shallower nodes
        above deeper ones at equal coverage.
        """
        query_stems = sorted(stem_terms(query))
        if not query_stems:
            raise QueryError("empty query")
        hits = []
        # Per-node label stems come from the graph's version-stamped
        # cache: one stemmer pass per graph version, not per query.
        stems_by_node = self.graph.label_stems()
        for node in self.graph.walk():
            label_stems = stems_by_node[node.node_id]
            matched = sum(1 for s in query_stems if s in label_stems)
            if matched == 0:
                continue
            coverage = matched / len(query_stems)
            path = self.graph.path_to(node.node_id)
            score = coverage - 0.01 * (len(path) - 1)
            hits.append(KGSearchHit(
                node=node, path=path, score=score,
                papers=self.graph.papers_for(node.node_id),
            ))
        hits.sort(key=lambda hit: -hit.score)
        return hits[:top_k]

    def browse(self, node_id: str) -> dict:
        """The click-a-node payload: node, parent, children, papers."""
        node = self.graph.node(node_id)
        parent = self.graph.parent(node_id)
        return {
            "node": node.to_json(),
            "parent": parent.to_json() if parent else None,
            "children": [
                child.to_json() for child in self.graph.children(node_id)
            ],
            "path": [n.label for n in self.graph.path_to(node_id)],
            "papers": self.graph.papers_for(node_id),
        }

"""The COVID-19 Knowledge Graph — the paper's core contribution (Section 4).

* :mod:`repro.kg.node` / :mod:`repro.kg.graph` — the hierarchical KG data
  structure with provenance links to source papers,
* :mod:`repro.kg.ontology` — the expert-seeded initial layout (№1/№2 in
  Figure 1),
* :mod:`repro.kg.matching` — normalized NLP term matching amended by
  embedding-driven matching (Section 4.2),
* :mod:`repro.kg.fusion` — the enrichment-and-fusion rules: unsupervised
  leaf merging, multi-layer subtrees routed to expert review, categories
  kept separate,
* :mod:`repro.kg.review` — the expert review queue and the fusion
  corrector that learns from expert decisions (№14 in Figure 1),
* :mod:`repro.kg.enrichment` — topical clustering and entity extraction
  feeding the fusion pipeline (№5/№6),
* :mod:`repro.kg.search` — interactive KG search with path highlighting,
* :mod:`repro.kg.metaprofile` — multi-layered 3D Meta-Profiles (Figure 6).
"""

from repro.kg.bias import BiasFlag, BiasInterrogator, BiasReport
from repro.kg.enrichment import EnrichmentPipeline
from repro.kg.freshness import FreshnessReport, audit_freshness
from repro.kg.fusion import ExtractedSubtree, FusionEngine, FusionResult
from repro.kg.graph import KnowledgeGraph
from repro.kg.matching import NodeMatcher
from repro.kg.metaprofile import MetaProfile, build_side_effect_profile
from repro.kg.node import KGNode, normalize_label, stem_terms
from repro.kg.ontology import seed_covid_graph
from repro.kg.review import ExpertReviewQueue, FusionCorrector
from repro.kg.search import KGSearchEngine

__all__ = [
    "BiasFlag",
    "BiasInterrogator",
    "BiasReport",
    "EnrichmentPipeline",
    "FreshnessReport",
    "audit_freshness",
    "ExtractedSubtree",
    "FusionEngine",
    "FusionResult",
    "KnowledgeGraph",
    "NodeMatcher",
    "MetaProfile",
    "build_side_effect_profile",
    "KGNode",
    "normalize_label",
    "stem_terms",
    "seed_covid_graph",
    "ExpertReviewQueue",
    "FusionCorrector",
    "KGSearchEngine",
]

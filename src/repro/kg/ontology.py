"""Expert-seeded initial KG layout (paper Section 4.1, №1 in Figure 1).

"A Medical Engineering professional ... creates an initial, small (10-20
nodes) structural layout that will initialize the base of our Knowledge
Graph.  On the highest level, the general characteristics of COVID-19 as a
virus can be extracted from older, vetted ontologies about viral
infections, e.g. symptoms, ways of transmission, etc."

The seed deliberately stores *overlapping* categorizations — symptoms by
frequency (common/rare) and by organ system — because, per Section 4.2,
"it was decided to store all different ways to categorize the data without
merging them".
"""

from __future__ import annotations

from repro.corpus import vocabulary_data as vd
from repro.kg.graph import KnowledgeGraph

#: Categories whose children are open sets that fusion may extend.
EXTENSIBLE_CATEGORIES = (
    "vaccines", "strains", "side_effects", "symptoms", "treatments",
)


def seed_covid_graph(include_known_entities: bool = True) -> KnowledgeGraph:
    """Build the expert's initial layout.

    With ``include_known_entities=False`` only the ~15-node structural
    skeleton is created (the paper's 10-20 node layout); the default also
    attaches the well-known vaccines/strains as leaves, standing in for
    the "older, vetted ontologies" bootstrap.
    """
    graph = KnowledgeGraph("COVID-19")
    root = graph.root_id

    transmission = graph.add_node("Transmission", root,
                                  category="transmission")
    for mode in ("Airborne", "Droplet", "Surface contact"):
        graph.add_node(mode, transmission, category="transmission")

    clinical = graph.add_node("Clinical presentation", root)
    symptoms = graph.add_node("Symptoms", clinical, category="symptoms")
    common = graph.add_node("Common symptoms", symptoms,
                            category="symptoms")
    rare = graph.add_node("Rare symptoms", symptoms, category="symptoms")
    by_system = graph.add_node("Symptoms by organ system", symptoms,
                               category="symptoms")

    vaccines = graph.add_node("Vaccines", root, category="vaccines")
    side_effects = graph.add_node("Side-effects", vaccines,
                                  category="side_effects")
    graph.add_node("Children side-effects", side_effects,
                   category="side_effects")

    treatment = graph.add_node("Treatment", root, category="treatments")
    graph.add_node("Strains", root, category="strains")
    graph.add_node("Prevention", root, category="prevention")
    graph.add_node("Diagnosis", root, category="diagnosis")

    if include_known_entities:
        for vaccine in vd.KNOWN_VACCINES:
            graph.add_node(vaccine, vaccines, category="vaccines")
        strains_node = graph.find_by_label("Strains")[0].node_id
        for strain in vd.STRAINS[:5]:
            graph.add_node(strain, strains_node, category="strains")
        for symptom in vd.SYMPTOMS_COMMON:
            graph.add_node(symptom, common, category="symptoms")
        for symptom in vd.SYMPTOMS_RARE:
            graph.add_node(symptom, rare, category="symptoms")
        for system, system_symptoms in vd.SYMPTOMS_BY_SYSTEM.items():
            system_node = graph.add_node(
                f"{system.capitalize()} symptoms", by_system,
                category="symptoms",
            )
            for symptom in system_symptoms:
                graph.add_node(symptom, system_node, category="symptoms")
        for effect in vd.SIDE_EFFECTS_COMMON:
            graph.add_node(effect, side_effects, category="side_effects")
        for drug in ("Remdesivir", "Dexamethasone"):
            graph.add_node(drug, treatment, category="treatments")
    return graph

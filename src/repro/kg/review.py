"""Expert review queue and the learned fusion corrector (№14 in Figure 1).

Multi-layer fusions and new-structure insertions wait here for a human
decision.  "Over time, all categories of initial fusion mistakes
identified by the expert will be learned by the fusion module to be
automatically corrected, hence most of the fusion is expected to become
minimally supervised" — :class:`FusionCorrector` implements that loop: it
keys decisions by (category, depth, match method) and, once a key has
enough consistent history, predicts the expert's answer so the engine can
skip the queue.
"""

from __future__ import annotations

from collections import defaultdict
from dataclasses import dataclass
from typing import TYPE_CHECKING, Callable

from repro.errors import FusionError
from repro.kg.fusion import ExtractedSubtree

if TYPE_CHECKING:  # pragma: no cover - import cycle guard
    from repro.kg.fusion import FusionEngine

#: Decisions needed on a feature key before the corrector auto-answers.
MIN_HISTORY = 3
#: Required agreement ratio within that history.
MIN_AGREEMENT = 0.8


def _feature_key(subtree: ExtractedSubtree, match_method: str,
                 operation: str = "attach_subtree"
                 ) -> tuple[str, int, str, str]:
    return (subtree.category or "uncategorized",
            min(subtree.depth(), 3), match_method, operation)


class FusionCorrector:
    """Learns expert decisions per fusion-case category."""

    def __init__(self, min_history: int = MIN_HISTORY,
                 min_agreement: float = MIN_AGREEMENT) -> None:
        self.min_history = min_history
        self.min_agreement = min_agreement
        self._history: dict[tuple, list[bool]] = defaultdict(list)

    def record(self, subtree: ExtractedSubtree, match_method: str,
               approved: bool,
               operation: str = "attach_subtree") -> None:
        self._history[
            _feature_key(subtree, match_method, operation)
        ].append(approved)

    def predict(self, subtree: ExtractedSubtree, match_method: str,
                operation: str = "attach_subtree") -> bool | None:
        """The learned decision, or None when history is insufficient."""
        history = self._history.get(
            _feature_key(subtree, match_method, operation), []
        )
        if len(history) < self.min_history:
            return None
        approvals = sum(history) / len(history)
        if approvals >= self.min_agreement:
            return True
        if approvals <= 1.0 - self.min_agreement:
            return False
        return None

    def coverage(self) -> dict[tuple, int]:
        return {key: len(values) for key, values in self._history.items()}


@dataclass
class ReviewItem:
    """One pending fusion decision.

    ``operation`` selects what an approval applies: ``"attach_subtree"``
    grafts the subtree under the target node; ``"insert_parent"`` inserts
    the subtree's root *between* the target node and its current parent
    (the NovoVac "add Vaccine on top" case).
    """

    review_id: int
    subtree: ExtractedSubtree
    proposed_parent_id: str | None
    match_method: str
    confidence: float
    reason: str
    operation: str = "attach_subtree"
    status: str = "pending"  # "pending" | "approved" | "rejected"
    decided_parent_id: str | None = None


#: An expert policy maps a ReviewItem to (approve, parent_id_or_None).
ExpertPolicy = Callable[[ReviewItem], tuple[bool, str | None]]


class ExpertReviewQueue:
    """FIFO queue of fusions awaiting a (simulated) human expert."""

    def __init__(self, corrector: FusionCorrector | None = None) -> None:
        self.corrector = corrector or FusionCorrector()
        self._items: dict[int, ReviewItem] = {}
        self._next_id = 1

    def submit(self, subtree: ExtractedSubtree,
               proposed_parent_id: str | None, match_method: str,
               confidence: float, reason: str,
               operation: str = "attach_subtree") -> int:
        if operation not in ("attach_subtree", "insert_parent"):
            raise FusionError(f"unknown review operation {operation!r}")
        review_id = self._next_id
        self._next_id += 1
        self._items[review_id] = ReviewItem(
            review_id=review_id, subtree=subtree,
            proposed_parent_id=proposed_parent_id,
            match_method=match_method, confidence=confidence,
            reason=reason, operation=operation,
        )
        return review_id

    def pending(self) -> list[ReviewItem]:
        return [
            item for item in self._items.values()
            if item.status == "pending"
        ]

    def item(self, review_id: int) -> ReviewItem:
        try:
            return self._items[review_id]
        except KeyError:
            raise FusionError(f"unknown review item {review_id}") from None

    def decide(self, review_id: int, approve: bool,
               engine: "FusionEngine",
               parent_id: str | None = None) -> ReviewItem:
        """Record the expert's decision and apply it when approved."""
        item = self.item(review_id)
        if item.status != "pending":
            raise FusionError(
                f"review item {review_id} already {item.status}"
            )
        target = parent_id or item.proposed_parent_id
        if approve:
            if target is None:
                raise FusionError(
                    "approval requires a parent node (none proposed)"
                )
            if item.operation == "insert_parent":
                engine.apply_insert_parent(target, item.subtree)
            else:
                engine.apply_subtree(target, item.subtree)
            item.status = "approved"
            item.decided_parent_id = target
        else:
            item.status = "rejected"
        self.corrector.record(item.subtree, item.match_method, approve,
                              operation=item.operation)
        return item

    def process_all(self, engine: "FusionEngine",
                    policy: ExpertPolicy) -> dict[str, int]:
        """Run a scripted expert over every pending item."""
        outcomes = {"approved": 0, "rejected": 0}
        for item in list(self.pending()):
            approve, parent_id = policy(item)
            if approve and parent_id is None and \
                    item.proposed_parent_id is None:
                approve = False  # nowhere to attach
            decided = self.decide(item.review_id, approve, engine,
                                  parent_id)
            outcomes[decided.status] += 1
        return outcomes

    def __len__(self) -> int:
        return len(self._items)

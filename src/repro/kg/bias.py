"""Bias interrogation of the training corpus and the knowledge graph.

The paper's title promises a KG "Constructed and Interrogated for Bias
using Deep-Learning", and the introduction couples the KG with "actively
maintained and interrogated for bias training datasets".  This module
implements that interrogation as four auditable checks:

* **topical balance** — the learned document clustering (the same
  model-driven clusters that feed enrichment) measures how evenly the
  corpus covers its topics; a corpus dominated by one topic biases every
  downstream extraction.  Reported as normalized entropy (1.0 = uniform).
* **source balance** — per-journal distribution of publications; a KG
  fed by one publisher inherits its editorial slant.
* **thin provenance** — KG nodes supported by fewer than ``min_sources``
  papers are flagged: a single-source "fact" is the KG's most
  bias-vulnerable element.
* **contested claims** — facts reported with high variance across papers
  (side-effect rates via the meta-profile machinery) are flagged as
  contested rather than silently averaged.

``interrogate`` bundles everything into a :class:`BiasReport` of typed
:class:`BiasFlag` findings the curators (or №14's expert) can work down.
"""

from __future__ import annotations

import math
from collections import Counter
from dataclasses import dataclass, field
from typing import Any

import numpy as np

from repro.kg.enrichment import EnrichmentPipeline
from repro.kg.graph import KnowledgeGraph
from repro.kg.metaprofile import extract_side_effect_records

#: Default minimum papers before a node is considered well-sourced.
MIN_SOURCES = 2
#: Coefficient-of-variation threshold for a contested numeric claim.
CONTESTED_CV = 0.5
#: Normalized-entropy floor under which a distribution is flagged skewed.
BALANCE_FLOOR = 0.6


def normalized_entropy(counts: list[int]) -> float:
    """Shannon entropy of a count distribution, normalized to [0, 1].

    1.0 means perfectly uniform; 0.0 means everything concentrated in one
    bucket.  Trivial distributions (empty, or a single item in total) are
    vacuously balanced; many items all in *one* bucket is the maximally
    concentrated case and scores 0.0.
    """
    positive = [count for count in counts if count > 0]
    total = sum(positive)
    if total <= 1:
        return 1.0
    if len(positive) == 1:
        return 0.0
    entropy = -sum(
        (count / total) * math.log(count / total) for count in positive
    )
    return entropy / math.log(len(positive))


#: Mean inter-centroid cosine distance under which the corpus is treated
#: as covering a single topic (clusters are splitting noise, not topics).
SEPARATION_FLOOR = 0.12


def centroid_separation(centroids: "np.ndarray") -> float:
    """Mean pairwise cosine distance between cluster centroids.

    Near-zero separation means the clustering is slicing one topical
    blob — the signature of a topically monotone (biased) corpus that a
    per-cluster-size balance check cannot see, because k-means splits a
    single blob into equal-sized pieces.
    """
    distances = []
    for i in range(len(centroids)):
        for j in range(i + 1, len(centroids)):
            norm_i = float(np.linalg.norm(centroids[i]))
            norm_j = float(np.linalg.norm(centroids[j]))
            if norm_i == 0.0 or norm_j == 0.0:
                continue
            cosine = float(centroids[i] @ centroids[j]) / (norm_i * norm_j)
            distances.append(1.0 - cosine)
    if not distances:
        return 0.0
    return float(np.mean(distances))


@dataclass(frozen=True)
class BiasFlag:
    """One bias finding."""

    kind: str       # "topic_skew" | "source_skew" | "thin_provenance"
    #                 | "contested_claim"
    subject: str    # what is affected (cluster/journal/node/claim)
    severity: float  # 0..1, larger is worse
    detail: str

    def __str__(self) -> str:  # pragma: no cover - cosmetic
        return f"[{self.kind}] {self.subject}: {self.detail}"


@dataclass
class BiasReport:
    """The full interrogation result."""

    topic_balance: float = 1.0
    source_balance: float = 1.0
    flags: list[BiasFlag] = field(default_factory=list)
    cluster_sizes: list[int] = field(default_factory=list)
    journal_counts: dict[str, int] = field(default_factory=dict)

    def flags_of(self, kind: str) -> list[BiasFlag]:
        return [flag for flag in self.flags if flag.kind == kind]

    def worst(self, top_k: int = 5) -> list[BiasFlag]:
        return sorted(self.flags, key=lambda f: -f.severity)[:top_k]

    def summary(self) -> dict[str, Any]:
        kinds = Counter(flag.kind for flag in self.flags)
        return {
            "topic_balance": round(self.topic_balance, 3),
            "source_balance": round(self.source_balance, 3),
            "flags": dict(kinds),
        }


class BiasInterrogator:
    """Run the bias checks over a corpus and (optionally) a KG."""

    def __init__(self, min_sources: int = MIN_SOURCES,
                 contested_cv: float = CONTESTED_CV,
                 balance_floor: float = BALANCE_FLOOR) -> None:
        self.min_sources = min_sources
        self.contested_cv = contested_cv
        self.balance_floor = balance_floor

    # -- individual checks --------------------------------------------------

    def check_topic_balance(self, papers: list[dict[str, Any]],
                            pipeline: EnrichmentPipeline,
                            num_clusters: int = 8,
                            seed: int = 0) -> tuple[float, list[BiasFlag],
                                                    list[int]]:
        """Cluster with the learned document vectors; score the coverage.

        Two failure modes are checked: *uneven* clusters (one topic
        dominating the counts) and *indistinct* clusters (low centroid
        separation — the corpus is one topical blob that k-means is
        merely slicing).
        """
        if len(papers) < num_clusters:
            return 1.0, [], [len(papers)]
        from repro.corpus.schema import full_text  # noqa: PLC0415
        from repro.kg.enrichment import document_vector  # noqa: PLC0415
        from repro.ml.kmeans import KMeans  # noqa: PLC0415

        clusters, _ = pipeline.cluster_topics(papers, num_clusters,
                                              seed=seed)
        sizes = [len(cluster.paper_ids) for cluster in clusters]
        balance = normalized_entropy(sizes)
        flags = []
        if balance < self.balance_floor:
            dominant = max(clusters, key=lambda c: len(c.paper_ids))
            flags.append(BiasFlag(
                kind="topic_skew",
                subject=f"cluster {dominant.cluster_id} "
                        f"({', '.join(dominant.top_terms[:3])})",
                severity=1.0 - balance,
                detail=f"{len(dominant.paper_ids)}/{len(papers)} papers "
                       f"in one topical cluster (balance={balance:.2f})",
            ))
        vectors = np.stack([
            document_vector(full_text(paper)) for paper in papers
        ])
        model = KMeans(num_clusters, seed=seed).fit(vectors)
        separation = centroid_separation(model.centroids)
        if separation < SEPARATION_FLOOR:
            flags.append(BiasFlag(
                kind="topic_skew",
                subject="whole corpus",
                severity=min(1.0, 1.0 - separation / SEPARATION_FLOOR),
                detail="clusters are nearly indistinct "
                       f"(separation={separation:.3f}); the corpus reads "
                       "as a single topic",
            ))
        return balance, flags, sizes

    def check_source_balance(self, papers: list[dict[str, Any]]
                             ) -> tuple[float, list[BiasFlag],
                                        dict[str, int]]:
        journals = Counter(
            paper.get("journal", "unknown") for paper in papers
        )
        balance = normalized_entropy(list(journals.values()))
        flags = []
        if papers and balance < self.balance_floor:
            dominant, count = journals.most_common(1)[0]
            flags.append(BiasFlag(
                kind="source_skew",
                subject=dominant,
                severity=1.0 - balance,
                detail=f"{count}/{len(papers)} publications from one "
                       f"journal (balance={balance:.2f})",
            ))
        return balance, flags, dict(journals)

    def check_provenance(self, graph: KnowledgeGraph) -> list[BiasFlag]:
        """Flag enrichment-derived leaves resting on too few papers.

        Seed-ontology structure (no provenance anywhere beneath it) is
        expert-vetted and exempt; a node is flagged when the enrichment
        pipeline *did* touch it but with fewer than ``min_sources``
        distinct papers.
        """
        flags = []
        for node in graph.walk():
            if node.node_id == graph.root_id:
                continue
            papers = graph.papers_for(node.node_id)
            if not papers:
                continue  # untouched seed structure
            if len(papers) < self.min_sources:
                path = " > ".join(
                    n.label for n in graph.path_to(node.node_id)
                )
                flags.append(BiasFlag(
                    kind="thin_provenance",
                    subject=node.label,
                    severity=1.0 - len(papers) / self.min_sources,
                    detail=f"{path} supported by only {len(papers)} "
                           f"paper(s)",
                ))
        return flags

    def check_contested_claims(self, papers: list[dict[str, Any]]
                               ) -> list[BiasFlag]:
        """Flag (vaccine, effect, dose) rates with high cross-paper CV."""
        records: dict[tuple[str, str, int], list[tuple[str, float]]] = {}
        for paper in papers:
            for record in extract_side_effect_records(paper):
                key = (record.vaccine, record.effect, record.dose)
                records.setdefault(key, []).append(
                    (record.paper_id, record.rate)
                )
        flags = []
        for (vaccine, effect, dose), reported in records.items():
            distinct_papers = {paper_id for paper_id, _ in reported}
            if len(distinct_papers) < 2:
                continue
            rates = np.array([rate for _, rate in reported])
            mean = float(rates.mean())
            if mean == 0.0:
                continue
            cv = float(rates.std() / mean)
            if cv > self.contested_cv:
                flags.append(BiasFlag(
                    kind="contested_claim",
                    subject=f"{vaccine} / {effect} / dose {dose}",
                    severity=min(1.0, cv),
                    detail=f"rates "
                           f"{sorted(round(float(r), 1) for r in rates)} "
                           f"across {len(distinct_papers)} papers "
                           f"(CV={cv:.2f})",
                ))
        return flags

    # -- the full interrogation -----------------------------------------------

    def interrogate(self, papers: list[dict[str, Any]],
                    graph: KnowledgeGraph | None = None,
                    pipeline: EnrichmentPipeline | None = None,
                    num_clusters: int = 8, seed: int = 0) -> BiasReport:
        """Run every check; graph/pipeline-dependent checks are optional."""
        report = BiasReport()
        if pipeline is not None:
            balance, flags, sizes = self.check_topic_balance(
                papers, pipeline, num_clusters=num_clusters, seed=seed
            )
            report.topic_balance = balance
            report.cluster_sizes = sizes
            report.flags.extend(flags)
        balance, flags, journals = self.check_source_balance(papers)
        report.source_balance = balance
        report.journal_counts = journals
        report.flags.extend(flags)
        if graph is not None:
            report.flags.extend(self.check_provenance(graph))
        report.flags.extend(self.check_contested_claims(papers))
        return report

"""Node matching: normalized NLP term matching + embedding-driven matching.

Section 4.2: "This matching process is based on normalized NLP term
matching, amended by the embedding-driven matching.  The latter is
especially important in context of new terms, unseen before, which is
often the case with new vaccines, viral strands, etc."

:class:`NodeMatcher` tries, in order:

1. **term matching** — normalized (stemmed, order-insensitive) label
   equality, confidence 1.0;
2. **embedding matching** — cosine similarity between the query label's
   text vector and node labels' vectors, returning the best node above a
   threshold.  For an unseen entity this typically lands on a *sibling*
   (NovoVac ~ Pfizer), from which fusion infers the correct parent.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.embeddings.similarity import cosine_similarity
from repro.embeddings.word2vec import Word2Vec
from repro.kg.graph import KnowledgeGraph
from repro.kg.node import KGNode

#: Minimum cosine similarity for an embedding match to count.
EMBEDDING_THRESHOLD = 0.35


@dataclass
class MatchResult:
    """Outcome of matching a label against the graph."""

    node: KGNode | None
    method: str  # "term" | "embedding" | "none"
    confidence: float

    @property
    def matched(self) -> bool:
        return self.node is not None


class NodeMatcher:
    """Match extracted labels to KG nodes."""

    def __init__(self, graph: KnowledgeGraph,
                 word2vec: Word2Vec | None = None,
                 embedding_threshold: float = EMBEDDING_THRESHOLD) -> None:
        self.graph = graph
        self.word2vec = word2vec
        self.embedding_threshold = embedding_threshold
        self._vector_cache: dict[str, np.ndarray] = {}

    def _node_vector(self, node: KGNode) -> np.ndarray:
        assert self.word2vec is not None
        cached = self._vector_cache.get(node.node_id)
        if cached is None:
            cached = self.word2vec.text_vector(node.label)
            self._vector_cache[node.node_id] = cached
        return cached

    def invalidate_cache(self) -> None:
        """Drop cached node vectors (call after bulk graph edits)."""
        self._vector_cache.clear()

    # -- matching ------------------------------------------------------------

    def term_match(self, label: str,
                   category: str | None = None) -> MatchResult:
        """Normalized-term equality; category (when given) must agree."""
        candidates = self.graph.find_by_label(label)
        if category is not None:
            preferred = [
                node for node in candidates if node.category == category
            ]
            candidates = preferred or candidates
        if candidates:
            return MatchResult(candidates[0], "term", 1.0)
        return MatchResult(None, "none", 0.0)

    def embedding_match(self, label: str,
                        category: str | None = None) -> MatchResult:
        """Best embedding neighbour above the threshold."""
        if self.word2vec is None:
            return MatchResult(None, "none", 0.0)
        query = self.word2vec.text_vector(label)
        if not np.any(query):
            return MatchResult(None, "none", 0.0)
        best_node: KGNode | None = None
        best_similarity = self.embedding_threshold
        for node in self.graph.walk():
            if node.node_id == self.graph.root_id:
                continue
            if category is not None and node.category != category:
                continue
            similarity = cosine_similarity(query, self._node_vector(node))
            if similarity > best_similarity:
                best_node, best_similarity = node, similarity
        if best_node is None:
            return MatchResult(None, "none", 0.0)
        return MatchResult(best_node, "embedding", float(best_similarity))

    def match(self, label: str, category: str | None = None) -> MatchResult:
        """Term matching first, embedding matching as the fallback."""
        result = self.term_match(label, category)
        if result.matched:
            return result
        return self.embedding_match(label, category)

    def sibling_parent(self, label: str,
                       category: str | None = None) -> KGNode | None:
        """The parent an unseen entity should live under.

        Embedding-matches ``label`` to its most similar existing node and
        returns that node's parent — the NovoVac-to-Vaccines inference.
        """
        result = self.embedding_match(label, category)
        if not result.matched or result.node is None:
            return None
        return self.graph.parent(result.node.node_id)

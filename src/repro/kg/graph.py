"""The hierarchical knowledge graph container.

Supports the operations the paper's front end and fusion pipeline need:
adding nodes under a parent, path computation (for the interactive
path-highlighting search), subtree views, lookup by normalized label, and
JSON round-tripping.
"""

from __future__ import annotations

import itertools
import json
from pathlib import Path
from typing import Any, Iterator

from dataclasses import dataclass

from repro.errors import GraphError
from repro.kg.node import KGNode, normalize_label, stem_terms


@dataclass
class _DerivedIndexes:
    """Per-version caches of everything derivable by one graph pass.

    Rebuilt lazily whenever the graph's version counter moves past the
    one recorded here.  Rebuilds are idempotent (two readers racing a
    rebuild compute equal objects and one assignment wins), so no lock
    is needed on the read path; writers already serialize behind the
    serving tier's writer lock.
    """

    version: int
    #: node_id -> stemmed label terms (keyword search, KGQL CONTAINS).
    stems: dict[str, frozenset[str]]
    #: category -> node ids carrying it, in walk (creation) order.
    by_category: dict[str, tuple[str, ...]]
    #: node_id -> distance from the root (root = 0).
    depths: dict[str, int]
    #: widest child list in the graph (KGQL traversal fan-out bound).
    max_branching: int


class KnowledgeGraph:
    """A rooted tree of :class:`KGNode` with label indexes."""

    def __init__(self, root_label: str = "COVID-19") -> None:
        self._nodes: dict[str, KGNode] = {}
        self._by_normalized: dict[str, list[str]] = {}
        self._counter = itertools.count(1)
        self._version = 0
        self._derived: _DerivedIndexes | None = None
        self.root_id = self._create_node(root_label, parent_id=None)

    # -- versioning -------------------------------------------------------

    @property
    def version(self) -> int:
        """Monotonic write counter; bumped on every structural change.

        Provenance-only writes (fusion merging papers into existing
        nodes) happen on the nodes directly, so the fusion engine calls
        :meth:`touch` for those.  Result caches compare snapshots of this
        counter to detect stale KG query results.
        """
        return self._version

    def touch(self) -> None:
        """Record an out-of-band mutation (e.g. node provenance writes)."""
        self._version += 1

    def advance_version(self, floor: int) -> None:
        """Raise the version to at least ``floor`` (never lowers it)."""
        self._version = max(self._version, floor)

    # -- construction ----------------------------------------------------------

    def _create_node(self, label: str, parent_id: str | None,
                     category: str | None = None) -> str:
        node_id = f"n{next(self._counter)}"
        node = KGNode(node_id=node_id, label=label, parent_id=parent_id,
                      category=category)
        self._nodes[node_id] = node
        self._by_normalized.setdefault(node.normalized, []).append(node_id)
        if parent_id is not None:
            self._nodes[parent_id].children.append(node_id)
        self._version += 1
        return node_id

    def add_node(self, label: str, parent_id: str | None = None,
                 category: str | None = None,
                 provenance: str | None = None) -> str:
        """Add a child node under ``parent_id`` (default: the root)."""
        if not label or not label.strip():
            raise GraphError("node label must be non-empty")
        parent_id = parent_id or self.root_id
        if parent_id not in self._nodes:
            raise GraphError(f"unknown parent node {parent_id!r}")
        node_id = self._create_node(label.strip(), parent_id, category)
        if provenance:
            self._nodes[node_id].add_provenance(provenance)
        return node_id

    def insert_parent(self, label: str, child_id: str,
                      category: str | None = None) -> str:
        """Insert a new node between ``child_id`` and its current parent.

        This is the "the node Vaccine then can be added to the KG on the
        top of the NovoVac node" operation from Section 4.2.
        """
        child = self.node(child_id)
        if child.parent_id is None:
            raise GraphError("cannot insert a parent above the root")
        old_parent = self._nodes[child.parent_id]
        new_id = self._create_node(label, old_parent.node_id, category)
        old_parent.children.remove(child_id)
        # _create_node already appended new_id to old_parent's children.
        self._nodes[new_id].children.append(child_id)
        child.parent_id = new_id
        self._version += 1
        return new_id

    # -- access ------------------------------------------------------------

    def node(self, node_id: str) -> KGNode:
        try:
            return self._nodes[node_id]
        except KeyError:
            raise GraphError(f"unknown node {node_id!r}") from None

    def __contains__(self, node_id: str) -> bool:
        return node_id in self._nodes

    def __len__(self) -> int:
        return len(self._nodes)

    @property
    def root(self) -> KGNode:
        return self._nodes[self.root_id]

    def children(self, node_id: str) -> list[KGNode]:
        return [self._nodes[cid] for cid in self.node(node_id).children]

    def parent(self, node_id: str) -> KGNode | None:
        parent_id = self.node(node_id).parent_id
        return self._nodes[parent_id] if parent_id else None

    def find_by_label(self, label: str) -> list[KGNode]:
        """Nodes whose normalized label equals ``label``'s normalization."""
        ids = self._by_normalized.get(normalize_label(label), [])
        return [self._nodes[node_id] for node_id in ids]

    # -- derived indexes (version-stamped caches) --------------------------

    def _indexes(self) -> _DerivedIndexes:
        derived = self._derived
        if derived is None or derived.version != self._version:
            stems: dict[str, frozenset[str]] = {}
            by_category: dict[str, list[str]] = {}
            depths: dict[str, int] = {self.root_id: 0}
            max_branching = 0
            for node in self.walk():
                stems[node.node_id] = stem_terms(node.label)
                if node.category is not None:
                    by_category.setdefault(
                        node.category, []).append(node.node_id)
                depth = depths[node.node_id]
                for child_id in node.children:
                    depths[child_id] = depth + 1
                max_branching = max(max_branching, len(node.children))
            derived = _DerivedIndexes(
                version=self._version,
                stems=stems,
                by_category={category: tuple(ids)
                             for category, ids in by_category.items()},
                depths=depths,
                max_branching=max_branching,
            )
            self._derived = derived
        return derived

    def label_stems(self) -> dict[str, frozenset[str]]:
        """Cached ``node_id -> stemmed label terms`` map.

        Keyword search and the KGQL node-match stage used to recompute
        per-node stems on every call — one stemmer pass per node per
        query.  The map is now built once per graph version and reused
        until :meth:`touch`/structural writes bump the counter.
        """
        return self._indexes().stems

    def nodes_by_category(self, category: str) -> list[KGNode]:
        """Nodes tagged ``category``, in creation (walk) order, via the
        version-stamped category index."""
        return [self._nodes[node_id]
                for node_id in self._indexes().by_category.get(
                    category, ())]

    def depth_map(self) -> dict[str, int]:
        """Cached ``node_id -> depth`` (root = 0) for every node."""
        return self._indexes().depths

    def max_branching(self) -> int:
        """Widest child list in the graph — the worst-case per-hop
        fan-out KGQL admission pricing assumes for downward traversal."""
        return self._indexes().max_branching

    def path_to(self, node_id: str) -> list[KGNode]:
        """Nodes from the root down to ``node_id`` (inclusive)."""
        path = []
        current: str | None = node_id
        seen = set()
        while current is not None:
            if current in seen:
                raise GraphError(f"cycle detected at {current!r}")
            seen.add(current)
            node = self.node(current)
            path.append(node)
            current = node.parent_id
        return list(reversed(path))

    def depth(self, node_id: str) -> int:
        """Root has depth 0."""
        return len(self.path_to(node_id)) - 1

    def walk(self, start_id: str | None = None) -> Iterator[KGNode]:
        """Depth-first pre-order traversal."""
        start_id = start_id or self.root_id
        stack = [start_id]
        while stack:
            node = self.node(stack.pop())
            yield node
            stack.extend(reversed(node.children))

    def leaves(self, start_id: str | None = None) -> list[KGNode]:
        return [node for node in self.walk(start_id) if node.is_leaf]

    def subtree_labels(self, start_id: str) -> list[str]:
        return [node.label for node in self.walk(start_id)]

    def papers_for(self, node_id: str) -> list[str]:
        """Provenance of a node and every descendant."""
        papers: list[str] = []
        for node in self.walk(node_id):
            for paper_id in node.provenance:
                if paper_id not in papers:
                    papers.append(paper_id)
        return papers

    # -- serialization -----------------------------------------------------------

    def to_json(self) -> dict[str, Any]:
        return {
            "root": self.root_id,
            "nodes": [node.to_json() for node in self._nodes.values()],
        }

    @classmethod
    def from_json(cls, data: dict[str, Any]) -> "KnowledgeGraph":
        nodes = [KGNode.from_json(entry) for entry in data.get("nodes", [])]
        if not nodes:
            raise GraphError("graph JSON has no nodes")
        root_id = data.get("root")
        by_id = {node.node_id: node for node in nodes}
        if root_id not in by_id:
            raise GraphError(f"root {root_id!r} not among nodes")

        graph = cls.__new__(cls)
        graph._nodes = by_id
        graph._derived = None
        graph._by_normalized = {}
        for node in nodes:
            graph._by_normalized.setdefault(
                node.normalized, []
            ).append(node.node_id)
        numeric = [
            int(node.node_id[1:]) for node in nodes
            if node.node_id.startswith("n") and node.node_id[1:].isdigit()
        ]
        graph._counter = itertools.count(max(numeric, default=0) + 1)
        graph._version = len(nodes)
        graph.root_id = root_id
        graph._validate()
        return graph

    def _validate(self) -> None:
        for node in self._nodes.values():
            for child_id in node.children:
                if child_id not in self._nodes:
                    raise GraphError(
                        f"node {node.node_id} references missing child "
                        f"{child_id!r}"
                    )
                child = self._nodes[child_id]
                if child.parent_id != node.node_id:
                    raise GraphError(
                        f"child {child_id} does not point back to "
                        f"{node.node_id}"
                    )
        # Every node must be reachable from the root (a tree, not a forest).
        reachable = {node.node_id for node in self.walk(self.root_id)}
        if reachable != set(self._nodes):
            orphans = set(self._nodes) - reachable
            raise GraphError(f"orphan nodes: {sorted(orphans)}")

    def save(self, path: str | Path) -> None:
        path = Path(path)
        path.parent.mkdir(parents=True, exist_ok=True)
        with open(path, "w", encoding="utf-8") as handle:
            json.dump(self.to_json(), handle)

    @classmethod
    def load(cls, path: str | Path) -> "KnowledgeGraph":
        with open(path, encoding="utf-8") as handle:
            return cls.from_json(json.load(handle))

    def statistics(self) -> dict[str, Any]:
        """Size/shape summary shown by the API and benchmarks."""
        depths = list(self.depth_map().values())
        return {
            "nodes": len(self._nodes),
            "leaves": sum(
                1 for node in self._nodes.values() if node.is_leaf
            ),
            "max_depth": max(depths, default=0),
            "papers": len({
                paper_id
                for node in self._nodes.values()
                for paper_id in node.provenance
            }),
        }

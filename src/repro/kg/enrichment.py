"""KG enrichment: topical clustering and entity extraction (№5/№6).

The pipeline turns a batch of papers into :class:`ExtractedSubtree`
instances and fuses them:

* **Tables** are the structured source: side-effect tables yield
  ``Side-effects -> {effect leaves}`` (plus the vaccine from the caption),
  efficacy tables yield ``Vaccines -> {vaccine leaves}``.  Extraction reads
  the *table content itself* (captions and cells), never the generator's
  ground-truth block — ground truth exists only to score the result.
* **Body text** contributes pattern-extracted mentions ("received the X
  vaccine", "the X strain dominated").
* **Topical clusters** group the corpus so enrichment can be run per
  topic; cluster quality is measured against generator ground truth in
  experiment E13.
"""

from __future__ import annotations

import re
import zlib
from dataclasses import dataclass, field
from typing import Any

import numpy as np

from repro.corpus.schema import full_text
from repro.kg.fusion import ExtractedSubtree, FusionEngine, FusionResult
from repro.ml.kmeans import KMeans
from repro.text.stemmer import stem
from repro.text.stopwords import STOPWORDS
from repro.text.tokenizer import tokenize

_VACCINE_CAPTION_RE = re.compile(
    r"side effects reported after (\w[\w-]*) vaccination", re.IGNORECASE
)
_VACCINE_BODY_RE = re.compile(
    r"received the (\w[\w-]*) vaccine", re.IGNORECASE
)
_STRAIN_BODY_RE = re.compile(
    r"the ([\w.-]+) strain", re.IGNORECASE
)


def document_vector(text: str, dim: int = 128) -> np.ndarray:
    """L2-normalized hashed bag-of-stems vector for clustering."""
    vector = np.zeros(dim)
    for token in tokenize(text):
        if token in STOPWORDS:
            continue
        digest = zlib.crc32(stem(token).encode("utf-8"))
        vector[digest % dim] += 1.0
    norm = float(np.linalg.norm(vector))
    return vector / norm if norm else vector


@dataclass
class TopicCluster:
    """One discovered topical cluster."""

    cluster_id: int
    paper_ids: list[str]
    top_terms: list[str]


@dataclass
class EnrichmentReport:
    """What one enrichment run extracted and fused."""

    subtrees: int = 0
    fusion_results: list[FusionResult] = field(default_factory=list)
    clusters: list[TopicCluster] = field(default_factory=list)

    def actions(self) -> dict[str, int]:
        counts: dict[str, int] = {}
        for result in self.fusion_results:
            counts[result.action] = counts.get(result.action, 0) + 1
        return counts


class EnrichmentPipeline:
    """Cluster, extract, and fuse a batch of papers into the KG."""

    def __init__(self, engine: FusionEngine) -> None:
        self.engine = engine

    # -- topical clustering (№5) -----------------------------------------

    def cluster_topics(self, papers: list[dict[str, Any]],
                       num_clusters: int, seed: int = 0
                       ) -> tuple[list[TopicCluster], np.ndarray]:
        """k-means over document vectors; returns clusters + assignments."""
        vectors = np.stack([
            document_vector(full_text(paper)) for paper in papers
        ])
        assignments = KMeans(num_clusters, seed=seed).fit_predict(vectors)
        clusters = []
        for cluster_id in range(num_clusters):
            members = [
                paper for paper, assignment in zip(papers, assignments)
                if assignment == cluster_id
            ]
            clusters.append(TopicCluster(
                cluster_id=cluster_id,
                paper_ids=[paper["paper_id"] for paper in members],
                top_terms=self._top_terms(members),
            ))
        return clusters, assignments

    @staticmethod
    def _top_terms(papers: list[dict[str, Any]], top_k: int = 5
                   ) -> list[str]:
        counts: dict[str, int] = {}
        for paper in papers:
            for token in tokenize(full_text(paper)):
                if token in STOPWORDS or len(token) < 4:
                    continue
                counts[token] = counts.get(token, 0) + 1
        ranked = sorted(counts.items(), key=lambda item: (-item[1], item[0]))
        return [term for term, _ in ranked[:top_k]]

    # -- entity extraction (№6) ---------------------------------------------

    def extract_subtrees(self, paper: dict[str, Any]
                         ) -> list[ExtractedSubtree]:
        """Extract fusable subtrees from one paper's tables and text."""
        paper_id = paper["paper_id"]
        subtrees: list[ExtractedSubtree] = []

        for table in paper.get("tables", []):
            caption = table.get("caption", "")
            rows = table.get("rows", [])
            header = [
                cell.get("text", "") for cell in rows[0].get("cells", [])
            ] if rows else []
            data_rows = [
                [cell.get("text", "") for cell in row.get("cells", [])]
                for row in rows[1:]
            ]
            caption_match = _VACCINE_CAPTION_RE.search(caption)
            if caption_match:
                vaccine = caption_match.group(1)
                subtrees.append(ExtractedSubtree(
                    label="Vaccines", category="vaccines",
                    provenance=paper_id,
                    children=[ExtractedSubtree(
                        label=vaccine, category="vaccines",
                        provenance=paper_id,
                    )],
                ))
                effects = [
                    row[0] for row in data_rows if row and row[0]
                ]
                if effects:
                    subtrees.append(ExtractedSubtree(
                        label="Side-effects", category="side_effects",
                        provenance=paper_id,
                        children=[
                            ExtractedSubtree(
                                label=effect, category="side_effects",
                                provenance=paper_id,
                            )
                            for effect in effects
                        ],
                    ))
            elif header and header[0].strip().lower() == "vaccine":
                vaccines = [row[0] for row in data_rows if row and row[0]]
                if vaccines:
                    subtrees.append(ExtractedSubtree(
                        label="Vaccines", category="vaccines",
                        provenance=paper_id,
                        children=[
                            ExtractedSubtree(
                                label=vaccine, category="vaccines",
                                provenance=paper_id,
                            )
                            for vaccine in vaccines
                        ],
                    ))

        body = " ".join(
            section.get("text", "") for section in paper.get("body_text", [])
        )
        for match in _VACCINE_BODY_RE.finditer(body):
            subtrees.append(ExtractedSubtree(
                label="Vaccines", category="vaccines", provenance=paper_id,
                children=[ExtractedSubtree(
                    label=match.group(1), category="vaccines",
                    provenance=paper_id,
                )],
            ))
        for match in _STRAIN_BODY_RE.finditer(body):
            subtrees.append(ExtractedSubtree(
                label="Strains", category="strains", provenance=paper_id,
                children=[ExtractedSubtree(
                    label=match.group(1), category="strains",
                    provenance=paper_id,
                )],
            ))
        return subtrees

    # -- the full enrichment pass -------------------------------------------

    def enrich(self, papers: list[dict[str, Any]],
               num_clusters: int | None = None,
               seed: int = 0) -> EnrichmentReport:
        """Extract from every paper and fuse everything into the graph."""
        report = EnrichmentReport()
        if num_clusters and len(papers) >= num_clusters:
            report.clusters, _ = self.cluster_topics(
                papers, num_clusters, seed=seed
            )
        for paper in papers:
            for subtree in self.extract_subtrees(paper):
                report.subtrees += 1
                report.fusion_results.append(self.engine.fuse(subtree))
        return report

"""Multi-layered 3D Meta-Profiles (paper Figure 6, ref [40]).

A meta-profile summarizes one topic across several papers in layered form.
Figure 6 shows vaccine side-effects "extracted from tables in three
papers, grouped by vaccine, dosage, and paper" — a 3-layer profile
(vaccine x dosage x paper) whose cells hold side-effect rates, replacing
the reading of all source papers.

:func:`build_side_effect_profile` constructs that exact profile from the
side-effect tables the corpus generator (or a real CORD-19 parse) emits.
"""

from __future__ import annotations

import re
from collections import defaultdict
from dataclasses import dataclass, field
from typing import Any

from repro.errors import GraphError

_CAPTION_RE = re.compile(
    r"side effects reported after (\w[\w-]*) vaccination", re.IGNORECASE
)
_DOSE_RE = re.compile(r"dose\s*(\d+)", re.IGNORECASE)


@dataclass(frozen=True)
class SideEffectRecord:
    """One extracted fact: vaccine x dose x effect x rate x source paper."""

    vaccine: str
    dose: int
    effect: str
    rate: float
    paper_id: str


@dataclass
class MetaProfile:
    """A layered summary: layer names plus the records beneath them."""

    layers: tuple[str, ...]
    records: list[SideEffectRecord] = field(default_factory=list)

    # -- structure -----------------------------------------------------------

    def group(self) -> dict[str, dict[int, dict[str, list[SideEffectRecord]]]]:
        """records nested by layer: vaccine -> dose -> paper -> records."""
        nested: dict[str, dict[int, dict[str, list[SideEffectRecord]]]] = (
            defaultdict(lambda: defaultdict(lambda: defaultdict(list)))
        )
        for record in self.records:
            nested[record.vaccine][record.dose][record.paper_id].append(
                record
            )
        return {
            vaccine: {
                dose: dict(papers) for dose, papers in doses.items()
            }
            for vaccine, doses in nested.items()
        }

    @property
    def vaccines(self) -> list[str]:
        return sorted({record.vaccine for record in self.records})

    @property
    def papers(self) -> list[str]:
        return sorted({record.paper_id for record in self.records})

    @property
    def num_sources(self) -> int:
        """Distinct (vaccine, dose, paper) cells — Figure 6's "9 sources"."""
        return len({
            (record.vaccine, record.dose, record.paper_id)
            for record in self.records
        })

    # -- queries --------------------------------------------------------------

    def rates_for(self, vaccine: str, effect: str,
                  dose: int | None = None) -> list[float]:
        """Every reported rate for an effect (optionally one dose)."""
        return [
            record.rate for record in self.records
            if record.vaccine == vaccine and record.effect == effect
            and (dose is None or record.dose == dose)
        ]

    def mean_rate(self, vaccine: str, effect: str,
                  dose: int | None = None) -> float | None:
        rates = self.rates_for(vaccine, effect, dose)
        if not rates:
            return None
        return sum(rates) / len(rates)

    def top_effects(self, vaccine: str, top_k: int = 5
                    ) -> list[tuple[str, float]]:
        """Effects of a vaccine ranked by mean reported rate."""
        effects = {record.effect for record in self.records
                   if record.vaccine == vaccine}
        ranked = sorted(
            (
                (effect, self.mean_rate(vaccine, effect) or 0.0)
                for effect in effects
            ),
            key=lambda pair: -pair[1],
        )
        return ranked[:top_k]

    def to_json(self) -> dict[str, Any]:
        return {
            "layers": list(self.layers),
            "records": [
                {
                    "vaccine": r.vaccine, "dose": r.dose,
                    "effect": r.effect, "rate": r.rate,
                    "paper_id": r.paper_id,
                }
                for r in self.records
            ],
        }


def extract_side_effect_records(paper: dict[str, Any]
                                ) -> list[SideEffectRecord]:
    """Parse a paper's side-effect tables into records.

    Reads only the table content (caption + cells); the dose number comes
    from the column headers ("Dose 1 (%)", "Dose 2 (%)").
    """
    records = []
    for table in paper.get("tables", []):
        caption_match = _CAPTION_RE.search(table.get("caption", ""))
        if not caption_match:
            continue
        vaccine = caption_match.group(1)
        rows = table.get("rows", [])
        if not rows:
            continue
        header = [cell.get("text", "") for cell in rows[0].get("cells", [])]
        dose_columns: dict[int, int] = {}
        for column, text in enumerate(header):
            dose_match = _DOSE_RE.search(text)
            if dose_match:
                dose_columns[column] = int(dose_match.group(1))
        for row in rows[1:]:
            cells = [cell.get("text", "") for cell in row.get("cells", [])]
            if not cells or not cells[0]:
                continue
            effect = cells[0]
            for column, dose in dose_columns.items():
                if column >= len(cells):
                    continue
                try:
                    rate = float(cells[column])
                except ValueError:
                    continue
                records.append(SideEffectRecord(
                    vaccine=vaccine, dose=dose, effect=effect,
                    rate=rate, paper_id=paper.get("paper_id", ""),
                ))
    return records


def build_side_effect_profile(papers: list[dict[str, Any]]) -> MetaProfile:
    """The Figure 6 profile: vaccine x dosage x paper over side effects."""
    records: list[SideEffectRecord] = []
    for paper in papers:
        records.extend(extract_side_effect_records(paper))
    if not records:
        raise GraphError(
            "no side-effect tables found in the given papers"
        )
    return MetaProfile(layers=("vaccine", "dosage", "paper"),
                       records=records)

"""K-means clustering with k-means++ initialization.

Backs the topical clustering of publications (№5 in the paper's
architecture figure): documents are embedded (TF-IDF or tabular
embeddings) and clustered into COVID-19 topics that feed KG enrichment.
"""

from __future__ import annotations

import numpy as np

from repro.errors import ModelError, NotFittedError


class KMeans:
    """Lloyd's algorithm with k-means++ seeding.

    Args:
        num_clusters: k.
        max_iterations: Lloyd iteration cap.
        tolerance: stop when centroids move less than this (L2).
        seed: RNG seed; identical seeds give identical clusterings.
    """

    def __init__(self, num_clusters: int, max_iterations: int = 100,
                 tolerance: float = 1e-6, seed: int = 0) -> None:
        if num_clusters < 1:
            raise ModelError("num_clusters must be >= 1")
        self.num_clusters = num_clusters
        self.max_iterations = max_iterations
        self.tolerance = tolerance
        self.seed = seed
        self.centroids: np.ndarray | None = None
        self.inertia_: float | None = None
        self.num_iterations_ = 0

    def _init_centroids(self, points: np.ndarray,
                        rng: np.random.Generator) -> np.ndarray:
        """k-means++ seeding: spread initial centroids apart."""
        num_points = len(points)
        first = int(rng.integers(num_points))
        centroids = [points[first]]
        squared = np.full(num_points, np.inf)
        for _ in range(1, self.num_clusters):
            newest = centroids[-1]
            distances = np.sum((points - newest) ** 2, axis=1)
            squared = np.minimum(squared, distances)
            total = float(squared.sum())
            if total <= 0.0:
                # All remaining points coincide with centroids; pick any.
                index = int(rng.integers(num_points))
            else:
                probabilities = squared / total
                index = int(rng.choice(num_points, p=probabilities))
            centroids.append(points[index])
        return np.array(centroids)

    def fit(self, points: np.ndarray) -> "KMeans":
        points = np.asarray(points, dtype=np.float64)
        if points.ndim != 2:
            raise ModelError("points must be a 2-D array")
        if len(points) < self.num_clusters:
            raise ModelError(
                f"need at least {self.num_clusters} points, got {len(points)}"
            )
        rng = np.random.default_rng(self.seed)
        centroids = self._init_centroids(points, rng)

        for iteration in range(self.max_iterations):
            assignments = self._assign(points, centroids)
            new_centroids = centroids.copy()
            for cluster in range(self.num_clusters):
                members = points[assignments == cluster]
                if len(members):
                    new_centroids[cluster] = members.mean(axis=0)
            shift = float(np.linalg.norm(new_centroids - centroids))
            centroids = new_centroids
            self.num_iterations_ = iteration + 1
            if shift < self.tolerance:
                break

        self.centroids = centroids
        assignments = self._assign(points, centroids)
        self.inertia_ = float(
            np.sum((points - centroids[assignments]) ** 2)
        )
        return self

    @staticmethod
    def _assign(points: np.ndarray, centroids: np.ndarray) -> np.ndarray:
        distances = (
            np.sum(points ** 2, axis=1)[:, None]
            - 2.0 * points @ centroids.T
            + np.sum(centroids ** 2, axis=1)[None, :]
        )
        return np.argmin(distances, axis=1)

    def predict(self, points: np.ndarray) -> np.ndarray:
        if self.centroids is None:
            raise NotFittedError("KMeans.fit has not run")
        points = np.asarray(points, dtype=np.float64)
        return self._assign(points, self.centroids)

    def fit_predict(self, points: np.ndarray) -> np.ndarray:
        return self.fit(points).predict(points)


def purity(assignments: np.ndarray, truth: np.ndarray) -> float:
    """Cluster purity against ground-truth labels (E13 metric)."""
    assignments = np.asarray(assignments)
    truth = np.asarray(truth)
    if len(assignments) != len(truth):
        raise ModelError("assignments and truth disagree in length")
    if len(assignments) == 0:
        return 0.0
    total = 0
    for cluster in np.unique(assignments):
        members = truth[assignments == cluster]
        values, counts = np.unique(members, return_counts=True)
        total += int(counts.max())
        del values
    return total / len(assignments)


def normalized_mutual_information(assignments: np.ndarray,
                                  truth: np.ndarray) -> float:
    """NMI between a clustering and ground truth (E13 metric)."""
    assignments = np.asarray(assignments)
    truth = np.asarray(truth)
    if len(assignments) != len(truth):
        raise ModelError("assignments and truth disagree in length")
    n = len(assignments)
    if n == 0:
        return 0.0

    def entropy(labels: np.ndarray) -> float:
        _, counts = np.unique(labels, return_counts=True)
        probabilities = counts / n
        return float(-np.sum(probabilities * np.log(probabilities)))

    h_a, h_t = entropy(assignments), entropy(truth)
    if h_a == 0.0 and h_t == 0.0:
        return 1.0
    if h_a == 0.0 or h_t == 0.0:
        return 0.0

    mutual = 0.0
    for cluster in np.unique(assignments):
        in_cluster = assignments == cluster
        p_cluster = in_cluster.sum() / n
        for label in np.unique(truth):
            joint = np.sum(in_cluster & (truth == label)) / n
            if joint > 0:
                p_label = np.sum(truth == label) / n
                mutual += joint * np.log(joint / (p_cluster * p_label))
    return float(mutual / np.sqrt(h_a * h_t))

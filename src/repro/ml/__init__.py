"""Classical machine-learning substrate: SVM, k-means, cross-validation.

The paper's SVM metadata classifier (Section 3.3/3.5) was implemented with
scikit-learn; this package provides the from-scratch equivalents the
reproduction uses: a Pegasos-trained linear SVM, a kernelized SVM
(sigmoid/RBF, the paper's ref [63] studies sigmoid kernels), k-means++
for topical clustering, and k-fold cross-validation utilities.
"""

from repro.ml.crossval import StratifiedKFold, cross_validate, train_test_split
from repro.ml.kmeans import KMeans
from repro.ml.svm import KernelSVM, LinearSVM

__all__ = [
    "StratifiedKFold",
    "cross_validate",
    "train_test_split",
    "KMeans",
    "KernelSVM",
    "LinearSVM",
]

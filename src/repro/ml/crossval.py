"""Cross-validation utilities: k-fold splits and the CV harness.

The paper validates its classifiers with 10-fold cross-validation
(Section 3.3); :func:`cross_validate` reproduces that protocol for any
model exposing ``fit`` / ``predict``.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Any, Callable, Iterator

import numpy as np

from repro.errors import ModelError
from repro.neural.metrics import binary_metrics


class StratifiedKFold:
    """Stratified k-fold: each fold preserves the class balance."""

    def __init__(self, num_folds: int = 10, seed: int = 0) -> None:
        if num_folds < 2:
            raise ModelError("num_folds must be >= 2")
        self.num_folds = num_folds
        self.seed = seed

    def split(self, labels: np.ndarray
              ) -> Iterator[tuple[np.ndarray, np.ndarray]]:
        """Yield (train_indices, test_indices) pairs."""
        labels = np.asarray(labels)
        num_samples = len(labels)
        if num_samples < self.num_folds:
            raise ModelError(
                f"{num_samples} samples cannot fill {self.num_folds} folds"
            )
        rng = np.random.default_rng(self.seed)
        fold_of = np.empty(num_samples, dtype=int)
        for value in np.unique(labels):
            indices = np.flatnonzero(labels == value)
            rng.shuffle(indices)
            for position, index in enumerate(indices):
                fold_of[index] = position % self.num_folds
        for fold in range(self.num_folds):
            test = np.flatnonzero(fold_of == fold)
            train = np.flatnonzero(fold_of != fold)
            if len(test) == 0 or len(train) == 0:
                continue
            yield train, test


def train_test_split(features: np.ndarray, labels: np.ndarray,
                     test_fraction: float = 0.2, seed: int = 0
                     ) -> tuple[np.ndarray, np.ndarray,
                                np.ndarray, np.ndarray]:
    """Shuffled split into (train_x, test_x, train_y, test_y)."""
    if not 0.0 < test_fraction < 1.0:
        raise ModelError("test_fraction must be in (0, 1)")
    features = np.asarray(features)
    labels = np.asarray(labels)
    if len(features) != len(labels):
        raise ModelError("features and labels disagree in length")
    rng = np.random.default_rng(seed)
    order = rng.permutation(len(features))
    cut = max(1, int(round(len(features) * test_fraction)))
    test_idx, train_idx = order[:cut], order[cut:]
    return (features[train_idx], features[test_idx],
            labels[train_idx], labels[test_idx])


@dataclass
class CVResult:
    """Aggregated metrics over all folds of a cross-validation run."""

    fold_metrics: list[dict[str, float]]

    def mean(self, metric: str) -> float:
        values = [fold[metric] for fold in self.fold_metrics]
        return float(np.mean(values))

    def std(self, metric: str) -> float:
        values = [fold[metric] for fold in self.fold_metrics]
        return float(np.std(values))

    def summary(self) -> dict[str, float]:
        keys = self.fold_metrics[0] if self.fold_metrics else {}
        return {key: self.mean(key) for key in keys}


def cross_validate(model_factory: Callable[[], Any],
                   features: np.ndarray, labels: np.ndarray,
                   num_folds: int = 10, seed: int = 0) -> CVResult:
    """k-fold CV of a binary classifier; returns per-fold P/R/F1/accuracy.

    ``model_factory`` must build a fresh model per fold (so folds never
    leak state) exposing ``fit(x, y)`` and ``predict(x)``.
    """
    features = np.asarray(features)
    labels = np.asarray(labels)
    folds = StratifiedKFold(num_folds=num_folds, seed=seed)
    fold_metrics = []
    for train_idx, test_idx in folds.split(labels):
        model = model_factory()
        model.fit(features[train_idx], labels[train_idx])
        predictions = np.asarray(model.predict(features[test_idx]))
        fold_metrics.append(binary_metrics(labels[test_idx], predictions))
    if not fold_metrics:
        raise ModelError("cross-validation produced no folds")
    return CVResult(fold_metrics)

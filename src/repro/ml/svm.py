"""Support vector machines, from scratch on numpy.

Two flavours:

* :class:`LinearSVM` — primal hinge-loss SVM trained with the Pegasos
  stochastic sub-gradient algorithm (Shalev-Shwartz et al., 2011).  This is
  the workhorse the metadata classifier uses: the feature vectors are
  low-dimensional (positional features + hashed text), so a linear model
  trains in milliseconds.
* :class:`KernelSVM` — a dual SVM supporting RBF and sigmoid kernels (the
  paper cites Lin & Lin's study of sigmoid-kernel SVMs [63]), trained with
  kernelized Pegasos.  Used in ablations where the decision boundary is
  not linear in the positional features.

Both expose ``fit`` / ``predict`` / ``decision_function`` and accept labels
in {0, 1} (converted internally to {-1, +1}).
"""

from __future__ import annotations

import numpy as np

from repro.errors import ModelError, NotFittedError


def _as_pm_one(labels: np.ndarray) -> np.ndarray:
    unique = set(np.unique(labels).tolist())
    if not unique <= {0, 1, -1}:
        raise ModelError(f"labels must be binary, got values {sorted(unique)}")
    converted = np.where(labels <= 0, -1.0, 1.0)
    return converted


class LinearSVM:
    """Primal linear SVM trained with Pegasos.

    Args:
        regularization: the Pegasos lambda; smaller fits harder.
        epochs: passes over the training set.
        seed: RNG seed for the sampling order (training is stochastic).
    """

    def __init__(self, regularization: float = 1e-3, epochs: int = 20,
                 seed: int = 0) -> None:
        if regularization <= 0:
            raise ModelError("regularization must be positive")
        if epochs < 1:
            raise ModelError("epochs must be >= 1")
        self.regularization = regularization
        self.epochs = epochs
        self.seed = seed
        self.weights: np.ndarray | None = None
        self.bias = 0.0

    def fit(self, features: np.ndarray, labels: np.ndarray) -> "LinearSVM":
        features = np.asarray(features, dtype=np.float64)
        if features.ndim != 2:
            raise ModelError("features must be a 2-D array")
        targets = _as_pm_one(np.asarray(labels))
        if len(targets) != len(features):
            raise ModelError("features and labels disagree in length")
        if len(features) == 0:
            raise ModelError("cannot fit on an empty dataset")

        rng = np.random.default_rng(self.seed)
        num_samples, num_features = features.shape
        weights = np.zeros(num_features)
        bias = 0.0
        step = 0
        for _ in range(self.epochs):
            order = rng.permutation(num_samples)
            for index in order:
                step += 1
                learning_rate = 1.0 / (self.regularization * step)
                x, y = features[index], targets[index]
                margin = y * (weights @ x + bias)
                weights *= (1.0 - learning_rate * self.regularization)
                if margin < 1.0:
                    weights += learning_rate * y * x
                    bias += learning_rate * y
        self.weights = weights
        self.bias = bias
        return self

    def decision_function(self, features: np.ndarray) -> np.ndarray:
        if self.weights is None:
            raise NotFittedError("LinearSVM.fit has not run")
        features = np.asarray(features, dtype=np.float64)
        return features @ self.weights + self.bias

    def predict(self, features: np.ndarray) -> np.ndarray:
        """Predicted labels in {0, 1}."""
        return (self.decision_function(features) >= 0.0).astype(int)


class KernelSVM:
    """Dual SVM via kernelized Pegasos.

    Supported kernels: ``"rbf"`` (``exp(-gamma * ||x - z||^2)``) and
    ``"sigmoid"`` (``tanh(gamma * <x, z> + coef0)``).
    """

    def __init__(self, kernel: str = "rbf", gamma: float = 0.5,
                 coef0: float = 0.0, regularization: float = 1e-2,
                 epochs: int = 20, seed: int = 0) -> None:
        if kernel not in ("rbf", "sigmoid"):
            raise ModelError(f"unsupported kernel {kernel!r}")
        if regularization <= 0:
            raise ModelError("regularization must be positive")
        self.kernel = kernel
        self.gamma = gamma
        self.coef0 = coef0
        self.regularization = regularization
        self.epochs = epochs
        self.seed = seed
        self._support: np.ndarray | None = None
        self._alpha_y: np.ndarray | None = None

    def _kernel_matrix(self, left: np.ndarray, right: np.ndarray
                       ) -> np.ndarray:
        if self.kernel == "rbf":
            left_sq = np.sum(left ** 2, axis=1)[:, None]
            right_sq = np.sum(right ** 2, axis=1)[None, :]
            distances = left_sq + right_sq - 2.0 * (left @ right.T)
            return np.exp(-self.gamma * np.maximum(distances, 0.0))
        return np.tanh(self.gamma * (left @ right.T) + self.coef0)

    def fit(self, features: np.ndarray, labels: np.ndarray) -> "KernelSVM":
        features = np.asarray(features, dtype=np.float64)
        if features.ndim != 2:
            raise ModelError("features must be a 2-D array")
        targets = _as_pm_one(np.asarray(labels))
        if len(targets) != len(features):
            raise ModelError("features and labels disagree in length")
        if len(features) == 0:
            raise ModelError("cannot fit on an empty dataset")

        rng = np.random.default_rng(self.seed)
        num_samples = len(features)
        gram = self._kernel_matrix(features, features)
        counts = np.zeros(num_samples)
        total_steps = self.epochs * num_samples
        for step in range(1, total_steps + 1):
            index = int(rng.integers(num_samples))
            score = (
                (counts * targets) @ gram[:, index]
            ) / (self.regularization * step)
            if targets[index] * score < 1.0:
                counts[index] += 1.0
        self._support = features
        self._alpha_y = (counts * targets) / (
            self.regularization * total_steps
        )
        return self

    def decision_function(self, features: np.ndarray) -> np.ndarray:
        if self._support is None or self._alpha_y is None:
            raise NotFittedError("KernelSVM.fit has not run")
        features = np.asarray(features, dtype=np.float64)
        kernel = self._kernel_matrix(features, self._support)
        return kernel @ self._alpha_y

    def predict(self, features: np.ndarray) -> np.ndarray:
        """Predicted labels in {0, 1}."""
        return (self.decision_function(features) >= 0.0).astype(int)

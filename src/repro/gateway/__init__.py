"""``repro.gateway``: the asyncio HTTP/JSON front end over the serving tier.

The paper serves covidkg.org as an interactive web system — three
search engines plus KG search answered over HTTP for many concurrent
users.  This package is that network edge for the reproduction: a
dependency-free HTTP/1.1 server (stdlib ``asyncio`` only) that
multiplexes thousands of keep-alive connections on one event loop and
executes every query through the existing
:class:`~repro.serve.QueryService`, so caching, admission control, and
adaptive load control apply unchanged behind the socket.

Endpoints::

    GET /v1/search/all_fields?query=...&page=N
    GET /v1/search/title_abstract?title=...&abstract=...&caption=...
    GET /v1/search/table?query=...&page=N
    GET /v1/kg/search?query=...&top_k=N
    GET /v1/healthz
    GET /v1/stats        # ServiceMetrics + load-control + gateway gauges
    GET /v1/metrics      # Prometheus text exposition

Every error is a machine-readable JSON body
``{"error": {"code", "message", "request_id"}}`` with a typed status
(429 priced-out, 503 shed, 504 deadline, 400 bad request, ...).
"""

from repro.gateway.client import ClientResponse, GatewayClient
from repro.gateway.http import (
    Request,
    Response,
    build_response,
    parse_request_head,
)
from repro.gateway.routes import (
    ERROR_STATUS,
    all_error_classes,
    map_error,
    render_prometheus,
    serialize_served,
)
from repro.gateway.server import BackgroundGateway, Gateway, run_gateway
from repro.serve.service import GatewayConfig

__all__ = [
    "ERROR_STATUS",
    "BackgroundGateway",
    "ClientResponse",
    "Gateway",
    "GatewayClient",
    "GatewayConfig",
    "Request",
    "Response",
    "all_error_classes",
    "build_response",
    "map_error",
    "parse_request_head",
    "render_prometheus",
    "run_gateway",
    "serialize_served",
]

"""Minimal HTTP/1.1 wire handling for the gateway (no I/O here).

Everything in this module is a pure function over bytes: the server
reads a header block off an ``asyncio`` stream and hands it to
:func:`parse_request_head`; handlers produce payloads the server turns
into response bytes with :func:`build_response`.  Keeping the wire
format side-effect free makes the parser unit-testable without opening
a socket — malformed-input cases are just byte strings.

Scope (deliberate): requests the covidkg front end actually makes —
``GET``/``HEAD`` with query strings, optional ``Content-Length`` bodies
(no chunked transfer coding), and HTTP/1.1 keep-alive semantics.
Anything outside that is rejected with a typed
:class:`~repro.errors.BadRequestError` rather than guessed at.
"""

from __future__ import annotations

import json
from dataclasses import dataclass, field
from typing import Any
from urllib.parse import parse_qsl, unquote, urlsplit

from repro.errors import BadRequestError

#: Protocol limits enforced by :func:`parse_request_head` (the byte
#: ceilings themselves come from ``GatewayConfig``; these bound shape).
MAX_HEADER_COUNT = 64

#: Methods the gateway serves.  ``POST`` is accepted so clients can ship
#: long queries in a body, but every endpoint also works via GET.
ALLOWED_METHODS = ("GET", "HEAD", "POST")

CRLF = b"\r\n"
HEAD_TERMINATOR = b"\r\n\r\n"

REASON_PHRASES = {
    200: "OK",
    400: "Bad Request",
    404: "Not Found",
    405: "Method Not Allowed",
    408: "Request Timeout",
    409: "Conflict",
    413: "Payload Too Large",
    429: "Too Many Requests",
    500: "Internal Server Error",
    501: "Not Implemented",
    503: "Service Unavailable",
    504: "Gateway Timeout",
}


@dataclass
class Request:
    """One parsed request head (the body is read separately)."""

    method: str
    target: str
    path: str
    params: dict[str, str]
    version: str
    headers: dict[str, str]
    body: bytes = b""

    @property
    def keep_alive(self) -> bool:
        """HTTP/1.1 defaults to keep-alive unless ``Connection: close``."""
        connection = self.headers.get("connection", "").lower()
        if self.version == "HTTP/1.0":
            return connection == "keep-alive"
        return connection != "close"

    @property
    def content_length(self) -> int:
        raw = self.headers.get("content-length")
        if raw is None:
            return 0
        try:
            length = int(raw)
        except ValueError:
            raise BadRequestError(
                f"unparseable Content-Length {raw!r}") from None
        if length < 0:
            raise BadRequestError("negative Content-Length")
        return length

    def param(self, name: str, default: str | None = None) -> str | None:
        return self.params.get(name, default)


def parse_request_head(head: bytes,
                       max_header_bytes: int = 16384) -> Request:
    """Parse ``<request line>\\r\\n<headers>\\r\\n\\r\\n`` into a Request.

    Raises :class:`BadRequestError` for anything malformed or over the
    limits; the server turns that into a 400 and closes the connection
    (a client that framed one request wrong cannot be trusted to frame
    the next one right).
    """
    if len(head) > max_header_bytes:
        raise BadRequestError(
            f"request head of {len(head)} bytes exceeds the "
            f"{max_header_bytes}-byte limit"
        )
    block = head[:-len(HEAD_TERMINATOR)] if \
        head.endswith(HEAD_TERMINATOR) else head
    try:
        text = block.decode("latin-1")
    except UnicodeDecodeError:  # pragma: no cover - latin-1 total
        raise BadRequestError("undecodable request head") from None
    lines = text.split("\r\n")
    request_line = lines[0]
    parts = request_line.split(" ")
    if len(parts) != 3:
        raise BadRequestError(
            f"malformed request line {request_line[:80]!r}")
    method, target, version = parts
    if version not in ("HTTP/1.1", "HTTP/1.0"):
        raise BadRequestError(f"unsupported protocol {version!r}")
    if method not in ALLOWED_METHODS:
        raise BadRequestError(f"unsupported method {method!r}")
    if not target.startswith("/"):
        raise BadRequestError(f"unsupported request target {target!r}")
    if len(lines) - 1 > MAX_HEADER_COUNT:
        raise BadRequestError(
            f"{len(lines) - 1} headers exceed the "
            f"{MAX_HEADER_COUNT}-header limit"
        )
    headers: dict[str, str] = {}
    for line in lines[1:]:
        if not line:
            continue
        name, separator, value = line.partition(":")
        if not separator or not name or name != name.strip() or \
                any(c in name for c in " \t"):
            raise BadRequestError(f"malformed header line {line[:80]!r}")
        headers[name.lower()] = value.strip()
    if "transfer-encoding" in headers:
        raise BadRequestError("chunked transfer coding is not supported")
    split = urlsplit(target)
    params = dict(parse_qsl(split.query, keep_blank_values=True))
    return Request(
        method=method,
        target=target,
        path=unquote(split.path),
        params=params,
        version=version,
        headers=headers,
    )


@dataclass
class Response:
    """A handler's answer, before wire serialization."""

    status: int = 200
    payload: Any = None  # JSON-encoded unless ``text`` is set
    text: str | None = None  # pre-rendered body (e.g. Prometheus)
    content_type: str = "application/json"
    headers: dict[str, str] = field(default_factory=dict)
    close: bool = False  # force Connection: close


def build_response(response: Response, *, request_id: str,
                   keep_alive: bool, head_only: bool = False) -> bytes:
    """Serialize one response to HTTP/1.1 bytes.

    ``head_only`` omits the body (HEAD requests) but keeps the
    ``Content-Length`` the corresponding GET would carry.
    """
    if response.text is not None:
        body = response.text.encode("utf-8")
        content_type = response.content_type
        if content_type == "application/json":
            content_type = "text/plain; charset=utf-8"
    else:
        body = json.dumps(response.payload, default=str,
                          separators=(",", ":")).encode("utf-8")
        content_type = response.content_type
    reason = REASON_PHRASES.get(response.status, "Unknown")
    persistent = keep_alive and not response.close
    lines = [
        f"HTTP/1.1 {response.status} {reason}",
        f"Content-Type: {content_type}",
        f"Content-Length: {len(body)}",
        f"X-Request-Id: {request_id}",
        f"Connection: {'keep-alive' if persistent else 'close'}",
    ]
    for name, value in response.headers.items():
        lines.append(f"{name}: {value}")
    head = ("\r\n".join(lines) + "\r\n\r\n").encode("latin-1")
    if head_only:
        return head
    return head + body

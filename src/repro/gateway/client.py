"""A tiny synchronous HTTP/1.1 keep-alive client (stdlib sockets only).

Tests, benchmarks, and ``repro-covidkg serve-stats --url`` drive the
gateway through this instead of an external HTTP library: it reuses one
socket across requests (so keep-alive behaviour is actually exercised),
exposes :meth:`GatewayClient.send_raw` for malformed-wire tests, and
counts its own reconnects so a test can assert a connection was (or was
not) reused.
"""

from __future__ import annotations

import json
import socket
import time
from dataclasses import dataclass, field
from typing import Any, Mapping
from urllib.parse import urlencode, urlsplit

from repro.errors import GatewayError

#: Bytes read per socket recv while parsing a response.
_CHUNK = 65536

#: Methods safe to replay on a fresh connection when a keep-alive
#: socket dies mid-request.  POST is deliberately absent: an ingest the
#: server committed before the connection broke would commit twice.
_IDEMPOTENT = frozenset({"GET", "HEAD"})


@dataclass
class ClientResponse:
    """One parsed HTTP response."""

    status: int
    reason: str
    headers: dict[str, str] = field(default_factory=dict)
    body: bytes = b""

    def json(self) -> Any:
        return json.loads(self.body.decode("utf-8"))

    @property
    def text(self) -> str:
        return self.body.decode("utf-8")

    @property
    def request_id(self) -> str:
        return self.headers.get("x-request-id", "")

    @property
    def keep_alive(self) -> bool:
        return self.headers.get("connection", "").lower() != "close"


class GatewayClient:
    """Blocking keep-alive client for one gateway host:port.

    Not thread-safe — one client per driving thread (each keeps its own
    socket, which is the point: N clients == N server connections).
    """

    def __init__(self, host: str, port: int,
                 timeout: float = 30.0,
                 reconnect_wait: float = 1.0) -> None:
        self.host = host
        self.port = port
        self.timeout = timeout
        #: How long a stale-socket retry keeps re-dialling before the
        #: error surfaces.  A restarting replica closes every keep-alive
        #: connection and refuses new ones for a beat; this window turns
        #: that into one transparently retried request instead of a raw
        #: ``ConnectionError``.
        self.reconnect_wait = reconnect_wait
        self._sock: socket.socket | None = None
        self._buffer = b""
        #: Connections established so far (1 after the first request;
        #: still 1 after N keep-alive requests).
        self.connects = 0

    @classmethod
    def from_url(cls, url: str, timeout: float = 30.0) -> "GatewayClient":
        """``http://host:port`` -> a client (the path part is ignored)."""
        split = urlsplit(url if "//" in url else f"//{url}")
        if split.scheme not in ("", "http"):
            raise GatewayError(
                f"only http:// gateway URLs are supported, got {url!r}")
        if split.hostname is None:
            raise GatewayError(f"no host in gateway URL {url!r}")
        return cls(split.hostname, split.port or 80, timeout=timeout)

    # -- connection management --------------------------------------------

    def _connect(self) -> socket.socket:
        sock = socket.create_connection((self.host, self.port),
                                        timeout=self.timeout)
        try:
            sock.setsockopt(socket.IPPROTO_TCP, socket.TCP_NODELAY, 1)
        except BaseException:
            sock.close()
            raise
        self.connects += 1
        self._buffer = b""
        return sock

    def close(self) -> None:
        if self._sock is not None:
            try:
                self._sock.close()
            finally:
                self._sock = None
        self._buffer = b""

    def __enter__(self) -> "GatewayClient":
        return self

    def __exit__(self, *exc_info: Any) -> None:
        self.close()

    # -- requests ----------------------------------------------------------

    def request(self, method: str, path: str,
                params: Mapping[str, Any] | None = None,
                headers: Mapping[str, str] | None = None,
                body: bytes = b"",
                retry_on_stale: bool = True) -> ClientResponse:
        """One request/response round trip on the persistent connection.

        A keep-alive socket the server has since closed (idle timeout,
        drain, replica restart) surfaces as a send/recv error on the
        *next* request; for idempotent methods ``retry_on_stale``
        transparently replays the request on a fresh connection,
        re-dialling for up to ``reconnect_wait`` so a replica bouncing
        between the two attempts still answers.  Non-idempotent methods
        (POST) always surface the error — the server may have applied
        the request before the connection died, and replaying it would
        apply it twice.
        """
        target = path
        if params:
            target = f"{path}?{urlencode(params)}"
        lines = [
            f"{method} {target} HTTP/1.1",
            f"Host: {self.host}:{self.port}",
        ]
        if body:
            lines.append(f"Content-Length: {len(body)}")
        for name, value in (headers or {}).items():
            lines.append(f"{name}: {value}")
        raw = ("\r\n".join(lines) + "\r\n\r\n").encode("latin-1") + body
        head_only = method == "HEAD"
        fresh = self._sock is None
        try:
            return self._round_trip(raw, head_only=head_only)
        except (ConnectionError, BrokenPipeError, OSError):
            self.close()
            if fresh or not retry_on_stale or \
                    method.upper() not in _IDEMPOTENT:
                raise
            return self._retry_fresh(raw, head_only=head_only)

    def _retry_fresh(self, raw: bytes,
                     head_only: bool = False) -> ClientResponse:
        """Replay ``raw`` on a fresh connection, riding out a restart."""
        deadline = time.monotonic() + self.reconnect_wait
        while True:
            try:
                return self._round_trip(raw, head_only=head_only)
            except (ConnectionError, BrokenPipeError, OSError):
                self.close()
                if time.monotonic() >= deadline:
                    raise
                time.sleep(0.05)

    def get(self, path: str,
            params: Mapping[str, Any] | None = None,
            headers: Mapping[str, str] | None = None) -> ClientResponse:
        return self.request("GET", path, params=params, headers=headers)

    def send_raw(self, raw: bytes) -> ClientResponse:
        """Ship arbitrary bytes (malformed-request tests)."""
        return self._round_trip(raw)

    def send_raw_nowait(self, raw: bytes) -> None:
        """Ship bytes without reading a response (pipelining tests)."""
        if self._sock is None:
            self._sock = self._connect()
        self._sock.sendall(raw)

    def read_response(self, head_only: bool = False) -> ClientResponse:
        """Read the next in-order response off the connection."""
        response = self._read_response(head_only=head_only)
        if not response.keep_alive:
            self.close()
        return response

    def _round_trip(self, raw: bytes,
                    head_only: bool = False) -> ClientResponse:
        if self._sock is None:
            self._sock = self._connect()
        self._sock.sendall(raw)
        response = self._read_response(head_only=head_only)
        if not response.keep_alive:
            self.close()
        return response

    # -- response parsing --------------------------------------------------

    def _read_more(self) -> None:
        assert self._sock is not None
        chunk = self._sock.recv(_CHUNK)
        if not chunk:
            raise ConnectionError("server closed the connection")
        self._buffer += chunk

    def _read_response(self, head_only: bool = False) -> ClientResponse:
        while b"\r\n\r\n" not in self._buffer:
            self._read_more()
        head, _, self._buffer = self._buffer.partition(b"\r\n\r\n")
        lines = head.decode("latin-1").split("\r\n")
        parts = lines[0].split(" ", 2)
        if len(parts) < 2 or not parts[0].startswith("HTTP/"):
            raise GatewayError(f"malformed status line {lines[0]!r}")
        status = int(parts[1])
        reason = parts[2] if len(parts) == 3 else ""
        response_headers: dict[str, str] = {}
        for line in lines[1:]:
            name, _, value = line.partition(":")
            response_headers[name.strip().lower()] = value.strip()
        if head_only:  # HEAD: Content-Length describes the absent body
            return ClientResponse(status=status, reason=reason,
                                  headers=response_headers)
        length = int(response_headers.get("content-length", "0"))
        while len(self._buffer) < length:
            self._read_more()
        body, self._buffer = (self._buffer[:length],
                              self._buffer[length:])
        return ClientResponse(status=status, reason=reason,
                              headers=response_headers, body=body)

    # -- endpoint helpers --------------------------------------------------

    def healthz(self) -> ClientResponse:
        return self.get("/v1/healthz")

    def stats(self) -> dict[str, Any]:
        response = self.get("/v1/stats")
        if response.status != 200:
            raise GatewayError(
                f"/v1/stats returned {response.status}: "
                f"{response.text[:200]}")
        return response.json()

    def metrics_text(self) -> str:
        response = self.get("/v1/metrics")
        if response.status != 200:
            raise GatewayError(
                f"/v1/metrics returned {response.status}")
        return response.text

    def search(self, engine: str, **params: Any) -> ClientResponse:
        return self.get(f"/v1/search/{engine}", params=params)

    def kg_search(self, query: str, **params: Any) -> ClientResponse:
        return self.get("/v1/kg/search",
                        params={"query": query, **params})

    def kg_query(self, query: str, nl: bool = False,
                 **params: Any) -> ClientResponse:
        """Run a KGQL query (or NL question with ``nl=True``)."""
        merged: dict[str, Any] = {"query": query, **params}
        if nl:
            merged["nl"] = "1"
        return self.get("/v1/kg/query", params=merged)

    def ingest(self, papers: list[dict[str, Any]],
               skip_duplicates: bool = False,
               **params: Any) -> ClientResponse:
        """POST a batch of papers to ``/v1/ingest``."""
        body = json.dumps({
            "papers": papers,
            "skip_duplicates": skip_duplicates,
        }).encode("utf-8")
        return self.request(
            "POST", "/v1/ingest", params=params, body=body,
            headers={"Content-Type": "application/json"})

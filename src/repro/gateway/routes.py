"""Gateway routing: endpoints, parameter validation, error mapping.

The route table maps URL paths onto :class:`~repro.serve.QueryService`
engines plus typed parameter specs; everything here is pure (no I/O, no
event loop) so the mapping is testable in isolation and the server file
stays about connections only.

Error fidelity is a contract: every exception class in
:mod:`repro.errors` has an **explicit** entry in :data:`ERROR_STATUS`,
and ``tests/test_gateway.py`` asserts the mapping is exhaustive — a new
error type added without a mapping fails the suite instead of falling
through to a bare 500.  Clients always receive the same machine-readable
shape::

    {"error": {"code": "...", "message": "...", "request_id": "..."}}
"""

from __future__ import annotations

import inspect
import json
from dataclasses import dataclass
from typing import Any

import repro.errors as errors_module
from repro.errors import BadRequestError, ReproError
from repro.gateway.http import Request, Response
from repro.kg.search import KGSearchHit
from repro.kgql import KGQLResult
from repro.search.engine import SearchResults

#: Deadlines a client may request, in milliseconds.  The ceiling stops
#: a client from parking a worker for minutes with one header.
MAX_TIMEOUT_MS = 600_000.0

#: ``repro.errors`` class -> (HTTP status, stable machine-readable code).
#: Every class must appear explicitly; resolution walks the MRO so
#: errors *derived* from these (e.g. in tests) still map sensibly.
ERROR_STATUS: dict[type[BaseException], tuple[int, str]] = {
    errors_module.ReproError: (500, "internal"),
    errors_module.DocumentError: (400, "bad_document"),
    errors_module.DuplicateKeyError: (409, "duplicate_key"),
    errors_module.QueryError: (400, "bad_query"),
    errors_module.AggregationError: (500, "aggregation_failed"),
    errors_module.IndexError_: (500, "index_failed"),
    errors_module.ShardingError: (500, "sharding_failed"),
    errors_module.PersistenceError: (500, "persistence_failed"),
    errors_module.ParseError: (400, "unparseable_input"),
    errors_module.SchemaError: (400, "schema_violation"),
    errors_module.ModelError: (500, "model_failed"),
    errors_module.NotFittedError: (500, "model_not_fitted"),
    errors_module.GraphError: (500, "graph_failed"),
    errors_module.FusionError: (500, "fusion_failed"),
    errors_module.RegistryError: (500, "registry_failed"),
    errors_module.ServiceError: (500, "service_failed"),
    errors_module.ServiceOverloadedError: (503, "service_overloaded"),
    errors_module.DeadlineExceededError: (504, "deadline_exceeded"),
    errors_module.ServiceClosedError: (503, "service_closed"),
    errors_module.RequestTooExpensiveError: (429, "request_too_expensive"),
    errors_module.IngestError: (500, "ingest_failed"),
    errors_module.IngestRejectedError: (422, "ingest_rejected"),
    errors_module.WalCorruptionError: (500, "wal_corrupt"),
    errors_module.SnapshotNotFoundError: (404, "snapshot_not_found"),
    errors_module.KGQLError: (400, "bad_kgql"),
    errors_module.KGQLSyntaxError: (400, "kgql_syntax"),
    errors_module.GatewayError: (500, "gateway_failed"),
    errors_module.BadRequestError: (400, "bad_request"),
    errors_module.PayloadTooLargeError: (413, "request_too_large"),
}


def all_error_classes() -> list[type[BaseException]]:
    """Every concrete error class :mod:`repro.errors` exports."""
    return [
        obj for obj in vars(errors_module).values()
        if inspect.isclass(obj) and issubclass(obj, ReproError)
    ]


def map_error(exc: BaseException) -> tuple[int, str]:
    """Resolve an exception to ``(status, code)`` via its MRO."""
    for cls in type(exc).__mro__:
        entry = ERROR_STATUS.get(cls)
        if entry is not None:
            return entry
    return (500, "internal")


def error_response(exc: BaseException, request_id: str) -> Response:
    status, code = map_error(exc)
    return Response(
        status=status,
        payload={"error": {
            "code": code,
            "message": str(exc) or type(exc).__name__,
            "request_id": request_id,
        }},
    )


def error_payload(status: int, code: str, message: str,
                  request_id: str) -> Response:
    """An error response not backed by an exception (404, cap sheds)."""
    return Response(
        status=status,
        payload={"error": {
            "code": code,
            "message": message,
            "request_id": request_id,
        }},
    )


# -- parameter validation ---------------------------------------------------

def _require(request: Request, name: str) -> str:
    value = request.param(name)
    if value is None or not value.strip():
        raise BadRequestError(f"missing required parameter {name!r}")
    return value


def _int_param(request: Request, name: str, default: int,
               minimum: int, maximum: int) -> int:
    raw = request.param(name)
    if raw is None:
        return default
    try:
        value = int(raw)
    except ValueError:
        raise BadRequestError(
            f"parameter {name!r} must be an integer, got {raw!r}"
        ) from None
    if not minimum <= value <= maximum:
        raise BadRequestError(
            f"parameter {name!r} must be in [{minimum}, {maximum}], "
            f"got {value}"
        )
    return value


def _search_params(request: Request) -> dict[str, Any]:
    return {
        "query": _require(request, "query"),
        "page": _int_param(request, "page", 1, 1, 10_000),
    }


def _title_abstract_params(request: Request) -> dict[str, Any]:
    params: dict[str, Any] = {
        "page": _int_param(request, "page", 1, 1, 10_000),
    }
    provided = False
    for name in ("title", "abstract", "caption"):
        value = request.param(name)
        if value is not None and value.strip():
            params[name] = value
            provided = True
    if not provided:
        raise BadRequestError(
            "title_abstract search needs at least one of "
            "title=, abstract=, caption="
        )
    return params


def _kg_params(request: Request) -> dict[str, Any]:
    return {
        "query": _require(request, "query"),
        "top_k": _int_param(request, "top_k", 10, 1, 1_000),
    }


def _bool_param(request: Request, name: str) -> bool:
    raw = request.param(name)
    if raw is None:
        return False
    lowered = raw.strip().lower()
    if lowered in ("1", "true", "yes", "on"):
        return True
    if lowered in ("", "0", "false", "no", "off"):
        return False
    raise BadRequestError(
        f"parameter {name!r} must be a boolean flag, got {raw!r}")


def _kg_query_params(request: Request) -> dict[str, Any]:
    """``/v1/kg/query``: KGQL source (or an NL question with ``nl=1``)."""
    return {
        "query": _require(request, "query"),
        "nl": _bool_param(request, "nl"),
    }


def ingest_body(request: Request) -> dict[str, Any]:
    """``POST /v1/ingest``: validate the JSON body into submit kwargs.

    Accepts either ``{"papers": [...], "skip_duplicates": bool}`` or a
    bare JSON array of papers.  Shape errors here are 400s; *content*
    errors (a paper failing the quality gate) surface later as 422
    ``ingest_rejected`` from the ingest engine itself.
    """
    if not request.body:
        raise BadRequestError("ingest needs a JSON request body")
    try:
        payload = json.loads(request.body.decode("utf-8"))
    except (UnicodeDecodeError, json.JSONDecodeError) as exc:
        raise BadRequestError(
            f"ingest body is not valid JSON: {exc}") from None
    if isinstance(payload, list):
        payload = {"papers": payload}
    if not isinstance(payload, dict):
        raise BadRequestError(
            "ingest body must be a JSON object or array")
    papers = payload.get("papers")
    if not isinstance(papers, list) or not papers:
        raise BadRequestError(
            'ingest body needs a non-empty "papers" array')
    skip = payload.get("skip_duplicates", False)
    if not isinstance(skip, bool):
        raise BadRequestError(
            '"skip_duplicates" must be a JSON boolean')
    return {"papers": papers, "skip_duplicates": skip}


@dataclass(frozen=True)
class Endpoint:
    """One routable path: its metrics label and serving engine."""

    name: str  # metrics/access-log label
    engine: str | None  # QueryService engine, None for local endpoints
    params: Any = None  # Request -> validated engine kwargs


ROUTES: dict[str, Endpoint] = {
    "/v1/search/all_fields": Endpoint(
        "search.all_fields", "all_fields", _search_params),
    "/v1/search/title_abstract": Endpoint(
        "search.title_abstract", "title_abstract",
        _title_abstract_params),
    "/v1/search/table": Endpoint("search.table", "table", _search_params),
    "/v1/kg/search": Endpoint("kg.search", "kg", _kg_params),
    "/v1/kg/query": Endpoint("kg.query", "kg_query", _kg_query_params),
    "/v1/ingest": Endpoint("ingest", "ingest", ingest_body),
    "/v1/healthz": Endpoint("healthz", None),
    "/v1/stats": Endpoint("stats", None),
    "/v1/metrics": Endpoint("metrics", None),
}


def resolve(path: str) -> Endpoint | None:
    return ROUTES.get(path.rstrip("/") or "/")


def timeout_seconds(request: Request,
                    default_ms: float | None) -> float | None:
    """The request deadline: ``timeout_ms`` param, header, or default.

    The value propagates into ``QueryService.submit(timeout_seconds=)``
    — a request still queued when it lapses fails with
    ``DeadlineExceededError`` (mapped to 504), so a slow tier can never
    silently hold a client past its own budget.
    """
    raw = request.param("timeout_ms")
    if raw is None:
        raw = request.headers.get("x-timeout-ms")
    if raw is None:
        return None if default_ms is None else default_ms / 1000.0
    try:
        value = float(raw)
    except ValueError:
        raise BadRequestError(
            f"timeout_ms must be a number, got {raw!r}") from None
    if not 0 < value <= MAX_TIMEOUT_MS:
        raise BadRequestError(
            f"timeout_ms must be in (0, {MAX_TIMEOUT_MS:.0f}], "
            f"got {value}"
        )
    return value / 1000.0


# -- result serialization ---------------------------------------------------

def serialize_value(value: Any) -> Any:
    """A served engine result as a JSON-safe payload."""
    if isinstance(value, SearchResults):
        return {
            "query": value.query,
            "page": value.page,
            "num_pages": value.num_pages,
            "total_matches": value.total_matches,
            "seconds": value.seconds,
            "results": [
                {
                    "paper_id": hit.paper_id,
                    "title": hit.title,
                    "score": hit.score,
                    "snippets": hit.snippets,
                    "extras": hit.extras,
                }
                for hit in value.results
            ],
        }
    if isinstance(value, KGQLResult):
        return value.to_json()
    if isinstance(value, list) and value and \
            isinstance(value[0], KGSearchHit):
        return [_serialize_kg_hit(hit) for hit in value]
    if isinstance(value, list):
        return value
    return value


def _serialize_kg_hit(hit: KGSearchHit) -> dict[str, Any]:
    return {
        "label": hit.node.label,
        "score": hit.score,
        "path": hit.path_labels,
        "rendered_path": hit.rendered_path(),
        "papers": list(hit.papers),
    }


def serialize_served(served: Any, request_id: str) -> dict[str, Any]:
    """The response body for one ``ServedResult``."""
    return {
        "engine": served.engine,
        "request_id": request_id,
        "cached": served.cached,
        "collapsed": served.collapsed,
        "seconds": served.seconds,
        "versions": list(served.versions),
        "value": serialize_value(served.value),
    }


# -- prometheus rendering ---------------------------------------------------

def _prom_escape(value: str) -> str:
    return value.replace("\\", "\\\\").replace('"', '\\"')


def render_prometheus(service_stats: dict[str, Any],
                      gateway_stats: dict[str, Any]) -> str:
    """Service + gateway counters in Prometheus text exposition format.

    Only plain counters/gauges are exported (no native histograms);
    latency percentiles are published as labelled gauges the way
    serving dashboards conventionally scrape them.
    """
    lines: list[str] = []

    def emit(name: str, kind: str, value: Any,
             labels: dict[str, str] | None = None) -> None:
        if value is None:
            return
        rendered = ""
        if labels:
            inner = ",".join(
                f'{key}="{_prom_escape(str(val))}"'
                for key, val in sorted(labels.items())
            )
            rendered = "{" + inner + "}"
        if not any(line.startswith(f"# TYPE {name} ") for line in lines):
            lines.append(f"# TYPE {name} {kind}")
        lines.append(f"{name}{rendered} {value}")

    connections = gateway_stats["connections"]
    emit("covidkg_gateway_connections_open", "gauge",
         connections["open"])
    emit("covidkg_gateway_connections_total", "counter",
         connections["total"])
    emit("covidkg_gateway_connections_shed_total", "counter",
         connections["shed"])
    emit("covidkg_gateway_requests_inflight", "gauge",
         gateway_stats["requests_inflight"])
    emit("covidkg_gateway_parse_errors_total", "counter",
         gateway_stats["parse_errors"])
    for endpoint, count in sorted(gateway_stats["requests"].items()):
        emit("covidkg_gateway_requests_total", "counter", count,
             {"endpoint": endpoint})
    for status, count in sorted(gateway_stats["responses"].items()):
        emit("covidkg_gateway_responses_total", "counter", count,
             {"status": status})
    for label in ("p50_ms", "p95_ms", "p99_ms"):
        emit("covidkg_gateway_request_latency_ms", "gauge",
             gateway_stats["latency"].get(label),
             {"quantile": label[:-3]})

    for engine, count in sorted(service_stats["requests"].items()):
        emit("covidkg_service_requests_total", "counter", count,
             {"engine": engine})
    for engine, count in sorted(service_stats["errors"].items()):
        emit("covidkg_service_errors_total", "counter", count,
             {"engine": engine})
    for counter in ("shed", "cost_rejected", "deadline_exceeded",
                    "retries", "collapsed_misses", "negative_hits"):
        emit(f"covidkg_service_{counter}_total", "counter",
             service_stats[counter])
    cache = service_stats["cache"]
    for counter in ("hits", "misses", "evictions", "invalidations"):
        if counter in cache:
            emit(f"covidkg_cache_{counter}_total", "counter",
                 cache[counter])
    emit("covidkg_cache_entries", "gauge", cache["entries"])
    admission = service_stats["admission"]
    emit("covidkg_admission_pending", "gauge", admission["pending"])
    emit("covidkg_admission_effective_width", "gauge",
         admission["effective_width"])
    overall = service_stats["latency"]["overall"]
    for label in ("p50_ms", "p95_ms", "p99_ms"):
        emit("covidkg_service_latency_ms", "gauge", overall.get(label),
             {"quantile": label[:-3]})
    return "\n".join(lines) + "\n"
